//! Offline stand-in for the `criterion` crate.
//!
//! Provides the measurement API the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! but honest wall-clock harness: per sample, the routine runs in a batch
//! sized so one batch takes ≥ ~1 ms, and the reported figure is the median
//! over `sample_size` samples (after warm-up). No plots, no statistics
//! beyond median/min/max — enough to compare implementations and to catch
//! regressions in CI smoke mode.
//!
//! CLI compatibility: `--test` runs every routine once and reports nothing
//! (the cargo-bench smoke mode CI uses); a positional `<filter>` substring
//! restricts which benches run, as with real criterion.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] amortizes setup cost. The shim honours the
/// semantics (setup excluded from timing) but not the batch-size hinting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input: large batches.
    SmallInput,
    /// Large routine input: small batches.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

#[derive(Debug, Clone)]
struct Options {
    test_mode: bool,
    filter: Option<String>,
    sample_size: usize,
    min_batch_time: Duration,
}

impl Options {
    fn from_args() -> Self {
        let mut o = Self {
            test_mode: false,
            filter: None,
            sample_size: 20,
            min_batch_time: Duration::from_millis(1),
        };
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => o.test_mode = true,
                // Flags cargo/criterion pass that we accept and ignore.
                "--bench" | "--profile-time" | "--save-baseline" | "--baseline"
                | "--measurement-time" | "--warm-up-time" | "--sample-size" | "--noplot"
                | "--quiet" | "--verbose" => {
                    if matches!(
                        a.as_str(),
                        "--profile-time"
                            | "--save-baseline"
                            | "--baseline"
                            | "--measurement-time"
                            | "--warm-up-time"
                            | "--sample-size"
                    ) {
                        let _ = args.next();
                    }
                }
                other if !other.starts_with('-') => o.filter = Some(other.to_string()),
                _ => {}
            }
        }
        o
    }
}

/// Times one closure invocation.
fn time_once<R>(mut f: impl FnMut() -> R) -> Duration {
    let t0 = Instant::now();
    black_box(f());
    t0.elapsed()
}

/// The per-benchmark measurement driver.
pub struct Bencher<'a> {
    opts: &'a Options,
    /// `(median, min, max)` nanoseconds per iteration, filled by the
    /// measurement loops.
    result_ns: Option<(f64, f64, f64)>,
}

impl Bencher<'_> {
    /// Measures `routine` called repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if self.opts.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up and batch sizing: grow the batch until it runs long
        // enough to dwarf timer overhead.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= self.opts.min_batch_time || batch >= 1 << 24 {
                break;
            }
            batch = (batch * 2).max(
                (batch as f64 * self.opts.min_batch_time.as_secs_f64() / dt.as_secs_f64().max(1e-9))
                    as u64,
            );
        }
        let mut samples = Vec::with_capacity(self.opts.sample_size);
        for _ in 0..self.opts.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        self.record(samples);
    }

    /// Measures `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        if self.opts.test_mode {
            black_box(routine(setup()));
            return;
        }
        let mut samples = Vec::with_capacity(self.opts.sample_size);
        // One warm-up call, then timed calls; setup runs outside the timer.
        black_box(routine(setup()));
        let per_call = time_once(|| routine(setup()));
        // If a single call is far below the timer floor, fold several calls
        // into one sample.
        let calls = if per_call >= self.opts.min_batch_time {
            1u64
        } else {
            (self.opts.min_batch_time.as_secs_f64() / per_call.as_secs_f64().max(1e-9)).ceil()
                as u64
        };
        for _ in 0..self.opts.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..calls {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                total += t0.elapsed();
            }
            samples.push(total.as_secs_f64() * 1e9 / calls as f64);
        }
        self.record(samples);
    }

    fn record(&mut self, mut samples: Vec<f64>) {
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        self.result_ns = Some((median, min, max));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    opts: Options,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            opts: Options::from_args(),
        }
    }
}

impl Criterion {
    /// Applies CLI configuration (already done at construction; kept for
    /// API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn run_one(
        opts: &Options,
        name: &str,
        f: &mut dyn FnMut(&mut Bencher),
    ) -> Option<(f64, f64, f64)> {
        if let Some(filter) = &opts.filter {
            if !name.contains(filter.as_str()) {
                return None;
            }
        }
        let mut b = Bencher {
            opts,
            result_ns: None,
        };
        f(&mut b);
        if opts.test_mode {
            println!("test {name} ... ok");
            return None;
        }
        if let Some((median, min, max)) = b.result_ns {
            println!(
                "{name:<50} time: [{} {} {}]",
                format_ns(min),
                format_ns(median),
                format_ns(max)
            );
        }
        b.result_ns
    }

    /// Runs one named benchmark.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        Self::run_one(&self.opts, name.as_ref(), &mut f);
        self
    }

    /// Opens a named group; benches inside report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        let mut opts = self.criterion.opts.clone();
        if let Some(n) = self.sample_size {
            opts.sample_size = n;
        }
        Criterion::run_one(&opts, &full, &mut f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(test_mode: bool) -> Options {
        Options {
            test_mode,
            filter: None,
            sample_size: 3,
            min_batch_time: Duration::from_micros(50),
        }
    }

    #[test]
    fn iter_produces_a_sane_measurement() {
        let o = opts(false);
        let mut b = Bencher {
            opts: &o,
            result_ns: None,
        };
        b.iter(|| black_box(41u64) + 1);
        let (median, min, max) = b.result_ns.expect("measured");
        assert!(min <= median && median <= max);
        assert!(
            median > 0.0 && median < 1e6,
            "median {median} ns for an add"
        );
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let o = opts(false);
        let mut b = Bencher {
            opts: &o,
            result_ns: None,
        };
        b.iter_batched(|| vec![0u8; 1024], |v| v.len(), BatchSize::SmallInput);
        assert!(b.result_ns.is_some());
    }

    #[test]
    fn test_mode_runs_once_without_measuring() {
        let o = opts(true);
        let mut b = Bencher {
            opts: &o,
            result_ns: None,
        };
        let mut runs = 0;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert!(b.result_ns.is_none());
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
    }
}
