//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments without network access, so this
//! crate provides the small, deterministic subset of the `rand` API the
//! simulator uses: [`rngs::SmallRng`], [`SeedableRng`], and [`RngExt`] with
//! `random::<T>()` / `random_range(..)`. The generator is xoshiro256++,
//! seeded through splitmix64 — the same construction the real `SmallRng`
//! uses on 64-bit targets.

#![forbid(unsafe_code)]

use core::ops::Range;

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — a small non-cryptographic PRNG.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64 (the shared helper in
            // mithril-fasthash) so nearby seeds give unrelated streams —
            // the construction rand itself uses. splitmix64(x) is
            // finalize(x + GOLDEN_GAMMA), so calling it on the pre-advance
            // state and then stepping the state by GOLDEN_GAMMA yields the
            // classic splitmix64 output stream.
            let mut x = seed;
            let mut next = || {
                let out = mithril_fasthash::splitmix64(x);
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                out
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Types that can be sampled uniformly from a generator.
pub trait Random: Sized {
    /// Draws one uniformly random value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize);

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws one uniformly random `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..1000)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.random::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.random_range(10u32..20);
            assert!((10..20).contains(&x));
        }
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable");
    }
}
