//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`boxed`, range and
//! tuple strategies, [`collection::vec`], [`Just`], `any::<T>()`,
//! [`prop_oneof!`], [`proptest!`], `prop_assert!`/`prop_assert_eq!`, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest: cases are generated from a fixed seed
//! sequence (fully deterministic, no persisted failure file) and failing
//! inputs are reported but **not shrunk**. For this repository's tests —
//! invariant checks over random streams — that is sufficient.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The RNG handed to strategies while generating one test case.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Creates the generator for test case `case` of a named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        Self(SmallRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.random::<u64>()
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A recipe for generating values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`] to mix arms of
    /// different concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.start.abs_diff(self.end)) as i64
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize);

/// Strategy for `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full range of values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Weighted union of same-valued strategies (the [`prop_oneof!`] backend).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V: Debug> Union<V> {
    /// Builds a union; each arm is picked with probability `weight/total`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! requires a non-zero total weight");
        Self { arms, total }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Admissible length specifications for [`vec`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Strategy generating `Vec`s of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The error a failing property raises; carries the assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// What the generated property body returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Weighted choice between strategies, all producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// Defines property tests over generated inputs.
///
/// Supports the real-proptest surface used in this repository:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_prop(x in 0u64..10, v in prop::collection::vec(0u64..4, 1..100)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@fns ($config:expr) ) => {};
    (
        @fns ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let result: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {} of {} failed: {}\ninputs: {:#?}",
                        case,
                        stringify!($name),
                        e.0,
                        ($(&$arg,)+)
                    );
                }
            }
        }
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u64..4, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for &e in &v {
                prop_assert!(e < 4);
            }
        }

        #[test]
        fn oneof_and_map_compose(v in prop::collection::vec(prop_oneof![
            3 => Just(99u64),
            1 => (0u64..4).prop_map(|x| x * 2),
        ], 1..50)) {
            for &e in &v {
                prop_assert!(e == 99 || e % 2 == 0);
            }
        }

        #[test]
        fn tuples_generate_componentwise(t in (0u32..4, any::<bool>(), 10u64..12)) {
            prop_assert!(t.0 < 4);
            prop_assert!(t.2 == 10 || t.2 == 11);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("t", 0);
        let mut b = crate::TestRng::for_case("t", 0);
        assert_eq!((0u64..8).generate(&mut a), (0u64..8).generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_inputs() {
        proptest! {
            fn always_fails(x in 0u64..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
