//! Roll-up invariants of [`Metrics::from_channels`]: for *any* per-channel
//! breakdown, the system-level totals must equal the exact sum (or max,
//! for disturbance) of the per-channel values — the property the
//! cross-channel attribution experiments and the sweep reports lean on.

// The proptest shim's `proptest!` macro expands each body statement
// recursively; this test makes many assertions per case.
#![recursion_limit = "1024"]

use mithril_dram::{ChannelId, EnergyCounters, EnergyModel};
use mithril_memctrl::{QosStats, QosThreadStats};
use mithril_obs::{LatencyHistogram, PerCore};
use mithril_sim::{ChannelMetrics, CoreStats, Metrics};
use proptest::prelude::*;

fn counters_strategy() -> impl Strategy<Value = EnergyCounters> {
    (
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
    )
        .prop_map(
            |((acts, pres, reads, writes), (auto, prev, rfm, mrr))| EnergyCounters {
                acts,
                pres,
                reads,
                writes,
                auto_refresh_rows: auto,
                preventive_rows: prev,
                rfm_commands: rfm,
                mrr_commands: mrr,
            },
        )
}

fn qos_strategy() -> impl Strategy<Value = Option<QosStats>> {
    // The offline proptest shim has no `prop::option`; a bool gate over
    // the inner strategy is equivalent.
    (
        any::<bool>(),
        0u64..1 << 30,
        prop::collection::vec(
            (0u64..1 << 20, 0u64..1 << 20, 0u64..1 << 20, 0u64..1 << 20),
            0..4,
        ),
    )
        .prop_map(|(present, windows, threads)| {
            present.then(|| QosStats {
                windows,
                throttled_acts: threads.iter().map(|t| t.1).sum(),
                per_thread: threads
                    .into_iter()
                    .map(
                        |(suspect_windows, throttled_acts, score, pressure)| QosThreadStats {
                            suspect_windows,
                            throttled_acts,
                            score,
                            pressure,
                        },
                    )
                    .collect(),
            })
        })
}

fn channel_strategy() -> impl Strategy<Value = ChannelMetrics> {
    (
        counters_strategy(),
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 30, 0u64..1 << 30),
        (0u64..1 << 30, 0u64..1 << 30, 0u64..1 << 20, 0usize..1 << 10),
        (0u64..200_000, 0u32..1000),
        prop::collection::vec((0u64..1 << 50, 0usize..4), 0..8),
        qos_strategy(),
    )
        .prop_map(
            |(
                counters,
                (reads_done, writes_done, rfms, rfm_elisions),
                (arrs, throttled_acts, max_disturbance, flips),
                (lat_ns, hit_milli),
                latency_samples,
                qos,
            )| {
                let mut read_latency = LatencyHistogram::new();
                let mut per_core: PerCore<CoreStats> = PerCore::new();
                for &(lat_ps, core) in &latency_samples {
                    read_latency.record(lat_ps);
                    let slot = per_core.slot(core);
                    slot.reads_done += 1;
                    slot.read_latency.record(lat_ps);
                }
                ChannelMetrics {
                    channel: ChannelId(0), // renumbered below
                    reads_done,
                    writes_done,
                    avg_read_latency_ns: lat_ns as f64 / 100.0,
                    row_hit_rate: hit_milli as f64 / 1000.0,
                    energy_pj: EnergyModel::ddr5_default().dynamic_energy_pj(&counters),
                    counters,
                    rfms,
                    rfm_elisions,
                    arrs,
                    throttled_acts,
                    max_disturbance,
                    flips,
                    read_latency,
                    write_latency: LatencyHistogram::new(),
                    per_core,
                    qos,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn totals_equal_per_channel_sums(
        raw_channels in prop::collection::vec(channel_strategy(), 1..6),
        ipcs in prop::collection::vec(0u32..10_000, 1..17),
    ) {
        // The macro re-borrows its args for failure reporting, so work on
        // a clone rather than moving the generated value.
        let mut channels = raw_channels.clone();
        for (i, ch) in channels.iter_mut().enumerate() {
            ch.channel = ChannelId(i);
        }
        let per_core_ipc: Vec<f64> = ipcs.iter().map(|&x| x as f64 / 1000.0).collect();
        let model = EnergyModel::ddr5_default();
        let m = Metrics::from_channels(
            "w".into(),
            "s".into(),
            per_core_ipc.clone(),
            123,
            456,
            0.25,
            channels.clone(),
            &model,
        );

        // Exact integer roll-ups.
        prop_assert_eq!(m.rfms, channels.iter().map(|c| c.rfms).sum::<u64>());
        prop_assert_eq!(
            m.rfm_elisions,
            channels.iter().map(|c| c.rfm_elisions).sum::<u64>()
        );
        prop_assert_eq!(m.arrs, channels.iter().map(|c| c.arrs).sum::<u64>());
        prop_assert_eq!(
            m.throttled_acts,
            channels.iter().map(|c| c.throttled_acts).sum::<u64>()
        );
        prop_assert_eq!(m.flips, channels.iter().map(|c| c.flips).sum::<usize>());
        prop_assert_eq!(
            m.max_disturbance,
            channels.iter().map(|c| c.max_disturbance).max().unwrap()
        );

        // Counter-by-counter merge: activations, refreshes, column traffic.
        prop_assert_eq!(m.counters.acts, channels.iter().map(|c| c.counters.acts).sum::<u64>());
        prop_assert_eq!(m.counters.pres, channels.iter().map(|c| c.counters.pres).sum::<u64>());
        prop_assert_eq!(m.counters.reads, channels.iter().map(|c| c.counters.reads).sum::<u64>());
        prop_assert_eq!(m.counters.writes, channels.iter().map(|c| c.counters.writes).sum::<u64>());
        prop_assert_eq!(
            m.counters.auto_refresh_rows,
            channels.iter().map(|c| c.counters.auto_refresh_rows).sum::<u64>()
        );
        prop_assert_eq!(
            m.counters.preventive_rows,
            channels.iter().map(|c| c.counters.preventive_rows).sum::<u64>()
        );
        prop_assert_eq!(
            m.counters.rfm_commands,
            channels.iter().map(|c| c.counters.rfm_commands).sum::<u64>()
        );
        prop_assert_eq!(
            m.counters.mrr_commands,
            channels.iter().map(|c| c.counters.mrr_commands).sum::<u64>()
        );

        // Aggregate IPC is the per-core sum; energy is the model over the
        // merged counters (= sum of per-channel energies, since the model
        // is linear in the counters).
        let ipc_sum: f64 = per_core_ipc.iter().sum();
        prop_assert!((m.aggregate_ipc - ipc_sum).abs() <= 1e-9 * ipc_sum.max(1.0));
        let energy_sum: f64 = channels.iter().map(|c| c.energy_pj).sum();
        prop_assert!(
            (m.energy_pj - energy_sum).abs() <= 1e-9 * energy_sum.max(1.0),
            "energy rollup {} != channel sum {}",
            m.energy_pj,
            energy_sum
        );

        // Read latency is read-weighted; with zero reads everywhere it
        // must be exactly zero, otherwise it lies within the per-channel
        // envelope.
        let reads: u64 = channels.iter().map(|c| c.reads_done).sum();
        if reads == 0 {
            prop_assert_eq!(m.avg_read_latency_ns, 0.0);
        } else {
            let lo = channels
                .iter()
                .filter(|c| c.reads_done > 0)
                .map(|c| c.avg_read_latency_ns)
                .fold(f64::INFINITY, f64::min);
            let hi = channels
                .iter()
                .filter(|c| c.reads_done > 0)
                .map(|c| c.avg_read_latency_ns)
                .fold(0.0f64, f64::max);
            prop_assert!(
                m.avg_read_latency_ns >= lo - 1e-9 && m.avg_read_latency_ns <= hi + 1e-9,
                "latency {} outside [{lo}, {hi}]",
                m.avg_read_latency_ns
            );
        }

        // Histogram roll-up: the system histogram is the bucket-wise merge
        // of the channels, and (associativity + commutativity) folding in
        // reverse order produces the identical histogram.
        let mut fwd = LatencyHistogram::new();
        for c in &channels {
            fwd.merge(&c.read_latency);
        }
        let mut rev = LatencyHistogram::new();
        for c in channels.iter().rev() {
            rev.merge(&c.read_latency);
        }
        prop_assert_eq!(&fwd, &rev);
        prop_assert_eq!(&m.read_latency, &fwd);
        prop_assert_eq!(
            m.read_latency.count(),
            channels.iter().map(|c| c.read_latency.count()).sum::<u64>()
        );

        // Per-core roll-up: each core's reads and histogram are the merge
        // of that core's slot across channels.
        let mut expected: PerCore<CoreStats> = PerCore::new();
        for c in &channels {
            expected.merge_by(&c.per_core, CoreStats::merge);
        }
        prop_assert_eq!(&m.per_core, &expected);
        let core_reads: u64 = m.per_core.iter().map(|(_, s)| s.reads_done).sum();
        prop_assert_eq!(core_reads, m.read_latency.count());

        // QoS roll-up: present exactly when any channel carries QoS stats
        // (the byte-identity contract for QoS-off reports), with additive
        // totals and index-wise per-thread merging.
        prop_assert_eq!(m.qos.is_some(), channels.iter().any(|c| c.qos.is_some()));
        if let Some(q) = &m.qos {
            let mut expected_qos = QosStats::default();
            for c in &channels {
                if let Some(cq) = &c.qos {
                    expected_qos.merge(cq);
                }
            }
            prop_assert_eq!(q, &expected_qos);
            prop_assert_eq!(
                q.windows,
                channels.iter().filter_map(|c| c.qos.as_ref()).map(|x| x.windows).sum::<u64>()
            );
        }

        // The channel breakdown itself is passed through untouched.
        prop_assert_eq!(m.per_channel, channels);
    }
}
