//! The trace-driven core front-end.
//!
//! Each core replays its workload trace: batches of non-memory
//! instructions retire at the pipeline width, memory operations look up the
//! LLC, and misses occupy one of `mlp` miss slots (the memory-level
//! parallelism an out-of-order window sustains). A core with all slots full
//! stalls until a fill returns — the mechanism through which RFM/ARR/
//! throttling-induced DRAM stalls become IPC loss.

use mithril_dram::TimePs;

/// Core micro-architecture parameters (paper Table III: 3.6 GHz 4-way OOO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreParams {
    /// Retire width (instructions per cycle).
    pub width: u32,
    /// Core clock period in picoseconds (278 ps ≈ 3.6 GHz).
    pub period_ps: TimePs,
    /// Outstanding misses the core tolerates before stalling.
    pub mlp: usize,
    /// Exposed LLC hit latency per access, in picoseconds (after OOO
    /// overlap).
    pub llc_hit_ps: TimePs,
}

impl Default for CoreParams {
    fn default() -> Self {
        Self {
            width: 4,
            period_ps: 278,
            mlp: 8,
            llc_hit_ps: 3_000,
        }
    }
}

/// Execution state of one core.
#[derive(Debug)]
pub struct CoreState {
    params: CoreParams,
    /// Core-local time.
    pub clock: TimePs,
    /// Instructions retired.
    pub insts: u64,
    /// Demand misses in flight.
    pub outstanding: usize,
    /// True when all miss slots are full.
    pub blocked: bool,
    /// Instruction budget; the core idles once reached.
    pub budget: u64,
}

impl CoreState {
    /// A fresh core with an instruction budget.
    pub fn new(params: CoreParams, budget: u64) -> Self {
        Self {
            params,
            clock: 0,
            insts: 0,
            outstanding: 0,
            blocked: false,
            budget,
        }
    }

    /// True if the core retired its budget.
    pub fn done(&self) -> bool {
        self.insts >= self.budget
    }

    /// Advances local time for a batch of non-memory instructions plus the
    /// issue of one memory access.
    pub fn retire_batch(&mut self, non_mem_insts: u32) {
        let cycles = (non_mem_insts / self.params.width).max(1) as TimePs;
        self.clock += cycles * self.params.period_ps;
        self.insts += non_mem_insts as u64 + 1;
    }

    /// Accounts an LLC hit.
    pub fn account_hit(&mut self) {
        self.clock += self.params.llc_hit_ps;
    }

    /// Registers a demand miss; returns `true` if the core is now blocked.
    pub fn register_miss(&mut self) -> bool {
        self.outstanding += 1;
        self.blocked = self.outstanding >= self.params.mlp;
        self.blocked
    }

    /// Delivers a fill completion at absolute time `at`.
    pub fn deliver(&mut self, at: TimePs) {
        debug_assert!(self.outstanding > 0, "completion without outstanding miss");
        self.outstanding -= 1;
        if self.blocked {
            self.blocked = false;
            self.clock = self.clock.max(at);
        }
    }

    /// Instructions per cycle retired so far.
    pub fn ipc(&self) -> f64 {
        if self.clock == 0 {
            return 0.0;
        }
        let cycles = self.clock as f64 / self.params.period_ps as f64;
        self.insts as f64 / cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> CoreState {
        CoreState::new(CoreParams::default(), u64::MAX)
    }

    #[test]
    fn retire_advances_clock_by_width() {
        let mut c = core();
        c.retire_batch(8); // 8 insts / width 4 = 2 cycles
        assert_eq!(c.clock, 2 * 278);
        assert_eq!(c.insts, 9);
    }

    #[test]
    fn small_batches_cost_at_least_one_cycle() {
        let mut c = core();
        c.retire_batch(0);
        assert_eq!(c.clock, 278);
    }

    #[test]
    fn blocks_at_mlp_limit() {
        let mut c = core();
        for i in 0..7 {
            assert!(!c.register_miss(), "blocked too early at {i}");
        }
        assert!(c.register_miss());
        assert!(c.blocked);
    }

    #[test]
    fn deliver_unblocks_and_advances_time() {
        let mut c = core();
        for _ in 0..8 {
            c.register_miss();
        }
        let before = c.clock;
        c.deliver(before + 100_000);
        assert!(!c.blocked);
        assert_eq!(c.clock, before + 100_000);
        assert_eq!(c.outstanding, 7);
    }

    #[test]
    fn deliver_when_not_blocked_keeps_clock() {
        let mut c = core();
        c.register_miss();
        c.deliver(999_999);
        assert_eq!(c.clock, 0, "unblocked core does not wait for data");
    }

    #[test]
    fn ipc_counts_retired_over_cycles() {
        let mut c = core();
        c.retire_batch(4); // 1 cycle, 5 insts
        assert!((c.ipc() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn budget_marks_done() {
        let mut c = CoreState::new(CoreParams::default(), 10);
        assert!(!c.done());
        c.retire_batch(20);
        assert!(c.done());
    }
}
