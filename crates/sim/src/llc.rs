//! Shared last-level cache: set-associative, LRU, write-back/write-allocate
//! with MSHR merging.

use mithril::fasthash::FastHashMap;

/// LLC geometry and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcConfig {
    /// Total capacity in bytes (paper: 16 MB).
    pub size_bytes: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl Default for LlcConfig {
    fn default() -> Self {
        Self {
            size_bytes: 16 << 20,
            ways: 16,
            line_bytes: 64,
        }
    }
}

/// Result of an LLC access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcAccess {
    /// The line was present.
    Hit,
    /// The line is absent: a fill must be requested from memory.
    Miss,
    /// The line is absent but a fill is already outstanding (MSHR hit):
    /// no new memory request is needed.
    MergedMiss,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    lru: u64,
}

/// The shared last-level cache.
///
/// # Example
///
/// ```
/// use mithril_sim::{Llc, LlcAccess, LlcConfig};
///
/// let mut llc = Llc::new(LlcConfig::default());
/// assert_eq!(llc.access(100, false), LlcAccess::Miss);
/// assert_eq!(llc.access(100, false), LlcAccess::MergedMiss);
/// llc.fill(100);
/// assert_eq!(llc.access(100, false), LlcAccess::Hit);
/// ```
#[derive(Debug)]
pub struct Llc {
    /// All lines in one flat arena, `ways` slots per set; `lens[set]` of
    /// them are live. One contiguous block keeps the per-access tag scan
    /// free of pointer-chasing — this is the hottest shared structure in
    /// the system loop.
    lines: Vec<Line>,
    lens: Vec<u8>,
    set_mask: u64,
    ways: usize,
    /// Outstanding fills: line address → dirty-on-fill flag.
    mshr: FastHashMap<u64, bool>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Llc {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two or ways is zero.
    pub fn new(config: LlcConfig) -> Self {
        assert!(config.ways > 0, "ways must be non-zero");
        let sets = config.size_bytes / config.line_bytes / config.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(config.ways <= u8::MAX as usize, "ways must fit in u8");
        Self {
            lines: vec![
                Line {
                    tag: 0,
                    dirty: false,
                    lru: 0,
                };
                sets * config.ways
            ],
            lens: vec![0; sets],
            set_mask: sets as u64 - 1,
            ways: config.ways,
            mshr: FastHashMap::default(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `line_addr`; a write marks the line dirty.
    pub fn access(&mut self, line_addr: u64, is_write: bool) -> LlcAccess {
        self.clock += 1;
        let set = (line_addr & self.set_mask) as usize;
        let base = set * self.ways;
        let live = &mut self.lines[base..base + self.lens[set] as usize];
        if let Some(line) = live.iter_mut().find(|l| l.tag == line_addr) {
            line.lru = self.clock;
            line.dirty |= is_write;
            self.hits += 1;
            return LlcAccess::Hit;
        }
        self.misses += 1;
        if let Some(dirty) = self.mshr.get_mut(&line_addr) {
            *dirty |= is_write;
            return LlcAccess::MergedMiss;
        }
        self.mshr.insert(line_addr, is_write);
        LlcAccess::Miss
    }

    /// Completes the fill of `line_addr`; returns the dirty line address
    /// that must be written back, if an eviction produced one.
    pub fn fill(&mut self, line_addr: u64) -> Option<u64> {
        let dirty = self.mshr.remove(&line_addr).unwrap_or(false);
        let set = (line_addr & self.set_mask) as usize;
        self.clock += 1;
        let base = set * self.ways;
        let len = self.lens[set] as usize;
        let live = &mut self.lines[base..base + len];
        if live.iter().any(|l| l.tag == line_addr) {
            return None; // already filled (rare double-fill)
        }
        let mut writeback = None;
        let slot = if len == self.ways {
            // Evict the LRU way (LRU stamps are unique, so this victim is
            // the same one the nested-Vec layout would have picked).
            let (victim_idx, victim) = live
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("full set");
            if victim.dirty {
                writeback = Some(victim.tag);
            }
            base + victim_idx
        } else {
            self.lens[set] += 1;
            base + len
        };
        self.lines[slot] = Line {
            tag: line_addr,
            dirty,
            lru: self.clock,
        };
        writeback
    }

    /// Miss rate over all accesses so far.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// `(hits, misses)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Llc {
        // 4 sets × 2 ways × 64 B = 512 B.
        Llc::new(LlcConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert_eq!(c.access(5, false), LlcAccess::Miss);
        assert_eq!(c.fill(5), None);
        assert_eq!(c.access(5, false), LlcAccess::Hit);
    }

    #[test]
    fn mshr_merges_duplicate_misses() {
        let mut c = small();
        assert_eq!(c.access(5, false), LlcAccess::Miss);
        assert_eq!(c.access(5, false), LlcAccess::MergedMiss);
        assert_eq!(c.access(5, true), LlcAccess::MergedMiss);
        // The merged write makes the filled line dirty.
        c.fill(5);
        // Evict it by filling two more lines in the same set (stride 4).
        c.access(9, false);
        c.fill(9);
        c.access(13, false);
        let wb = c.fill(13);
        assert_eq!(wb, Some(5), "dirty merged line must write back");
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        for addr in [0u64, 4] {
            c.access(addr, false);
            c.fill(addr);
        }
        // Touch 0 so 4 is LRU.
        c.access(0, false);
        c.access(8, false);
        c.fill(8);
        assert_eq!(c.access(0, false), LlcAccess::Hit);
        assert_eq!(c.access(4, false), LlcAccess::Miss);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        for addr in [0u64, 4, 8] {
            c.access(addr, false);
            assert_eq!(c.fill(addr), None);
        }
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = small();
        c.access(0, true);
        c.fill(0);
        c.access(4, false);
        c.fill(4);
        c.access(8, false);
        assert_eq!(c.fill(8), Some(0));
    }

    #[test]
    fn miss_rate_tracks_counters() {
        let mut c = small();
        c.access(0, false);
        c.fill(0);
        c.access(0, false);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.counters(), (1, 1));
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0, false);
        c.fill(0);
        c.access(0, true); // dirty now
        c.access(4, false);
        c.fill(4);
        c.access(8, false);
        assert_eq!(c.fill(8), Some(0));
    }
}
