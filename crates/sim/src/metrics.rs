//! End-of-run metrics.

use mithril_dram::{EnergyCounters, TimePs};

/// Results of one system simulation run.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Workload-set name.
    pub workload: String,
    /// Scheme name.
    pub scheme: String,
    /// Per-core IPC.
    pub per_core_ipc: Vec<f64>,
    /// Sum of per-core IPCs — the paper's aggregate-IPC metric.
    pub aggregate_ipc: f64,
    /// Total instructions retired across cores.
    pub total_insts: u64,
    /// Simulated wall time (max core clock).
    pub sim_time_ps: TimePs,
    /// LLC miss rate.
    pub llc_miss_rate: f64,
    /// Merged DRAM operation counters across channels.
    pub counters: EnergyCounters,
    /// Total dynamic DRAM energy in picojoules.
    pub energy_pj: f64,
    /// RFM commands issued.
    pub rfms: u64,
    /// RFMs elided via MRR (Mithril+).
    pub rfm_elisions: u64,
    /// ARR commands issued (MC-side schemes).
    pub arrs: u64,
    /// ACTs delayed by throttling.
    pub throttled_acts: u64,
    /// Average demand-read latency in nanoseconds.
    pub avg_read_latency_ns: f64,
    /// Worst victim disturbance observed by the oracle.
    pub max_disturbance: u64,
    /// Bit flips detected (must be 0 for any deterministic scheme).
    pub flips: usize,
}

impl Metrics {
    /// This run's aggregate IPC normalized against a baseline run
    /// (1.0 = no slowdown), the paper's headline performance metric.
    pub fn normalized_ipc(&self, baseline: &Metrics) -> f64 {
        if baseline.aggregate_ipc == 0.0 {
            return 0.0;
        }
        self.aggregate_ipc / baseline.aggregate_ipc
    }

    /// Relative dynamic energy against a baseline run (1.0 = no overhead).
    pub fn relative_energy(&self, baseline: &Metrics) -> f64 {
        if baseline.energy_pj == 0.0 {
            return 0.0;
        }
        self.energy_pj / baseline.energy_pj
    }
}

/// Geometric mean of a slice of positive values.
///
/// # Example
///
/// ```
/// use mithril_sim::Metrics;
/// let g = mithril_sim::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// # let _ = g;
/// ```
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-300).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(ipc: f64, energy: f64) -> Metrics {
        Metrics {
            workload: "w".into(),
            scheme: "s".into(),
            per_core_ipc: vec![ipc],
            aggregate_ipc: ipc,
            total_insts: 100,
            sim_time_ps: 1000,
            llc_miss_rate: 0.1,
            counters: EnergyCounters::default(),
            energy_pj: energy,
            rfms: 0,
            rfm_elisions: 0,
            arrs: 0,
            throttled_acts: 0,
            avg_read_latency_ns: 50.0,
            max_disturbance: 0,
            flips: 0,
        }
    }

    #[test]
    fn normalized_ipc_vs_baseline() {
        let base = metrics(10.0, 100.0);
        let run = metrics(9.5, 104.0);
        assert!((run.normalized_ipc(&base) - 0.95).abs() < 1e-12);
        assert!((run.relative_energy(&base) - 1.04).abs() < 1e-12);
    }

    #[test]
    fn degenerate_baselines_are_zero() {
        let base = metrics(0.0, 0.0);
        let run = metrics(1.0, 1.0);
        assert_eq!(run.normalized_ipc(&base), 0.0);
        assert_eq!(run.relative_energy(&base), 0.0);
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
