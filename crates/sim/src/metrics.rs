//! End-of-run metrics, aggregated hierarchically: per-channel results roll
//! up into the system totals.

use mithril_dram::{ChannelId, EnergyCounters, EnergyModel, TimePs};

/// One memory channel's share of a run's results.
///
/// A [`Metrics`] carries one of these per channel; the system-level fields
/// of `Metrics` are exactly the merge of its channels, so experiments can
/// attribute overheads (RFM stalls, preventive-refresh energy, disturbance)
/// to the channel that incurred them — the cross-channel interference
/// scenarios depend on this.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelMetrics {
    /// The channel this breakdown belongs to.
    pub channel: ChannelId,
    /// Demand reads serviced by this channel.
    pub reads_done: u64,
    /// Writebacks serviced by this channel.
    pub writes_done: u64,
    /// Average demand-read latency on this channel, nanoseconds.
    pub avg_read_latency_ns: f64,
    /// Row-buffer hit rate over column commands.
    pub row_hit_rate: f64,
    /// DRAM operation counters of this channel's device.
    pub counters: EnergyCounters,
    /// Dynamic DRAM energy of this channel, picojoules.
    pub energy_pj: f64,
    /// RFM commands issued on this channel.
    pub rfms: u64,
    /// RFMs elided via MRR (Mithril+).
    pub rfm_elisions: u64,
    /// ARR commands issued (MC-side schemes).
    pub arrs: u64,
    /// ACTs delayed by throttling.
    pub throttled_acts: u64,
    /// Worst victim disturbance observed on this channel.
    pub max_disturbance: u64,
    /// Bit flips detected on this channel.
    pub flips: usize,
}

/// Results of one system simulation run.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Workload-set name.
    pub workload: String,
    /// Scheme name.
    pub scheme: String,
    /// Per-core IPC.
    pub per_core_ipc: Vec<f64>,
    /// Sum of per-core IPCs — the paper's aggregate-IPC metric.
    pub aggregate_ipc: f64,
    /// Total instructions retired across cores.
    pub total_insts: u64,
    /// Simulated wall time (max core clock).
    pub sim_time_ps: TimePs,
    /// LLC miss rate.
    pub llc_miss_rate: f64,
    /// Per-channel breakdown; system fields below are its roll-up.
    pub per_channel: Vec<ChannelMetrics>,
    /// Merged DRAM operation counters across channels.
    pub counters: EnergyCounters,
    /// Total dynamic DRAM energy in picojoules.
    pub energy_pj: f64,
    /// RFM commands issued.
    pub rfms: u64,
    /// RFMs elided via MRR (Mithril+).
    pub rfm_elisions: u64,
    /// ARR commands issued (MC-side schemes).
    pub arrs: u64,
    /// ACTs delayed by throttling.
    pub throttled_acts: u64,
    /// Average demand-read latency in nanoseconds.
    pub avg_read_latency_ns: f64,
    /// Worst victim disturbance observed by the oracle.
    pub max_disturbance: u64,
    /// Bit flips detected (must be 0 for any deterministic scheme).
    pub flips: usize,
}

impl Metrics {
    /// Builds the system-level roll-up from per-channel results plus the
    /// core/LLC-side observations that have no channel dimension.
    #[allow(clippy::too_many_arguments)]
    pub fn from_channels(
        workload: String,
        scheme: String,
        per_core_ipc: Vec<f64>,
        total_insts: u64,
        sim_time_ps: TimePs,
        llc_miss_rate: f64,
        per_channel: Vec<ChannelMetrics>,
        model: &EnergyModel,
    ) -> Self {
        let aggregate_ipc = per_core_ipc.iter().sum();
        let mut counters = EnergyCounters::default();
        let mut rfms = 0;
        let mut rfm_elisions = 0;
        let mut arrs = 0;
        let mut throttled_acts = 0;
        let mut max_disturbance = 0;
        let mut flips = 0;
        let mut lat_weighted = 0.0;
        let mut reads = 0u64;
        for ch in &per_channel {
            counters = counters.merged(&ch.counters);
            rfms += ch.rfms;
            rfm_elisions += ch.rfm_elisions;
            arrs += ch.arrs;
            throttled_acts += ch.throttled_acts;
            max_disturbance = max_disturbance.max(ch.max_disturbance);
            flips += ch.flips;
            lat_weighted += ch.avg_read_latency_ns * ch.reads_done as f64;
            reads += ch.reads_done;
        }
        Metrics {
            workload,
            scheme,
            aggregate_ipc,
            per_core_ipc,
            total_insts,
            sim_time_ps,
            llc_miss_rate,
            energy_pj: model.dynamic_energy_pj(&counters),
            counters,
            per_channel,
            rfms,
            rfm_elisions,
            arrs,
            throttled_acts,
            avg_read_latency_ns: if reads == 0 {
                0.0
            } else {
                lat_weighted / reads as f64
            },
            max_disturbance,
            flips,
        }
    }

    /// This run's aggregate IPC normalized against a baseline run
    /// (1.0 = no slowdown), the paper's headline performance metric.
    pub fn normalized_ipc(&self, baseline: &Metrics) -> f64 {
        if baseline.aggregate_ipc == 0.0 {
            return 0.0;
        }
        self.aggregate_ipc / baseline.aggregate_ipc
    }

    /// Relative dynamic energy against a baseline run (1.0 = no overhead).
    pub fn relative_energy(&self, baseline: &Metrics) -> f64 {
        if baseline.energy_pj == 0.0 {
            return 0.0;
        }
        self.energy_pj / baseline.energy_pj
    }

    /// Relative dynamic energy of one channel against the same channel of
    /// a baseline run; 0.0 when either side lacks the channel.
    pub fn relative_channel_energy(&self, channel: usize, baseline: &Metrics) -> f64 {
        match (
            self.per_channel.get(channel),
            baseline.per_channel.get(channel),
        ) {
            (Some(a), Some(b)) if b.energy_pj > 0.0 => a.energy_pj / b.energy_pj,
            _ => 0.0,
        }
    }
}

/// Geometric mean of a slice of positive values.
///
/// # Example
///
/// ```
/// use mithril_sim::Metrics;
/// let g = mithril_sim::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// # let _ = g;
/// ```
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-300).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel(ch: usize, acts: u64) -> ChannelMetrics {
        let counters = EnergyCounters {
            acts,
            pres: acts,
            ..Default::default()
        };
        ChannelMetrics {
            channel: ChannelId(ch),
            reads_done: acts * 2,
            writes_done: acts / 2,
            avg_read_latency_ns: 50.0,
            row_hit_rate: 0.5,
            counters,
            energy_pj: EnergyModel::ddr5_default().dynamic_energy_pj(&counters),
            rfms: acts / 10,
            rfm_elisions: 0,
            arrs: 1,
            throttled_acts: 0,
            max_disturbance: acts,
            flips: 0,
        }
    }

    fn metrics(ipc: f64, acts: u64) -> Metrics {
        Metrics::from_channels(
            "w".into(),
            "s".into(),
            vec![ipc],
            100,
            1000,
            0.1,
            vec![channel(0, acts), channel(1, acts / 2)],
            &EnergyModel::ddr5_default(),
        )
    }

    #[test]
    fn rollup_merges_channels() {
        let m = metrics(10.0, 100);
        assert_eq!(m.per_channel.len(), 2);
        assert_eq!(m.counters.acts, 150);
        assert_eq!(m.rfms, 10 + 5);
        assert_eq!(m.arrs, 2);
        assert_eq!(m.max_disturbance, 100);
        let sum: f64 = m.per_channel.iter().map(|c| c.energy_pj).sum();
        assert!((m.energy_pj - sum).abs() < 1e-6);
    }

    #[test]
    fn normalized_ipc_vs_baseline() {
        let base = metrics(10.0, 100);
        let run = metrics(9.5, 104);
        assert!((run.normalized_ipc(&base) - 0.95).abs() < 1e-12);
        assert!(run.relative_energy(&base) > 1.0);
    }

    #[test]
    fn per_channel_relative_energy() {
        let base = metrics(10.0, 100);
        let run = metrics(10.0, 200);
        assert!((run.relative_channel_energy(0, &base) - 2.0).abs() < 1e-9);
        assert_eq!(run.relative_channel_energy(7, &base), 0.0);
    }

    #[test]
    fn degenerate_baselines_are_zero() {
        let base = metrics(0.0, 0);
        let run = metrics(1.0, 1);
        assert_eq!(run.normalized_ipc(&base), 0.0);
        assert_eq!(run.relative_energy(&base), 0.0);
    }

    #[test]
    fn read_latency_is_read_weighted() {
        let mut a = channel(0, 100);
        a.avg_read_latency_ns = 10.0;
        let mut b = channel(1, 100);
        b.avg_read_latency_ns = 30.0;
        b.reads_done = a.reads_done * 3;
        let m = Metrics::from_channels(
            "w".into(),
            "s".into(),
            vec![1.0],
            1,
            1,
            0.0,
            vec![a, b],
            &EnergyModel::ddr5_default(),
        );
        assert!((m.avg_read_latency_ns - 25.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
