//! End-of-run metrics, aggregated hierarchically: per-channel results roll
//! up into the system totals.

use mithril_dram::{ChannelId, EnergyCounters, EnergyModel, TimePs};
use mithril_memctrl::{CoreStats, QosStats};
use mithril_obs::{LatencyHistogram, PerCore};

/// One memory channel's share of a run's results.
///
/// A [`Metrics`] carries one of these per channel; the system-level fields
/// of `Metrics` are exactly the merge of its channels, so experiments can
/// attribute overheads (RFM stalls, preventive-refresh energy, disturbance)
/// to the channel that incurred them — the cross-channel interference
/// scenarios depend on this.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelMetrics {
    /// The channel this breakdown belongs to.
    pub channel: ChannelId,
    /// Demand reads serviced by this channel.
    pub reads_done: u64,
    /// Writebacks serviced by this channel.
    pub writes_done: u64,
    /// Average demand-read latency on this channel, nanoseconds.
    pub avg_read_latency_ns: f64,
    /// Row-buffer hit rate over column commands.
    pub row_hit_rate: f64,
    /// DRAM operation counters of this channel's device.
    pub counters: EnergyCounters,
    /// Dynamic DRAM energy of this channel, picojoules.
    pub energy_pj: f64,
    /// RFM commands issued on this channel.
    pub rfms: u64,
    /// RFMs elided via MRR (Mithril+).
    pub rfm_elisions: u64,
    /// ARR commands issued (MC-side schemes).
    pub arrs: u64,
    /// ACTs delayed by throttling.
    pub throttled_acts: u64,
    /// Worst victim disturbance observed on this channel.
    pub max_disturbance: u64,
    /// Bit flips detected on this channel.
    pub flips: usize,
    /// Demand-read latency distribution (picoseconds). The histogram is
    /// the source of truth for latency reporting; `avg_read_latency_ns`
    /// is the legacy scalar projection kept for report compatibility.
    pub read_latency: LatencyHistogram,
    /// Writeback latency distribution (picoseconds).
    pub write_latency: LatencyHistogram,
    /// Per-issuing-core attribution of this channel's activity.
    pub per_core: PerCore<CoreStats>,
    /// QoS-layer outcome of this channel — `Some` exactly when the run
    /// had a [`mithril_memctrl::QosPolicy`] other than `Off`, so QoS-off
    /// reports stay byte-identical (the fault-stats pattern).
    pub qos: Option<QosStats>,
}

/// Results of one system simulation run.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Workload-set name.
    pub workload: String,
    /// Scheme name.
    pub scheme: String,
    /// Per-core IPC.
    pub per_core_ipc: Vec<f64>,
    /// Sum of per-core IPCs — the paper's aggregate-IPC metric.
    pub aggregate_ipc: f64,
    /// Total instructions retired across cores.
    pub total_insts: u64,
    /// Simulated wall time (max core clock).
    pub sim_time_ps: TimePs,
    /// LLC miss rate.
    pub llc_miss_rate: f64,
    /// Per-channel breakdown; system fields below are its roll-up.
    pub per_channel: Vec<ChannelMetrics>,
    /// Merged DRAM operation counters across channels.
    pub counters: EnergyCounters,
    /// Total dynamic DRAM energy in picojoules.
    pub energy_pj: f64,
    /// RFM commands issued.
    pub rfms: u64,
    /// RFMs elided via MRR (Mithril+).
    pub rfm_elisions: u64,
    /// ARR commands issued (MC-side schemes).
    pub arrs: u64,
    /// ACTs delayed by throttling.
    pub throttled_acts: u64,
    /// Average demand-read latency in nanoseconds.
    ///
    /// Legacy scalar: it survives for report compatibility and is derived
    /// by f64 read-weighted averaging of the per-channel averages. The
    /// [`read_latency`](Metrics::read_latency) histogram is the source of
    /// truth — it is merged bucket-wise in exact integer arithmetic, and
    /// its `mean()` equals this field up to f64 rounding (test-pinned in
    /// `legacy_average_agrees_with_histogram_mean`).
    pub avg_read_latency_ns: f64,
    /// Worst victim disturbance observed by the oracle.
    pub max_disturbance: u64,
    /// Bit flips detected (must be 0 for any deterministic scheme).
    pub flips: usize,
    /// System-wide demand-read latency distribution: the bucket-wise
    /// merge of every channel's histogram (picoseconds).
    pub read_latency: LatencyHistogram,
    /// System-wide writeback latency distribution (picoseconds).
    pub write_latency: LatencyHistogram,
    /// Per-core attribution merged index-wise across channels — acts,
    /// completed reads/writes, RFM/mitigation triggers and the per-core
    /// read-latency histogram of each issuing core.
    pub per_core: PerCore<CoreStats>,
    /// QoS-layer roll-up (suspect windows, token-bucket deferrals and
    /// final scores per thread), merged additively across channels.
    /// `None` when QoS is off, keeping those reports byte-identical.
    pub qos: Option<QosStats>,
}

impl Metrics {
    /// Builds the system-level roll-up from per-channel results plus the
    /// core/LLC-side observations that have no channel dimension.
    #[allow(clippy::too_many_arguments)]
    pub fn from_channels(
        workload: String,
        scheme: String,
        per_core_ipc: Vec<f64>,
        total_insts: u64,
        sim_time_ps: TimePs,
        llc_miss_rate: f64,
        per_channel: Vec<ChannelMetrics>,
        model: &EnergyModel,
    ) -> Self {
        let aggregate_ipc = per_core_ipc.iter().sum();
        let mut counters = EnergyCounters::default();
        let mut rfms = 0;
        let mut rfm_elisions = 0;
        let mut arrs = 0;
        let mut throttled_acts = 0;
        let mut max_disturbance = 0;
        let mut flips = 0;
        let mut lat_weighted = 0.0;
        let mut reads = 0u64;
        let mut read_latency = LatencyHistogram::new();
        let mut write_latency = LatencyHistogram::new();
        let mut per_core: PerCore<CoreStats> = PerCore::new();
        let mut qos: Option<QosStats> = None;
        for ch in &per_channel {
            counters = counters.merged(&ch.counters);
            rfms += ch.rfms;
            rfm_elisions += ch.rfm_elisions;
            arrs += ch.arrs;
            throttled_acts += ch.throttled_acts;
            max_disturbance = max_disturbance.max(ch.max_disturbance);
            flips += ch.flips;
            // Legacy f64 roll-up, kept for the `avg_read_latency_ns`
            // report field; the histogram merge below is the exact,
            // order-independent source of truth.
            lat_weighted += ch.avg_read_latency_ns * ch.reads_done as f64;
            reads += ch.reads_done;
            read_latency.merge(&ch.read_latency);
            write_latency.merge(&ch.write_latency);
            per_core.merge_by(&ch.per_core, CoreStats::merge);
            if let Some(chq) = &ch.qos {
                qos.get_or_insert_with(QosStats::default).merge(chq);
            }
        }
        Metrics {
            workload,
            scheme,
            aggregate_ipc,
            per_core_ipc,
            total_insts,
            sim_time_ps,
            llc_miss_rate,
            energy_pj: model.dynamic_energy_pj(&counters),
            counters,
            per_channel,
            rfms,
            rfm_elisions,
            arrs,
            throttled_acts,
            avg_read_latency_ns: if reads == 0 {
                0.0
            } else {
                lat_weighted / reads as f64
            },
            max_disturbance,
            flips,
            read_latency,
            write_latency,
            per_core,
            qos,
        }
    }

    /// This run's aggregate IPC normalized against a baseline run
    /// (1.0 = no slowdown), the paper's headline performance metric.
    pub fn normalized_ipc(&self, baseline: &Metrics) -> f64 {
        if baseline.aggregate_ipc == 0.0 {
            return 0.0;
        }
        self.aggregate_ipc / baseline.aggregate_ipc
    }

    /// Relative dynamic energy against a baseline run (1.0 = no overhead).
    pub fn relative_energy(&self, baseline: &Metrics) -> f64 {
        if baseline.energy_pj == 0.0 {
            return 0.0;
        }
        self.energy_pj / baseline.energy_pj
    }

    /// Relative dynamic energy of one channel against the same channel of
    /// a baseline run; 0.0 when either side lacks the channel.
    pub fn relative_channel_energy(&self, channel: usize, baseline: &Metrics) -> f64 {
        match (
            self.per_channel.get(channel),
            baseline.per_channel.get(channel),
        ) {
            (Some(a), Some(b)) if b.energy_pj > 0.0 => a.energy_pj / b.energy_pj,
            _ => 0.0,
        }
    }
}

/// Geometric mean of a slice of positive values.
///
/// # Example
///
/// ```
/// use mithril_sim::Metrics;
/// let g = mithril_sim::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// # let _ = g;
/// ```
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-300).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel(ch: usize, acts: u64) -> ChannelMetrics {
        let counters = EnergyCounters {
            acts,
            pres: acts,
            ..Default::default()
        };
        ChannelMetrics {
            channel: ChannelId(ch),
            reads_done: acts * 2,
            writes_done: acts / 2,
            avg_read_latency_ns: 50.0,
            row_hit_rate: 0.5,
            counters,
            energy_pj: EnergyModel::ddr5_default().dynamic_energy_pj(&counters),
            rfms: acts / 10,
            rfm_elisions: 0,
            arrs: 1,
            throttled_acts: 0,
            max_disturbance: acts,
            flips: 0,
            read_latency: LatencyHistogram::new(),
            write_latency: LatencyHistogram::new(),
            per_core: PerCore::new(),
            qos: None,
        }
    }

    fn metrics(ipc: f64, acts: u64) -> Metrics {
        Metrics::from_channels(
            "w".into(),
            "s".into(),
            vec![ipc],
            100,
            1000,
            0.1,
            vec![channel(0, acts), channel(1, acts / 2)],
            &EnergyModel::ddr5_default(),
        )
    }

    #[test]
    fn rollup_merges_channels() {
        let m = metrics(10.0, 100);
        assert_eq!(m.per_channel.len(), 2);
        assert_eq!(m.counters.acts, 150);
        assert_eq!(m.rfms, 10 + 5);
        assert_eq!(m.arrs, 2);
        assert_eq!(m.max_disturbance, 100);
        let sum: f64 = m.per_channel.iter().map(|c| c.energy_pj).sum();
        assert!((m.energy_pj - sum).abs() < 1e-6);
    }

    #[test]
    fn normalized_ipc_vs_baseline() {
        let base = metrics(10.0, 100);
        let run = metrics(9.5, 104);
        assert!((run.normalized_ipc(&base) - 0.95).abs() < 1e-12);
        assert!(run.relative_energy(&base) > 1.0);
    }

    #[test]
    fn per_channel_relative_energy() {
        let base = metrics(10.0, 100);
        let run = metrics(10.0, 200);
        assert!((run.relative_channel_energy(0, &base) - 2.0).abs() < 1e-9);
        assert_eq!(run.relative_channel_energy(7, &base), 0.0);
    }

    #[test]
    fn degenerate_baselines_are_zero() {
        let base = metrics(0.0, 0);
        let run = metrics(1.0, 1);
        assert_eq!(run.normalized_ipc(&base), 0.0);
        assert_eq!(run.relative_energy(&base), 0.0);
    }

    #[test]
    fn read_latency_is_read_weighted() {
        let mut a = channel(0, 100);
        a.avg_read_latency_ns = 10.0;
        let mut b = channel(1, 100);
        b.avg_read_latency_ns = 30.0;
        b.reads_done = a.reads_done * 3;
        let m = Metrics::from_channels(
            "w".into(),
            "s".into(),
            vec![1.0],
            1,
            1,
            0.0,
            vec![a, b],
            &EnergyModel::ddr5_default(),
        );
        assert!((m.avg_read_latency_ns - 25.0).abs() < 1e-9);
    }

    #[test]
    fn histograms_and_per_core_roll_up_across_channels() {
        let mut a = channel(0, 100);
        a.read_latency.record(10_000);
        a.read_latency.record(20_000);
        a.per_core.slot(0).reads_done = 2;
        a.per_core.slot(0).read_latency = a.read_latency.clone();
        let mut b = channel(1, 100);
        b.read_latency.record(40_000);
        b.write_latency.record(5_000);
        b.per_core.slot(1).reads_done = 1;
        b.per_core.slot(1).mitigation_triggers = 3;
        let m = Metrics::from_channels(
            "w".into(),
            "s".into(),
            vec![1.0],
            1,
            1,
            0.0,
            vec![a, b],
            &EnergyModel::ddr5_default(),
        );
        assert_eq!(m.read_latency.count(), 3);
        assert_eq!(m.read_latency.sum(), 70_000);
        assert_eq!(m.write_latency.count(), 1);
        assert_eq!(m.per_core.len(), 2);
        assert_eq!(m.per_core.get(0).unwrap().reads_done, 2);
        assert_eq!(m.per_core.get(1).unwrap().mitigation_triggers, 3);
        assert_eq!(m.per_core.get(0).unwrap().read_latency.count(), 2);
    }

    /// Satellite pin: `avg_read_latency_ns` stays the legacy f64 roll-up,
    /// but it must agree with the histogram mean — in the real pipeline
    /// both derive from the same exact picosecond latencies (the scalar
    /// via the controller's exact sum, the histogram via its exact `sum`
    /// side counter), so the agreement is to f64 rounding, well inside
    /// the histogram's 1/16 bucket quantization error.
    #[test]
    fn legacy_average_agrees_with_histogram_mean() {
        let mut chans = Vec::new();
        for (ch, lats) in [(0usize, vec![13_731u64, 52_001]), (1, vec![9_500; 7])] {
            let mut c = channel(ch, 10);
            for &l in &lats {
                c.read_latency.record(l);
            }
            c.reads_done = c.read_latency.count();
            c.avg_read_latency_ns = c.read_latency.mean() / 1_000.0;
            chans.push(c);
        }
        let m = Metrics::from_channels(
            "w".into(),
            "s".into(),
            vec![1.0],
            1,
            1,
            0.0,
            chans,
            &EnergyModel::ddr5_default(),
        );
        let hist_mean_ns = m.read_latency.mean() / 1_000.0;
        assert!(
            (m.avg_read_latency_ns - hist_mean_ns).abs() <= 1e-9 * hist_mean_ns.max(1.0),
            "legacy avg {} diverged from histogram mean {}",
            m.avg_read_latency_ns,
            hist_mean_ns
        );
    }

    #[test]
    fn qos_stats_roll_up_only_when_present() {
        // Both channels off → system roll-up stays None (byte-identity).
        let m = metrics(1.0, 10);
        assert!(m.qos.is_none());

        let mut a = channel(0, 10);
        a.qos = Some(QosStats {
            windows: 4,
            throttled_acts: 6,
            per_thread: vec![mithril_memctrl::QosThreadStats {
                suspect_windows: 2,
                throttled_acts: 6,
                score: 32,
                pressure: 48,
            }],
        });
        let b = channel(1, 10); // qos: None (mixed is tolerated)
        let m = Metrics::from_channels(
            "w".into(),
            "s".into(),
            vec![1.0],
            1,
            1,
            0.0,
            vec![a, b],
            &EnergyModel::ddr5_default(),
        );
        let q = m.qos.expect("one QoS channel is enough for a roll-up");
        assert_eq!(q.windows, 4);
        assert_eq!(q.throttled_acts, 6);
        assert_eq!(q.per_thread[0].suspect_windows, 2);
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
