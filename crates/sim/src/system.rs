//! Full-system composition and the simulation loop.

use mithril::fasthash::FastHashMap;
use mithril::{MithrilConfig, MithrilScheme};
use mithril_baselines::{
    parfm_analysis, BlockHammer, BlockHammerConfig, Cbt, CbtConfig, Graphene, GrapheneConfig, Para,
    ParaConfig, Parfm, TwiCe, TwiCeConfig,
};
use mithril_dram::{
    Ddr5Timing, DramDevice, DramMitigation, EnergyModel, FaultStats, Geometry, TimePs,
};
use mithril_faults::{FaultConfig, FaultPlan, FaultyEngine};
use mithril_memctrl::{
    AddressMapping, McConfig, McMitigation, MemRequest, MemoryController, NoMcMitigation,
    QosPolicy, RfmMode, SchedulerKind,
};
use mithril_obs::{
    ChannelCapture, EventSink, NullSink, ObsCapture, RingSink, SampleRow, Sampler, DEFAULT_CYCLE_PS,
};
use mithril_workloads::{ThreadSet, TraceOp};

use crate::core_model::{CoreParams, CoreState};
use crate::llc::{Llc, LlcAccess, LlcConfig};
use crate::metrics::{ChannelMetrics, Metrics};

/// Which Row Hammer protection the system deploys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// Unprotected baseline.
    None,
    /// Mithril (DRAM-side, RFM). `plus` enables the Mithril+ MRR elision.
    Mithril {
        /// RFM threshold the MC is programmed with.
        rfm_th: u64,
        /// Adaptive-refresh threshold (Section V-A), `None` disables it.
        ad_th: Option<u64>,
        /// Mithril+ (Section V-B).
        plus: bool,
    },
    /// PARFM (DRAM-side probabilistic, RFM). The RFM threshold is solved
    /// from the Appendix-C failure analysis at construction.
    Parfm,
    /// PARA (MC-side probabilistic, ARR).
    Para,
    /// Graphene (MC-side deterministic, ARR).
    Graphene,
    /// TWiCe (buffer-chip deterministic, ARR).
    TwiCe,
    /// CBT (MC-side deterministic, grouped ARR).
    Cbt,
    /// BlockHammer (MC-side deterministic, throttling). `nbl_scale`
    /// divides the blacklist threshold for short simulation slices
    /// (see [`mithril_baselines::BlockHammerConfig::with_nbl_scaled`]);
    /// use 1 for paper-scale (full-tREFW) runs.
    BlockHammer {
        /// NBL divisor for short-slice calibration (1 = paper scale).
        nbl_scale: u64,
    },
}

impl Scheme {
    /// Scheme name for reporting.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::None => "none",
            Scheme::Mithril { plus: false, .. } => "mithril",
            Scheme::Mithril { plus: true, .. } => "mithril+",
            Scheme::Parfm => "parfm",
            Scheme::Para => "para",
            Scheme::Graphene => "graphene",
            Scheme::TwiCe => "twice",
            Scheme::Cbt => "cbt",
            Scheme::BlockHammer { .. } => "blockhammer",
        }
    }
}

/// Whole-system configuration (defaults follow paper Table III).
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Number of cores / hardware threads.
    pub cores: usize,
    /// The memory hierarchy: channels × ranks × banks. Each channel gets
    /// its own controller and DRAM device.
    pub geometry: Geometry,
    /// DDR timing parameters.
    pub timing: Ddr5Timing,
    /// Core model parameters.
    pub core: CoreParams,
    /// LLC parameters.
    pub llc: LlcConfig,
    /// Row Hammer threshold the oracle checks and schemes protect.
    pub flip_th: u64,
    /// Blast radius for disturbance accounting.
    pub blast_radius: u64,
    /// The protection scheme.
    pub scheme: Scheme,
    /// Controller scheduler core. The default event-driven core and the
    /// naive rescan are decision-identical (differentially tested); the
    /// naive core exists for reference measurements and cross-checks.
    pub scheduler: SchedulerKind,
    /// RNG seed for probabilistic schemes.
    pub seed: u64,
    /// Simulation epoch length (core/MC synchronization quantum).
    pub epoch_ps: TimePs,
    /// Attackable banks assumed by probabilistic analyses (Appendix C).
    pub attackable_banks: u64,
    /// Soft-error injection into tracker state (`None` = fault-free; the
    /// fault-free path constructs no injection wrapper at all, so it
    /// stays zero-cost and byte-identical to pre-fault builds).
    pub faults: Option<FaultConfig>,
    /// Multi-tenant QoS throttling on every channel's controller
    /// (BreakHammer-style suspect scoring, see `mithril_memctrl::qos`).
    /// `Off` leaves the controllers entry-by-entry identical to pre-QoS
    /// builds, so QoS-off reports stay byte-identical.
    pub qos: QosPolicy,
}

impl SystemConfig {
    /// The paper's Table III system: 16 cores at 3.6 GHz, 16 MB LLC,
    /// 2 channels × 1 rank × 32 banks of DDR5-4800.
    pub fn table_iii() -> Self {
        Self {
            cores: 16,
            geometry: Geometry::table_iii_system(),
            timing: Ddr5Timing::ddr5_4800(),
            core: CoreParams::default(),
            llc: LlcConfig::default(),
            flip_th: 6_250,
            blast_radius: 1,
            scheme: Scheme::None,
            scheduler: SchedulerKind::EventQueue,
            seed: 1,
            epoch_ps: 500_000,
            attackable_banks: 22,
            faults: None,
            qos: QosPolicy::Off,
        }
    }

    /// The system-wide channel-interleaved address mapping used by this
    /// configuration.
    pub fn mapping(&self) -> AddressMapping {
        AddressMapping::new(self.geometry)
    }

    /// Number of memory channels (shorthand for `geometry.channels`).
    pub fn channels(&self) -> usize {
        self.geometry.channels
    }
}

/// Decorrelates per-bank fault-plan seeds from every other use of the
/// scenario seed (scheme RNGs, workload generators).
const FAULT_SEED_SALT: u64 = 0xFA_171A_7ED0_5EED;

/// Observability capture parameters for [`System::with_obs`].
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Events retained per channel ring (exact per-kind counts are kept
    /// regardless; the ring only bounds the JSONL tail).
    pub ring_capacity: usize,
    /// Time-series grid spacing, in memory cycles.
    pub interval_cycles: u64,
    /// Memory-cycle period in picoseconds (the cycle domain of the grid).
    pub cycle_ps: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            ring_capacity: 65_536,
            interval_cycles: 100_000,
            cycle_ps: DEFAULT_CYCLE_PS,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum ReqKind {
    /// Demand fill of a cacheable line; wakes merged waiters and fills LLC.
    Fill { line_addr: u64 },
    /// Uncacheable read from a thread.
    Uncacheable { thread: usize },
    /// LLC writeback; nothing waits on it.
    Writeback,
}

/// The assembled system.
///
/// Generic over an observability sink `S` (default: the disabled
/// [`NullSink`], under which the obs plumbing compiles away). Build an
/// observed system with [`System::with_obs`].
pub struct System<S: EventSink = NullSink> {
    config: SystemConfig,
    cores: Vec<CoreState>,
    threads: ThreadSet,
    llc: Llc,
    mcs: Vec<MemoryController<S>>,
    /// Per-channel cycle-grid samplers; empty when obs is disabled.
    samplers: Vec<Sampler>,
    mapping: AddressMapping,
    /// In-flight request slab: the request id *is* the slot index, slots
    /// recycle through `free_req_ids`. Scheduling decisions never depend
    /// on id values (FR-FCFS keys on arrival/queue position), so reuse is
    /// invisible to the command stream.
    requests: Vec<Option<ReqKind>>,
    free_req_ids: Vec<u64>,
    /// line address → threads waiting for the fill.
    waiters: FastHashMap<u64, Vec<usize>>,
    /// Reusable completion buffer for [`MemoryController::advance_until_into`].
    completions_scratch: Vec<mithril_memctrl::Completion>,
}

impl System {
    /// Builds a system running `threads` under `config.scheme`.
    ///
    /// # Errors
    ///
    /// Returns an error string when the scheme cannot be configured for
    /// `config.flip_th` (e.g. an infeasible Mithril `(FlipTH, RFMTH)` pair).
    pub fn new(config: SystemConfig, threads: ThreadSet) -> Result<Self, String> {
        Self::assemble(config, threads, |_| NullSink, None)
    }
}

impl System<RingSink> {
    /// Builds a system with structured event tracing and cycle-grid
    /// sampling enabled on every channel. Drain the capture with
    /// [`take_obs`](System::take_obs) after the run.
    pub fn with_obs(
        config: SystemConfig,
        threads: ThreadSet,
        obs: ObsConfig,
    ) -> Result<Self, String> {
        Self::assemble(
            config,
            threads,
            |_| RingSink::new(obs.ring_capacity),
            Some(obs),
        )
    }

    /// Drains everything observed so far — per-channel events, exact
    /// per-kind counts and time-series rows — leaving the sinks empty
    /// but still recording.
    pub fn take_obs(&mut self) -> ObsCapture {
        let cycle_ps = self
            .samplers
            .first()
            .map(Sampler::cycle_ps)
            .unwrap_or(DEFAULT_CYCLE_PS);
        let interval_cycles = self
            .samplers
            .first()
            .map(Sampler::interval_cycles)
            .unwrap_or(1);
        let channels = self
            .mcs
            .iter_mut()
            .zip(self.samplers.iter_mut())
            .enumerate()
            .map(|(ch, (mc, sampler))| {
                let sink = mc.obs_mut();
                let counts = *sink.counts();
                let dropped = sink.dropped();
                ChannelCapture {
                    channel: ch as u32,
                    events: sink.take_events(),
                    counts,
                    dropped,
                    rows: sampler.take_rows(),
                }
            })
            .collect();
        ObsCapture {
            cycle_ps,
            interval_cycles,
            channels,
        }
    }
}

impl<S: EventSink> System<S> {
    /// Shared construction path: builds every channel with a sink from
    /// `mk_sink` and (when `obs` is set) a cycle-grid sampler per channel.
    fn assemble(
        config: SystemConfig,
        threads: ThreadSet,
        mk_sink: impl Fn(usize) -> S,
        obs: Option<ObsConfig>,
    ) -> Result<Self, String> {
        assert_eq!(
            config.cores,
            threads.threads.len(),
            "thread count must match core count"
        );
        let mut mcs = Vec::with_capacity(config.geometry.channels);
        for ch in config.geometry.channel_ids() {
            mcs.push(Self::build_channel(&config, ch.0, mk_sink(ch.0))?);
        }
        let samplers = match obs {
            Some(o) => (0..config.geometry.channels)
                .map(|_| Sampler::new(o.interval_cycles, o.cycle_ps))
                .collect(),
            None => Vec::new(),
        };
        Ok(Self {
            cores: (0..config.cores)
                .map(|_| CoreState::new(config.core, u64::MAX))
                .collect(),
            threads,
            llc: Llc::new(config.llc),
            mcs,
            samplers,
            mapping: config.mapping(),
            requests: Vec::new(),
            free_req_ids: Vec::new(),
            waiters: FastHashMap::default(),
            completions_scratch: Vec::new(),
            config,
        })
    }

    fn build_channel(
        config: &SystemConfig,
        channel: usize,
        obs: S,
    ) -> Result<MemoryController<S>, String> {
        let timing = config.timing;
        // Each controller owns one channel's worth of the hierarchy.
        let geometry = config.geometry.channel_view();
        let banks = geometry.banks_total();
        let seed = config.seed.wrapping_add(channel as u64 * 7919);
        let flip = config.flip_th;

        let mut mc_cfg = McConfig {
            rfm_mode: RfmMode::Disabled,
            ..Default::default()
        };
        let mut mitigation: Box<dyn McMitigation> = Box::new(NoMcMitigation);
        let engine_for: Box<dyn Fn(usize) -> Box<dyn DramMitigation>> = match config.scheme {
            Scheme::None => Box::new(|_| Box::new(mithril_dram::NoMitigation)),
            Scheme::Mithril {
                rfm_th,
                ad_th,
                plus,
            } => {
                let mithril_cfg =
                    MithrilConfig::solve(flip, rfm_th, config.blast_radius, ad_th, &timing)
                        .map_err(|e| e.to_string())?
                        .with_rows_per_bank(geometry.rows_per_bank);
                mc_cfg.rfm_mode = if plus {
                    RfmMode::MrrElision
                } else {
                    RfmMode::Standard
                };
                mc_cfg.rfm_th = rfm_th;
                Box::new(move |_| Box::new(MithrilScheme::new(mithril_cfg)))
            }
            Scheme::Parfm => {
                let rfm_th =
                    parfm_analysis::max_rfm_th(flip, 1e-15, config.attackable_banks, &timing)
                        .ok_or_else(|| format!("PARFM cannot protect FlipTH {flip}"))?;
                mc_cfg.rfm_mode = RfmMode::Standard;
                mc_cfg.rfm_th = rfm_th;
                let rows = geometry.rows_per_bank;
                Box::new(move |bank| {
                    Box::new(Parfm::new(rfm_th, rows, seed.wrapping_add(bank as u64)))
                })
            }
            Scheme::Para => {
                let budget = timing.act_budget_per_trefw();
                let mut para_cfg =
                    ParaConfig::for_failure_target(flip, 1e-15, budget, config.attackable_banks);
                para_cfg.rows_per_bank = geometry.rows_per_bank;
                mitigation = Box::new(Para::new(para_cfg, seed));
                Box::new(|_| Box::new(mithril_dram::NoMitigation))
            }
            Scheme::Graphene => {
                let mut g = GrapheneConfig::for_flip_threshold(flip, &timing);
                g.rows_per_bank = geometry.rows_per_bank;
                mitigation = Box::new(Graphene::new(g, banks));
                Box::new(|_| Box::new(mithril_dram::NoMitigation))
            }
            Scheme::TwiCe => {
                let mut t = TwiCeConfig::for_flip_threshold(flip, &timing);
                t.rows_per_bank = geometry.rows_per_bank;
                mitigation = Box::new(TwiCe::new(t, banks));
                Box::new(|_| Box::new(mithril_dram::NoMitigation))
            }
            Scheme::Cbt => {
                let mut c = CbtConfig::for_flip_threshold(flip, &timing);
                c.rows_per_bank = geometry.rows_per_bank;
                mitigation = Box::new(Cbt::new(c, banks));
                Box::new(|_| Box::new(mithril_dram::NoMitigation))
            }
            Scheme::BlockHammer { nbl_scale } => {
                let b =
                    BlockHammerConfig::for_flip_threshold(flip, &timing).with_nbl_scaled(nbl_scale);
                mitigation = Box::new(BlockHammer::new(b, banks));
                Box::new(|_| Box::new(mithril_dram::NoMitigation))
            }
        };

        let device = match config.faults {
            None => DramDevice::new(geometry, timing, flip, config.blast_radius, |bank| {
                engine_for(bank)
            }),
            Some(fault_cfg) => {
                // Each bank's fault stream is a pure function of
                // (scenario seed, channel, bank) through the workspace
                // seed contract, so campaigns are thread-count invariant.
                // The base is salted so fault draws never correlate with
                // the schemes' own RNG streams.
                let fault_base = config.seed ^ FAULT_SEED_SALT;
                DramDevice::new(geometry, timing, flip, config.blast_radius, |bank| {
                    Box::new(FaultyEngine::new(
                        engine_for(bank),
                        fault_cfg,
                        FaultPlan::at_position(fault_base, channel as u64, bank as u64),
                    ))
                })
            }
        };
        let mut mc = MemoryController::with_obs(device, mc_cfg, mitigation, config.scheduler, obs);
        mc.set_qos(config.qos);
        Ok(mc)
    }

    /// Runs until every core retires `insts_per_core` instructions or the
    /// simulated time reaches `max_time`, then reports metrics.
    pub fn run(&mut self, insts_per_core: u64, max_time: TimePs) -> Metrics {
        for c in &mut self.cores {
            c.budget = insts_per_core;
        }
        let epoch = self.config.epoch_ps;
        let mut epoch_end = epoch;
        loop {
            // Interleave cores and memory inside the epoch until no more
            // progress is possible, then move the fence.
            loop {
                let issued = self.run_cores_until(epoch_end);
                let delivered = self.drain_memory(epoch_end);
                if !issued && !delivered {
                    break;
                }
            }
            self.poll_samplers(epoch_end);
            let all_done = self.cores.iter().all(|c| c.done());
            if all_done || epoch_end >= max_time {
                break;
            }
            epoch_end += epoch;
        }
        self.collect_metrics()
    }

    /// Steps every unblocked, unfinished core up to `fence`. Returns true
    /// if any instruction retired or request issued.
    fn run_cores_until(&mut self, fence: TimePs) -> bool {
        let mut progressed = false;
        for t in 0..self.cores.len() {
            while !self.cores[t].blocked && !self.cores[t].done() && self.cores[t].clock < fence {
                let op = self.threads.threads[t].next_op();
                self.step_op(t, op);
                progressed = true;
            }
        }
        progressed
    }

    fn step_op(&mut self, t: usize, op: TraceOp) {
        self.cores[t].retire_batch(op.non_mem_insts);
        let now = self.cores[t].clock;
        if op.uncacheable {
            let id = self.alloc_request(ReqKind::Uncacheable { thread: t });
            let addr = self.mapping.map_line(op.line_addr);
            self.mcs[addr.channel.0].enqueue(MemRequest::read(id, addr, t, now));
            self.cores[t].register_miss();
            return;
        }
        match self.llc.access(op.line_addr, op.is_write) {
            LlcAccess::Hit => self.cores[t].account_hit(),
            LlcAccess::MergedMiss => {
                self.waiters.entry(op.line_addr).or_default().push(t);
                self.cores[t].register_miss();
            }
            LlcAccess::Miss => {
                let id = self.alloc_request(ReqKind::Fill {
                    line_addr: op.line_addr,
                });
                let addr = self.mapping.map_line(op.line_addr);
                self.mcs[addr.channel.0].enqueue(MemRequest::read(id, addr, t, now));
                self.waiters.entry(op.line_addr).or_default().push(t);
                self.cores[t].register_miss();
            }
        }
    }

    /// Advances all controllers to `fence` and delivers completions.
    /// Returns true if anything completed.
    fn drain_memory(&mut self, fence: TimePs) -> bool {
        let mut any = false;
        for ch in 0..self.mcs.len() {
            let mut completions = std::mem::take(&mut self.completions_scratch);
            completions.clear();
            self.mcs[ch].advance_until_into(fence, &mut completions);
            for &c in &completions {
                any = true;
                let kind = self
                    .requests
                    .get_mut(c.request_id as usize)
                    .and_then(Option::take);
                if kind.is_some() {
                    self.free_req_ids.push(c.request_id);
                }
                match kind {
                    Some(ReqKind::Fill { line_addr }) => {
                        if let Some(wb_line) = self.llc.fill(line_addr) {
                            let id = self.alloc_request(ReqKind::Writeback);
                            let addr = self.mapping.map_line(wb_line);
                            self.mcs[addr.channel.0]
                                .enqueue(MemRequest::write(id, addr, c.thread, c.at));
                        }
                        if let Some(ts) = self.waiters.remove(&line_addr) {
                            for t in ts {
                                self.cores[t].deliver(c.at);
                            }
                        }
                    }
                    Some(ReqKind::Uncacheable { thread }) => {
                        self.cores[thread].deliver(c.at);
                    }
                    Some(ReqKind::Writeback) | None => {}
                }
            }
            self.completions_scratch = completions;
        }
        any
    }

    /// Emits one time-series row per channel for every grid deadline the
    /// epoch fence passed. Rows are stamped with the *scheduled* grid
    /// cycle, so the series depends only on simulated time, never on how
    /// unevenly the event loops advanced. No-op when obs is disabled.
    fn poll_samplers(&mut self, now: TimePs) {
        if self.samplers.is_empty() {
            return;
        }
        let (llc_hits, llc_misses) = self.llc.counters();
        let mut samplers = std::mem::take(&mut self.samplers);
        for (ch, sampler) in samplers.iter_mut().enumerate() {
            let mc = &self.mcs[ch];
            let s = mc.stats();
            let (cand_hits, cand_invalidations) = mc.obs_cand_counters();
            sampler.poll(now, &mut |cycle| SampleRow {
                cycle,
                channel: ch as u32,
                acts: s.acts,
                refs: s.refs,
                rfms: s.rfms,
                rfm_elisions: s.rfm_elisions,
                arrs: s.arrs,
                queue_depth: mc.queue_depth(),
                tracker: mc.observe_trackers(),
                cand_hits,
                cand_invalidations,
                llc_hits,
                llc_misses,
                bank_acts: mc.obs_bank_acts().to_vec(),
            });
        }
        self.samplers = samplers;
    }

    fn alloc_request(&mut self, kind: ReqKind) -> u64 {
        match self.free_req_ids.pop() {
            Some(id) => {
                self.requests[id as usize] = Some(kind);
                id
            }
            None => {
                let id = self.requests.len() as u64;
                self.requests.push(Some(kind));
                id
            }
        }
    }

    fn collect_metrics(&self) -> Metrics {
        let model = EnergyModel::ddr5_default();
        let per_channel: Vec<ChannelMetrics> = self
            .mcs
            .iter()
            .enumerate()
            .map(|(ch, mc)| {
                let s = mc.stats();
                let counters = *mc.device().counters();
                ChannelMetrics {
                    channel: mithril_dram::ChannelId(ch),
                    reads_done: s.reads_done,
                    writes_done: s.writes_done,
                    avg_read_latency_ns: s.avg_read_latency() / 1000.0,
                    row_hit_rate: s.row_hit_rate(),
                    energy_pj: model.dynamic_energy_pj(&counters),
                    counters,
                    rfms: s.rfms,
                    rfm_elisions: s.rfm_elisions,
                    arrs: s.arrs,
                    throttled_acts: s.throttled_acts,
                    max_disturbance: mc.device().max_disturbance(),
                    flips: mc.device().total_flips(),
                    read_latency: s.read_latency.clone(),
                    write_latency: s.write_latency.clone(),
                    per_core: s.per_core.clone(),
                    qos: mc.qos_stats(),
                }
            })
            .collect();
        Metrics::from_channels(
            self.threads.name.clone(),
            self.config.scheme.name().to_string(),
            self.cores.iter().map(|c| c.ipc()).collect(),
            self.cores.iter().map(|c| c.insts).sum(),
            self.cores.iter().map(|c| c.clock).max().unwrap_or(0),
            self.llc.miss_rate(),
            per_channel,
            &model,
        )
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// System-wide fault-injection counters, summed over every bank
    /// engine: `Some` exactly when the system was built with
    /// `config.faults` set. Kept out of [`Metrics`] so fault-free
    /// reports stay byte-identical to pre-fault builds.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.config.faults?;
        let mut total = FaultStats::default();
        for mc in &self.mcs {
            let device = mc.device();
            for bank in 0..device.geometry().banks_total() {
                if let Some(s) = device.engine(bank).fault_stats() {
                    total.add(&s);
                }
            }
        }
        Some(total)
    }
}

impl<S: EventSink> std::fmt::Debug for System<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("scheme", &self.config.scheme.name())
            .field("cores", &self.cores.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithril_workloads::{attack_mix, mix_high};

    fn quick_config(scheme: Scheme) -> SystemConfig {
        let mut cfg = SystemConfig::table_iii();
        cfg.cores = 4;
        cfg.scheme = scheme;
        cfg
    }

    fn run(scheme: Scheme, insts: u64) -> Metrics {
        let cfg = quick_config(scheme);
        let mut sys = System::new(cfg, mix_high(4, 11)).unwrap();
        sys.run(insts, u64::MAX)
    }

    #[test]
    fn baseline_makes_progress() {
        let m = run(Scheme::None, 20_000);
        assert!(m.total_insts >= 4 * 20_000);
        assert!(m.aggregate_ipc > 0.1, "aggregate IPC {}", m.aggregate_ipc);
        assert!(m.llc_miss_rate > 0.0);
        assert_eq!(m.rfms, 0);
    }

    #[test]
    fn mithril_run_issues_rfms_and_stays_safe() {
        let m = run(
            Scheme::Mithril {
                rfm_th: 64,
                ad_th: None,
                plus: false,
            },
            20_000,
        );
        assert!(m.rfms > 0, "no RFMs issued");
        assert_eq!(m.flips, 0);
        assert!(m.counters.preventive_rows > 0);
    }

    #[test]
    fn mithril_plus_elides_rfms_on_benign_workloads() {
        let m = run(
            Scheme::Mithril {
                rfm_th: 64,
                ad_th: Some(200),
                plus: true,
            },
            20_000,
        );
        assert!(m.rfm_elisions > 0, "MRR elision never triggered");
        assert_eq!(m.flips, 0);
    }

    #[test]
    fn mithril_overhead_is_small_but_nonzero() {
        let base = run(Scheme::None, 30_000);
        let mith = run(
            Scheme::Mithril {
                rfm_th: 64,
                ad_th: None,
                plus: false,
            },
            30_000,
        );
        let norm = mith.normalized_ipc(&base);
        assert!(norm > 0.85 && norm <= 1.02, "normalized IPC = {norm}");
    }

    #[test]
    fn graphene_run_issues_arrs_under_attack() {
        let mut cfg = quick_config(Scheme::Graphene);
        cfg.flip_th = 1_500;
        let threads = attack_mix("double", 4, cfg.mapping(), 3);
        let mut sys = System::new(cfg, threads).unwrap();
        let m = sys.run(40_000, u64::MAX);
        assert!(m.arrs > 0, "attack must trigger Graphene ARRs");
        assert_eq!(m.flips, 0);
    }

    #[test]
    fn unprotected_attack_reaches_high_disturbance() {
        let mut cfg = quick_config(Scheme::None);
        cfg.flip_th = 1_500;
        let threads = attack_mix("double", 4, cfg.mapping(), 3);
        let mut sys = System::new(cfg, threads).unwrap();
        let m = sys.run(60_000, u64::MAX);
        assert!(
            m.max_disturbance > 500,
            "attack too weak: max disturbance {}",
            m.max_disturbance
        );
    }

    #[test]
    fn blockhammer_throttles_attack() {
        let mut cfg = quick_config(Scheme::BlockHammer { nbl_scale: 6 });
        cfg.flip_th = 1_500;
        let threads = attack_mix("double", 4, cfg.mapping(), 3);
        let mut sys = System::new(cfg, threads).unwrap();
        // The paper-scale throttle delay is ~123 µs at FlipTH 1.5K; run
        // long enough (but time-capped) for delayed activations to issue.
        let m = sys.run(200_000, 300 * 1_000_000);
        assert!(m.throttled_acts > 0, "attack rows must get throttled");
        assert_eq!(m.flips, 0);
    }

    #[test]
    fn infeasible_mithril_config_is_an_error() {
        let cfg = {
            let mut c = quick_config(Scheme::Mithril {
                rfm_th: 1024,
                ad_th: None,
                plus: false,
            });
            c.flip_th = 1_500;
            c
        };
        assert!(System::new(cfg, mix_high(4, 1)).is_err());
    }

    #[test]
    fn fault_free_systems_report_no_fault_stats() {
        let cfg = quick_config(Scheme::Mithril {
            rfm_th: 64,
            ad_th: None,
            plus: false,
        });
        let mut sys = System::new(cfg, mix_high(4, 11)).unwrap();
        sys.run(5_000, u64::MAX);
        assert_eq!(sys.fault_stats(), None);
    }

    #[test]
    fn faulty_runs_are_deterministic_and_counted() {
        let run = || {
            let mut cfg = quick_config(Scheme::Mithril {
                rfm_th: 64,
                ad_th: None,
                plus: false,
            });
            cfg.faults = Some(mithril_faults::FaultConfig::mixed(50_000));
            let mut sys = System::new(cfg, mix_high(4, 11)).unwrap();
            let m = sys.run(20_000, u64::MAX);
            (m, sys.fault_stats().unwrap())
        };
        let (ma, sa) = run();
        let (mb, sb) = run();
        assert_eq!(sa, sb);
        assert!(sa.injected() > 0, "5% fault rate must land: {sa:?}");
        assert!(sa.scrubs > 0);
        assert_eq!(ma.counters.acts, mb.counters.acts);
        assert_eq!(ma.sim_time_ps, mb.sim_time_ps);
        assert_eq!(ma.max_disturbance, mb.max_disturbance);
    }

    /// End-to-end decision identity: a full System run must produce
    /// identical metrics under either scheduler core, on 1- and 2-channel
    /// geometries and across scheme styles (none, RFM, ARR, throttling).
    #[test]
    fn scheduler_cores_agree_end_to_end() {
        let schemes = [
            Scheme::None,
            Scheme::Mithril {
                rfm_th: 64,
                ad_th: None,
                plus: false,
            },
            Scheme::Para,
            Scheme::BlockHammer { nbl_scale: 6 },
        ];
        for channels in [1usize, 2] {
            for scheme in schemes {
                let run = |scheduler: SchedulerKind| {
                    let mut cfg = quick_config(scheme);
                    cfg.geometry.channels = channels;
                    cfg.scheduler = scheduler;
                    let mut sys = System::new(cfg, mix_high(4, 11)).unwrap();
                    sys.run(8_000, u64::MAX)
                };
                let ev = run(SchedulerKind::EventQueue);
                let na = run(SchedulerKind::NaiveRescan);
                let tag = format!("{}ch/{}", channels, scheme.name());
                assert_eq!(ev.total_insts, na.total_insts, "insts diverge ({tag})");
                assert_eq!(ev.sim_time_ps, na.sim_time_ps, "time diverges ({tag})");
                assert_eq!(ev.counters, na.counters, "counters diverge ({tag})");
                assert_eq!(ev.rfms, na.rfms, "rfms diverge ({tag})");
                assert_eq!(ev.arrs, na.arrs, "arrs diverge ({tag})");
                assert_eq!(
                    ev.throttled_acts, na.throttled_acts,
                    "throttles diverge ({tag})"
                );
                assert_eq!(
                    ev.max_disturbance, na.max_disturbance,
                    "disturbance diverges ({tag})"
                );
                assert_eq!(ev.aggregate_ipc, na.aggregate_ipc, "IPC diverges ({tag})");
            }
        }
    }

    /// Decision identity must also hold with the QoS layer live: both
    /// cores see the same suspect elections and token-bucket deferrals
    /// (the conservative mark-all-dirty fallback applies to QoS exactly
    /// as to throttling mitigations).
    #[test]
    fn scheduler_cores_agree_with_qos_throttling() {
        use mithril_memctrl::QosConfig;
        let run = |scheduler: SchedulerKind| {
            let mut cfg = quick_config(Scheme::Mithril {
                rfm_th: 32,
                ad_th: None,
                plus: false,
            });
            cfg.flip_th = 1_500;
            cfg.scheduler = scheduler;
            cfg.qos = QosPolicy::Throttle(QosConfig::default());
            let threads = attack_mix("multi", 4, cfg.mapping(), 3);
            let mut sys = System::new(cfg, threads).unwrap();
            sys.run(20_000, u64::MAX)
        };
        let ev = run(SchedulerKind::EventQueue);
        let na = run(SchedulerKind::NaiveRescan);
        assert_eq!(ev.total_insts, na.total_insts);
        assert_eq!(ev.sim_time_ps, na.sim_time_ps);
        assert_eq!(ev.counters, na.counters);
        assert_eq!(ev.throttled_acts, na.throttled_acts);
        assert_eq!(ev.max_disturbance, na.max_disturbance);
        let (eq, nq) = (ev.qos.unwrap(), na.qos.unwrap());
        assert_eq!(eq, nq, "QoS bookkeeping diverges between cores");
        assert!(eq.windows > 0);
    }

    #[test]
    fn qos_off_reports_no_qos_section() {
        let m = run(Scheme::None, 5_000);
        assert!(m.qos.is_none());
        assert!(m.per_channel.iter().all(|c| c.qos.is_none()));
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let a = run(
            Scheme::Mithril {
                rfm_th: 64,
                ad_th: None,
                plus: false,
            },
            10_000,
        );
        let b = run(
            Scheme::Mithril {
                rfm_th: 64,
                ad_th: None,
                plus: false,
            },
            10_000,
        );
        assert_eq!(a.total_insts, b.total_insts);
        assert_eq!(a.sim_time_ps, b.sim_time_ps);
        assert_eq!(a.counters.acts, b.counters.acts);
    }
}
