//! Trace-driven manycore system simulator.
//!
//! This crate substitutes the paper's McSimA+ setup (Table III): 16
//! out-of-order cores at 3.6 GHz are modelled as trace-driven front-ends
//! with bounded memory-level parallelism, sharing a 16 MB LLC over two
//! DDR5-4800 channels, each with a detailed memory controller
//! (`mithril-memctrl`) and DRAM device (`mithril-dram`).
//!
//! What the model keeps from the real machine is exactly what the paper's
//! evaluation measures: how much *extra stall time* a Row Hammer mitigation
//! injects (RFM/ARR head-of-line blocking, BlockHammer throttling) and how
//! many extra DRAM operations it performs (energy). Reported numbers are
//! normalized against the unprotected baseline, as in the paper.
//!
//! # Example
//!
//! ```
//! use mithril_sim::{Scheme, System, SystemConfig};
//! use mithril_workloads::mix_high;
//!
//! let mut cfg = SystemConfig::table_iii();
//! cfg.cores = 2; // keep the doc test quick
//! cfg.scheme = Scheme::Mithril { rfm_th: 128, ad_th: Some(200), plus: false };
//! cfg.flip_th = 6_250;
//! let mut system = System::new(cfg, mix_high(2, 42)).expect("valid config");
//! let metrics = system.run(50_000, u64::MAX);
//! assert!(metrics.aggregate_ipc > 0.0);
//! assert_eq!(metrics.flips, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core_model;
mod llc;
mod metrics;
mod system;

pub use core_model::CoreParams;
pub use llc::{Llc, LlcAccess, LlcConfig};
pub use metrics::{geomean, ChannelMetrics, Metrics};
pub use system::{ObsConfig, Scheme, System, SystemConfig};

// Re-exported so benches and the runner can select the controller's
// scheduler core and configure the QoS throttling layer without a
// direct memctrl dependency.
pub use mithril_memctrl::{
    CoreStats, QosConfig, QosPolicy, QosStats, QosThreadStats, SchedulerKind, ThrottleKind,
};

/// Re-exported so report writers and analysis tools can name the latency
/// histogram / per-core attribution types without a direct obs dependency.
pub use mithril_obs::{LatencyHistogram, PerCore};

// Re-exported so scenario plumbing (the runner) can configure fault
// campaigns and read their counters without a direct dependency.
pub use mithril_dram::FaultStats;
pub use mithril_faults::{FaultConfig, FaultKind, FaultPlan, FaultyEngine};
