//! Property tests on the command-level harness and oracle invariants.

use mithril_dram::{AttackHarness, Ddr5Timing, NoMitigation, RowHammerOracle};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Oracle accounting identity: every ACT adds exactly one disturbance
    /// to each in-range neighbour; refreshes only ever remove counts.
    #[test]
    fn oracle_disturbance_identity(
        acts in prop::collection::vec(1u64..999, 1..500),
        refresh_every in 5usize..50,
    ) {
        let mut o = RowHammerOracle::new(u64::MAX, 1, 1_000);
        let mut expected: std::collections::HashMap<u64, u64> = Default::default();
        for (i, &r) in acts.iter().enumerate() {
            o.on_activate(r);
            *expected.entry(r - 1).or_default() += 1;
            *expected.entry(r + 1).or_default() += 1;
            if i % refresh_every == 0 {
                o.on_row_refreshed(r + 1);
                expected.remove(&(r + 1));
            }
            for (&row, &count) in &expected {
                prop_assert_eq!(o.disturbance(row), count, "row {}", row);
            }
        }
    }

    /// Harness time accounting: the ACT slots consumed per window never
    /// exceed the analytical budget, for any RFMTH.
    #[test]
    fn harness_never_exceeds_act_budget(rfm_th in 1u64..512, row in 1u64..60_000) {
        let t = Ddr5Timing::ddr5_4800();
        let mut h = AttackHarness::new(t, Box::new(NoMitigation), rfm_th, u64::MAX);
        let mut acts = 0u64;
        while h.try_activate(row) {
            acts += 1;
        }
        prop_assert!(acts <= t.act_budget_per_trefw(), "acts = {}", acts);
        // And RFM commands happened exactly every rfm_th ACTs.
        prop_assert_eq!(h.counters().rfm_commands, acts / rfm_th);
    }

    /// Auto-refresh clears a hammered neighbour at least once per window:
    /// the disturbance of a fixed victim can never exceed the window
    /// budget even across multiple windows.
    #[test]
    fn auto_refresh_bounds_cross_window_accumulation(row in 1u64..60_000) {
        let t = Ddr5Timing::ddr5_4800();
        let mut h = AttackHarness::new(t, Box::new(NoMitigation), 1_000_000, u64::MAX);
        for _ in 0..2 {
            while h.try_activate(row) {}
            h.advance_window();
        }
        // Two windows of hammering, but auto-refresh visits every row once
        // per window: accumulated disturbance < 2x one-window budget.
        prop_assert!(h.oracle().max_disturbance() < 2 * t.act_budget_per_trefw());
        // And the oracle did see refreshes (full coverage of the bank).
        prop_assert!(h.counters().auto_refresh_rows >= AttackHarness::<mithril_obs::NullSink>::DEFAULT_ROWS);
    }
}
