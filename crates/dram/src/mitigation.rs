//! The interface between a DRAM bank and its in-DRAM mitigation engine.
//!
//! DRAM-side schemes (Mithril, PARFM, the RFM-Graphene strawman) live
//! *inside* the device: they observe every ACT to their bank and are handed
//! the tRFM time margin whenever the memory controller issues an RFM
//! command (paper Fig. 4, command flows ①–③). The trait below is that
//! observation surface.

use crate::types::RowId;

/// The result of handing one RFM time window to a mitigation engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RfmOutcome {
    /// Victim rows that received a preventive refresh during the window.
    /// Empty when the engine skipped the refresh (adaptive refresh).
    pub refreshed_victims: Vec<RowId>,
    /// The aggressor row the engine selected, if any (for reporting).
    pub selected_aggressor: Option<RowId>,
    /// True if the engine deliberately skipped this RFM (paper Section V-A).
    pub skipped: bool,
}

impl RfmOutcome {
    /// An outcome representing a deliberately skipped RFM window.
    pub fn skipped() -> Self {
        Self {
            refreshed_victims: Vec::new(),
            selected_aggressor: None,
            skipped: true,
        }
    }

    /// An outcome refreshing the victims of `aggressor`.
    pub fn refresh(aggressor: RowId, victims: Vec<RowId>) -> Self {
        Self {
            refreshed_victims: victims,
            selected_aggressor: Some(aggressor),
            skipped: false,
        }
    }

    /// Resets this outcome to "skipped" **without freeing** the victim
    /// buffer, so engines filling it via [`DramMitigation::on_rfm_into`]
    /// reuse the allocation across RFM windows.
    pub fn reset_to_skipped(&mut self) {
        self.refreshed_victims.clear();
        self.selected_aggressor = None;
        self.skipped = true;
    }

    /// Marks this outcome as a refresh of `aggressor`'s victims and
    /// returns the (cleared) victim buffer for the engine to fill.
    pub fn begin_refresh(&mut self, aggressor: RowId) -> &mut Vec<RowId> {
        self.selected_aggressor = Some(aggressor);
        self.skipped = false;
        self.refreshed_victims.clear();
        &mut self.refreshed_victims
    }
}

/// Counters kept by a fault-injection adapter wrapped around an engine
/// (see the `mithril-faults` crate). Defined here so any
/// [`DramMitigation`] can surface them through
/// [`DramMitigation::fault_stats`] without the base crate depending on
/// the injector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Counter bit-flips injected (transient single-event upsets).
    pub bit_flips: u64,
    /// Tracker entries invalidated (address-CAM upsets).
    pub invalidations: u64,
    /// Distinct stuck-at bit faults registered.
    pub stuck_bits: u64,
    /// Stuck-at re-assertions that actually changed a stored bit.
    pub stuck_assertions: u64,
    /// Scrub passes (self-check sweeps) run over the tracker state.
    pub scrubs: u64,
    /// Scrubs that detected a broken structural invariant.
    pub scrub_detections: u64,
    /// Structural repairs (rebuilds) performed.
    pub repairs: u64,
    /// Faults drawn by the plan that found no injectable state
    /// (engine exposes no fault surface, or its table is still empty).
    pub dropped: u64,
}

impl FaultStats {
    /// Accumulates `other` into `self` (per-bank → per-system roll-up).
    pub fn add(&mut self, other: &FaultStats) {
        self.bit_flips += other.bit_flips;
        self.invalidations += other.invalidations;
        self.stuck_bits += other.stuck_bits;
        self.stuck_assertions += other.stuck_assertions;
        self.scrubs += other.scrubs;
        self.scrub_detections += other.scrub_detections;
        self.repairs += other.repairs;
        self.dropped += other.dropped;
    }

    /// Total faults injected into tracker state.
    pub fn injected(&self) -> u64 {
        self.bit_flips + self.invalidations + self.stuck_bits
    }
}

/// The injectable state of a tracker: what a soft error can touch and
/// what an ECC-style scrub pass can detect and rebuild.
///
/// Engines whose protection state lives in SRAM/CAM counters (Mithril,
/// Space-Saving-based trackers) implement this; the fault injector in
/// `mithril-faults` drives it through
/// [`DramMitigation::fault_surface`]. Entry indices address hardware
/// slots (`0..fault_entries()`); slot indices are stable for the life of
/// the engine, so a stuck-at fault registered on a slot stays meaningful.
pub trait FaultSurface {
    /// Occupied counter slots a fault can land on (grows toward table
    /// capacity, never shrinks).
    fn fault_entries(&self) -> u64;

    /// Bits per stored counter.
    fn counter_bits(&self) -> u32;

    /// Flips one stored counter bit — a silent transient upset: the
    /// tracker's derived structures are *not* told. Returns `false` if
    /// `entry`/`bit` is out of range.
    fn flip_counter_bit(&mut self, entry: u64, bit: u32) -> bool;

    /// Forces one stored counter bit to `one` (stuck-at re-assertion).
    /// Returns `true` only if the stored bit actually changed.
    fn force_counter_bit(&mut self, entry: u64, bit: u32, one: bool) -> bool;

    /// Invalidates an entry's address tag (CAM upset): the slot stops
    /// tracking its row. Returns `false` if the entry was already
    /// invalid or out of range.
    fn invalidate_entry(&mut self, entry: u64) -> bool;

    /// Structural self-check (the read half of a scrub pass): verifies
    /// the tracker's derived ordering structures against its stored
    /// counters. `Err` describes the first broken invariant.
    fn check(&self) -> Result<(), String>;

    /// Rebuilds derived structures from the stored counters (the repair
    /// half of a scrub pass). Arrival-age information lost to the fault
    /// is canonicalized deterministically — see `ARCHITECTURE.md`.
    fn repair(&mut self);
}

/// An in-DRAM (per-bank) Row Hammer mitigation engine.
///
/// Implementations observe the command stream of a single bank.
///
/// # Example
///
/// ```
/// use mithril_dram::{DramMitigation, RfmOutcome, RowId};
///
/// /// A toy engine that always refreshes the neighbours of the last ACT.
/// struct LastRow(Option<RowId>);
///
/// impl DramMitigation for LastRow {
///     fn on_activate(&mut self, row: RowId) {
///         self.0 = Some(row);
///     }
///     fn on_rfm_into(&mut self, out: &mut RfmOutcome) {
///         match self.0 {
///             Some(r) => out.begin_refresh(r).extend([r.saturating_sub(1), r + 1]),
///             None => out.reset_to_skipped(),
///         }
///     }
///     fn name(&self) -> &'static str {
///         "last-row"
///     }
/// }
///
/// let mut e = LastRow(None);
/// e.on_activate(100);
/// assert_eq!(e.on_rfm().refreshed_victims, vec![99, 101]);
/// ```
pub trait DramMitigation {
    /// Called for every ACT command the bank receives.
    fn on_activate(&mut self, row: RowId);

    /// Called when the memory controller issues an RFM to this bank. The
    /// engine owns the tRFM window and decides which victim rows (if any)
    /// to preventively refresh, writing the outcome into a caller-owned
    /// buffer so its victim `Vec` is reused across windows (the device
    /// drives every RFM through one scratch outcome).
    ///
    /// Implementations must fully overwrite `out` — start with
    /// [`RfmOutcome::reset_to_skipped`] or [`RfmOutcome::begin_refresh`].
    fn on_rfm_into(&mut self, out: &mut RfmOutcome);

    /// Allocating convenience wrapper around [`on_rfm_into`], for tests
    /// and one-shot callers.
    ///
    /// [`on_rfm_into`]: DramMitigation::on_rfm_into
    fn on_rfm(&mut self) -> RfmOutcome {
        let mut out = RfmOutcome::skipped();
        self.on_rfm_into(&mut out);
        out
    }

    /// Auto-refresh notification: rows `lo..hi` are being refreshed by a
    /// REF command. Engines may use this for housekeeping (e.g. TWiCe-style
    /// pruning); the default does nothing.
    fn on_auto_refresh(&mut self, lo: RowId, hi: RowId) {
        let _ = (lo, hi);
    }

    /// The Mithril+ mode-register flag (paper Section V-B): `true` when the
    /// engine would actually use an RFM window. The memory controller polls
    /// this via MRR and elides RFM commands when it is `false`. Engines
    /// without the optimization conservatively return `true`.
    fn refresh_pending(&self) -> bool {
        true
    }

    /// Scheme name for reporting.
    fn name(&self) -> &'static str;

    /// The engine's injectable tracker state, if it exposes one. Engines
    /// whose protection metadata can take soft errors override this;
    /// the default — no surface — means the fault injector counts its
    /// draws as dropped rather than silently succeeding.
    fn fault_surface(&mut self) -> Option<&mut dyn FaultSurface> {
        None
    }

    /// Fault-injection counters, for engines wrapped by an injector
    /// (`mithril-faults`). `None` everywhere else, so reporting can
    /// distinguish "no faults configured" from "zero faults landed".
    fn fault_stats(&self) -> Option<FaultStats> {
        None
    }

    /// O(1) snapshot of the engine's tracker structure, for the
    /// observability sampler (`mithril-obs`). Engines backed by a
    /// Stream-Summary table override this; the default — no tracker —
    /// means the sampler records an all-zero observation for the bank.
    fn observe_tracker(&self) -> Option<mithril_obs::TrackerObservation> {
        None
    }
}

/// The unit mitigation: tracks nothing, refreshes nothing.
///
/// Used as the unprotected baseline for normalized IPC/energy and as the
/// engine under pure RFM-cadence tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMitigation;

impl DramMitigation for NoMitigation {
    fn on_activate(&mut self, _row: RowId) {}

    fn on_rfm_into(&mut self, out: &mut RfmOutcome) {
        out.reset_to_skipped();
    }

    fn refresh_pending(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_mitigation_skips_everything() {
        let mut m = NoMitigation;
        m.on_activate(1);
        let out = m.on_rfm();
        assert!(out.skipped);
        assert!(out.refreshed_victims.is_empty());
        assert!(!m.refresh_pending());
        assert_eq!(m.name(), "none");
    }

    #[test]
    fn outcome_constructors() {
        let s = RfmOutcome::skipped();
        assert!(s.skipped && s.selected_aggressor.is_none());
        let r = RfmOutcome::refresh(10, vec![9, 11]);
        assert!(!r.skipped);
        assert_eq!(r.selected_aggressor, Some(10));
        assert_eq!(r.refreshed_victims, vec![9, 11]);
    }

    #[test]
    fn default_auto_refresh_is_noop() {
        let mut m = NoMitigation;
        m.on_auto_refresh(0, 8); // must not panic
    }
}
