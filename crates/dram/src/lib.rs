//! DDR5-class DRAM device model with the Refresh Management (RFM) interface.
//!
//! This crate is the simulation substrate under the Mithril reproduction:
//! a timing-accurate bank/rank state machine, per-bank auto-refresh in row
//! groups, the DDR5 `RFM` command with its `tRFM` time margin (paper
//! Section II-D and Fig. 1), an exact Row Hammer disturbance **oracle** used
//! to validate protection claims empirically, and a dynamic-energy model.
//!
//! The crate has two entry points:
//!
//! * [`DramDevice`] — a full multi-rank device driven by a memory
//!   controller (see the `mithril-memctrl` crate), used for the
//!   performance/energy experiments.
//! * [`AttackHarness`] — a single-bank command-level harness that enforces
//!   the tREFW activation budget, used for the safety experiments (a whole
//!   refresh window is only ~650K ACTs per bank, so worst cases are cheap
//!   to explore exhaustively).
//!
//! # Example
//!
//! ```
//! use mithril_dram::{AttackHarness, Ddr5Timing, NoMitigation};
//!
//! // An unprotected bank hammered on one row for a full tREFW window
//! // accumulates far more than any realistic FlipTH on its neighbours.
//! let timing = Ddr5Timing::ddr5_4800();
//! let mut h = AttackHarness::new(timing, Box::new(NoMitigation), 64, u64::MAX);
//! while h.try_activate(1000) {}
//! assert!(h.oracle().max_disturbance() > 100_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod device;
mod energy;
mod harness;
mod mitigation;
mod oracle;
mod rank;
mod timing;
mod types;

pub use bank::{Bank, BankState};
pub use device::{DeviceStats, DramDevice};
pub use energy::{EnergyCounters, EnergyModel};
pub use harness::AttackHarness;
pub use mitigation::{DramMitigation, FaultStats, FaultSurface, NoMitigation, RfmOutcome};
pub use oracle::{FlipEvent, RowHammerOracle};
pub use rank::RankTiming;
pub use timing::{Ddr5Timing, PS_PER_MS, PS_PER_NS, PS_PER_US};
pub use types::{BankId, ChannelId, Geometry, RankId, RowId, TimePs};
