//! Exact Row Hammer disturbance accounting ("the oracle").
//!
//! The paper proves Mithril's protection guarantee mathematically; this
//! module lets the reproduction *check it empirically*. The oracle keeps the
//! exact disturbance count of every victim row: each ACT on row `r`
//! increments the counters of all rows within the blast radius of `r`, and
//! any refresh of a victim (auto-refresh or preventive refresh) resets that
//! victim's counter. A counter reaching `FlipTH` is a bit flip.
//!
//! The oracle is deliberately *not* a streaming algorithm — it is the ground
//! truth the streaming trackers approximate.

use mithril_fasthash::FastHashMap;

use crate::types::RowId;

/// A detected (simulated) Row Hammer bit flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlipEvent {
    /// The victim row whose disturbance reached the threshold.
    pub victim: RowId,
    /// The aggressor activation that crossed the threshold.
    pub aggressor: RowId,
    /// The disturbance count at the moment of the flip.
    pub disturbance: u64,
}

/// Ground-truth per-victim disturbance tracking for one DRAM bank.
///
/// # Example
///
/// ```
/// use mithril_dram::RowHammerOracle;
///
/// let mut o = RowHammerOracle::new(1000, 1, 65_536);
/// for _ in 0..999 {
///     o.on_activate(50);
/// }
/// assert_eq!(o.disturbance(49), 999);
/// assert!(o.flips().is_empty());
/// o.on_activate(50); // the 1000th ACT flips both neighbours
/// assert_eq!(o.flips().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RowHammerOracle {
    flip_threshold: u64,
    blast_radius: u64,
    rows: u64,
    disturbance: FastHashMap<RowId, u64>,
    max_observed: u64,
    total_acts: u64,
    flips: Vec<FlipEvent>,
}

impl RowHammerOracle {
    /// Creates an oracle for a bank of `rows` rows with the given
    /// `flip_threshold` (FlipTH) and `blast_radius` (1 = adjacent rows only,
    /// 2 = distance-2 neighbours also disturbed, ...).
    ///
    /// # Panics
    ///
    /// Panics if `flip_threshold`, `blast_radius` or `rows` is zero.
    pub fn new(flip_threshold: u64, blast_radius: u64, rows: u64) -> Self {
        assert!(flip_threshold > 0, "flip_threshold must be non-zero");
        assert!(blast_radius > 0, "blast_radius must be non-zero");
        assert!(rows > 0, "rows must be non-zero");
        Self {
            flip_threshold,
            blast_radius,
            rows,
            disturbance: FastHashMap::default(),
            max_observed: 0,
            total_acts: 0,
            flips: Vec::new(),
        }
    }

    /// The configured FlipTH.
    pub fn flip_threshold(&self) -> u64 {
        self.flip_threshold
    }

    /// Records an activation of `aggressor`, disturbing every row within
    /// the blast radius.
    ///
    /// # Panics
    ///
    /// Panics if `aggressor` is out of range.
    pub fn on_activate(&mut self, aggressor: RowId) {
        assert!(aggressor < self.rows, "row {aggressor} out of range");
        self.total_acts += 1;
        for victim in self.victims_of(aggressor) {
            let d = self.disturbance.entry(victim).or_insert(0);
            *d += 1;
            if *d > self.max_observed {
                self.max_observed = *d;
            }
            if *d == self.flip_threshold {
                self.flips.push(FlipEvent {
                    victim,
                    aggressor,
                    disturbance: *d,
                });
            }
        }
    }

    /// Records that `row` itself was refreshed (auto-refresh reaching it, or
    /// a preventive refresh naming it as the victim): its accumulated
    /// disturbance is cleared.
    pub fn on_row_refreshed(&mut self, row: RowId) {
        self.disturbance.remove(&row);
    }

    /// Convenience: refresh every row in `lo..hi` (an auto-refresh group).
    pub fn on_rows_refreshed(&mut self, lo: RowId, hi: RowId) {
        if hi.saturating_sub(lo) < self.disturbance.len() as u64 {
            for row in lo..hi {
                self.disturbance.remove(&row);
            }
        } else {
            self.disturbance.retain(|&r, _| r < lo || r >= hi);
        }
    }

    /// Convenience for schemes that name an *aggressor*: refreshes all of
    /// its potential victims (the rows within the blast radius).
    pub fn on_neighbors_refreshed(&mut self, aggressor: RowId) {
        for victim in self.victims_of(aggressor) {
            self.disturbance.remove(&victim);
        }
    }

    /// Current disturbance of `row` (0 if never disturbed or refreshed).
    pub fn disturbance(&self, row: RowId) -> u64 {
        self.disturbance.get(&row).copied().unwrap_or(0)
    }

    /// High-water mark of any victim's disturbance since construction.
    ///
    /// A deterministic protection scheme is *safe* iff this never reaches
    /// FlipTH under any access pattern.
    pub fn max_disturbance(&self) -> u64 {
        self.max_observed
    }

    /// Current (not high-water) maximum disturbance across victims.
    pub fn current_max_disturbance(&self) -> u64 {
        self.disturbance.values().copied().max().unwrap_or(0)
    }

    /// All bit flips detected so far.
    pub fn flips(&self) -> &[FlipEvent] {
        &self.flips
    }

    /// Total activations observed.
    pub fn total_acts(&self) -> u64 {
        self.total_acts
    }

    /// The victim rows of `aggressor` within the blast radius.
    pub fn victims_of(&self, aggressor: RowId) -> Vec<RowId> {
        let mut v = Vec::with_capacity(2 * self.blast_radius as usize);
        for d in 1..=self.blast_radius {
            if aggressor >= d {
                v.push(aggressor - d);
            }
            if aggressor + d < self.rows {
                v.push(aggressor + d);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sided_disturbs_both_neighbors() {
        let mut o = RowHammerOracle::new(100, 1, 1024);
        for _ in 0..10 {
            o.on_activate(5);
        }
        assert_eq!(o.disturbance(4), 10);
        assert_eq!(o.disturbance(6), 10);
        assert_eq!(o.disturbance(5), 0);
        assert_eq!(o.max_disturbance(), 10);
    }

    #[test]
    fn double_sided_attack_accumulates_on_shared_victim() {
        // FlipTH/2 ACTs on each side flip the middle row (paper II-B).
        let mut o = RowHammerOracle::new(100, 1, 1024);
        for _ in 0..50 {
            o.on_activate(4);
            o.on_activate(6);
        }
        assert_eq!(o.disturbance(5), 100);
        assert_eq!(o.flips().len(), 1);
        assert_eq!(o.flips()[0].victim, 5);
    }

    #[test]
    fn refresh_resets_disturbance() {
        let mut o = RowHammerOracle::new(100, 1, 1024);
        for _ in 0..60 {
            o.on_activate(5);
        }
        o.on_row_refreshed(4);
        assert_eq!(o.disturbance(4), 0);
        assert_eq!(o.disturbance(6), 60);
        // Max high-water mark is unaffected by refreshes.
        assert_eq!(o.max_disturbance(), 60);
    }

    #[test]
    fn neighbors_refresh_covers_blast_radius() {
        let mut o = RowHammerOracle::new(1000, 2, 1024);
        for _ in 0..5 {
            o.on_activate(10);
        }
        assert_eq!(o.disturbance(8), 5);
        assert_eq!(o.disturbance(12), 5);
        o.on_neighbors_refreshed(10);
        for r in [8, 9, 11, 12] {
            assert_eq!(o.disturbance(r), 0, "row {r}");
        }
    }

    #[test]
    fn group_refresh_resets_range() {
        let mut o = RowHammerOracle::new(1000, 1, 1024);
        for r in [10u64, 20, 30] {
            for _ in 0..3 {
                o.on_activate(r);
            }
        }
        o.on_rows_refreshed(15, 25);
        assert_eq!(o.disturbance(19), 0);
        assert_eq!(o.disturbance(21), 0);
        assert_eq!(o.disturbance(9), 3);
        assert_eq!(o.disturbance(31), 3);
    }

    #[test]
    fn edge_rows_have_one_sided_victims() {
        let o = RowHammerOracle::new(10, 1, 100);
        assert_eq!(o.victims_of(0), vec![1]);
        assert_eq!(o.victims_of(99), vec![98]);
        assert_eq!(o.victims_of(50), vec![49, 51]);
    }

    #[test]
    fn blast_radius_two_reaches_distance_two() {
        let mut o = RowHammerOracle::new(10, 2, 100);
        o.on_activate(50);
        for r in [48, 49, 51, 52] {
            assert_eq!(o.disturbance(r), 1, "row {r}");
        }
        assert_eq!(o.disturbance(47), 0);
        assert_eq!(o.disturbance(53), 0);
    }

    #[test]
    fn flip_recorded_exactly_at_threshold() {
        let mut o = RowHammerOracle::new(3, 1, 100);
        o.on_activate(7);
        o.on_activate(7);
        assert!(o.flips().is_empty());
        o.on_activate(7);
        assert_eq!(o.flips().len(), 2); // rows 6 and 8
                                        // Further ACTs do not duplicate the flip event.
        o.on_activate(7);
        assert_eq!(o.flips().len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn activate_out_of_range_panics() {
        let mut o = RowHammerOracle::new(10, 1, 8);
        o.on_activate(8);
    }
}
