//! Rank-level activation constraints: tFAW and tRRD.
//!
//! DDR limits how fast *any* rows in a rank may be activated: at most four
//! ACTs per rolling tFAW window, and consecutive ACTs (to different banks)
//! at least tRRD apart. These constraints bound the system-wide hammer rate
//! and enter the PARFM failure analysis (paper Appendix C: only 22 of 64
//! banks can be activated at full rate under tFAW).

use std::collections::VecDeque;

use crate::timing::Ddr5Timing;
use crate::types::TimePs;

/// Sliding-window tracker for rank-level ACT constraints.
///
/// # Example
///
/// ```
/// use mithril_dram::{Ddr5Timing, RankTiming};
///
/// let t = Ddr5Timing::ddr5_4800();
/// let mut rank = RankTiming::new(t);
/// let mut now = 0;
/// for _ in 0..4 {
///     now = rank.earliest_activate(now);
///     rank.record_activate(now);
/// }
/// // The fifth ACT must wait for the tFAW window to slide.
/// assert!(rank.earliest_activate(now) >= t.tfaw);
/// ```
#[derive(Debug, Clone)]
pub struct RankTiming {
    timing: Ddr5Timing,
    /// Times of the most recent ACTs, at most 4 kept.
    recent_acts: VecDeque<TimePs>,
    last_act: Option<TimePs>,
    total_acts: u64,
}

impl RankTiming {
    /// Creates an idle rank timing tracker.
    pub fn new(timing: Ddr5Timing) -> Self {
        Self {
            timing,
            recent_acts: VecDeque::with_capacity(4),
            last_act: None,
            total_acts: 0,
        }
    }

    /// The earliest time at or after `now` an ACT may issue on this rank.
    pub fn earliest_activate(&self, now: TimePs) -> TimePs {
        let mut t = now;
        if let Some(last) = self.last_act {
            t = t.max(last + self.timing.trrd);
        }
        if self.recent_acts.len() == 4 {
            // The oldest of the last four ACTs constrains the window.
            t = t.max(self.recent_acts[0] + self.timing.tfaw);
        }
        t
    }

    /// True if an ACT may issue at exactly `now`.
    pub fn can_activate(&self, now: TimePs) -> bool {
        self.earliest_activate(now) == now
    }

    /// Records an ACT at `now`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the ACT violates tRRD/tFAW.
    pub fn record_activate(&mut self, now: TimePs) {
        debug_assert!(
            self.can_activate(now),
            "rank ACT at {now} violates tRRD/tFAW"
        );
        if self.recent_acts.len() == 4 {
            self.recent_acts.pop_front();
        }
        self.recent_acts.push_back(now);
        self.last_act = Some(now);
        self.total_acts += 1;
    }

    /// Total ACTs recorded on this rank.
    pub fn total_acts(&self) -> u64 {
        self.total_acts
    }

    /// The peak sustainable ACT rate of a rank in ACTs per second, as
    /// limited by tFAW (4 ACTs per window).
    pub fn max_acts_per_second(timing: &Ddr5Timing) -> f64 {
        4.0 / (timing.tfaw as f64 * 1e-12)
    }

    /// How many banks can be hammered at the per-bank maximum rate (one ACT
    /// per tRC each) before the rank-level tFAW limit binds — the paper's
    /// "22 banks" argument (Appendix C).
    pub fn max_parallel_hammered_banks(timing: &Ddr5Timing) -> usize {
        // Per-bank hammer rate: 1/tRC. Rank limit: 4/tFAW.
        let per_bank = 1.0 / timing.trc as f64;
        let rank_limit = 4.0 / timing.tfaw as f64;
        (rank_limit / per_bank).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trrd_spaces_consecutive_acts() {
        let t = Ddr5Timing::ddr5_4800();
        let mut r = RankTiming::new(t);
        r.record_activate(0);
        assert!(!r.can_activate(t.trrd - 1));
        assert!(r.can_activate(t.trrd));
    }

    #[test]
    fn tfaw_limits_burst_of_five() {
        let t = Ddr5Timing::ddr5_4800();
        let mut r = RankTiming::new(t);
        for i in 0..4u64 {
            r.record_activate(i * t.trrd);
        }
        // Fifth ACT: must wait until the first leaves the window.
        assert_eq!(r.earliest_activate(4 * t.trrd), t.tfaw);
    }

    #[test]
    fn window_slides() {
        let t = Ddr5Timing::ddr5_4800();
        let mut r = RankTiming::new(t);
        for i in 0..4u64 {
            r.record_activate(i * t.trrd);
        }
        r.record_activate(t.tfaw);
        // Next constraint comes from the ACT at 1*tRRD.
        assert_eq!(r.earliest_activate(t.tfaw), t.trrd + t.tfaw);
    }

    #[test]
    fn paper_appendix_c_22_banks() {
        // Per-bank hammering runs at 1/tRC; tFAW allows 4/tFAW rank-wide.
        // With Table III values: (4/13.333ns) / (1/48.64ns) ≈ 14.6 per
        // rank, ~22-29 system-wide across 2 channels. We assert the
        // rank-level figure and that 2 ranks land in the paper's ballpark.
        let t = Ddr5Timing::ddr5_4800();
        let per_rank = RankTiming::max_parallel_hammered_banks(&t);
        assert!((10..=16).contains(&per_rank), "per-rank = {per_rank}");
        assert!((20..=32).contains(&(2 * per_rank)));
    }

    #[test]
    fn total_acts_counts() {
        let t = Ddr5Timing::ddr5_4800();
        let mut r = RankTiming::new(t);
        let mut now = 0;
        for _ in 0..10 {
            now = r.earliest_activate(now);
            r.record_activate(now);
        }
        assert_eq!(r.total_acts(), 10);
    }
}
