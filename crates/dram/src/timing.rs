//! DDR5 timing parameters (paper Table III).

use crate::types::TimePs;

/// Picoseconds per nanosecond.
pub const PS_PER_NS: TimePs = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: TimePs = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: TimePs = 1_000_000_000;

/// The DDR5 timing parameters relevant to refresh, Row Hammer and RFM.
///
/// Values are integer picoseconds. [`Ddr5Timing::ddr5_4800`] reproduces the
/// paper's Table III exactly (tRFC = 295 ns, tRC = 48.64 ns,
/// tRFM = 97.28 ns = 2 × tRC, tRCD = tRP = tCL = 16.64 ns), with the
/// JEDEC-standard refresh cadence (tREFW = 32 ms, tREFI = tREFW / 8192).
///
/// # Example
///
/// ```
/// use mithril_dram::Ddr5Timing;
///
/// let t = Ddr5Timing::ddr5_4800();
/// assert_eq!(t.trfm, 2 * t.trc);
/// // ~657K ACT slots fit in one refresh window if nothing else happens:
/// assert_eq!(t.trefw / t.trc, 657_894);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ddr5Timing {
    /// Row cycle: minimum time between two ACTs to the same bank.
    pub trc: TimePs,
    /// ACT to column command (RAS-to-CAS) delay.
    pub trcd: TimePs,
    /// Precharge time.
    pub trp: TimePs,
    /// CAS (read) latency.
    pub tcl: TimePs,
    /// Minimum ACT-to-PRE interval (row must stay open this long).
    pub tras: TimePs,
    /// Auto-refresh command duration.
    pub trfc: TimePs,
    /// Average refresh command interval (tREFW / 8192 refresh groups).
    pub trefi: TimePs,
    /// Refresh window: every row is auto-refreshed once per tREFW.
    pub trefw: TimePs,
    /// RFM command duration: the time margin handed to the in-DRAM
    /// mitigation.
    pub trfm: TimePs,
    /// Four-activate window (rolling limit of 4 ACTs per rank).
    pub tfaw: TimePs,
    /// Minimum ACT-to-ACT interval between different banks of a rank.
    pub trrd: TimePs,
    /// Data burst duration on the bus (BL16 at the device data rate).
    pub tbl: TimePs,
    /// Read-to-precharge delay.
    pub trtp: TimePs,
    /// Write recovery time (end of write burst to precharge).
    pub twr: TimePs,
}

impl Ddr5Timing {
    /// DDR5-4800 parameters from the paper's Table III.
    pub fn ddr5_4800() -> Self {
        Self {
            trc: 48_640,
            trcd: 16_640,
            trp: 16_640,
            tcl: 16_640,
            tras: 32_000, // tRC - tRP
            trfc: 295_000,
            trefi: 3_906_250, // 32 ms / 8192
            trefw: 32 * PS_PER_MS,
            trfm: 97_280, // 2 x tRC
            tfaw: 13_333, // ~32 tCK at 2400 MHz
            trrd: 3_332,  // ~8 tCK
            tbl: 3_332,   // BL16 / 4800 MT/s
            trtp: 7_500,
            twr: 30_000,
        }
    }

    /// The maximum number of ACTs that fit in one tREFW window when
    /// auto-refresh overhead is subtracted but no RFM is issued — the
    /// activation budget used throughout the paper's analysis:
    /// `tREFW * (1 - tRFC/tREFI) / tRC`.
    pub fn act_budget_per_trefw(&self) -> u64 {
        let usable = self.trefw - (self.trefw / self.trefi) * self.trfc;
        usable / self.trc
    }

    /// Maximum number of RFM intervals within tREFW — the `W` term of
    /// Theorem 1: `ceil(tREFW(1 - tRFC/tREFI) / (tRC*RFMTH + tRFM))`.
    ///
    /// # Panics
    ///
    /// Panics if `rfm_th` is zero.
    pub fn rfm_intervals_per_trefw(&self, rfm_th: u64) -> u64 {
        assert!(rfm_th > 0, "rfm_th must be non-zero");
        let usable = self.trefw - (self.trefw / self.trefi) * self.trfc;
        let interval = self.trc * rfm_th + self.trfm;
        usable.div_ceil(interval)
    }

    /// Rows refreshed by each REF command, for `rows` rows per bank
    /// (all rows must be covered every 8192 REFs).
    pub fn rows_per_ref(&self, rows: u64) -> u64 {
        let refs_per_window = self.trefw / self.trefi;
        rows.div_ceil(refs_per_window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_values() {
        let t = Ddr5Timing::ddr5_4800();
        assert_eq!(t.trfc, 295 * PS_PER_NS);
        assert_eq!(t.trc, 48_640);
        assert_eq!(t.trfm, 97_280);
        assert_eq!(t.trcd, 16_640);
        assert_eq!(t.trp, 16_640);
        assert_eq!(t.tcl, 16_640);
        assert_eq!(t.trefw, 32_000_000_000);
    }

    #[test]
    fn refresh_cadence_is_8192_per_window() {
        let t = Ddr5Timing::ddr5_4800();
        assert_eq!(t.trefw / t.trefi, 8192);
    }

    #[test]
    fn act_budget_matches_paper_analysis() {
        // Paper Section III-A: ~310 rows can reach 2K ACTs in one tREFW,
        // i.e. the budget is ~620K ACTs.
        let t = Ddr5Timing::ddr5_4800();
        let budget = t.act_budget_per_trefw();
        assert!((600_000..660_000).contains(&budget), "budget = {budget}");
        assert!((295..330).contains(&(budget / 2000)));
    }

    #[test]
    fn rfm_interval_count_decreases_with_rfmth() {
        let t = Ddr5Timing::ddr5_4800();
        let w32 = t.rfm_intervals_per_trefw(32);
        let w64 = t.rfm_intervals_per_trefw(64);
        let w256 = t.rfm_intervals_per_trefw(256);
        assert!(w32 > w64 && w64 > w256);
        // W * RFMTH is roughly the ACT budget (a little smaller because
        // each interval also pays tRFM).
        let budget = t.act_budget_per_trefw();
        assert!(w64 * 64 <= budget);
        assert!(w64 * 64 >= budget * 9 / 10);
    }

    #[test]
    fn rows_per_ref_covers_bank() {
        let t = Ddr5Timing::ddr5_4800();
        assert_eq!(t.rows_per_ref(65_536), 8);
        assert_eq!(t.rows_per_ref(8192), 1);
        // Non-multiple row counts round up so the whole bank is covered.
        assert_eq!(t.rows_per_ref(10_000), 2);
    }

    #[test]
    #[should_panic(expected = "rfm_th")]
    fn zero_rfmth_panics() {
        let _ = Ddr5Timing::ddr5_4800().rfm_intervals_per_trefw(0);
    }
}
