//! The assembled multi-bank DRAM device, as seen by a memory controller.
//!
//! A [`DramDevice`] bundles banks, rank-level timing, one in-DRAM
//! mitigation engine per bank (paper Fig. 4: "an identical Mithril module …
//! is populated per bank"), one disturbance oracle per bank, and energy
//! counters. The memory controller (see `mithril-memctrl`) drives it through
//! the `issue_*` methods; the device enforces command legality.

use crate::bank::{Bank, BankStats};
use crate::energy::EnergyCounters;
use crate::mitigation::{DramMitigation, RfmOutcome};
use crate::oracle::RowHammerOracle;
use crate::rank::RankTiming;
use crate::timing::Ddr5Timing;
use crate::types::{BankId, Geometry, RankId, RowId, TimePs};

/// Aggregate statistics over all banks of a device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Sum of per-bank command counters.
    pub bank_totals: BankStats,
    /// REF commands issued (rank level).
    pub ref_commands: u64,
    /// RFM commands issued.
    pub rfm_commands: u64,
    /// RFMs elided by the Mithril+ MRR flag.
    pub rfm_elisions: u64,
    /// MRR polls.
    pub mrr_commands: u64,
}

/// A DDR5 channel-worth of DRAM: ranks × banks with per-bank mitigation.
///
/// # Example
///
/// ```
/// use mithril_dram::{Ddr5Timing, DramDevice, Geometry, NoMitigation};
///
/// let t = Ddr5Timing::ddr5_4800();
/// let g = Geometry::default();
/// let mut dev = DramDevice::new(g, t, 10_000, 1, |_bank| Box::new(NoMitigation));
/// let when = dev.earliest_activate(0, 0);
/// dev.issue_activate(0, 123, when);
/// assert_eq!(dev.bank(0).open_row(), Some(123));
/// ```
pub struct DramDevice {
    geometry: Geometry,
    timing: Ddr5Timing,
    banks: Vec<Bank>,
    ranks: Vec<RankTiming>,
    engines: Vec<Box<dyn DramMitigation>>,
    oracles: Vec<RowHammerOracle>,
    /// Per-bank auto-refresh row pointer.
    ref_ptrs: Vec<RowId>,
    rows_per_ref: u64,
    counters: EnergyCounters,
    stats: DeviceStats,
    /// Reusable outcome buffer for [`DramMitigation::on_rfm_into`], so the
    /// per-RFM victim list never reallocates on the hot path.
    rfm_scratch: RfmOutcome,
}

impl DramDevice {
    /// Builds a device; `engine_for` constructs the per-bank mitigation.
    ///
    /// A device always models exactly one channel: a multi-channel
    /// [`Geometry`] is narrowed to its [`Geometry::channel_view`], and the
    /// system layer (see `mithril-sim`) instantiates one device per channel.
    pub fn new(
        geometry: Geometry,
        timing: Ddr5Timing,
        flip_th: u64,
        blast_radius: u64,
        engine_for: impl Fn(BankId) -> Box<dyn DramMitigation>,
    ) -> Self {
        let geometry = geometry.channel_view();
        let n = geometry.banks_total();
        Self {
            geometry,
            timing,
            banks: (0..n).map(|_| Bank::new(timing)).collect(),
            ranks: (0..geometry.ranks)
                .map(|_| RankTiming::new(timing))
                .collect(),
            engines: (0..n).map(engine_for).collect(),
            oracles: (0..n)
                .map(|_| RowHammerOracle::new(flip_th.max(1), blast_radius, geometry.rows_per_bank))
                .collect(),
            ref_ptrs: vec![0; n],
            rows_per_ref: timing.rows_per_ref(geometry.rows_per_bank),
            counters: EnergyCounters::default(),
            stats: DeviceStats::default(),
            rfm_scratch: RfmOutcome::default(),
        }
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The timing parameters.
    pub fn timing(&self) -> &Ddr5Timing {
        &self.timing
    }

    /// Immutable access to a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank(&self, bank: BankId) -> &Bank {
        &self.banks[bank]
    }

    /// The disturbance oracle of a bank.
    pub fn oracle(&self, bank: BankId) -> &RowHammerOracle {
        &self.oracles[bank]
    }

    /// The mitigation engine of a bank.
    pub fn engine(&self, bank: BankId) -> &dyn DramMitigation {
        self.engines[bank].as_ref()
    }

    /// Aggregate tracker snapshot across all bank engines (observability
    /// probe): per-bank observations merged per
    /// [`mithril_obs::TrackerObservation::merge`]. Engines without a
    /// tracker contribute nothing.
    pub fn observe_trackers(&self) -> mithril_obs::TrackerObservation {
        let mut agg = mithril_obs::TrackerObservation::default();
        for engine in &self.engines {
            if let Some(obs) = engine.observe_tracker() {
                agg.merge(obs);
            }
        }
        agg
    }

    /// Worst victim disturbance across all banks (safety metric).
    pub fn max_disturbance(&self) -> u64 {
        self.oracles
            .iter()
            .map(|o| o.max_disturbance())
            .max()
            .unwrap_or(0)
    }

    /// Total detected bit flips across banks.
    pub fn total_flips(&self) -> usize {
        self.oracles.iter().map(|o| o.flips().len()).sum()
    }

    /// Accumulated operation counters (for the energy model).
    pub fn counters(&self) -> &EnergyCounters {
        &self.counters
    }

    /// Aggregate device statistics.
    pub fn stats(&self) -> DeviceStats {
        let mut s = self.stats;
        for b in &self.banks {
            let bs = b.stats();
            s.bank_totals.acts += bs.acts;
            s.bank_totals.pres += bs.pres;
            s.bank_totals.reads += bs.reads;
            s.bank_totals.writes += bs.writes;
            s.bank_totals.refs += bs.refs;
            s.bank_totals.rfms += bs.rfms;
            s.bank_totals.preventive_rows += bs.preventive_rows;
        }
        s
    }

    /// Earliest time an ACT to `bank` may issue, at or after `now`.
    pub fn earliest_activate(&self, bank: BankId, now: TimePs) -> TimePs {
        let (rank, _) = self.geometry.split_bank(bank);
        self.banks[bank]
            .earliest_activate()
            .max(self.ranks[rank.0].earliest_activate(now))
            .max(now)
    }

    /// Earliest time rank-level constraints (tRRD / tFAW) allow *any* ACT
    /// on `rank`, at or after `now` — the rank's next-activate event time.
    /// The event-driven controller caches per-bank activation candidates
    /// and applies this rank-wide floor at selection time, so an ACT on a
    /// sibling bank doesn't have to invalidate the whole rank.
    pub fn earliest_rank_activate(&self, rank: RankId, now: TimePs) -> TimePs {
        self.ranks[rank.0].earliest_activate(now)
    }

    /// True if an ACT to `bank` is legal at `now`.
    pub fn can_activate(&self, bank: BankId, now: TimePs) -> bool {
        self.banks[bank].can_activate(now) && {
            let (rank, _) = self.geometry.split_bank(bank);
            self.ranks[rank.0].can_activate(now)
        }
    }

    /// Issues an ACT, informing the mitigation engine and the oracle.
    ///
    /// # Panics
    ///
    /// Panics if the ACT is illegal at `now`.
    pub fn issue_activate(&mut self, bank: BankId, row: RowId, now: TimePs) {
        let (rank, _) = self.geometry.split_bank(bank);
        self.banks[bank].issue_activate(row, now);
        self.ranks[rank.0].record_activate(now);
        self.engines[bank].on_activate(row);
        self.oracles[bank].on_activate(row);
        self.counters.acts += 1;
    }

    /// Issues a PRE.
    ///
    /// # Panics
    ///
    /// Panics if the PRE is illegal at `now`.
    pub fn issue_precharge(&mut self, bank: BankId, now: TimePs) {
        self.banks[bank].issue_precharge(now);
        self.counters.pres += 1;
    }

    /// Issues a read burst; returns data-completion time.
    ///
    /// # Panics
    ///
    /// Panics if the command is illegal at `now`.
    pub fn issue_read(&mut self, bank: BankId, row: RowId, now: TimePs) -> TimePs {
        self.counters.reads += 1;
        self.banks[bank].issue_read(row, now)
    }

    /// Issues a write burst; returns commit time.
    ///
    /// # Panics
    ///
    /// Panics if the command is illegal at `now`.
    pub fn issue_write(&mut self, bank: BankId, row: RowId, now: TimePs) -> TimePs {
        self.counters.writes += 1;
        self.banks[bank].issue_write(row, now)
    }

    /// True if every bank of `rank` can start a REF at `now`.
    pub fn can_refresh_rank(&self, rank: RankId, now: TimePs) -> bool {
        self.rank_banks(rank)
            .all(|b| self.banks[b].can_refresh(now))
    }

    /// Issues an all-bank REF to `rank`: every bank refreshes its next row
    /// group. Returns the busy-until time and the `(bank, lo, hi)` row
    /// ranges refreshed (so controller-side schemes can observe refresh
    /// feedback).
    ///
    /// # Panics
    ///
    /// Panics if any bank of the rank cannot refresh at `now`.
    pub fn issue_refresh_rank(
        &mut self,
        rank: RankId,
        now: TimePs,
    ) -> (TimePs, Vec<(BankId, RowId, RowId)>) {
        let banks: Vec<BankId> = self.rank_banks(rank).collect();
        let mut busy = now;
        let mut ranges = Vec::with_capacity(banks.len());
        for b in banks {
            busy = busy.max(self.banks[b].issue_refresh(now));
            let lo = self.ref_ptrs[b];
            let hi = (lo + self.rows_per_ref).min(self.geometry.rows_per_bank);
            self.oracles[b].on_rows_refreshed(lo, hi);
            self.engines[b].on_auto_refresh(lo, hi);
            self.counters.auto_refresh_rows += hi - lo;
            self.ref_ptrs[b] = if hi >= self.geometry.rows_per_bank {
                0
            } else {
                hi
            };
            ranges.push((b, lo, hi));
        }
        self.stats.ref_commands += 1;
        (busy, ranges)
    }

    /// True if `bank` can start an RFM (or ARR) at `now`.
    pub fn can_rfm(&self, bank: BankId, now: TimePs) -> bool {
        self.banks[bank].can_refresh(now)
    }

    /// Issues an RFM to `bank`, handing the tRFM window to its engine.
    /// Returns the outcome (borrowed from a reusable scratch buffer — the
    /// victim list is only valid until the next `issue_rfm`) and the
    /// busy-until time.
    ///
    /// # Panics
    ///
    /// Panics if the bank cannot refresh at `now`.
    pub fn issue_rfm(&mut self, bank: BankId, now: TimePs) -> (&RfmOutcome, TimePs) {
        // Swap the scratch out so the engine can fill it while the oracle
        // is updated; `take` leaves an allocation-free empty outcome.
        let mut outcome = std::mem::take(&mut self.rfm_scratch);
        self.engines[bank].on_rfm_into(&mut outcome);
        for &v in &outcome.refreshed_victims {
            self.oracles[bank].on_row_refreshed(v);
        }
        self.counters.preventive_rows += outcome.refreshed_victims.len() as u64;
        self.counters.rfm_commands += 1;
        self.stats.rfm_commands += 1;
        let busy = self.banks[bank].issue_rfm(now, outcome.refreshed_victims.len() as u64);
        self.rfm_scratch = outcome;
        (&self.rfm_scratch, busy)
    }

    /// Polls the Mithril+ mode-register flag of `bank` (an MRR command).
    pub fn issue_mrr(&mut self, bank: BankId) -> bool {
        self.counters.mrr_commands += 1;
        self.stats.mrr_commands += 1;
        self.engines[bank].refresh_pending()
    }

    /// Records that the MC elided an RFM after a clear MRR flag.
    pub fn note_rfm_elided(&mut self) {
        self.stats.rfm_elisions += 1;
    }

    /// Executes an MC-directed ARR on `bank`: preventively refreshes
    /// `victims` rows. Returns the busy-until time.
    ///
    /// # Panics
    ///
    /// Panics if the bank cannot refresh at `now`.
    pub fn issue_arr(&mut self, bank: BankId, victims: &[RowId], now: TimePs) -> TimePs {
        for &v in victims {
            self.oracles[bank].on_row_refreshed(v);
        }
        self.counters.preventive_rows += victims.len() as u64;
        self.banks[bank].issue_arr(now, victims.len() as u64)
    }

    fn rank_banks(&self, rank: RankId) -> impl Iterator<Item = BankId> {
        let per = self.geometry.banks_per_rank;
        (rank.0 * per)..(rank.0 * per + per)
    }
}

impl std::fmt::Debug for DramDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DramDevice")
            .field("geometry", &self.geometry)
            .field("banks", &self.banks.len())
            .field("engine", &self.engines.first().map(|e| e.name()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mitigation::NoMitigation;

    fn device() -> DramDevice {
        DramDevice::new(
            Geometry::default(),
            Ddr5Timing::ddr5_4800(),
            100_000,
            1,
            |_| Box::new(NoMitigation),
        )
    }

    #[test]
    fn activate_reaches_engine_and_oracle() {
        let mut d = device();
        d.issue_activate(3, 77, 0);
        assert_eq!(d.oracle(3).disturbance(76), 1);
        assert_eq!(d.oracle(3).disturbance(78), 1);
        assert_eq!(d.counters().acts, 1);
        // Other banks unaffected.
        assert_eq!(d.oracle(2).disturbance(76), 0);
    }

    #[test]
    fn rank_constraints_apply_across_banks() {
        let d = device();
        let t = *d.timing();
        let mut d = d;
        d.issue_activate(0, 1, 0);
        // Bank 1 is free but the rank imposes tRRD.
        assert!(!d.can_activate(1, t.trrd - 1));
        assert_eq!(d.earliest_activate(1, 0), t.trrd);
    }

    #[test]
    fn refresh_rank_advances_row_groups() {
        let mut d = device();
        let rows_per_ref = d.rows_per_ref;
        d.issue_activate(0, 0, 0);
        assert_eq!(d.oracle(0).disturbance(1), 1);
        let t = *d.timing();
        d.issue_precharge(0, t.tras);
        // First REF covers rows [0, rows_per_ref), clearing row 1.
        let now = t.trc + t.trp;
        assert!(d.can_refresh_rank(crate::types::RankId(0), now));
        let (_, ranges) = d.issue_refresh_rank(crate::types::RankId(0), now);
        assert_eq!(d.oracle(0).disturbance(1), 0);
        assert_eq!(ranges.len(), 32);
        assert_eq!(ranges[0], (0, 0, rows_per_ref));
        assert_eq!(d.stats().ref_commands, 1);
    }

    #[test]
    fn rfm_hands_window_to_engine() {
        let mut d = device();
        let (outcome, busy) = d.issue_rfm(5, 0);
        assert!(outcome.skipped); // NoMitigation
        assert_eq!(busy, d.timing().trfm);
        assert_eq!(d.stats().rfm_commands, 1);
    }

    #[test]
    fn arr_refreshes_named_victims() {
        let mut d = device();
        d.issue_activate(2, 50, 0);
        let t = *d.timing();
        d.issue_precharge(2, t.tras);
        let now = t.tras + t.trp;
        d.issue_arr(2, &[49, 51], now);
        assert_eq!(d.oracle(2).disturbance(49), 0);
        assert_eq!(d.oracle(2).disturbance(51), 0);
        assert_eq!(d.counters().preventive_rows, 2);
    }

    #[test]
    fn mrr_reports_engine_flag() {
        let mut d = device();
        assert!(!d.issue_mrr(0)); // NoMitigation never pending
        assert_eq!(d.stats().mrr_commands, 1);
    }

    #[test]
    fn stats_aggregate_banks() {
        let mut d = device();
        d.issue_activate(0, 1, 0);
        let when = d.earliest_activate(1, 0);
        d.issue_activate(1, 2, when);
        assert_eq!(d.stats().bank_totals.acts, 2);
    }
}
