//! Command-level single-bank harness for safety experiments.
//!
//! Safety properties (does any victim row ever reach FlipTH?) depend only on
//! the per-bank command stream and the DDR timing budget — not on cores,
//! caches or scheduling. This harness replays the paper's analytical setting
//! exactly (Appendix, Theorem 1):
//!
//! * each ACT occupies one row cycle (tRC) — the fastest possible hammer;
//! * the memory controller issues an RFM after every `RFMTH` ACTs
//!   (Fig. 1(b)), costing tRFM;
//! * auto-refresh (REF) occurs every tREFI, costing tRFC and refreshing the
//!   next group of rows, all rows once per tREFW.
//!
//! Within one tREFW window this yields exactly the ACT budget
//! `tREFW(1 − tRFC/tREFI)/tRC` of the paper's analysis, so worst-case
//! attacks measured on this harness are directly comparable to the bound M.

use mithril_obs::{Event, EventSink, NullSink};

use crate::energy::EnergyCounters;
use crate::mitigation::{DramMitigation, RfmOutcome};
use crate::oracle::RowHammerOracle;
use crate::timing::Ddr5Timing;
use crate::types::{RowId, TimePs};

/// A single DRAM bank driven at maximum activation rate, with RFM cadence,
/// auto-refresh and exact disturbance accounting.
///
/// # Example
///
/// ```
/// use mithril_dram::{AttackHarness, Ddr5Timing, NoMitigation};
///
/// let t = Ddr5Timing::ddr5_4800();
/// // RFMTH = 64, FlipTH irrelevant for the unprotected engine.
/// let mut h = AttackHarness::new(t, Box::new(NoMitigation), 64, 10_000);
/// let mut acts = 0u64;
/// while h.try_activate(42) {
///     acts += 1;
/// }
/// // The whole-window ACT count is slightly below the no-RFM budget
/// // because every 64 ACTs pay an extra tRFM.
/// assert!(acts < t.act_budget_per_trefw());
/// assert!(acts > t.act_budget_per_trefw() * 9 / 10);
/// ```
pub struct AttackHarness<S: EventSink = NullSink> {
    timing: Ddr5Timing,
    engine: Box<dyn DramMitigation>,
    oracle: RowHammerOracle,
    rfm_th: u64,
    raa: u64,
    now: TimePs,
    window_end: TimePs,
    next_ref: TimePs,
    ref_ptr: RowId,
    rows: u64,
    rows_per_ref: u64,
    counters: EnergyCounters,
    mrr_elision: bool,
    rfms_issued: u64,
    rfms_elided: u64,
    /// Reusable RFM outcome buffer (see `DramMitigation::on_rfm_into`).
    rfm_scratch: RfmOutcome,
    /// Event sink; `NullSink` (the default) compiles every emission out.
    obs: S,
}

impl AttackHarness {
    /// Creates a harness around `engine` with the given RFM threshold and
    /// oracle FlipTH, over one tREFW window.
    ///
    /// # Panics
    ///
    /// Panics if `rfm_th` is zero.
    pub fn new(
        timing: Ddr5Timing,
        engine: Box<dyn DramMitigation>,
        rfm_th: u64,
        flip_th: u64,
    ) -> Self {
        Self::with_rows(timing, engine, rfm_th, flip_th, Self::DEFAULT_ROWS, 1)
    }

    /// Creates a harness with an explicit row count and blast radius.
    ///
    /// # Panics
    ///
    /// Panics if `rfm_th` or `rows` is zero.
    pub fn with_rows(
        timing: Ddr5Timing,
        engine: Box<dyn DramMitigation>,
        rfm_th: u64,
        flip_th: u64,
        rows: u64,
        blast_radius: u64,
    ) -> Self {
        Self::with_obs(
            timing,
            engine,
            rfm_th,
            flip_th,
            rows,
            blast_radius,
            NullSink,
        )
    }
}

impl<S: EventSink> AttackHarness<S> {
    /// Default number of rows in the harness bank.
    pub const DEFAULT_ROWS: u64 = 65_536;

    /// Creates an instrumented harness emitting events into `obs`
    /// (timestamped with the harness clock; the single bank is bank 0).
    ///
    /// # Panics
    ///
    /// Panics if `rfm_th` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn with_obs(
        timing: Ddr5Timing,
        engine: Box<dyn DramMitigation>,
        rfm_th: u64,
        flip_th: u64,
        rows: u64,
        blast_radius: u64,
        obs: S,
    ) -> Self {
        assert!(rfm_th > 0, "rfm_th must be non-zero");
        Self {
            timing,
            engine,
            oracle: RowHammerOracle::new(flip_th.max(1), blast_radius, rows),
            rfm_th,
            raa: 0,
            now: 0,
            window_end: timing.trefw,
            next_ref: timing.trefi,
            ref_ptr: 0,
            rows,
            rows_per_ref: timing.rows_per_ref(rows),
            counters: EnergyCounters::default(),
            mrr_elision: false,
            rfms_issued: 0,
            rfms_elided: 0,
            rfm_scratch: RfmOutcome::default(),
            obs,
        }
    }

    /// Enables Mithril+ behaviour: before issuing an RFM, poll the engine's
    /// mode-register flag (an MRR) and elide the RFM when it is clear.
    pub fn set_mrr_elision(&mut self, enabled: bool) {
        self.mrr_elision = enabled;
    }

    /// Attempts one ACT of `row` at the maximum legal rate.
    ///
    /// Returns `false` (without activating) once the current tREFW window
    /// has no room for another row cycle. Call [`advance_window`] to
    /// continue into the next window.
    ///
    /// [`advance_window`]: AttackHarness::advance_window
    pub fn try_activate(&mut self, row: RowId) -> bool {
        self.catch_up_refresh();
        if self.now + self.timing.trc > self.window_end {
            return false;
        }
        // One closed-page row cycle.
        self.oracle.on_activate(row);
        if S::ENABLED {
            let before = self.tracker_evictions();
            self.engine.on_activate(row);
            self.obs.emit(self.now, Event::Act { bank: 0, row });
            let evicted = self.tracker_evictions() - before;
            if evicted > 0 {
                self.obs.emit(
                    self.now,
                    Event::TableEvict {
                        bank: 0,
                        evictions: evicted,
                    },
                );
            }
        } else {
            self.engine.on_activate(row);
        }
        self.counters.acts += 1;
        self.counters.pres += 1;
        self.now += self.timing.trc;
        self.raa += 1;
        if self.raa >= self.rfm_th {
            self.issue_rfm();
            self.raa = 0;
        }
        true
    }

    /// Remaining ACT slots in the current window, assuming no further RFM.
    pub fn remaining_acts_in_window(&self) -> u64 {
        (self.window_end.saturating_sub(self.now)) / self.timing.trc
    }

    /// Extends the simulation into the next tREFW window.
    pub fn advance_window(&mut self) {
        self.window_end += self.timing.trefw;
    }

    /// The exact disturbance oracle.
    pub fn oracle(&self) -> &RowHammerOracle {
        &self.oracle
    }

    /// Accumulated operation counters.
    pub fn counters(&self) -> &EnergyCounters {
        &self.counters
    }

    /// Current simulated time.
    pub fn now(&self) -> TimePs {
        self.now
    }

    /// RFM commands actually issued to the bank.
    pub fn rfms_issued(&self) -> u64 {
        self.rfms_issued
    }

    /// RFM commands elided via the Mithril+ MRR flag.
    pub fn rfms_elided(&self) -> u64 {
        self.rfms_elided
    }

    /// The wrapped mitigation engine.
    pub fn engine(&self) -> &dyn DramMitigation {
        self.engine.as_ref()
    }

    /// The event sink (for collectors to drain after a run).
    pub fn obs(&self) -> &S {
        &self.obs
    }

    /// Cumulative tracker evictions, `0` for engines without a tracker.
    fn tracker_evictions(&self) -> u64 {
        self.engine
            .observe_tracker()
            .map(|o| o.evictions)
            .unwrap_or(0)
    }

    fn issue_rfm(&mut self) {
        if self.mrr_elision {
            self.counters.mrr_commands += 1;
            if !self.engine.refresh_pending() {
                self.rfms_elided += 1;
                if S::ENABLED {
                    self.obs.emit(self.now, Event::RfmElided { bank: 0 });
                }
                return; // MC skips the RFM entirely: no time, no energy.
            }
        }
        self.counters.rfm_commands += 1;
        self.rfms_issued += 1;
        let mut outcome = std::mem::take(&mut self.rfm_scratch);
        self.engine.on_rfm_into(&mut outcome);
        for &victim in &outcome.refreshed_victims {
            self.oracle.on_row_refreshed(victim);
        }
        self.counters.preventive_rows += outcome.refreshed_victims.len() as u64;
        if S::ENABLED {
            self.obs.emit(
                self.now,
                Event::Rfm {
                    bank: 0,
                    aggressor: outcome.selected_aggressor,
                    victims: outcome.refreshed_victims.len() as u32,
                    skipped: outcome.skipped,
                },
            );
        }
        self.rfm_scratch = outcome;
        self.now += self.timing.trfm;
    }

    fn catch_up_refresh(&mut self) {
        while self.now >= self.next_ref {
            let lo = self.ref_ptr;
            let hi = (self.ref_ptr + self.rows_per_ref).min(self.rows);
            self.oracle.on_rows_refreshed(lo, hi);
            self.engine.on_auto_refresh(lo, hi);
            self.counters.auto_refresh_rows += hi - lo;
            self.ref_ptr = if hi >= self.rows { 0 } else { hi };
            if S::ENABLED {
                self.obs.emit(self.now, Event::Ref { rank: 0, banks: 1 });
            }
            self.now += self.timing.trfc;
            self.next_ref += self.timing.trefi;
        }
    }
}

impl<S: EventSink> std::fmt::Debug for AttackHarness<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackHarness")
            .field("engine", &self.engine.name())
            .field("rfm_th", &self.rfm_th)
            .field("now", &self.now)
            .field("acts", &self.counters.acts)
            .field("rfms_issued", &self.rfms_issued)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mitigation::{NoMitigation, RfmOutcome};

    #[test]
    fn act_budget_matches_analysis() {
        // With RFM cadence the per-window ACT count is
        // W * RFMTH (approximately), below the no-RFM budget.
        let t = Ddr5Timing::ddr5_4800();
        let mut h = AttackHarness::new(t, Box::new(NoMitigation), 64, u64::MAX);
        let mut acts = 0u64;
        while h.try_activate(1) {
            acts += 1;
        }
        let w = t.rfm_intervals_per_trefw(64);
        let lo = (w - 2) * 64;
        let hi = w * 64 + 64;
        assert!(
            acts >= lo && acts <= hi,
            "acts = {acts}, expected ~{}",
            w * 64
        );
    }

    #[test]
    fn rfm_cadence_is_every_rfmth_acts() {
        let t = Ddr5Timing::ddr5_4800();
        let mut h = AttackHarness::new(t, Box::new(NoMitigation), 10, u64::MAX);
        for _ in 0..100 {
            assert!(h.try_activate(5));
        }
        // 100 ACTs at RFMTH=10: 10 RFM checkpoints; NoMitigation never
        // refreshes but the MC still issues the command.
        assert_eq!(h.counters().rfm_commands, 10);
    }

    #[test]
    fn auto_refresh_covers_all_rows_in_one_window() {
        let t = Ddr5Timing::ddr5_4800();
        let rows = 4096;
        let mut h =
            AttackHarness::with_rows(t, Box::new(NoMitigation), 1_000_000, u64::MAX, rows, 1);
        while h.try_activate(0) {}
        // 8192 REFs happened; every row refreshed >= 1 time.
        assert!(h.counters().auto_refresh_rows >= rows);
    }

    #[test]
    fn unprotected_single_row_hammer_disturbs_massively() {
        let t = Ddr5Timing::ddr5_4800();
        let mut h = AttackHarness::new(t, Box::new(NoMitigation), 64, u64::MAX);
        while h.try_activate(1000) {}
        // Budget minus at most two auto-refresh resets of each neighbour.
        assert!(h.oracle().max_disturbance() > 500_000);
    }

    /// An engine that refreshes the neighbours of the hottest row it saw
    /// (a 1-entry Mithril): even this drastically caps disturbance.
    struct OneEntry {
        row: Option<RowId>,
        count: u64,
    }

    impl DramMitigation for OneEntry {
        fn on_activate(&mut self, row: RowId) {
            match self.row {
                Some(r) if r == row => self.count += 1,
                _ => {
                    self.row = Some(row);
                    self.count = 1;
                }
            }
        }
        fn on_rfm_into(&mut self, out: &mut RfmOutcome) {
            match self.row {
                Some(r) => {
                    self.count = 0;
                    out.begin_refresh(r).extend([r.saturating_sub(1), r + 1]);
                }
                None => out.reset_to_skipped(),
            }
        }
        fn name(&self) -> &'static str {
            "one-entry"
        }
    }

    #[test]
    fn single_row_hammer_vs_one_entry_tracker_is_bounded() {
        let t = Ddr5Timing::ddr5_4800();
        let engine = OneEntry {
            row: None,
            count: 0,
        };
        let mut h = AttackHarness::new(t, Box::new(engine), 64, u64::MAX);
        while h.try_activate(1000) {}
        // Disturbance on rows 999/1001 is reset every RFM: bounded by ~64.
        assert!(h.oracle().max_disturbance() <= 64 + 1);
    }

    #[test]
    fn mrr_elision_skips_rfm_when_flag_clear() {
        struct NeverPending;
        impl DramMitigation for NeverPending {
            fn on_activate(&mut self, _row: RowId) {}
            fn on_rfm_into(&mut self, out: &mut RfmOutcome) {
                out.reset_to_skipped();
            }
            fn refresh_pending(&self) -> bool {
                false
            }
            fn name(&self) -> &'static str {
                "never-pending"
            }
        }
        let t = Ddr5Timing::ddr5_4800();
        let mut h = AttackHarness::new(t, Box::new(NeverPending), 8, u64::MAX);
        h.set_mrr_elision(true);
        for _ in 0..80 {
            assert!(h.try_activate(3));
        }
        assert_eq!(h.rfms_issued(), 0);
        assert_eq!(h.rfms_elided(), 10);
        assert_eq!(h.counters().mrr_commands, 10);
    }

    #[test]
    fn advance_window_continues_simulation() {
        let t = Ddr5Timing::ddr5_4800();
        let mut h = AttackHarness::new(t, Box::new(NoMitigation), 64, u64::MAX);
        while h.try_activate(1) {}
        let acts_one_window = h.counters().acts;
        assert!(!h.try_activate(1));
        h.advance_window();
        assert!(h.try_activate(1));
        h.advance_window();
        while h.try_activate(1) {}
        assert!(h.counters().acts > acts_one_window);
    }

    #[test]
    #[should_panic(expected = "rfm_th")]
    fn zero_rfmth_panics() {
        let t = Ddr5Timing::ddr5_4800();
        let _ = AttackHarness::new(t, Box::new(NoMitigation), 0, 100);
    }
}
