//! Per-bank timing state machine.
//!
//! A bank enforces the row-cycle timings of Table III: ACT → (tRCD) → column
//! commands → (tRTP / tWR) → PRE → (tRP) → next ACT, with tRC as the minimum
//! ACT-to-ACT interval and tRAS as the minimum row-open time. REF and RFM
//! make the bank busy for tRFC / tRFM respectively.

use crate::timing::Ddr5Timing;
use crate::types::{RowId, TimePs};

/// The activation state of a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// All rows closed; the bank can accept an ACT.
    Precharged,
    /// A row is open in the row buffer.
    Active(RowId),
}

/// Counters of commands a bank has executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// ACT commands.
    pub acts: u64,
    /// PRE commands.
    pub pres: u64,
    /// Read bursts.
    pub reads: u64,
    /// Write bursts.
    pub writes: u64,
    /// REF commands observed (rank-level REFs reaching this bank).
    pub refs: u64,
    /// RFM commands received.
    pub rfms: u64,
    /// Victim rows preventively refreshed (during RFM or ARR).
    pub preventive_rows: u64,
}

/// One DRAM bank: state machine + timing bookkeeping.
///
/// All `issue_*` methods assume their `can_*` counterpart returned `true`
/// (they panic otherwise) — the memory controller is responsible for
/// scheduling legality, exactly as in real DDR.
///
/// # Example
///
/// ```
/// use mithril_dram::{Bank, BankState, Ddr5Timing};
///
/// let t = Ddr5Timing::ddr5_4800();
/// let mut bank = Bank::new(t);
/// assert!(bank.can_activate(0));
/// bank.issue_activate(7, 0);
/// assert_eq!(bank.state(), BankState::Active(7));
/// // The next ACT to this bank must wait at least tRC:
/// assert_eq!(bank.earliest_activate(), t.trc);
/// ```
#[derive(Debug, Clone)]
pub struct Bank {
    timing: Ddr5Timing,
    state: BankState,
    /// Earliest time the next ACT may issue.
    next_act: TimePs,
    /// Earliest time a PRE may issue.
    next_pre: TimePs,
    /// Earliest time a column command may issue.
    next_col: TimePs,
    /// The bank is busy (REF/RFM) until this time.
    busy_until: TimePs,
    stats: BankStats,
}

impl Bank {
    /// Creates an idle, precharged bank.
    pub fn new(timing: Ddr5Timing) -> Self {
        Self {
            timing,
            state: BankState::Precharged,
            next_act: 0,
            next_pre: 0,
            next_col: 0,
            busy_until: 0,
            stats: BankStats::default(),
        }
    }

    /// Current activation state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// Command counters.
    pub fn stats(&self) -> BankStats {
        self.stats
    }

    /// The open row, if any.
    pub fn open_row(&self) -> Option<RowId> {
        match self.state {
            BankState::Active(r) => Some(r),
            BankState::Precharged => None,
        }
    }

    /// Earliest time an ACT may issue (also respects busy windows).
    pub fn earliest_activate(&self) -> TimePs {
        self.next_act.max(self.busy_until)
    }

    /// Earliest time a PRE may issue.
    pub fn earliest_precharge(&self) -> TimePs {
        self.next_pre.max(self.busy_until)
    }

    /// Earliest time a column (RD/WR) command may issue.
    pub fn earliest_column(&self) -> TimePs {
        self.next_col.max(self.busy_until)
    }

    /// True if an ACT may issue at `now`.
    pub fn can_activate(&self, now: TimePs) -> bool {
        self.state == BankState::Precharged && now >= self.earliest_activate()
    }

    /// True if a PRE may issue at `now`.
    pub fn can_precharge(&self, now: TimePs) -> bool {
        matches!(self.state, BankState::Active(_)) && now >= self.earliest_precharge()
    }

    /// True if a column command to `row` may issue at `now`.
    pub fn can_column(&self, row: RowId, now: TimePs) -> bool {
        self.state == BankState::Active(row) && now >= self.earliest_column()
    }

    /// True if the bank is precharged and idle so REF/RFM may start at `now`.
    pub fn can_refresh(&self, now: TimePs) -> bool {
        self.state == BankState::Precharged && now >= self.busy_until && now >= self.next_act
    }

    /// Opens `row` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if the ACT is not legal at `now`.
    pub fn issue_activate(&mut self, row: RowId, now: TimePs) {
        assert!(self.can_activate(now), "illegal ACT at {now}");
        self.state = BankState::Active(row);
        self.next_act = now + self.timing.trc;
        self.next_pre = now + self.timing.tras;
        self.next_col = now + self.timing.trcd;
        self.stats.acts += 1;
    }

    /// Closes the open row at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if the PRE is not legal at `now`.
    pub fn issue_precharge(&mut self, now: TimePs) {
        assert!(self.can_precharge(now), "illegal PRE at {now}");
        self.state = BankState::Precharged;
        self.next_act = self.next_act.max(now + self.timing.trp);
        self.stats.pres += 1;
    }

    /// Issues a read burst; returns the time the data burst completes.
    ///
    /// # Panics
    ///
    /// Panics if the column command is not legal at `now`.
    pub fn issue_read(&mut self, row: RowId, now: TimePs) -> TimePs {
        assert!(self.can_column(row, now), "illegal RD at {now}");
        self.stats.reads += 1;
        // Consecutive bursts are spaced by tBL; PRE must wait tRTP.
        self.next_col = now + self.timing.tbl;
        self.next_pre = self.next_pre.max(now + self.timing.trtp);
        now + self.timing.tcl + self.timing.tbl
    }

    /// Issues a write burst; returns the time the write is fully committed.
    ///
    /// # Panics
    ///
    /// Panics if the column command is not legal at `now`.
    pub fn issue_write(&mut self, row: RowId, now: TimePs) -> TimePs {
        assert!(self.can_column(row, now), "illegal WR at {now}");
        self.stats.writes += 1;
        self.next_col = now + self.timing.tbl;
        let done = now + self.timing.tcl + self.timing.tbl + self.timing.twr;
        self.next_pre = self.next_pre.max(done);
        done
    }

    /// Applies a REF to this bank (part of a rank-level REF); the bank is
    /// busy until `now + tRFC`. Returns the busy-until time.
    ///
    /// # Panics
    ///
    /// Panics if the bank is not precharged and idle.
    pub fn issue_refresh(&mut self, now: TimePs) -> TimePs {
        assert!(self.can_refresh(now), "illegal REF at {now}");
        self.busy_until = now + self.timing.trfc;
        self.stats.refs += 1;
        self.busy_until
    }

    /// Starts an RFM window; the bank is busy until `now + tRFM`. Returns
    /// the busy-until time. `victims_refreshed` is the number of rows the
    /// mitigation engine preventively refreshed inside the window.
    ///
    /// # Panics
    ///
    /// Panics if the bank is not precharged and idle.
    pub fn issue_rfm(&mut self, now: TimePs, victims_refreshed: u64) -> TimePs {
        assert!(self.can_refresh(now), "illegal RFM at {now}");
        self.busy_until = now + self.timing.trfm;
        self.stats.rfms += 1;
        self.stats.preventive_rows += victims_refreshed;
        self.busy_until
    }

    /// Executes an MC-directed adjacent-row-refresh (ARR): the bank is busy
    /// for one row cycle per victim row. Returns the busy-until time.
    ///
    /// # Panics
    ///
    /// Panics if the bank is not precharged and idle.
    pub fn issue_arr(&mut self, now: TimePs, victims: u64) -> TimePs {
        assert!(self.can_refresh(now), "illegal ARR at {now}");
        self.busy_until = now + self.timing.trc * victims.max(1);
        self.stats.preventive_rows += victims;
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> (Bank, Ddr5Timing) {
        let t = Ddr5Timing::ddr5_4800();
        (Bank::new(t), t)
    }

    #[test]
    fn act_to_act_respects_trc() {
        let (mut b, t) = bank();
        b.issue_activate(1, 0);
        b.issue_precharge(t.tras); // earliest legal PRE
        assert!(!b.can_activate(t.trc - 1));
        assert!(b.can_activate(t.trc));
    }

    #[test]
    fn column_waits_for_trcd() {
        let (mut b, t) = bank();
        b.issue_activate(3, 0);
        assert!(!b.can_column(3, t.trcd - 1));
        assert!(b.can_column(3, t.trcd));
        // Wrong row is never legal.
        assert!(!b.can_column(4, t.trcd));
    }

    #[test]
    fn read_returns_data_after_tcl_plus_burst() {
        let (mut b, t) = bank();
        b.issue_activate(3, 0);
        let done = b.issue_read(3, t.trcd);
        assert_eq!(done, t.trcd + t.tcl + t.tbl);
    }

    #[test]
    fn write_pushes_precharge_out_by_twr() {
        let (mut b, t) = bank();
        b.issue_activate(3, 0);
        let done = b.issue_write(3, t.trcd);
        assert!(!b.can_precharge(done - 1));
        assert!(b.can_precharge(done));
    }

    #[test]
    fn precharge_then_act_waits_trp() {
        let (mut b, t) = bank();
        b.issue_activate(1, 0);
        b.issue_precharge(t.tras);
        // next_act = max(tRC, tRAS + tRP) = tRC here.
        assert_eq!(b.earliest_activate(), t.trc);
        b.issue_activate(2, t.trc);
        assert_eq!(b.open_row(), Some(2));
    }

    #[test]
    fn refresh_blocks_bank_for_trfc() {
        let (mut b, t) = bank();
        let busy = b.issue_refresh(0);
        assert_eq!(busy, t.trfc);
        assert!(!b.can_activate(t.trfc - 1));
        assert!(b.can_activate(t.trfc));
    }

    #[test]
    fn rfm_blocks_bank_for_trfm() {
        let (mut b, t) = bank();
        let busy = b.issue_rfm(0, 2);
        assert_eq!(busy, t.trfm);
        assert_eq!(b.stats().rfms, 1);
        assert_eq!(b.stats().preventive_rows, 2);
        assert!(b.can_activate(t.trfm));
    }

    #[test]
    fn refresh_requires_precharged_bank() {
        let (mut b, _t) = bank();
        b.issue_activate(1, 0);
        assert!(!b.can_refresh(1_000_000));
    }

    #[test]
    fn arr_busy_scales_with_victims() {
        let (mut b, t) = bank();
        let busy = b.issue_arr(0, 2);
        assert_eq!(busy, 2 * t.trc);
        assert_eq!(b.stats().preventive_rows, 2);
    }

    #[test]
    #[should_panic(expected = "illegal ACT")]
    fn early_act_panics() {
        let (mut b, t) = bank();
        b.issue_activate(1, 0);
        b.issue_precharge(t.tras);
        b.issue_activate(2, t.trc - 1);
    }

    #[test]
    fn stats_count_commands() {
        let (mut b, t) = bank();
        b.issue_activate(1, 0);
        b.issue_read(1, t.trcd);
        b.issue_precharge(t.tras + t.trtp);
        let s = b.stats();
        assert_eq!((s.acts, s.reads, s.pres), (1, 1, 1));
    }
}
