//! Fundamental identifier and geometry types shared across the simulator.

/// Simulation time in integer picoseconds.
///
/// All DDR5 timing parameters of the paper's Table III convert exactly to
/// picoseconds (e.g. tRC = 48.64 ns = 48 640 ps), so no floating point is
/// needed anywhere in the timing model.
pub type TimePs = u64;

/// A DRAM row index within one bank.
pub type RowId = u64;

/// A rank index within a channel.
pub type RankId = usize;

/// A flat bank index within a channel (`rank * banks_per_rank + bank`).
pub type BankId = usize;

/// Physical organization of one memory channel.
///
/// Defaults follow the paper's Table III system: 1 rank of 32 banks per
/// channel (DDR5, 2 channels at the system level) and 64K rows of 8 KB per
/// bank.
///
/// # Example
///
/// ```
/// use mithril_dram::Geometry;
///
/// let g = Geometry::default();
/// assert_eq!(g.banks_total(), 32);
/// assert_eq!(g.rows_per_bank, 65_536);
/// // 8 KB rows and 64 B cache lines: 128 column bursts per row.
/// assert_eq!(g.row_bytes / g.line_bytes, 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Ranks on the channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Rows per bank.
    pub rows_per_bank: u64,
    /// Bytes per DRAM row (page size across the rank).
    pub row_bytes: u64,
    /// Bytes per cache line / column burst.
    pub line_bytes: u64,
}

impl Geometry {
    /// Total banks on the channel.
    pub fn banks_total(&self) -> usize {
        self.ranks * self.banks_per_rank
    }

    /// Cache lines (column bursts) per row.
    pub fn lines_per_row(&self) -> u64 {
        self.row_bytes / self.line_bytes
    }

    /// Bits needed to address a row within a bank.
    pub fn row_bits(&self) -> u32 {
        u64::BITS - (self.rows_per_bank - 1).leading_zeros()
    }

    /// Splits a flat bank id into `(rank, bank-within-rank)`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn split_bank(&self, bank: BankId) -> (RankId, usize) {
        assert!(bank < self.banks_total(), "bank {bank} out of range");
        (bank / self.banks_per_rank, bank % self.banks_per_rank)
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self {
            ranks: 1,
            banks_per_rank: 32,
            rows_per_bank: 65_536,
            row_bytes: 8 * 1024,
            line_bytes: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_iii() {
        let g = Geometry::default();
        assert_eq!(g.ranks, 1);
        assert_eq!(g.banks_per_rank, 32);
        assert_eq!(g.banks_total(), 32);
    }

    #[test]
    fn row_bits_for_power_of_two() {
        let g = Geometry { rows_per_bank: 65_536, ..Geometry::default() };
        assert_eq!(g.row_bits(), 16);
        let g = Geometry { rows_per_bank: 131_072, ..Geometry::default() };
        assert_eq!(g.row_bits(), 17);
    }

    #[test]
    fn split_bank_round_trips() {
        let g = Geometry { ranks: 2, banks_per_rank: 16, ..Geometry::default() };
        assert_eq!(g.split_bank(0), (0, 0));
        assert_eq!(g.split_bank(15), (0, 15));
        assert_eq!(g.split_bank(16), (1, 0));
        assert_eq!(g.split_bank(31), (1, 15));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn split_bank_checks_range() {
        let g = Geometry::default();
        let _ = g.split_bank(32);
    }

    #[test]
    fn lines_per_row_default() {
        assert_eq!(Geometry::default().lines_per_row(), 128);
    }
}
