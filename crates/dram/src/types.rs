//! Fundamental identifier and geometry types shared across the simulator.

/// Simulation time in integer picoseconds.
///
/// All DDR5 timing parameters of the paper's Table III convert exactly to
/// picoseconds (e.g. tRC = 48.64 ns = 48 640 ps), so no floating point is
/// needed anywhere in the timing model.
pub type TimePs = u64;

/// A DRAM row index within one bank.
pub type RowId = u64;

/// A memory-channel index at the system level.
///
/// Channels are fully independent command/data paths: each owns one memory
/// controller and one [`struct@crate::DramDevice`]. The newtype keeps
/// channel indices from being confused with rank or bank indices at API
/// boundaries; unwrap with `.0` where a flat index is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChannelId(pub usize);

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// A rank index within one channel.
///
/// Ranks share the channel's command/data bus but have independent
/// tFAW/tRRD activation windows and are refreshed as a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RankId(pub usize);

impl std::fmt::Display for RankId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rk{}", self.0)
    }
}

/// A flat bank index within a channel (`rank * banks_per_rank + bank`).
///
/// This stays a plain `usize` deliberately: it is the hot index of the
/// per-activation path (bank queues, engines, oracles are all `Vec`s
/// indexed by it), and the flat form avoids a divide on every lookup.
pub type BankId = usize;

/// Physical organization of a memory subsystem: channels × ranks × banks.
///
/// A `Geometry` describes the whole hierarchy the simulator composes:
/// `channels` independent channels, each with `ranks` ranks of
/// `banks_per_rank` banks. Per-channel components (devices, controllers)
/// operate on the [`Geometry::channel_view`], which is the same geometry
/// restricted to one channel.
///
/// Defaults follow the paper's Table III *per channel*: 1 rank of 32 banks
/// and 64K rows of 8 KB per bank, with a single channel so that
/// channel-oblivious uses (harnesses, per-bank experiments) see exactly the
/// classic layout. The Table III *system* is two of these channels — see
/// [`Geometry::table_iii_system`].
///
/// # Example
///
/// ```
/// use mithril_dram::Geometry;
///
/// let g = Geometry::default();
/// assert_eq!(g.channels, 1);
/// assert_eq!(g.banks_total(), 32);
/// assert_eq!(g.rows_per_bank, 65_536);
/// // 8 KB rows and 64 B cache lines: 128 column bursts per row.
/// assert_eq!(g.row_bytes / g.line_bytes, 128);
///
/// let sys = Geometry::table_iii_system();
/// assert_eq!(sys.channels, 2);
/// assert_eq!(sys.banks_system_total(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Independent memory channels at the system level.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Rows per bank.
    pub rows_per_bank: u64,
    /// Bytes per DRAM row (page size across the rank).
    pub row_bytes: u64,
    /// Bytes per cache line / column burst.
    pub line_bytes: u64,
}

impl Geometry {
    /// The paper's Table III system geometry: 2 channels × 1 rank × 32
    /// banks of 64K × 8 KB rows.
    pub fn table_iii_system() -> Self {
        Self {
            channels: 2,
            ..Self::default()
        }
    }

    /// This geometry with a different channel count.
    pub fn with_channels(self, channels: usize) -> Self {
        Self { channels, ..self }
    }

    /// This geometry with a different rank count.
    pub fn with_ranks(self, ranks: usize) -> Self {
        Self { ranks, ..self }
    }

    /// Total banks on one channel.
    pub fn banks_total(&self) -> usize {
        self.ranks * self.banks_per_rank
    }

    /// Total banks across every channel of the system.
    pub fn banks_system_total(&self) -> usize {
        self.channels * self.banks_total()
    }

    /// The single-channel view of this geometry, as seen by one memory
    /// controller and its DRAM device.
    pub fn channel_view(&self) -> Geometry {
        Geometry {
            channels: 1,
            ..*self
        }
    }

    /// Iterates over the system's channel ids.
    pub fn channel_ids(&self) -> impl Iterator<Item = ChannelId> {
        (0..self.channels).map(ChannelId)
    }

    /// Iterates over one channel's rank ids.
    pub fn rank_ids(&self) -> impl Iterator<Item = RankId> {
        (0..self.ranks).map(RankId)
    }

    /// Cache lines (column bursts) per row.
    pub fn lines_per_row(&self) -> u64 {
        self.row_bytes / self.line_bytes
    }

    /// Bits needed to address a row within a bank.
    pub fn row_bits(&self) -> u32 {
        u64::BITS - (self.rows_per_bank - 1).leading_zeros()
    }

    /// Splits a flat bank id into `(rank, bank-within-rank)`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range for one channel.
    pub fn split_bank(&self, bank: BankId) -> (RankId, usize) {
        assert!(bank < self.banks_total(), "bank {bank} out of range");
        (
            RankId(bank / self.banks_per_rank),
            bank % self.banks_per_rank,
        )
    }

    /// The flat bank id of `(rank, bank-within-rank)`.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is out of range.
    pub fn bank_of(&self, rank: RankId, bank_in_rank: usize) -> BankId {
        assert!(rank.0 < self.ranks, "rank {rank} out of range");
        assert!(
            bank_in_rank < self.banks_per_rank,
            "bank {bank_in_rank} out of range"
        );
        rank.0 * self.banks_per_rank + bank_in_rank
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self {
            channels: 1,
            ranks: 1,
            banks_per_rank: 32,
            rows_per_bank: 65_536,
            row_bytes: 8 * 1024,
            line_bytes: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_iii_channel() {
        let g = Geometry::default();
        assert_eq!(g.channels, 1);
        assert_eq!(g.ranks, 1);
        assert_eq!(g.banks_per_rank, 32);
        assert_eq!(g.banks_total(), 32);
    }

    #[test]
    fn table_iii_system_has_two_channels() {
        let g = Geometry::table_iii_system();
        assert_eq!(g.channels, 2);
        assert_eq!(g.banks_total(), 32);
        assert_eq!(g.banks_system_total(), 64);
        assert_eq!(g.channel_view(), Geometry::default());
    }

    #[test]
    fn builders_override_hierarchy_counts() {
        let g = Geometry::default().with_channels(4).with_ranks(2);
        assert_eq!(g.channels, 4);
        assert_eq!(g.ranks, 2);
        assert_eq!(g.banks_total(), 64);
        assert_eq!(g.banks_system_total(), 256);
        assert_eq!(g.channel_ids().count(), 4);
        assert_eq!(g.rank_ids().count(), 2);
    }

    #[test]
    fn row_bits_for_power_of_two() {
        let g = Geometry {
            rows_per_bank: 65_536,
            ..Geometry::default()
        };
        assert_eq!(g.row_bits(), 16);
        let g = Geometry {
            rows_per_bank: 131_072,
            ..Geometry::default()
        };
        assert_eq!(g.row_bits(), 17);
    }

    #[test]
    fn split_bank_round_trips() {
        let g = Geometry {
            ranks: 2,
            banks_per_rank: 16,
            ..Geometry::default()
        };
        assert_eq!(g.split_bank(0), (RankId(0), 0));
        assert_eq!(g.split_bank(15), (RankId(0), 15));
        assert_eq!(g.split_bank(16), (RankId(1), 0));
        assert_eq!(g.split_bank(31), (RankId(1), 15));
        for bank in 0..g.banks_total() {
            let (rank, within) = g.split_bank(bank);
            assert_eq!(g.bank_of(rank, within), bank);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn split_bank_checks_range() {
        let g = Geometry::default();
        let _ = g.split_bank(32);
    }

    #[test]
    fn lines_per_row_default() {
        assert_eq!(Geometry::default().lines_per_row(), 128);
    }

    #[test]
    fn ids_display_compactly() {
        assert_eq!(ChannelId(3).to_string(), "ch3");
        assert_eq!(RankId(1).to_string(), "rk1");
    }
}
