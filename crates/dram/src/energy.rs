//! DRAM dynamic-energy accounting.
//!
//! The paper evaluates *relative dynamic energy* by counting ACTs, PREs and
//! executed preventive refreshes (Section VI-A). We do the same: the device
//! counts operations, and [`EnergyModel`] converts counts into picojoules
//! with per-operation constants.
//!
//! The constants are representative DDR5-class values derived from
//! datasheet current profiles (IDD0/IDD4/IDD5-style arithmetic); since every
//! reported number is a *ratio* against the unprotected baseline, only the
//! relative magnitudes matter:
//!
//! * a row activate+precharge cycle moves a whole 8 KB page: ~2 nJ;
//! * a 64 B read/write burst incl. I/O: ~1 nJ;
//! * a preventive refresh of one victim row is internally an ACT+PRE pair;
//! * an auto-REF refreshes `rows_per_ref` rows, each an internal row cycle;
//! * an MRR (mode-register read, Mithril+) is a register access: ~0.05 nJ.

use crate::types::TimePs;

/// Operation counters accumulated by a device or harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyCounters {
    /// ACT commands.
    pub acts: u64,
    /// PRE commands.
    pub pres: u64,
    /// Read bursts.
    pub reads: u64,
    /// Write bursts.
    pub writes: u64,
    /// Rows refreshed by auto-refresh (REF commands × rows per REF).
    pub auto_refresh_rows: u64,
    /// Victim rows preventively refreshed (RFM/ARR remedies).
    pub preventive_rows: u64,
    /// RFM commands issued (even if the engine skipped the refresh).
    pub rfm_commands: u64,
    /// Mode-register reads (Mithril+ flag polls).
    pub mrr_commands: u64,
}

impl EnergyCounters {
    /// Element-wise sum of two counter sets.
    pub fn merged(&self, other: &EnergyCounters) -> EnergyCounters {
        EnergyCounters {
            acts: self.acts + other.acts,
            pres: self.pres + other.pres,
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            auto_refresh_rows: self.auto_refresh_rows + other.auto_refresh_rows,
            preventive_rows: self.preventive_rows + other.preventive_rows,
            rfm_commands: self.rfm_commands + other.rfm_commands,
            mrr_commands: self.mrr_commands + other.mrr_commands,
        }
    }
}

/// Per-operation energy constants in femtojoules.
///
/// # Example
///
/// ```
/// use mithril_dram::{EnergyCounters, EnergyModel};
///
/// let model = EnergyModel::ddr5_default();
/// let mut c = EnergyCounters::default();
/// c.acts = 1000;
/// c.pres = 1000;
/// let base = model.dynamic_energy_pj(&c);
/// c.preventive_rows = 10; // ten extra preventive row refreshes
/// let with_refresh = model.dynamic_energy_pj(&c);
/// assert!(with_refresh > base);
/// // Overhead is 10 row cycles on top of 1000: about 1%.
/// let overhead = (with_refresh - base) / base;
/// assert!(overhead > 0.005 && overhead < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy of an ACT command (row open), fJ.
    pub act_fj: f64,
    /// Energy of a PRE command (row close), fJ.
    pub pre_fj: f64,
    /// Energy of a 64 B read burst, fJ.
    pub read_fj: f64,
    /// Energy of a 64 B write burst, fJ.
    pub write_fj: f64,
    /// Energy of refreshing one row (internal row cycle), fJ.
    pub refresh_row_fj: f64,
    /// Energy of an MRR command, fJ.
    pub mrr_fj: f64,
    /// Static logic overhead per RFM command handed to a tracker, fJ.
    pub rfm_logic_fj: f64,
}

impl EnergyModel {
    /// Representative DDR5 x16 device constants (see module docs).
    pub fn ddr5_default() -> Self {
        Self {
            act_fj: 1_200_000.0,
            pre_fj: 800_000.0,
            read_fj: 1_000_000.0,
            write_fj: 1_100_000.0,
            refresh_row_fj: 2_000_000.0, // internal ACT+PRE pair
            mrr_fj: 50_000.0,
            rfm_logic_fj: 10_000.0,
        }
    }

    /// Total dynamic energy for `c`, in picojoules.
    pub fn dynamic_energy_pj(&self, c: &EnergyCounters) -> f64 {
        let fj = c.acts as f64 * self.act_fj
            + c.pres as f64 * self.pre_fj
            + c.reads as f64 * self.read_fj
            + c.writes as f64 * self.write_fj
            + (c.auto_refresh_rows + c.preventive_rows) as f64 * self.refresh_row_fj
            + c.mrr_commands as f64 * self.mrr_fj
            + c.rfm_commands as f64 * self.rfm_logic_fj;
        fj / 1000.0
    }

    /// Relative dynamic energy of `scheme` vs `baseline` (1.0 = equal).
    pub fn relative_energy(&self, scheme: &EnergyCounters, baseline: &EnergyCounters) -> f64 {
        self.dynamic_energy_pj(scheme) / self.dynamic_energy_pj(baseline)
    }

    /// Average power in milliwatts over a simulated duration.
    pub fn average_power_mw(&self, c: &EnergyCounters, duration: TimePs) -> f64 {
        if duration == 0 {
            return 0.0;
        }
        // pJ / ps = W; scale to mW.
        self.dynamic_energy_pj(c) / duration as f64 * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(acts: u64) -> EnergyCounters {
        EnergyCounters {
            acts,
            pres: acts,
            reads: acts * 4,
            ..Default::default()
        }
    }

    #[test]
    fn energy_is_monotone_in_counts() {
        let m = EnergyModel::ddr5_default();
        let a = m.dynamic_energy_pj(&counters(100));
        let b = m.dynamic_energy_pj(&counters(200));
        assert!(b > a);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn relative_energy_of_identical_counters_is_one() {
        let m = EnergyModel::ddr5_default();
        let c = counters(500);
        assert!((m.relative_energy(&c, &c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn preventive_refresh_costs_a_row_cycle() {
        let m = EnergyModel::ddr5_default();
        let c = EnergyCounters {
            preventive_rows: 1,
            ..Default::default()
        };
        let e = m.dynamic_energy_pj(&c);
        assert!((e - m.refresh_row_fj / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn mrr_is_much_cheaper_than_refresh() {
        let m = EnergyModel::ddr5_default();
        assert!(m.mrr_fj * 10.0 < m.refresh_row_fj);
    }

    #[test]
    fn merged_adds_fieldwise() {
        let a = counters(10);
        let b = counters(5);
        let m = a.merged(&b);
        assert_eq!(m.acts, 15);
        assert_eq!(m.reads, 60);
    }

    #[test]
    fn power_over_zero_duration_is_zero() {
        let m = EnergyModel::ddr5_default();
        assert_eq!(m.average_power_mw(&counters(10), 0), 0.0);
    }

    #[test]
    fn power_is_positive_over_time() {
        let m = EnergyModel::ddr5_default();
        let p = m.average_power_mw(&counters(1000), 1_000_000_000);
        assert!(p > 0.0);
    }
}
