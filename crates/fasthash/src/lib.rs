//! Shared fast hashing for the hot paths of the reproduction.
//!
//! Every DRAM activation updates at least one keyed lookup (the Mithril
//! table index, the disturbance oracle, tracker tables, the simulator's
//! MSHR maps), so hashing cost is a first-order term of simulation
//! throughput. `std`'s default `HashMap` hasher is SipHash-1-3 — a keyed
//! DoS-resistant hash that costs tens of cycles per `u64`. None of these
//! structures face attacker-controlled keys across a trust boundary (they
//! model *hardware CAMs*), so this crate provides two cheaper families:
//!
//! * [`FxHasher64`] / [`FastHashMap`] — a multiply-fold hasher in the
//!   FxHash/multiply-shift tradition for `HashMap`-style containers: one
//!   XOR + one multiply + one rotate per 8-byte word.
//! * [`MultiplyShiftHasher`] — the 2-universal multiply-shift family
//!   (Dietzfelbinger et al.) for power-of-two sketch ranges, used by the
//!   Count-Min Sketch and counting Bloom filters; this is the hash family
//!   hardware sketches implement.
//!
//! Both are seeded/finalized through [`splitmix64`] so that the
//! near-sequential row addresses DRAM workloads produce do not collide
//! systematically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// One round of the splitmix64 mixing function.
///
/// Used as a seed expander and as a pre-hash finalizer wherever sequential
/// keys (row addresses, line addresses) must be spread across buckets.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The deterministic RNG seed of stream `shard` under `base`.
///
/// One half of the workspace-wide seed-derivation contract (the other is
/// [`splitmix64_seed`]): a *shard* (a work-stealing shard in the runner
/// engine, a recorded trace, a workload stream) gets a seed that depends
/// only on `(base, shard)` — never on which thread computed it or when.
#[inline]
pub fn splitmix64_shard(base: u64, shard: u64) -> u64 {
    splitmix64(base ^ splitmix64(shard).rotate_left(17))
}

/// The deterministic per-item RNG seed at `offset` within shard `shard`
/// under `base`.
///
/// This is the seed-derivation helper shared by the runner's sharded
/// engine (`mithril_runner::engine::item_seed`), workload seeding, and
/// trace record/replay: an item's seed is a pure function of its position
/// `(shard, offset)` and the base seed, so results are bit-identical at
/// any worker-thread count. Extracted here so every consumer derives
/// seeds through the *same* construction.
///
/// # Example
///
/// ```
/// use mithril_fasthash::splitmix64_seed;
///
/// // Position-determined: same inputs, same seed.
/// assert_eq!(splitmix64_seed(1, 2, 3), splitmix64_seed(1, 2, 3));
/// // Any coordinate change gives an unrelated seed.
/// assert_ne!(splitmix64_seed(1, 2, 3), splitmix64_seed(1, 2, 4));
/// assert_ne!(splitmix64_seed(1, 2, 3), splitmix64_seed(1, 3, 3));
/// assert_ne!(splitmix64_seed(1, 2, 3), splitmix64_seed(2, 2, 3));
/// ```
#[inline]
pub fn splitmix64_seed(base: u64, shard: u64, offset: u64) -> u64 {
    splitmix64(splitmix64_shard(base, shard) ^ offset.wrapping_add(1))
}

/// A fast multiply-fold hasher for in-process hash maps.
///
/// Follows the FxHash recipe (fold each word with XOR-multiply-rotate).
/// Not DoS-resistant — use only for keys that are not adversarial inputs,
/// which holds for every map in this workspace (they model hardware state
/// indexed by physical row/line addresses).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    const K: u64 = 0x517C_C1B7_2722_0A95; // pi-derived odd constant (FxHash)

    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash ^ word).wrapping_mul(Self::K).rotate_left(5);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        // A final avalanche so low-entropy single-word keys (sequential row
        // ids) still differ in the top bits HashMap uses for its control
        // bytes.
        splitmix64(self.hash)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.fold(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher64`].
pub type BuildFastHasher = BuildHasherDefault<FxHasher64>;

/// A `HashMap` keyed through [`FxHasher64`]; drop-in for `std::HashMap`.
pub type FastHashMap<K, V> = HashMap<K, V, BuildFastHasher>;

/// A `HashSet` keyed through [`FxHasher64`]; drop-in for `std::HashSet`.
pub type FastHashSet<T> = HashSet<T, BuildFastHasher>;

/// Creates an empty [`FastHashMap`] with room for `capacity` entries.
pub fn fast_map_with_capacity<K, V>(capacity: usize) -> FastHashMap<K, V> {
    FastHashMap::with_capacity_and_hasher(capacity, BuildFastHasher::default())
}

/// Creates an empty [`FastHashSet`] with room for `capacity` entries.
pub fn fast_set_with_capacity<T>(capacity: usize) -> FastHashSet<T> {
    FastHashSet::with_capacity_and_hasher(capacity, BuildFastHasher::default())
}

/// A member of the multiply-shift universal hash family.
///
/// Maps a `u64` key to a bucket in `[0, 2^out_bits)`. 2-universal for
/// power-of-two ranges; this is the family hardware sketch structures
/// (Count-Min Sketch, counting Bloom filters) implement, and the exemplar
/// multiply-shift idiom (`(seed * hash) >> shift`).
///
/// # Example
///
/// ```
/// use mithril_fasthash::MultiplyShiftHasher;
///
/// let h = MultiplyShiftHasher::new(42, 10);
/// let b = h.bucket(0xDEAD_BEEF);
/// assert!(b < 1024);
/// // Deterministic:
/// assert_eq!(b, MultiplyShiftHasher::new(42, 10).bucket(0xDEAD_BEEF));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplyShiftHasher {
    multiplier: u64,
    out_bits: u32,
}

impl MultiplyShiftHasher {
    /// Creates a hasher for range `[0, 2^out_bits)` seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `out_bits` is 0 or greater than 63.
    pub fn new(seed: u64, out_bits: u32) -> Self {
        assert!(out_bits > 0 && out_bits < 64, "out_bits must be in 1..=63");
        // Derive an odd multiplier from the seed with a splitmix64 round so
        // that consecutive seeds give unrelated hash functions.
        let multiplier = splitmix64(seed) | 1;
        Self {
            multiplier,
            out_bits,
        }
    }

    /// Hashes `key` into `[0, 2^out_bits)`.
    #[inline]
    pub fn bucket(&self, key: u64) -> usize {
        let mixed = splitmix64(key);
        (mixed.wrapping_mul(self.multiplier) >> (64 - self.out_bits)) as usize
    }

    /// The number of output buckets, `2^out_bits`.
    pub fn range(&self) -> usize {
        1usize << self.out_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_map_behaves_like_hashmap() {
        let mut m: FastHashMap<u64, u64> = fast_map_with_capacity(16);
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.remove(&500), Some(1000));
        assert_eq!(m.len(), 999);
    }

    #[test]
    fn hasher_spreads_sequential_keys() {
        use std::hash::BuildHasher;
        let b = BuildFastHasher::default();
        let mut tops: FastHashSet<u8> = FastHashSet::default();
        for k in 0u64..256 {
            tops.insert((b.hash_one(k) >> 57) as u8);
        }
        // Sequential keys must cover most of the 7-bit control-byte space
        // HashMap probes with.
        assert!(tops.len() > 64, "only {} distinct top bytes", tops.len());
    }

    #[test]
    fn hasher_handles_unaligned_bytes() {
        use std::hash::Hasher;
        let mut a = FxHasher64::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let mut b = FxHasher64::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn multiply_shift_bucket_in_range() {
        let h = MultiplyShiftHasher::new(7, 5);
        for key in 0..10_000u64 {
            assert!(h.bucket(key) < 32);
        }
        assert_eq!(MultiplyShiftHasher::new(0, 3).range(), 8);
    }

    #[test]
    fn multiply_shift_seeds_differ() {
        let a = MultiplyShiftHasher::new(1, 16);
        let b = MultiplyShiftHasher::new(2, 16);
        let differing = (0..1000u64).filter(|&k| a.bucket(k) != b.bucket(k)).count();
        assert!(
            differing > 900,
            "seeds should give mostly different buckets"
        );
    }

    #[test]
    #[should_panic(expected = "out_bits")]
    fn zero_bits_panics() {
        let _ = MultiplyShiftHasher::new(0, 0);
    }

    #[test]
    fn seed_derivation_matches_documented_construction() {
        // The contract other crates (runner engine, trace replay) rely on:
        // splitmix64_seed is exactly splitmix64 over the shard seed XOR the
        // 1-based offset. Pin it so refactors cannot silently reseed every
        // recorded sweep baseline.
        let base = 42;
        let shard = splitmix64(base ^ splitmix64(7).rotate_left(17));
        assert_eq!(splitmix64_shard(base, 7), shard);
        assert_eq!(splitmix64_seed(base, 7, 3), splitmix64(shard ^ 4));
    }

    #[test]
    fn seed_derivation_does_not_collide_over_small_grid() {
        let mut seen = FastHashSet::default();
        for base in 0..4u64 {
            for shard in 0..16u64 {
                for offset in 0..16u64 {
                    seen.insert(splitmix64_seed(base, shard, offset));
                }
            }
        }
        assert_eq!(seen.len(), 4 * 16 * 16, "seed grid must not collide");
    }
}
