//! Graphene (Park et al., MICRO 2020) and the RFM-Graphene strawman.
//!
//! **Graphene** is the state-of-the-art MC-side deterministic scheme: a
//! Counter-based Summary table whose entries trigger an immediate ARR every
//! time their estimated count crosses another multiple of the trigger
//! threshold `T`. The table is reset every reset window; to keep the
//! guarantee across the reset boundary the threshold must be provisioned at
//! `T = FlipTH/4` (half for double-sided, half again for the reset — the
//! two-fold cost Mithril's wrapping counters avoid, paper Section IV-E).
//!
//! **RFM-Graphene** (paper Fig. 2) ports the same trigger logic to the RFM
//! interface: rows crossing `T` are buffered and their victims refreshed
//! only when RFM windows arrive. Because RFM is periodic — one refresh per
//! `RFMTH` ACTs — a burst of rows crossing `T` together queues up, and the
//! last row in the queue keeps taking hits while it waits. This is the
//! concentration weakness that motivates Mithril's greedy selection.

use mithril_dram::{BankId, Ddr5Timing, DramMitigation, RfmOutcome, RowId, TimePs};
use mithril_memctrl::{McAction, McMitigation};
use mithril_trackers::{FrequencyTracker, SpaceSaving};
use std::collections::VecDeque;

/// Graphene configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrapheneConfig {
    /// Trigger threshold `T`: an ARR fires each time an entry's estimate
    /// crosses a multiple of `T`.
    pub threshold: u64,
    /// Table entries.
    pub nentry: usize,
    /// Table reset period (the paper resets every tREFW).
    pub reset_period: TimePs,
    /// Rows per bank.
    pub rows_per_bank: u64,
}

impl GrapheneConfig {
    /// The paper's provisioning for a FlipTH: `T = FlipTH/4` and an entry
    /// count that keeps the CbS error below `T` over one reset window
    /// (`Nentry ≈ budget/T`).
    ///
    /// # Panics
    ///
    /// Panics if `flip_th < 4`.
    pub fn for_flip_threshold(flip_th: u64, timing: &Ddr5Timing) -> Self {
        assert!(flip_th >= 4, "flip_th too small");
        let threshold = flip_th / 4;
        let budget = timing.act_budget_per_trefw();
        let nentry = (budget / threshold.max(1) + 1) as usize;
        Self {
            threshold,
            nentry,
            reset_period: timing.trefw,
            rows_per_bank: 65_536,
        }
    }

    /// Per-bank table size in KiB: address bits + full-budget-width
    /// counters (Graphene cannot use wrapping counters; Section VI-E).
    pub fn table_kib(&self, timing: &Ddr5Timing) -> f64 {
        let addr_bits = 64 - (self.rows_per_bank - 1).leading_zeros();
        let counter_bits = 64 - timing.act_budget_per_trefw().leading_zeros();
        self.nentry as f64 * (addr_bits + counter_bits) as f64 / 8.0 / 1024.0
    }
}

/// One bank's Graphene instance (MC-side; the paper replicates it per
/// bank, so the sim instantiates one per bank via [`GrapheneBankSet`]).
#[derive(Debug, Clone)]
struct GrapheneBank {
    table: SpaceSaving,
    /// Per-slot count of threshold multiples already triggered.
    fired: mithril_fasthash::FastHashMap<RowId, u64>,
}

impl GrapheneBank {
    fn new(nentry: usize) -> Self {
        Self {
            table: SpaceSaving::new(nentry),
            fired: mithril_fasthash::FastHashMap::default(),
        }
    }

    /// Returns victims to ARR if the activation crossed a threshold.
    fn on_activate(&mut self, row: RowId, cfg: &GrapheneConfig) -> Option<Vec<RowId>> {
        self.table.record(row);
        let est = self.table.estimate(row);
        let crossings = est / cfg.threshold;
        let fired = self.fired.entry(row).or_insert(0);
        if crossings > *fired {
            *fired = crossings;
            let mut victims = Vec::with_capacity(2);
            if row > 0 {
                victims.push(row - 1);
            }
            if row + 1 < cfg.rows_per_bank {
                victims.push(row + 1);
            }
            Some(victims)
        } else {
            None
        }
    }

    fn reset(&mut self) {
        self.table.clear();
        self.fired.clear();
    }
}

/// Graphene across all banks of a channel (implements
/// [`McMitigation`]).
///
/// # Example
///
/// ```
/// use mithril_baselines::{Graphene, GrapheneConfig};
/// use mithril_dram::Ddr5Timing;
/// use mithril_memctrl::{McAction, McMitigation};
///
/// let t = Ddr5Timing::ddr5_4800();
/// let cfg = GrapheneConfig::for_flip_threshold(6_250, &t);
/// let mut g = Graphene::new(cfg, 32);
/// // Crossing T = FlipTH/4 activations of one row triggers an ARR.
/// let mut fired = false;
/// for i in 0..cfg.threshold + 1 {
///     if let McAction::Arr { .. } = g.on_activate(0, 1000, 0, i) {
///         fired = true;
///     }
/// }
/// assert!(fired);
/// ```
#[derive(Debug)]
pub struct Graphene {
    config: GrapheneConfig,
    banks: Vec<GrapheneBank>,
    next_reset: TimePs,
    arrs: u64,
}

impl Graphene {
    /// Creates per-bank Graphene tables for `banks` banks.
    pub fn new(config: GrapheneConfig, banks: usize) -> Self {
        Self {
            banks: (0..banks)
                .map(|_| GrapheneBank::new(config.nentry))
                .collect(),
            next_reset: config.reset_period,
            config,
            arrs: 0,
        }
    }

    /// ARRs triggered so far.
    pub fn arrs_triggered(&self) -> u64 {
        self.arrs
    }

    /// The configuration in use.
    pub fn config(&self) -> &GrapheneConfig {
        &self.config
    }
}

impl McMitigation for Graphene {
    fn on_activate(&mut self, bank: BankId, row: RowId, _thread: usize, now: TimePs) -> McAction {
        while now >= self.next_reset {
            for b in &mut self.banks {
                b.reset();
            }
            self.next_reset += self.config.reset_period;
        }
        match self.banks[bank].on_activate(row, &self.config) {
            Some(victims) => {
                self.arrs += 1;
                McAction::Arr { bank, victims }
            }
            None => McAction::None,
        }
    }

    fn may_throttle(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "graphene"
    }
}

/// The Fig. 2 strawman: Graphene's threshold trigger behind the RFM
/// interface (DRAM-side, one per bank).
///
/// Rows whose estimate crosses the threshold join a pending queue; each RFM
/// window refreshes the victims of *one* queued row. Under a concentration
/// attack the queue grows and queued rows keep accumulating ACTs — the
/// effect measured by `bin/fig2`.
#[derive(Debug)]
pub struct RfmGraphene {
    table: SpaceSaving,
    threshold: u64,
    rows_per_bank: u64,
    pending: VecDeque<RowId>,
    refreshes: u64,
}

impl RfmGraphene {
    /// Creates the strawman with trigger `threshold` and a CbS table of
    /// `nentry` entries.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero or `nentry` is zero.
    pub fn new(threshold: u64, nentry: usize, rows_per_bank: u64) -> Self {
        assert!(threshold > 0, "threshold must be non-zero");
        Self {
            table: SpaceSaving::new(nentry),
            threshold,
            rows_per_bank,
            pending: VecDeque::new(),
            refreshes: 0,
        }
    }

    /// Rows currently waiting for an RFM window.
    pub fn pending_rows(&self) -> usize {
        self.pending.len()
    }

    /// Preventive refreshes executed.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }
}

impl DramMitigation for RfmGraphene {
    fn on_activate(&mut self, row: RowId) {
        self.table.record(row);
        // Crossing the threshold enqueues the row once.
        if self.table.estimate(row) >= self.threshold && !self.pending.contains(&row) {
            self.pending.push_back(row);
        }
    }

    fn on_rfm_into(&mut self, out: &mut RfmOutcome) {
        match self.pending.pop_front() {
            Some(row) => {
                self.table.reset_to_min(row);
                self.refreshes += 1;
                let victims = out.begin_refresh(row);
                if row > 0 {
                    victims.push(row - 1);
                }
                if row + 1 < self.rows_per_bank {
                    victims.push(row + 1);
                }
            }
            None => out.reset_to_skipped(),
        }
    }

    fn name(&self) -> &'static str {
        "rfm-graphene"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> Ddr5Timing {
        Ddr5Timing::ddr5_4800()
    }

    #[test]
    fn config_provisions_quarter_threshold() {
        let cfg = GrapheneConfig::for_flip_threshold(50_000, &timing());
        assert_eq!(cfg.threshold, 12_500);
        // budget/T entries: ~620K/12.5K ≈ 49.
        assert!((40..60).contains(&cfg.nentry), "nentry = {}", cfg.nentry);
    }

    #[test]
    fn table_kib_matches_table_iv_scale() {
        let t = timing();
        // Paper Table IV Graphene @ MC: 0.14 KB at 50K, 3.7 KB at 1.5K.
        let k50 = GrapheneConfig::for_flip_threshold(50_000, &t).table_kib(&t);
        let k1_5 = GrapheneConfig::for_flip_threshold(1_500, &t).table_kib(&t);
        assert!((0.1..0.4).contains(&k50), "k50 = {k50}");
        assert!((2.0..9.0).contains(&k1_5), "k1_5 = {k1_5}");
        assert!(k1_5 / k50 > 10.0, "size must scale with 1/FlipTH");
    }

    #[test]
    fn arr_fires_at_every_threshold_multiple() {
        let t = timing();
        let mut cfg = GrapheneConfig::for_flip_threshold(6_250, &t);
        cfg.threshold = 100;
        let mut g = Graphene::new(cfg, 1);
        let mut fired_at = Vec::new();
        for i in 1..=350u64 {
            if let McAction::Arr { .. } = g.on_activate(0, 7, 0, 0) {
                fired_at.push(i);
            }
        }
        assert_eq!(fired_at, vec![100, 200, 300]);
    }

    #[test]
    fn reset_period_clears_tables() {
        let t = timing();
        let mut cfg = GrapheneConfig::for_flip_threshold(6_250, &t);
        cfg.threshold = 100;
        let mut g = Graphene::new(cfg, 1);
        for _ in 0..99 {
            g.on_activate(0, 7, 0, 0);
        }
        // After the reset the count restarts: 99 more ACTs stay silent.
        let after_reset = cfg.reset_period + 1;
        for _ in 0..99 {
            assert_eq!(g.on_activate(0, 7, 0, after_reset), McAction::None);
        }
        assert_eq!(
            g.on_activate(0, 7, 0, after_reset),
            McAction::Arr {
                bank: 0,
                victims: vec![6, 8]
            }
        );
    }

    #[test]
    fn banks_are_tracked_independently() {
        let t = timing();
        let mut cfg = GrapheneConfig::for_flip_threshold(6_250, &t);
        cfg.threshold = 10;
        let mut g = Graphene::new(cfg, 2);
        for _ in 0..9 {
            g.on_activate(0, 7, 0, 0);
            g.on_activate(1, 7, 0, 0);
        }
        // The 10th ACT on bank 1 fires only bank 1's trigger.
        assert!(matches!(
            g.on_activate(1, 7, 0, 0),
            McAction::Arr { bank: 1, .. }
        ));
    }

    #[test]
    fn rfm_graphene_buffers_and_drains_one_per_rfm() {
        let mut s = RfmGraphene::new(10, 16, 1_000);
        for row in [100u64, 200, 300] {
            for _ in 0..10 {
                s.on_activate(row);
            }
        }
        assert_eq!(s.pending_rows(), 3);
        assert_eq!(s.on_rfm().selected_aggressor, Some(100));
        assert_eq!(s.on_rfm().selected_aggressor, Some(200));
        assert_eq!(s.on_rfm().selected_aggressor, Some(300));
        assert!(s.on_rfm().skipped);
    }

    #[test]
    fn rfm_graphene_concentration_queue_grows() {
        // Many rows crossing together: the queue outpaces the 1-per-RFM
        // drain — the Fig. 2 weakness.
        let mut s = RfmGraphene::new(50, 256, 65_536);
        for round in 0..50u64 {
            for row in 0..64u64 {
                s.on_activate(row * 2 + 1000);
            }
            if round % 4 == 3 {
                s.on_rfm();
            }
        }
        assert!(s.pending_rows() > 32, "queue = {}", s.pending_rows());
    }
}
