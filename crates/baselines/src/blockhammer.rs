//! BlockHammer (Yağlıkçı et al., HPCA 2021): blacklist-and-throttle.
//!
//! BlockHammer tracks activation rates with a pair of time-interleaved
//! counting Bloom filters (CBFs). Each CBF covers an epoch of `tCBF`
//! (≈ tREFW); the two epochs overlap by half so a rolling window is always
//! over-approximated. A row whose CBF estimate reaches the blacklist
//! threshold `NBL` is throttled: its next activation is delayed so that no
//! aggressor can exceed its share of FlipTH within the window. The paper's
//! footnote gives `tDelay = (tCBF − NBL×tRC)/(FlipTH − NBL)`; since two
//! aggressors share a victim (double-sided), the per-aggressor cap must be
//! `FlipTH/2` — which is also why the paper requires `NBL < FlipTH/2` — so
//! we instantiate the equation with that cap:
//!
//! ```text
//! tDelay = (tCBF − NBL × tRC) / (FlipTH/2 − NBL)
//! ```
//!
//! Throttling needs no DRAM cooperation, but (a) the CBF aliases benign
//! rows onto attacker-inflated counters — the performance-adversarial
//! pattern of paper Fig. 10(c) — and (b) at low FlipTH the blacklist
//! threshold sinks below benign per-row ACT counts, throttling legitimate
//! memory-intensive threads (Fig. 10(a)).

use mithril_dram::{BankId, Ddr5Timing, RowId, TimePs};
use mithril_fasthash::FastHashMap;
use mithril_memctrl::{McAction, McMitigation};
use mithril_trackers::{CountingBloomFilter, FrequencyTracker};

/// BlockHammer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHammerConfig {
    /// Counters per CBF (must be a power of two).
    pub cbf_counters: usize,
    /// Hash functions per CBF.
    pub cbf_hashes: usize,
    /// Blacklist threshold `NBL` (possibly rescaled, see
    /// [`BlockHammerConfig::with_nbl_scaled`]).
    pub nbl: u64,
    /// The Row Hammer threshold being protected.
    pub flip_th: u64,
    /// CBF epoch (`tCBF`), typically tREFW.
    pub t_cbf: TimePs,
    /// Row cycle time (for the delay equation).
    pub trc: TimePs,
    /// The throttle delay, fixed at construction from the *paper-scale*
    /// parameters so that NBL rescaling (short-slice simulation) keeps the
    /// real delay magnitude.
    pub t_delay: TimePs,
}

impl BlockHammerConfig {
    /// The paper's Section VI-A configurations, keyed by FlipTH
    /// (`(CBF size, NBL)` pairs from the text).
    ///
    /// # Panics
    ///
    /// Panics if `flip_th` is not one of the six evaluated thresholds.
    pub fn for_flip_threshold(flip_th: u64, timing: &Ddr5Timing) -> Self {
        let (counters, nbl) = match flip_th {
            50_000 => (1024, 17_100),
            25_000 => (1024, 8_600),
            12_500 => (1024, 4_300),
            6_250 => (2048, 2_100),
            3_125 => (4096, 1_100),
            1_500 => (8192, 490),
            other => panic!("no BlockHammer configuration for FlipTH {other}"),
        };
        assert!(nbl < flip_th / 2, "NBL must be below FlipTH/2");
        let t_cbf = timing.trefw;
        Self {
            cbf_counters: counters,
            cbf_hashes: 4,
            nbl,
            flip_th,
            t_cbf,
            trc: timing.trc,
            t_delay: (t_cbf - nbl * timing.trc) / (flip_th / 2 - nbl),
        }
    }

    /// Rescales `NBL` by `1/div` for short simulation slices.
    ///
    /// BlockHammer's blacklist threshold is calibrated against per-row ACT
    /// counts accumulated over a full 32 ms window (the BlockHammer paper's
    /// benign rows reach ~700 ACTs; this paper's Section VI-A reports the
    /// same). A short simulated slice only sees one sweep burst per row
    /// (≈ the row's 128 cache lines), so runs shorter than tREFW must
    /// divide `NBL` by the ratio of the two (≈ 6) to reproduce the paper's
    /// benign-misidentification regime. The throttle delay keeps its
    /// paper-scale value. Returns the adjusted configuration.
    ///
    /// # Panics
    ///
    /// Panics if `div` is zero.
    pub fn with_nbl_scaled(mut self, div: u64) -> Self {
        assert!(div > 0, "div must be non-zero");
        self.nbl = (self.nbl / div).max(4);
        self
    }

    /// The throttle delay applied to blacklisted rows:
    /// `tDelay = (tCBF − NBL×tRC)/(FlipTH/2 − NBL)` at paper scale.
    pub fn t_delay(&self) -> TimePs {
        self.t_delay
    }

    /// Per-bank table size in KiB: two CBFs of `cbf_counters` counters
    /// wide enough to count to ~2×NBL, matching the Table IV scale.
    pub fn table_kib(&self) -> f64 {
        let counter_bits = 64 - (2 * self.nbl).leading_zeros();
        2.0 * self.cbf_counters as f64 * counter_bits as f64 / 8.0 / 1024.0
    }
}

/// Per-bank BlockHammer state.
#[derive(Debug)]
struct BankState {
    /// The two time-interleaved CBFs.
    cbfs: [CountingBloomFilter; 2],
    /// Last activation time of rows currently considered hot.
    last_act: FastHashMap<RowId, TimePs>,
}

/// The BlockHammer mitigation (MC-side, throttling remedy).
///
/// # Example
///
/// ```
/// use mithril_baselines::{BlockHammer, BlockHammerConfig};
/// use mithril_dram::Ddr5Timing;
/// use mithril_memctrl::McMitigation;
///
/// let t = Ddr5Timing::ddr5_4800();
/// let cfg = BlockHammerConfig::for_flip_threshold(1_500, &t);
/// let mut bh = BlockHammer::new(cfg, 1);
/// // Hammer one row past NBL: its next ACT gets delayed.
/// let mut now = 0;
/// for _ in 0..cfg.nbl + 1 {
///     bh.on_activate(0, 42, 0, now);
///     now += t.trc;
/// }
/// assert!(bh.activate_allowed_at(0, 42, 0, now) > now);
/// ```
#[derive(Debug)]
pub struct BlockHammer {
    config: BlockHammerConfig,
    banks: Vec<BankState>,
    /// Epoch half-period boundary bookkeeping: which CBF clears next.
    next_swap: TimePs,
    swap_parity: usize,
    throttled_rows: u64,
}

impl BlockHammer {
    /// Creates BlockHammer state for `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `cbf_counters` is not a power of two.
    pub fn new(config: BlockHammerConfig, banks: usize) -> Self {
        assert!(
            config.cbf_counters.is_power_of_two(),
            "CBF size must be a power of two"
        );
        let bits = config.cbf_counters.trailing_zeros();
        let mk = |seed: u64| CountingBloomFilter::new(bits, config.cbf_hashes, seed);
        Self {
            banks: (0..banks)
                .map(|b| BankState {
                    cbfs: [mk(2 * b as u64), mk(2 * b as u64 + 1)],
                    last_act: FastHashMap::default(),
                })
                .collect(),
            next_swap: config.t_cbf / 2,
            swap_parity: 0,
            config,
            throttled_rows: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BlockHammerConfig {
        &self.config
    }

    /// Number of (row, epoch) blacklist events so far.
    pub fn throttled_rows(&self) -> u64 {
        self.throttled_rows
    }

    /// The rolling-window estimate for a row (max over the two CBFs).
    pub fn estimate(&self, bank: BankId, row: RowId) -> u64 {
        let key = Self::key(bank, row);
        self.banks[bank]
            .cbfs
            .iter()
            .map(|c| c.estimate(key))
            .max()
            .unwrap_or(0)
    }

    /// True if `row` on `bank` is currently blacklisted.
    pub fn is_blacklisted(&self, bank: BankId, row: RowId) -> bool {
        self.estimate(bank, row) >= self.config.nbl
    }

    fn key(bank: BankId, row: RowId) -> u64 {
        (bank as u64) << 32 | row
    }

    /// Rows an attacker activates so that *every* CBF bucket of `victim`
    /// (on `bank`) gets inflated — the "profiled rows that share the CBF
    /// entry with the benign threads" of the paper's performance-
    /// adversarial pattern (Section VI-A).
    ///
    /// BlockHammer's hash functions are structural (seeded by the bank
    /// index), so an attacker can replicate them offline; this function is
    /// that replication: a greedy cover of the victim's buckets in both
    /// time-interleaved CBFs. Hammering each returned row past `NBL`
    /// blacklists `victim` without the attacker ever touching it.
    pub fn collision_cover_rows(
        config: &BlockHammerConfig,
        bank: BankId,
        victim: RowId,
        rows_per_bank: u64,
    ) -> Vec<RowId> {
        let bits = config.cbf_counters.trailing_zeros();
        let cbfs = [
            CountingBloomFilter::new(bits, config.cbf_hashes, 2 * bank as u64),
            CountingBloomFilter::new(bits, config.cbf_hashes, 2 * bank as u64 + 1),
        ];
        let vkey = Self::key(bank, victim);
        let mut need: std::collections::HashSet<(usize, usize)> = (0..2)
            .flat_map(|f| cbfs[f].buckets(vkey).into_iter().map(move |b| (f, b)))
            .collect();
        let mut cover = Vec::new();
        for r in 0..rows_per_bank {
            if need.is_empty() {
                break;
            }
            if r == victim {
                continue;
            }
            let key = Self::key(bank, r);
            let mut hit = false;
            for (f, cbf) in cbfs.iter().enumerate() {
                for b in cbf.buckets(key) {
                    hit |= need.remove(&(f, b));
                }
            }
            if hit {
                cover.push(r);
            }
        }
        cover
    }

    fn maybe_swap(&mut self, now: TimePs) {
        while now >= self.next_swap {
            // Clear the older CBF: counts older than tCBF are forgotten.
            let idx = self.swap_parity;
            for bank in &mut self.banks {
                bank.cbfs[idx].clear();
                bank.last_act.clear();
            }
            self.swap_parity ^= 1;
            self.next_swap += self.config.t_cbf / 2;
        }
    }
}

impl McMitigation for BlockHammer {
    fn on_activate(&mut self, bank: BankId, row: RowId, _thread: usize, now: TimePs) -> McAction {
        self.maybe_swap(now);
        let key = Self::key(bank, row);
        let state = &mut self.banks[bank];
        for cbf in &mut state.cbfs {
            cbf.record(key);
        }
        let est = state
            .cbfs
            .iter()
            .map(|c| c.estimate(key))
            .max()
            .unwrap_or(0);
        if est >= self.config.nbl {
            if est == self.config.nbl {
                self.throttled_rows += 1;
            }
            state.last_act.insert(row, now);
        }
        McAction::None
    }

    fn activate_allowed_at(&self, bank: BankId, row: RowId, _thread: usize, now: TimePs) -> TimePs {
        if !self.is_blacklisted(bank, row) {
            return now;
        }
        match self.banks[bank].last_act.get(&row) {
            Some(&last) => now.max(last + self.config.t_delay()),
            None => now,
        }
    }

    fn name(&self) -> &'static str {
        "blockhammer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> Ddr5Timing {
        Ddr5Timing::ddr5_4800()
    }

    fn small_config() -> BlockHammerConfig {
        let t = timing();
        BlockHammerConfig {
            cbf_counters: 256,
            cbf_hashes: 4,
            nbl: 100,
            flip_th: 1_000,
            t_cbf: t.trefw,
            trc: t.trc,
            t_delay: (t.trefw - 100 * t.trc) / 400,
        }
    }

    #[test]
    fn delay_equation_uses_half_flipth_cap() {
        let cfg = small_config();
        // tDelay = (tCBF − NBL·tRC)/(FlipTH/2 − NBL)
        let expect = (cfg.t_cbf - 100 * cfg.trc) / (500 - 100);
        assert_eq!(cfg.t_delay(), expect);
    }

    #[test]
    fn delay_caps_aggressor_at_half_flipth_per_window() {
        // With tDelay, a blacklisted row gains at most (FlipTH/2 − NBL)
        // more ACTs within the remaining window, so a double-sided pair
        // cannot push a shared victim past FlipTH.
        let cfg = small_config();
        let acts_possible = cfg.nbl + (cfg.t_cbf - cfg.nbl * cfg.trc) / cfg.t_delay();
        assert!(
            acts_possible <= cfg.flip_th / 2 + 1,
            "acts possible = {acts_possible}"
        );
    }

    #[test]
    fn row_blacklisted_after_nbl_acts() {
        let mut bh = BlockHammer::new(small_config(), 1);
        let mut now = 0;
        for _ in 0..99 {
            bh.on_activate(0, 5, 0, now);
            now += 50_000;
        }
        assert!(!bh.is_blacklisted(0, 5));
        bh.on_activate(0, 5, 0, now);
        assert!(bh.is_blacklisted(0, 5));
        assert_eq!(bh.throttled_rows(), 1);
    }

    #[test]
    fn blacklisted_row_gets_delay() {
        let mut bh = BlockHammer::new(small_config(), 1);
        let mut now = 0;
        for _ in 0..101 {
            bh.on_activate(0, 5, 0, now);
            now += 50_000;
        }
        let release = bh.activate_allowed_at(0, 5, 0, now);
        assert!(release > now);
        // Non-blacklisted rows are unaffected.
        assert_eq!(bh.activate_allowed_at(0, 6, 0, now), now);
    }

    #[test]
    fn cbf_aliasing_throttles_innocent_rows() {
        // A benign row sharing all CBF buckets with the attacker's row
        // inherits the blacklist — the adversarial pattern's foundation.
        let bh = BlockHammer::new(small_config(), 1);
        let attacker_key = BlockHammer::key(0, 1000);
        let reference = bh.banks[0].cbfs[0].buckets(attacker_key);
        let mut alias = None;
        for cand in 0..2_000_000u64 {
            if cand == 1000 {
                continue;
            }
            let k = BlockHammer::key(0, cand);
            if bh.banks[0].cbfs[0].buckets(k) == reference
                && bh.banks[0].cbfs[1].buckets(k) == bh.banks[0].cbfs[1].buckets(attacker_key)
            {
                alias = Some(cand);
                break;
            }
        }
        if let Some(benign) = alias {
            let mut bh = bh;
            let mut now = 0;
            for _ in 0..101 {
                bh.on_activate(0, 1000, 0, now);
                now += 50_000;
            }
            assert!(bh.is_blacklisted(0, benign), "alias must inherit blacklist");
        }
        // (If no alias exists in the scanned range the property is vacuous
        // for this seed; the workloads crate constructs collisions
        // directly from `buckets()`.)
    }

    #[test]
    fn epoch_swap_forgets_old_counts() {
        let cfg = small_config();
        let mut bh = BlockHammer::new(cfg, 1);
        let mut now = 0;
        for _ in 0..101 {
            bh.on_activate(0, 5, 0, now);
            now += 1_000;
        }
        assert!(bh.is_blacklisted(0, 5));
        // After both half-epochs pass, the counts are gone.
        let later = cfg.t_cbf + cfg.t_cbf / 2 + 1;
        bh.on_activate(0, 99, 0, later);
        assert!(!bh.is_blacklisted(0, 5));
    }

    #[test]
    fn collision_cover_blacklists_untouched_victim() {
        let cfg = small_config();
        let victim = 12_345u64;
        let cover = BlockHammer::collision_cover_rows(&cfg, 0, victim, 65_536);
        assert!(!cover.is_empty() && cover.len() <= 8, "cover = {cover:?}");
        assert!(!cover.contains(&victim));
        let mut bh = BlockHammer::new(cfg, 1);
        // Hammer each cover row past NBL; the victim is never activated.
        for &r in &cover {
            for i in 0..cfg.nbl + 1 {
                bh.on_activate(0, r, 0, i * 50_000);
            }
        }
        assert!(
            bh.is_blacklisted(0, victim),
            "victim must inherit the blacklist"
        );
    }

    #[test]
    fn nbl_scaling_keeps_paper_delay() {
        let t = timing();
        let cfg = BlockHammerConfig::for_flip_threshold(1_500, &t);
        let scaled = cfg.with_nbl_scaled(6);
        assert_eq!(scaled.nbl, cfg.nbl / 6);
        assert_eq!(
            scaled.t_delay(),
            cfg.t_delay(),
            "delay must stay paper-scale"
        );
    }

    #[test]
    fn paper_configs_resolve() {
        let t = timing();
        for flip in crate::FLIP_TH_SWEEP {
            let cfg = BlockHammerConfig::for_flip_threshold(flip, &t);
            assert!(cfg.nbl < flip, "NBL must stay below FlipTH/2-ish");
            assert!(cfg.t_delay() > 0);
        }
        // Table IV scale: 3.75 KB at 50K, 20 KB at 1.5K.
        let k50 = BlockHammerConfig::for_flip_threshold(50_000, &t).table_kib();
        let k1_5 = BlockHammerConfig::for_flip_threshold(1_500, &t).table_kib();
        assert!((2.0..6.0).contains(&k50), "k50 = {k50}");
        assert!((12.0..30.0).contains(&k1_5), "k1_5 = {k1_5}");
    }

    #[test]
    #[should_panic(expected = "no BlockHammer configuration")]
    fn unknown_flipth_panics() {
        let _ = BlockHammerConfig::for_flip_threshold(7_777, &timing());
    }
}
