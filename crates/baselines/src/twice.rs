//! TWiCe: Time Window Counters (Lee et al., ISCA 2019).
//!
//! TWiCe tracks aggressor candidates in a lossy-counting table kept on the
//! DIMM buffer chip. Every entry stores `(row, act_cnt, life)`; at every
//! tREFI checkpoint all lives increment and entries whose count can no
//! longer reach the hammer threshold within the window are pruned
//! (`act_cnt < pruning_th × life`). A row whose count crosses
//! `twice_th = FlipTH/4` gets an ARR on its neighbours.
//!
//! TWiCe's guarantee is two-sided like CbS, but its table must hold every
//! row that *might* become hot, which costs an order of magnitude more
//! entries than Graphene/Mithril at equal FlipTH (paper Fig. 6, Table IV).
//! In the simulator TWiCe uses the ARR path ([`McMitigation`]) with its
//! feedback-augmented command, as in the paper's classification (Table I).

use mithril_dram::{BankId, Ddr5Timing, RowId, TimePs};
use mithril_fasthash::FastHashMap;
use mithril_memctrl::{McAction, McMitigation};

/// TWiCe configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwiCeConfig {
    /// ARR trigger threshold (`FlipTH/4`).
    pub twice_th: u64,
    /// Pruning rate in ACTs per life (per tREFI checkpoint).
    pub pruning_th: f64,
    /// Checkpoint (tREFI) period.
    pub checkpoint_period: TimePs,
    /// Window length in checkpoints (tREFW / tREFI).
    pub window_checkpoints: u64,
    /// Rows per bank.
    pub rows_per_bank: u64,
}

impl TwiCeConfig {
    /// The TWiCe provisioning rule for a FlipTH under the given timing:
    /// trigger at `FlipTH/4`, prune at `twice_th / window_checkpoints`
    /// ACTs per life.
    ///
    /// # Panics
    ///
    /// Panics if `flip_th < 4`.
    pub fn for_flip_threshold(flip_th: u64, timing: &Ddr5Timing) -> Self {
        assert!(flip_th >= 4, "flip_th too small");
        let twice_th = flip_th / 4;
        let window_checkpoints = timing.trefw / timing.trefi;
        Self {
            twice_th,
            pruning_th: twice_th as f64 / window_checkpoints as f64,
            checkpoint_period: timing.trefi,
            window_checkpoints,
            rows_per_bank: 65_536,
        }
    }

    /// Analytic per-bank table size in KiB.
    ///
    /// Worst-case live entries sum a harmonic series over life classes: at
    /// life `L` an entry needs `≥ pruning_th × L` ACTs, and a checkpoint
    /// admits `budget_per_checkpoint / (pruning_th × L)` such rows, so
    /// `N ≈ (budget_per_ckpt / pruning_th) × H(window_checkpoints)` — the
    /// order-of-magnitude-over-Graphene result of Table IV.
    pub fn table_kib(&self, timing: &Ddr5Timing) -> f64 {
        let budget_per_ckpt = timing.act_budget_per_trefw() as f64 / self.window_checkpoints as f64;
        let harmonic: f64 = (1..=self.window_checkpoints).map(|k| 1.0 / k as f64).sum();
        let entries = budget_per_ckpt / self.pruning_th * harmonic;
        // Entry: row address + count (up to twice_th) + life counter.
        let addr_bits = 64 - (self.rows_per_bank - 1).leading_zeros();
        let count_bits = 64 - self.twice_th.leading_zeros();
        let life_bits = 64 - self.window_checkpoints.leading_zeros();
        entries * (addr_bits + count_bits + life_bits) as f64 / 8.0 / 1024.0
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    act_cnt: u64,
    life: u64,
}

/// The TWiCe mitigation across all banks of a channel.
///
/// # Example
///
/// ```
/// use mithril_baselines::{TwiCe, TwiCeConfig};
/// use mithril_dram::Ddr5Timing;
/// use mithril_memctrl::{McAction, McMitigation};
///
/// let t = Ddr5Timing::ddr5_4800();
/// let mut tw = TwiCe::new(TwiCeConfig::for_flip_threshold(6_250, &t), 32);
/// let mut fired = false;
/// for _ in 0..6_250 / 4 + 1 {
///     if let McAction::Arr { .. } = tw.on_activate(0, 500, 0, 0) {
///         fired = true;
///     }
/// }
/// assert!(fired, "crossing FlipTH/4 must trigger an ARR");
/// ```
#[derive(Debug)]
pub struct TwiCe {
    config: TwiCeConfig,
    tables: Vec<FastHashMap<RowId, Entry>>,
    next_checkpoint: TimePs,
    peak_entries: usize,
    arrs: u64,
}

impl TwiCe {
    /// Creates per-bank TWiCe tables for `banks` banks.
    pub fn new(config: TwiCeConfig, banks: usize) -> Self {
        Self {
            tables: (0..banks).map(|_| FastHashMap::default()).collect(),
            next_checkpoint: config.checkpoint_period,
            config,
            peak_entries: 0,
            arrs: 0,
        }
    }

    /// Largest per-bank table population observed (hardware provisioning).
    pub fn peak_entries(&self) -> usize {
        self.peak_entries
    }

    /// ARRs triggered so far.
    pub fn arrs_triggered(&self) -> u64 {
        self.arrs
    }

    /// The configuration in use.
    pub fn config(&self) -> &TwiCeConfig {
        &self.config
    }

    fn checkpoint(&mut self) {
        let pruning = self.config.pruning_th;
        for table in &mut self.tables {
            for e in table.values_mut() {
                e.life += 1;
            }
            table.retain(|_, e| (e.act_cnt as f64) >= pruning * e.life as f64);
        }
    }
}

impl McMitigation for TwiCe {
    fn on_activate(&mut self, bank: BankId, row: RowId, _thread: usize, now: TimePs) -> McAction {
        while now >= self.next_checkpoint {
            self.checkpoint();
            self.next_checkpoint += self.config.checkpoint_period;
        }
        let table = &mut self.tables[bank];
        let entry = table.entry(row).or_insert(Entry {
            act_cnt: 0,
            life: 1,
        });
        entry.act_cnt += 1;
        let fire = entry.act_cnt >= self.config.twice_th;
        if fire {
            // Feedback: the refreshed aggressor's entry restarts.
            table.remove(&row);
        }
        self.peak_entries = self.peak_entries.max(table.len());
        if fire {
            self.arrs += 1;
            let mut victims = Vec::with_capacity(2);
            if row > 0 {
                victims.push(row - 1);
            }
            if row + 1 < self.config.rows_per_bank {
                victims.push(row + 1);
            }
            McAction::Arr { bank, victims }
        } else {
            McAction::None
        }
    }

    fn on_auto_refresh(&mut self, bank: BankId, lo: RowId, hi: RowId) {
        // Rows auto-refreshed in this tREFI group restart their window.
        self.tables[bank].retain(|&row, _| row < lo || row >= hi);
    }

    fn may_throttle(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "twice"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> Ddr5Timing {
        Ddr5Timing::ddr5_4800()
    }

    #[test]
    fn config_matches_twice_rules() {
        let cfg = TwiCeConfig::for_flip_threshold(50_000, &timing());
        assert_eq!(cfg.twice_th, 12_500);
        assert_eq!(cfg.window_checkpoints, 8192);
        assert!((cfg.pruning_th - 12_500.0 / 8192.0).abs() < 1e-9);
    }

    #[test]
    fn table_kib_is_an_order_over_graphene() {
        let t = timing();
        // Paper Table IV: TWiCe 2.79 KB vs Graphene 0.14 KB at 50K.
        let tw = TwiCeConfig::for_flip_threshold(50_000, &t).table_kib(&t);
        assert!((1.5..6.0).contains(&tw), "twice = {tw}");
        let tw_low = TwiCeConfig::for_flip_threshold(1_500, &t).table_kib(&t);
        assert!(
            tw_low > 10.0 * tw,
            "low FlipTH must cost much more: {tw_low}"
        );
    }

    #[test]
    fn hot_row_triggers_arr_at_threshold() {
        let t = timing();
        let mut tw = TwiCe::new(TwiCeConfig::for_flip_threshold(6_250, &t), 1);
        let th = tw.config().twice_th;
        for i in 1..th {
            assert_eq!(
                tw.on_activate(0, 9, 0, 0),
                McAction::None,
                "fired early at {i}"
            );
        }
        assert!(matches!(tw.on_activate(0, 9, 0, 0), McAction::Arr { .. }));
        // Entry restarted: counting begins again.
        assert_eq!(tw.on_activate(0, 9, 0, 0), McAction::None);
    }

    #[test]
    fn cold_rows_get_pruned_at_checkpoints() {
        let t = timing();
        let cfg = TwiCeConfig::for_flip_threshold(6_250, &t);
        let mut tw = TwiCe::new(cfg, 1);
        // 100 rows touched once, then several checkpoints pass.
        for r in 0..100u64 {
            tw.on_activate(0, r, 0, 0);
        }
        // After two checkpoints a 1-ACT entry (pruning_th ≈ 0.19/life)
        // survives only while 1 >= 0.19*life, i.e. life <= 5.
        let after = cfg.checkpoint_period * 8;
        tw.on_activate(0, 50_000, 0, after);
        assert!(
            tw.tables[0].len() <= 2,
            "stale entries kept: {}",
            tw.tables[0].len()
        );
    }

    #[test]
    fn auto_refresh_feedback_clears_rows() {
        let t = timing();
        let mut tw = TwiCe::new(TwiCeConfig::for_flip_threshold(6_250, &t), 1);
        for _ in 0..10 {
            tw.on_activate(0, 123, 0, 0);
        }
        assert!(tw.tables[0].contains_key(&123));
        tw.on_auto_refresh(0, 120, 128);
        assert!(!tw.tables[0].contains_key(&123));
    }

    #[test]
    fn peak_entries_high_water_mark() {
        let t = timing();
        let mut tw = TwiCe::new(TwiCeConfig::for_flip_threshold(6_250, &t), 1);
        for r in 0..500u64 {
            tw.on_activate(0, r, 0, 0);
        }
        assert!(tw.peak_entries() >= 500);
    }

    #[test]
    fn banks_are_independent() {
        let t = timing();
        let mut tw = TwiCe::new(TwiCeConfig::for_flip_threshold(6_250, &t), 2);
        let th = tw.config().twice_th;
        for _ in 0..th - 1 {
            tw.on_activate(0, 9, 0, 0);
        }
        // Bank 1 has no history: its row 9 must not fire.
        assert_eq!(tw.on_activate(1, 9, 0, 0), McAction::None);
        assert!(matches!(
            tw.on_activate(0, 9, 0, 0),
            McAction::Arr { bank: 0, .. }
        ));
    }
}
