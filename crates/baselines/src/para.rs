//! PARA: Probabilistic Adjacent Row Activation refresh (Kim et al., ISCA
//! 2014).
//!
//! On every activation, with probability `p` the controller issues an ARR
//! refreshing the activated row's neighbours. No counters at all — the area
//! champion — but the guarantee is only probabilistic, and holding a
//! `10^-15` failure target at low FlipTH forces `p` (and thus energy/
//! performance cost) up (paper Sections II-C1 and VI-D).

use mithril_dram::{BankId, RowId, TimePs};
use mithril_memctrl::{McAction, McMitigation};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// PARA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParaConfig {
    /// Refresh probability per activation.
    pub probability: f64,
    /// Rows per bank (victim clamping).
    pub rows_per_bank: u64,
}

impl ParaConfig {
    /// Solves the refresh probability for a `target` system failure
    /// probability per tREFW (e.g. `1e-15`), given the per-bank activation
    /// budget and the number of simultaneously attackable banks.
    ///
    /// Model (single-sided, conservative): an attacker needs `FlipTH/2`
    /// un-refreshed ACTs on an aggressor; each ACT independently escapes
    /// refresh with probability `1−p`, so one campaign fails the defence
    /// with `(1−p)^(FlipTH/2)`. Per window an attacker fits
    /// `budget/(FlipTH/2)` campaigns per bank across `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `flip_th` is zero or `target` is not in `(0, 1)`.
    pub fn for_failure_target(flip_th: u64, target: f64, act_budget: u64, banks: u64) -> Self {
        assert!(flip_th > 0, "flip_th must be non-zero");
        assert!(target > 0.0 && target < 1.0, "target must be in (0,1)");
        let half = (flip_th / 2).max(1) as f64;
        let campaigns = (act_budget as f64 / half).max(1.0) * banks as f64;
        // campaigns * (1-p)^half <= target
        let per_campaign = target / campaigns;
        let p = 1.0 - per_campaign.powf(1.0 / half);
        Self {
            probability: p.clamp(0.0, 1.0),
            rows_per_bank: 65_536,
        }
    }
}

/// The PARA mitigation (MC-side, ARR remedy).
///
/// # Example
///
/// ```
/// use mithril_baselines::{Para, ParaConfig};
/// use mithril_memctrl::{McAction, McMitigation};
///
/// let cfg = ParaConfig { probability: 1.0, rows_per_bank: 1024 };
/// let mut para = Para::new(cfg, 42);
/// // With p = 1 every ACT triggers an ARR of the neighbours.
/// match para.on_activate(0, 100, 0, 0) {
///     McAction::Arr { victims, .. } => assert_eq!(victims, vec![99, 101]),
///     other => panic!("expected ARR, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Para {
    config: ParaConfig,
    rng: SmallRng,
    arrs_issued: u64,
}

impl Para {
    /// Creates a PARA instance with a deterministic RNG seed.
    pub fn new(config: ParaConfig, seed: u64) -> Self {
        Self {
            config,
            rng: SmallRng::seed_from_u64(seed),
            arrs_issued: 0,
        }
    }

    /// ARRs issued so far.
    pub fn arrs_issued(&self) -> u64 {
        self.arrs_issued
    }

    fn victims(&self, row: RowId) -> Vec<RowId> {
        let mut v = Vec::with_capacity(2);
        if row > 0 {
            v.push(row - 1);
        }
        if row + 1 < self.config.rows_per_bank {
            v.push(row + 1);
        }
        v
    }
}

impl McMitigation for Para {
    fn on_activate(&mut self, bank: BankId, row: RowId, _thread: usize, _now: TimePs) -> McAction {
        if self.rng.random::<f64>() < self.config.probability {
            self.arrs_issued += 1;
            McAction::Arr {
                bank,
                victims: self.victims(row),
            }
        } else {
            McAction::None
        }
    }

    fn may_throttle(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "para"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_one_always_refreshes() {
        let mut p = Para::new(
            ParaConfig {
                probability: 1.0,
                rows_per_bank: 100,
            },
            1,
        );
        for i in 0..50 {
            assert!(matches!(p.on_activate(0, 10, 0, i), McAction::Arr { .. }));
        }
        assert_eq!(p.arrs_issued(), 50);
    }

    #[test]
    fn probability_zero_never_refreshes() {
        let mut p = Para::new(
            ParaConfig {
                probability: 0.0,
                rows_per_bank: 100,
            },
            1,
        );
        for i in 0..50 {
            assert_eq!(p.on_activate(0, 10, 0, i), McAction::None);
        }
    }

    #[test]
    fn refresh_rate_tracks_probability() {
        let mut p = Para::new(
            ParaConfig {
                probability: 0.05,
                rows_per_bank: 100,
            },
            7,
        );
        let n = 200_000;
        for i in 0..n {
            p.on_activate(0, 10, 0, i);
        }
        let rate = p.arrs_issued() as f64 / n as f64;
        assert!((0.045..0.055).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn solved_probability_scales_with_flipth() {
        let budget = 620_000;
        let p_low = ParaConfig::for_failure_target(1_500, 1e-15, budget, 22).probability;
        let p_high = ParaConfig::for_failure_target(50_000, 1e-15, budget, 22).probability;
        assert!(p_low > p_high, "lower FlipTH needs more aggressive refresh");
        // Sanity: PARA probabilities land in the classic ~0.001..0.1 range.
        assert!(
            p_high > 1e-4 && p_low < 0.2,
            "p_high={p_high} p_low={p_low}"
        );
    }

    #[test]
    fn solved_probability_meets_target() {
        let budget = 620_000u64;
        let flip = 6_250u64;
        let cfg = ParaConfig::for_failure_target(flip, 1e-15, budget, 22);
        let half = flip as f64 / 2.0;
        let campaigns = budget as f64 / half * 22.0;
        let system = campaigns * (1.0 - cfg.probability).powf(half);
        assert!(system <= 1.001e-15, "system failure {system}");
    }

    #[test]
    fn edge_rows_clamp_victims() {
        let mut p = Para::new(
            ParaConfig {
                probability: 1.0,
                rows_per_bank: 100,
            },
            1,
        );
        match p.on_activate(0, 0, 0, 0) {
            McAction::Arr { victims, .. } => assert_eq!(victims, vec![1]),
            other => panic!("{other:?}"),
        }
        match p.on_activate(0, 99, 0, 0) {
            McAction::Arr { victims, .. } => assert_eq!(victims, vec![98]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let cfg = ParaConfig {
            probability: 0.3,
            rows_per_bank: 100,
        };
        let mut a = Para::new(cfg, 99);
        let mut b = Para::new(cfg, 99);
        for i in 0..1000 {
            assert_eq!(a.on_activate(0, 5, 0, i), b.on_activate(0, 5, 0, i));
        }
    }
}
