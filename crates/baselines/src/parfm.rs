//! PARFM: the RFM-compatible probabilistic scheme (paper Section III-E and
//! Appendix C).
//!
//! Whenever an RFM command arrives, PARFM refreshes the victims of a single
//! aggressor row sampled uniformly from the last `RFMTH` activations
//! (reservoir sampling of size 1). Protection is probabilistic and depends
//! only on `RFMTH`; meeting a `10^-15` failure target at low FlipTH forces
//! `RFMTH` far below what deterministic Mithril needs, which is where
//! PARFM's energy/performance overhead comes from (paper Fig. 10).

use mithril_dram::{Ddr5Timing, DramMitigation, RfmOutcome, RowId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The PARFM engine (DRAM-side, one per bank).
///
/// # Example
///
/// ```
/// use mithril_baselines::Parfm;
/// use mithril_dram::DramMitigation;
///
/// let mut p = Parfm::new(64, 65_536, 1);
/// for _ in 0..64 {
///     p.on_activate(1234);
/// }
/// // Only one row was activated, so it is certainly the sample.
/// let out = p.on_rfm();
/// assert_eq!(out.selected_aggressor, Some(1234));
/// ```
#[derive(Debug, Clone)]
pub struct Parfm {
    rfm_th: u64,
    rows_per_bank: u64,
    rng: SmallRng,
    /// Current reservoir sample and how many ACTs this interval has seen.
    sample: Option<RowId>,
    seen: u64,
    refreshes: u64,
}

impl Parfm {
    /// Creates a PARFM engine for the given RFM threshold.
    ///
    /// # Panics
    ///
    /// Panics if `rfm_th` is zero.
    pub fn new(rfm_th: u64, rows_per_bank: u64, seed: u64) -> Self {
        assert!(rfm_th > 0, "rfm_th must be non-zero");
        Self {
            rfm_th,
            rows_per_bank,
            rng: SmallRng::seed_from_u64(seed),
            sample: None,
            seen: 0,
            refreshes: 0,
        }
    }

    /// Preventive refreshes executed so far.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// The configured RFM threshold.
    pub fn rfm_th(&self) -> u64 {
        self.rfm_th
    }
}

impl DramMitigation for Parfm {
    fn on_activate(&mut self, row: RowId) {
        self.seen += 1;
        // Reservoir sampling of size 1: the i-th item replaces the sample
        // with probability 1/i, giving each of the last-interval ACTs an
        // equal 1/seen chance.
        if self.rng.random_range(0..self.seen) == 0 {
            self.sample = Some(row);
        }
    }

    fn on_rfm_into(&mut self, out: &mut RfmOutcome) {
        match self.sample.take() {
            Some(row) => {
                self.refreshes += 1;
                let victims = out.begin_refresh(row);
                if row > 0 {
                    victims.push(row - 1);
                }
                if row + 1 < self.rows_per_bank {
                    victims.push(row + 1);
                }
            }
            None => out.reset_to_skipped(),
        }
        self.seen = 0;
    }

    fn name(&self) -> &'static str {
        "parfm"
    }
}

/// The Appendix-C failure analysis for PARFM.
pub mod parfm_analysis {
    use super::*;

    /// Probability that a single row reaches `flip_th/2` un-refreshed ACTs
    /// within one tREFW window (`Fail(1)` of Appendix C).
    ///
    /// The paper's cost-effectiveness argument (Equation (5)) shows the
    /// attacker's best pattern activates a target row `j = 1` time per
    /// RFM interval. When the window holds fewer intervals than `FlipTH/2`
    /// (`W < F/2`, large RFMTH), `j = 1` cannot reach the threshold at all
    /// and the attacker's best *feasible* intensity is
    /// `j = ⌈(F/2)/W⌉` — Equation (5) is monotone, so the smallest feasible
    /// `j` is optimal. With that generalization the recurrence becomes
    ///
    /// ```text
    /// P[i] = P[i−1] + (j/R)(1−j/R)^{⌈F/(2j)⌉} (1 − P[i − ⌈F/(2j)⌉ − 1])
    /// ```
    ///
    /// which reduces to the paper's Appendix-C form at `j = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `rfm_th` is zero or `flip_th < 2`.
    pub fn single_row_failure(flip_th: u64, rfm_th: u64, timing: &Ddr5Timing) -> f64 {
        assert!(rfm_th > 0, "rfm_th must be non-zero");
        assert!(flip_th >= 2, "flip_th must be at least 2");
        let w = timing.rfm_intervals_per_trefw(rfm_th) as usize;
        let half = (flip_th / 2).max(1);
        // Optimal feasible per-interval intensity.
        let j = half.div_ceil(w as u64).max(1);
        if j > rfm_th {
            return 0.0; // even hammering every slot cannot reach FlipTH/2
        }
        // Intervals the attacked row needs at intensity j.
        let need = half.div_ceil(j) as usize;
        if need > w {
            return 0.0;
        }
        let r = rfm_th as f64;
        let sel = j as f64 / r; // per-interval selection probability
        let escape = (1.0 - sel).powi(need as i32);
        let step = sel * escape;
        let mut p = vec![0.0f64; w + 1];
        for i in need..=w {
            if i == need {
                p[i] = escape;
            } else {
                let lookback = if i > need { p[i - need - 1] } else { 0.0 };
                p[i] = p[i - 1] + step * (1.0 - lookback);
            }
            if p[i] >= 1.0 {
                p[i] = 1.0;
            }
        }
        p[w]
    }

    /// System failure probability across `banks` simultaneously attackable
    /// banks: `1 − (1 − Fail(1))^banks`, evaluated in log-space for tiny
    /// probabilities.
    pub fn system_failure(flip_th: u64, rfm_th: u64, banks: u64, timing: &Ddr5Timing) -> f64 {
        let f1 = single_row_failure(flip_th, rfm_th, timing);
        if f1 == 0.0 {
            return 0.0;
        }
        // 1-(1-f)^n = -expm1(n * ln(1-f)); ln_1p(-f) is stable for tiny f.
        -f64::exp_m1(banks as f64 * f64::ln_1p(-f1))
    }

    /// Largest `RFMTH` meeting a system failure `target` (e.g. `1e-15`)
    /// for `banks` attackable banks — the configuration rule of
    /// Section VI-A. Returns `None` if even `RFMTH = 1` fails.
    pub fn max_rfm_th(flip_th: u64, target: f64, banks: u64, timing: &Ddr5Timing) -> Option<u64> {
        let mut best = None;
        // Failure grows monotonically with RFMTH: binary search.
        let (mut lo, mut hi) = (1u64, 4096u64);
        if system_failure(flip_th, lo, banks, timing) > target {
            return None;
        }
        while lo <= hi {
            let mid = (lo + hi) / 2;
            if system_failure(flip_th, mid, banks, timing) <= target {
                best = Some(mid);
                lo = mid + 1;
            } else {
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::parfm_analysis::*;
    use super::*;

    fn timing() -> Ddr5Timing {
        Ddr5Timing::ddr5_4800()
    }

    #[test]
    fn reservoir_sampling_is_uniform() {
        // Hammer RFMTH distinct rows once per interval; each should be
        // selected ~1/RFMTH of the time.
        let mut p = Parfm::new(16, 65_536, 3);
        let mut hits = [0u64; 16];
        for _ in 0..20_000 {
            for r in 0..16u64 {
                p.on_activate(r);
            }
            if let Some(sel) = p.on_rfm().selected_aggressor {
                hits[sel as usize] += 1;
            }
        }
        let total: u64 = hits.iter().sum();
        assert_eq!(total, 20_000);
        for (r, &h) in hits.iter().enumerate() {
            let frac = h as f64 / total as f64;
            assert!((0.04..0.085).contains(&frac), "row {r}: {frac}");
        }
    }

    #[test]
    fn rfm_resets_interval() {
        let mut p = Parfm::new(8, 100, 1);
        p.on_activate(5);
        assert_eq!(p.on_rfm().selected_aggressor, Some(5));
        // New interval: nothing sampled yet.
        assert!(p.on_rfm().skipped);
    }

    #[test]
    fn failure_increases_with_rfmth() {
        let t = timing();
        let f64_ = single_row_failure(5_000, 64, &t);
        let f96 = single_row_failure(5_000, 96, &t);
        assert!(f64_ < f96, "{f64_} !< {f96}");
        let f128 = single_row_failure(5_000, 128, &t);
        let f256 = single_row_failure(5_000, 256, &t);
        assert!(f64_ < f128 && f128 < f256, "{f64_} {f128} {f256}");
    }

    #[test]
    fn failure_decreases_with_flipth() {
        let t = timing();
        let low = single_row_failure(2_000, 64, &t);
        let high = single_row_failure(20_000, 64, &t);
        assert!(high < low, "higher FlipTH must be safer: {high} vs {low}");
    }

    #[test]
    fn short_windows_cannot_fail() {
        let t = timing();
        // FlipTH/2 intervals exceed W: impossible to accumulate.
        assert_eq!(single_row_failure(10_000_000, 16, &t), 0.0);
    }

    #[test]
    fn solved_rfmth_meets_target_and_tracks_flipth() {
        let t = timing();
        let r50 = max_rfm_th(50_000, 1e-15, 22, &t).unwrap();
        let r6 = max_rfm_th(6_250, 1e-15, 22, &t).unwrap();
        let r1_5 = max_rfm_th(1_500, 1e-15, 22, &t).unwrap();
        assert!(r50 > r6 && r6 > r1_5, "{r50} {r6} {r1_5}");
        // The solved threshold indeed satisfies the target...
        assert!(system_failure(6_250, r6, 22, &t) <= 1e-15);
        // ...and the next one up does not.
        assert!(system_failure(6_250, r6 + 1, 22, &t) > 1e-15);
    }

    #[test]
    fn system_failure_scales_with_banks() {
        let t = timing();
        let one = system_failure(5_000, 64, 1, &t);
        let many = system_failure(5_000, 64, 22, &t);
        assert!(many > one);
        assert!(many < 22.5 * one);
    }

    #[test]
    #[should_panic(expected = "rfm_th")]
    fn zero_rfmth_panics() {
        let _ = Parfm::new(0, 100, 1);
    }
}
