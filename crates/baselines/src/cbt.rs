//! CBT: Counter-Based Trees (Seyedzadeh et al.).
//!
//! CBT allocates a limited pool of counters as an adaptively splitting tree
//! over the row space (see [`mithril_trackers::CounterTree`]): groups that
//! get hot split into smaller groups; a leaf whose counter crosses the
//! group threshold triggers a preventive refresh of *every row in the
//! group* plus the boundary neighbours.
//!
//! The paper's Section III-D explains why this tracking style does not port
//! to RFM: during tree construction a premature group refresh covers many
//! rows (too much work for one tRFM window), and wide leaves keep not
//! fitting; so CBT stays an MC-side ARR scheme here, as in Table I.

use mithril_dram::{BankId, Ddr5Timing, RowId, TimePs};
use mithril_memctrl::{McAction, McMitigation};
use mithril_trackers::{CounterTree, FrequencyTracker};

/// CBT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbtConfig {
    /// Counter pool size per bank.
    pub counters: usize,
    /// Leaf split threshold (counts at which a group subdivides).
    pub split_threshold: u64,
    /// Group refresh threshold (`FlipTH/2`).
    pub refresh_threshold: u64,
    /// Tree reset period (tREFW).
    pub reset_period: TimePs,
    /// Rows per bank.
    pub rows_per_bank: u64,
}

impl CbtConfig {
    /// Provisioning following the original work's scaling: enough counters
    /// that every group that could reach `FlipTH/4` within a window can be
    /// isolated (`counters ≈ budget/(FlipTH/4)`), splitting at `FlipTH/8`
    /// so trees form well before danger.
    ///
    /// # Panics
    ///
    /// Panics if `flip_th < 8`.
    pub fn for_flip_threshold(flip_th: u64, timing: &Ddr5Timing) -> Self {
        assert!(flip_th >= 8, "flip_th too small");
        let budget = timing.act_budget_per_trefw();
        let counters = (budget / (flip_th / 4).max(1) + 1) as usize;
        Self {
            counters,
            split_threshold: (flip_th / 8).max(1),
            refresh_threshold: flip_th / 2,
            reset_period: timing.trefw,
            rows_per_bank: 65_536,
        }
    }

    /// Per-bank table size in KiB: each tree node stores a counter wide
    /// enough for `FlipTH/2` plus two row-address bounds.
    pub fn table_kib(&self) -> f64 {
        let addr_bits = 64 - (self.rows_per_bank - 1).leading_zeros();
        let count_bits = 64 - self.refresh_threshold.leading_zeros();
        self.counters as f64 * (count_bits + 2 * addr_bits) as f64 / 8.0 / 1024.0
    }
}

/// The CBT mitigation across all banks of a channel.
///
/// # Example
///
/// ```
/// use mithril_baselines::{Cbt, CbtConfig};
/// use mithril_dram::Ddr5Timing;
/// use mithril_memctrl::{McAction, McMitigation};
///
/// let t = Ddr5Timing::ddr5_4800();
/// let mut cbt = Cbt::new(CbtConfig::for_flip_threshold(6_250, &t), 1);
/// let mut refreshed = 0;
/// for _ in 0..6_250 {
///     if let McAction::Arr { victims, .. } = cbt.on_activate(0, 300, 0, 0) {
///         refreshed += victims.len();
///     }
/// }
/// assert!(refreshed > 0, "a hammered group must get refreshed");
/// ```
#[derive(Debug)]
pub struct Cbt {
    config: CbtConfig,
    trees: Vec<CounterTree>,
    next_reset: TimePs,
    group_refreshes: u64,
    rows_refreshed: u64,
}

impl Cbt {
    /// Creates per-bank trees for `banks` banks.
    pub fn new(config: CbtConfig, banks: usize) -> Self {
        Self {
            trees: (0..banks)
                .map(|_| {
                    CounterTree::new(
                        config.rows_per_bank,
                        config.counters,
                        config.split_threshold,
                    )
                })
                .collect(),
            next_reset: config.reset_period,
            config,
            group_refreshes: 0,
            rows_refreshed: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CbtConfig {
        &self.config
    }

    /// Group refreshes triggered so far.
    pub fn group_refreshes(&self) -> u64 {
        self.group_refreshes
    }

    /// Total rows preventively refreshed (group refreshes are expensive:
    /// this is CBT's energy weakness on wide leaves).
    pub fn rows_refreshed(&self) -> u64 {
        self.rows_refreshed
    }
}

impl McMitigation for Cbt {
    fn on_activate(&mut self, bank: BankId, row: RowId, _thread: usize, now: TimePs) -> McAction {
        while now >= self.next_reset {
            for t in &mut self.trees {
                t.clear();
            }
            self.next_reset += self.config.reset_period;
        }
        let tree = &mut self.trees[bank];
        tree.record(row);
        if tree.estimate(row) >= self.config.refresh_threshold {
            let group = tree.reset_group(row);
            // Refresh every row of the group plus the boundary neighbours.
            let lo = group.start.saturating_sub(1);
            let hi = (group.end + 1).min(self.config.rows_per_bank);
            let victims: Vec<RowId> = (lo..hi).collect();
            self.group_refreshes += 1;
            self.rows_refreshed += victims.len() as u64;
            McAction::Arr { bank, victims }
        } else {
            McAction::None
        }
    }

    fn may_throttle(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "cbt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> Ddr5Timing {
        Ddr5Timing::ddr5_4800()
    }

    #[test]
    fn config_scales_with_flipth() {
        let t = timing();
        let c50 = CbtConfig::for_flip_threshold(50_000, &t);
        let c1_5 = CbtConfig::for_flip_threshold(1_500, &t);
        assert!(c1_5.counters > 10 * c50.counters);
        // Table IV scale: 0.47 KB at 50K growing to ~17.5 KB at 1.5K.
        assert!(
            (0.1..1.2).contains(&c50.table_kib()),
            "k50 = {}",
            c50.table_kib()
        );
        assert!(
            (5.0..30.0).contains(&c1_5.table_kib()),
            "k1.5 = {}",
            c1_5.table_kib()
        );
    }

    #[test]
    fn hammered_row_gets_group_refreshed_before_flipth() {
        let t = timing();
        let flip = 6_250u64;
        let mut cbt = Cbt::new(CbtConfig::for_flip_threshold(flip, &t), 1);
        let mut acts_between_refreshes = 0u64;
        let mut worst = 0u64;
        for _ in 0..5 * flip {
            acts_between_refreshes += 1;
            if let McAction::Arr { victims, .. } = cbt.on_activate(0, 300, 0, 0) {
                assert!(victims.contains(&299) && victims.contains(&301));
                worst = worst.max(acts_between_refreshes);
                acts_between_refreshes = 0;
            }
        }
        assert!(
            worst <= flip / 2,
            "victims must refresh within FlipTH/2 ACTs, got {worst}"
        );
        assert!(cbt.group_refreshes() >= 9);
    }

    #[test]
    fn tree_splits_isolate_hot_rows_over_time() {
        let t = timing();
        let mut cbt = Cbt::new(CbtConfig::for_flip_threshold(6_250, &t), 1);
        // Early refreshes cover wide groups; once the tree splits, groups
        // shrink and refreshes get cheaper.
        let mut sizes = Vec::new();
        for _ in 0..20_000u64 {
            if let McAction::Arr { victims, .. } = cbt.on_activate(0, 1234, 0, 0) {
                sizes.push(victims.len());
            }
        }
        assert!(!sizes.is_empty());
        assert!(
            sizes.last().unwrap() <= sizes.first().unwrap(),
            "group refreshes must not grow: {sizes:?}"
        );
    }

    #[test]
    fn reset_period_rebuilds_trees() {
        let t = timing();
        let cfg = CbtConfig::for_flip_threshold(6_250, &t);
        let mut cbt = Cbt::new(cfg, 1);
        for _ in 0..1000 {
            cbt.on_activate(0, 7, 0, 0);
        }
        // After reset, the first activation sees a root-wide group.
        cbt.on_activate(0, 7, 0, cfg.reset_period + 1);
        assert_eq!(cbt.trees[0].stats().leaves, 1);
    }

    #[test]
    fn wide_group_refresh_is_expensive() {
        // Hit the refresh threshold while the tree is still coarse by
        // using a tiny counter pool: the refresh covers many rows — the
        // RFM-incompatibility argument of Section III-D.
        let t = timing();
        let mut cfg = CbtConfig::for_flip_threshold(6_250, &t);
        cfg.counters = 1; // root only
        let mut cbt = Cbt::new(cfg, 1);
        let mut widest = 0usize;
        for i in 0..(cfg.refresh_threshold + 2) {
            if let McAction::Arr { victims, .. } = cbt.on_activate(0, i % 1000, 0, 0) {
                widest = widest.max(victims.len());
            }
        }
        assert!(
            widest > 8,
            "root-level refresh must cover many rows, got {widest}"
        );
    }
}
