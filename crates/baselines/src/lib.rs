//! Baseline Row Hammer mitigation schemes from the Mithril evaluation.
//!
//! Every scheme the paper compares against (Table I and Section VI),
//! implemented from its description and cited equations:
//!
//! | Scheme | Guarantee | Remedy | Location | Tracker |
//! |---|---|---|---|---|
//! | [`Para`] | probabilistic | ARR | MC | sampling |
//! | [`Parfm`] | probabilistic | RFM | DRAM | reservoir sampling |
//! | [`Graphene`] | deterministic | ARR | MC | Counter-based Summary |
//! | [`RfmGraphene`] | (broken on purpose) | RFM | DRAM | CbS + threshold buffer |
//! | [`TwiCe`] | deterministic | ARR | DRAM buffer chip | Lossy Counting |
//! | [`BlockHammer`] | deterministic | throttling | MC | dual counting Bloom filters |
//! | [`Cbt`] | deterministic | ARR | MC | grouped counter tree |
//!
//! [`RfmGraphene`] is the strawman of paper Fig. 2: a prior ARR-style
//! threshold scheme naively ported to the RFM interface, kept here to
//! reproduce its vulnerability to refresh concentration.
//!
//! MC-side schemes implement [`mithril_memctrl::McMitigation`]; DRAM-side
//! schemes implement [`mithril_dram::DramMitigation`]. Analytical models
//! (PARFM failure probability of Appendix C, per-scheme table sizes of
//! Table IV) live next to each scheme.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blockhammer;
mod cbt;
mod graphene;
mod para;
mod parfm;
mod twice;

pub use blockhammer::{BlockHammer, BlockHammerConfig};
pub use cbt::{Cbt, CbtConfig};
pub use graphene::{Graphene, GrapheneConfig, RfmGraphene};
pub use para::{Para, ParaConfig};
pub use parfm::{parfm_analysis, Parfm};
pub use twice::{TwiCe, TwiCeConfig};

/// The FlipTH sweep used throughout the paper's evaluation (Section VI).
pub const FLIP_TH_SWEEP: [u64; 6] = [50_000, 25_000, 12_500, 6_250, 3_125, 1_500];

/// The per-FlipTH `(CBF counters, NBL)` BlockHammer configurations of
/// Section VI-A.
pub const BLOCKHAMMER_SWEEP: [(u64, usize, u64); 6] = [
    (50_000, 1024, 17_100),
    (25_000, 1024, 8_600),
    (12_500, 1024, 4_300),
    (6_250, 2048, 2_100),
    (3_125, 4096, 1_100),
    (1_500, 8192, 490),
];
