//! End-to-end safety checks: each deterministic baseline driven through the
//! real memory controller against hammering request streams, validated by
//! the exact disturbance oracle.
//!
//! These runs cover a slice of a refresh window (hammering at request-level
//! rates); the full-window worst cases for the RFM-based schemes live in
//! the `mithril` crate's `tests/safety.rs` (command-level harness).

use mithril_baselines::{
    BlockHammer, BlockHammerConfig, Cbt, CbtConfig, Graphene, GrapheneConfig, TwiCe, TwiCeConfig,
};
use mithril_dram::{Ddr5Timing, DramDevice, Geometry, NoMitigation, PS_PER_MS};
use mithril_memctrl::{MappedAddr, McConfig, McMitigation, MemRequest, MemoryController};

/// Drives a double-sided hammer (rows 999/1001 of bank 0) plus background
/// traffic through the controller for `duration`, returning the maximum
/// observed disturbance on bank 0.
fn hammer_through_controller(
    mitigation: Box<dyn McMitigation>,
    flip_th: u64,
    duration: u64,
) -> (u64, usize) {
    let geometry = Geometry::default();
    let device = DramDevice::new(geometry, Ddr5Timing::ddr5_4800(), flip_th, 1, |_| {
        Box::new(NoMitigation)
    });
    let mut mc = MemoryController::new(device, McConfig::default(), mitigation);
    let mut id = 0u64;
    let mut now = 0u64;
    let mut done = Vec::new();
    let slice = 1_000_000; // 1 µs batches
    while now < duration {
        // Keep the hammer queue saturated: alternating aggressor rows,
        // distinct columns so every request forces an activation cycle
        // (col 0/1 alternation defeats row-buffer merging via the
        // minimalist-open close policy).
        for k in 0..24u64 {
            let row = if k % 2 == 0 { 999 } else { 1001 };
            let addr = MappedAddr {
                channel: mithril_dram::ChannelId(0),
                bank: 0,
                row,
                col: k % 2,
            };
            mc.enqueue(MemRequest::read(id, addr, 0, now));
            id += 1;
        }
        now += slice;
        mc.advance_until_into(now, &mut done);
    }
    let device = mc.into_device();
    (device.oracle(0).max_disturbance(), device.total_flips())
}

#[test]
fn graphene_bounds_double_sided_hammer() {
    let t = Ddr5Timing::ddr5_4800();
    let flip = 6_250;
    let g = Graphene::new(GrapheneConfig::for_flip_threshold(flip, &t), 32);
    let (max, flips) = hammer_through_controller(Box::new(g), flip, 2 * PS_PER_MS);
    // Graphene triggers at FlipTH/4; victims never accumulate FlipTH.
    assert_eq!(flips, 0, "bit flip detected");
    assert!(max < flip, "max disturbance {max}");
    assert!(max > 0);
}

#[test]
fn twice_bounds_double_sided_hammer() {
    let t = Ddr5Timing::ddr5_4800();
    let flip = 6_250;
    let tw = TwiCe::new(TwiCeConfig::for_flip_threshold(flip, &t), 32);
    let (max, flips) = hammer_through_controller(Box::new(tw), flip, 2 * PS_PER_MS);
    assert_eq!(flips, 0, "bit flip detected");
    assert!(max < flip, "max disturbance {max}");
}

#[test]
fn cbt_bounds_double_sided_hammer() {
    let t = Ddr5Timing::ddr5_4800();
    let flip = 6_250;
    let c = Cbt::new(CbtConfig::for_flip_threshold(flip, &t), 32);
    let (max, flips) = hammer_through_controller(Box::new(c), flip, 2 * PS_PER_MS);
    assert_eq!(flips, 0, "bit flip detected");
    assert!(max < flip, "max disturbance {max}");
}

#[test]
fn blockhammer_throttles_hammer_rate() {
    let t = Ddr5Timing::ddr5_4800();
    let flip = 1_500;
    let bh = BlockHammer::new(BlockHammerConfig::for_flip_threshold(flip, &t), 32);
    // 2 ms of saturated hammering: unthrottled this yields ~40K ACTs
    // (far past NBL = 490); BlockHammer must keep each aggressor's rate
    // below FlipTH per tCBF, i.e. ≲ FlipTH × (2ms/32ms) + NBL here.
    let (max, flips) = hammer_through_controller(Box::new(bh), flip, 2 * PS_PER_MS);
    assert_eq!(flips, 0, "bit flip detected");
    assert!(max < flip, "max disturbance {max}");
}

#[test]
fn unprotected_baseline_actually_flips() {
    // Sanity check that the attack stream is potent: without protection
    // the same 2 ms hammer exceeds FlipTH = 1.5K.
    let (max, flips) = hammer_through_controller(
        Box::new(mithril_memctrl::NoMcMitigation),
        1_500,
        2 * PS_PER_MS,
    );
    assert!(flips > 0, "attack too weak: no flips");
    assert!(max >= 1_500, "attack too weak: max disturbance {max}");
}
