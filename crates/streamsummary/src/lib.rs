//! The Stream-Summary bucket list (Metwally et al.), shared by the Mithril
//! table (`mithril::MithrilTable`) and the Space-Saving tracker
//! (`mithril_trackers::SpaceSaving`).
//!
//! A [`BucketList`] groups externally-owned *slots* (the caller keeps the
//! per-slot addresses and counter values) into **buckets**, one per
//! distinct counter value, chained in a doubly-linked list ordered by
//! value. Each bucket holds the doubly-linked sub-list of its slots,
//! oldest joiner first. All maintenance — moving a slot to the adjacent
//! bucket on increment, dropping a slot to the minimum, evicting the
//! oldest minimum slot — is a constant number of pointer updates, giving
//! O(1) amortized updates and O(1) min/max reads where a scan-based
//! implementation pays O(capacity). See `ARCHITECTURE.md` at the repo
//! root for the full amortized-cost and wrap-safety argument.
//!
//! The list never *compares* values — it only tests equality against a
//! caller-supplied successor or floor value — so it works unchanged for
//! wrapping hardware counters (`u16` with diff-from-min ordering) and for
//! unbounded `u64` counts: order is maintained structurally, because
//! slots only ever move by exactly one increment or drop to the minimum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Sentinel for "no slot / no bucket" in the intrusive lists.
pub const NIL: u32 = u32::MAX;

/// One value bucket: position in the bucket list plus its slot sub-list.
#[derive(Debug, Clone, Copy)]
struct Bucket<V> {
    value: V,
    /// Neighbouring buckets, ordered by increasing (diff-from-min) value.
    prev: u32,
    next: u32,
    /// Slot sub-list, ordered by time of reaching `value` (oldest first).
    head: u32,
    tail: u32,
}

/// The bucket list over `V`-valued slots.
///
/// `V` only needs `Copy + Eq`; the caller supplies every new value
/// explicitly (successor on increment, floor on reset), so wrapping
/// arithmetic stays the caller's concern.
#[derive(Debug, Clone)]
pub struct BucketList<V> {
    /// Per-slot links within the owning bucket's sub-list.
    ent_prev: Vec<u32>,
    ent_next: Vec<u32>,
    /// Per-slot owning bucket.
    ent_bucket: Vec<u32>,
    /// Bucket arena; `free` recycles unlinked nodes, so at most
    /// `slots + 1` arena nodes ever exist.
    buckets: Vec<Bucket<V>>,
    free: Vec<u32>,
    /// Bucket holding the minimum value (`MinPtr` bucket).
    head_bucket: u32,
    /// Bucket holding the maximum value (`MaxPtr` bucket).
    tail_bucket: u32,
}

impl<V: Copy + Eq> BucketList<V> {
    /// Creates an empty list with room for `capacity` slots.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            ent_prev: Vec::with_capacity(capacity),
            ent_next: Vec::with_capacity(capacity),
            ent_bucket: Vec::with_capacity(capacity),
            buckets: Vec::with_capacity(capacity + 1),
            free: Vec::new(),
            head_bucket: NIL,
            tail_bucket: NIL,
        }
    }

    /// Registers a new slot (the caller's next slot index); it belongs to
    /// no bucket until [`place_fresh`] or an explicit move.
    ///
    /// [`place_fresh`]: BucketList::place_fresh
    pub fn push_slot(&mut self) {
        self.ent_prev.push(NIL);
        self.ent_next.push(NIL);
        self.ent_bucket.push(NIL);
    }

    /// The minimum value over all occupied slots, if any.
    pub fn min_value(&self) -> Option<V> {
        (self.head_bucket != NIL).then(|| self.buckets[self.head_bucket as usize].value)
    }

    /// The maximum value over all occupied slots, if any.
    pub fn max_value(&self) -> Option<V> {
        (self.tail_bucket != NIL).then(|| self.buckets[self.tail_bucket as usize].value)
    }

    /// The `(min, max)` value pair in one O(1) read — the observability
    /// probe of the structure (`mithril-obs` snapshots counter spans
    /// through this without walking buckets).
    pub fn value_span(&self) -> Option<(V, V)> {
        Some((self.min_value()?, self.max_value()?))
    }

    /// The slot that has held the minimum value longest (eviction target).
    pub fn oldest_min_slot(&self) -> Option<u32> {
        (self.head_bucket != NIL).then(|| self.buckets[self.head_bucket as usize].head)
    }

    /// The slot that reached the maximum value first (greedy selection).
    pub fn oldest_max_slot(&self) -> Option<u32> {
        (self.tail_bucket != NIL).then(|| self.buckets[self.tail_bucket as usize].head)
    }

    /// Live buckets (diagnostics; at most the number of occupied slots).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len() - self.free.len()
    }

    /// Forgets all buckets and slots (allocations are kept).
    pub fn clear(&mut self) {
        self.ent_prev.clear();
        self.ent_next.clear();
        self.ent_bucket.clear();
        self.buckets.clear();
        self.free.clear();
        self.head_bucket = NIL;
        self.tail_bucket = NIL;
    }

    // ------------------------------------------------------------ plumbing

    fn alloc_bucket(&mut self, value: V) -> u32 {
        let node = Bucket {
            value,
            prev: NIL,
            next: NIL,
            head: NIL,
            tail: NIL,
        };
        match self.free.pop() {
            Some(b) => {
                self.buckets[b as usize] = node;
                b
            }
            None => {
                self.buckets.push(node);
                (self.buckets.len() - 1) as u32
            }
        }
    }

    fn link_bucket_after(&mut self, b: u32, after: u32) {
        let next = self.buckets[after as usize].next;
        self.buckets[b as usize].prev = after;
        self.buckets[b as usize].next = next;
        self.buckets[after as usize].next = b;
        match next {
            NIL => self.tail_bucket = b,
            n => self.buckets[n as usize].prev = b,
        }
    }

    fn link_bucket_front(&mut self, b: u32) {
        let head = self.head_bucket;
        self.buckets[b as usize].prev = NIL;
        self.buckets[b as usize].next = head;
        self.head_bucket = b;
        match head {
            NIL => self.tail_bucket = b,
            h => self.buckets[h as usize].prev = b,
        }
    }

    fn unlink_bucket(&mut self, b: u32) {
        debug_assert_eq!(
            self.buckets[b as usize].head, NIL,
            "only empty buckets unlink"
        );
        let Bucket { prev, next, .. } = self.buckets[b as usize];
        match prev {
            NIL => self.head_bucket = next,
            p => self.buckets[p as usize].next = next,
        }
        match next {
            NIL => self.tail_bucket = prev,
            n => self.buckets[n as usize].prev = prev,
        }
        self.free.push(b);
    }

    /// Appends `slot` to the sub-list of bucket `b` (newest joiner last —
    /// selection and eviction take from the front).
    fn push_entry_tail(&mut self, b: u32, slot: u32) {
        let tail = self.buckets[b as usize].tail;
        self.ent_prev[slot as usize] = tail;
        self.ent_next[slot as usize] = NIL;
        self.ent_bucket[slot as usize] = b;
        match tail {
            NIL => self.buckets[b as usize].head = slot,
            t => self.ent_next[t as usize] = slot,
        }
        self.buckets[b as usize].tail = slot;
    }

    /// Removes `slot` from its bucket's sub-list (bucket stays linked even
    /// if it becomes empty; callers unlink it afterwards).
    fn detach_entry(&mut self, slot: u32) {
        let b = self.ent_bucket[slot as usize] as usize;
        let (prev, next) = (self.ent_prev[slot as usize], self.ent_next[slot as usize]);
        match prev {
            NIL => self.buckets[b].head = next,
            p => self.ent_next[p as usize] = next,
        }
        match next {
            NIL => self.buckets[b].tail = prev,
            n => self.ent_prev[n as usize] = prev,
        }
    }

    // ----------------------------------------------------------- movement

    /// Moves `slot` from its bucket to the bucket for `successor` (its
    /// value plus one, in the caller's arithmetic), creating that bucket
    /// next to the current one if absent. O(1).
    pub fn advance(&mut self, slot: u32, successor: V) {
        let b = self.ent_bucket[slot as usize];
        let nb = self.buckets[b as usize].next;
        let target = if nb != NIL && self.buckets[nb as usize].value == successor {
            nb
        } else {
            let t = self.alloc_bucket(successor);
            self.link_bucket_after(t, b);
            t
        };
        self.detach_entry(slot);
        self.push_entry_tail(target, slot);
        if self.buckets[b as usize].head == NIL {
            self.unlink_bucket(b);
        }
    }

    /// Moves `slot` to the bucket holding `floor` (the current minimum, or
    /// below every occupied value), creating it at the front if absent.
    /// This is the decrement-to-min of the greedy RFM step. O(1).
    pub fn drop_to_floor(&mut self, slot: u32, floor: V) {
        let b = self.ent_bucket[slot as usize];
        self.detach_entry(slot);
        let head = self.head_bucket;
        if head != NIL && self.buckets[head as usize].value == floor {
            self.push_entry_tail(head, slot);
        } else {
            let nb = self.alloc_bucket(floor);
            self.link_bucket_front(nb);
            self.push_entry_tail(nb, slot);
        }
        if self.buckets[b as usize].head == NIL {
            self.unlink_bucket(b);
        }
    }

    // ------------------------------------------------------ fault recovery

    /// Registered slots (occupied or not yet placed).
    pub fn slot_count(&self) -> usize {
        self.ent_bucket.len()
    }

    /// Verifies every structural invariant of the list against the
    /// caller's slot state: `value_of(slot)` is the caller's stored
    /// counter for `slot`, and `key_of(value)` is its rank in the
    /// caller's order (for wrapping counters, the diff from the current
    /// minimum; for unbounded counts, the count itself).
    ///
    /// Checked invariants:
    ///
    /// 1. the bucket chain is doubly linked, starts at `head_bucket`,
    ///    ends at `tail_bucket`, and bucket keys strictly increase;
    /// 2. every bucket's slot sub-list is doubly linked, non-empty and
    ///    consistent with the per-slot `ent_*` links;
    /// 3. every registered slot appears in exactly one sub-list;
    /// 4. every slot's bucket value equals `value_of(slot)` — the check
    ///    that catches a soft error flipping a stored counter bit.
    ///
    /// Returns the first violation found, as a human-readable description.
    /// O(slots).
    pub fn self_check(
        &self,
        value_of: impl Fn(u32) -> V,
        key_of: impl Fn(V) -> u64,
    ) -> Result<(), String> {
        let slots = self.ent_bucket.len();
        let mut seen = vec![false; slots];
        let mut visited_buckets = 0usize;
        let mut prev_bucket = NIL;
        let mut prev_key: Option<u64> = None;
        let mut b = self.head_bucket;
        while b != NIL {
            visited_buckets += 1;
            if visited_buckets > self.bucket_count() {
                return Err("bucket chain longer than live bucket count (cycle?)".into());
            }
            let bucket = &self.buckets[b as usize];
            if bucket.prev != prev_bucket {
                return Err(format!("bucket {b}: prev link broken"));
            }
            let key = key_of(bucket.value);
            if let Some(pk) = prev_key {
                if key <= pk {
                    return Err(format!("bucket {b}: key {key} not above predecessor {pk}"));
                }
            }
            prev_key = Some(key);
            // Walk the slot sub-list.
            let mut prev_slot = NIL;
            let mut s = bucket.head;
            if s == NIL {
                return Err(format!("bucket {b}: empty but linked"));
            }
            while s != NIL {
                let si = s as usize;
                if si >= slots {
                    return Err(format!("bucket {b}: slot {s} out of range"));
                }
                if seen[si] {
                    return Err(format!("slot {s}: linked twice"));
                }
                seen[si] = true;
                if self.ent_bucket[si] != b {
                    return Err(format!("slot {s}: ent_bucket disagrees with chain"));
                }
                if self.ent_prev[si] != prev_slot {
                    return Err(format!("slot {s}: prev link broken"));
                }
                if value_of(s) != bucket.value {
                    return Err(format!("slot {s}: stored value disagrees with its bucket"));
                }
                prev_slot = s;
                s = self.ent_next[si];
            }
            if bucket.tail != prev_slot {
                return Err(format!("bucket {b}: tail link broken"));
            }
            prev_bucket = b;
            b = bucket.next;
        }
        if self.tail_bucket != prev_bucket {
            return Err("tail_bucket does not end the chain".into());
        }
        if visited_buckets != self.bucket_count() {
            return Err(format!(
                "{} buckets linked, {} live in arena",
                visited_buckets,
                self.bucket_count()
            ));
        }
        if let Some(s) = seen.iter().position(|&v| !v) {
            return Err(format!("slot {s}: registered but in no bucket"));
        }
        Ok(())
    }

    /// Rebuilds the whole bucket structure from the caller's slot state
    /// (the repair to [`self_check`]'s detect): every registered slot is
    /// re-inserted in ascending `(key_of(value_of(slot)), slot)` order.
    ///
    /// True arrival ages are unrecoverable after corruption, so ties
    /// canonicalize to ascending slot index — callers mirroring a naive
    /// reference must canonicalize its ages the same way. O(slots·log).
    ///
    /// [`self_check`]: BucketList::self_check
    pub fn rebuild(&mut self, value_of: impl Fn(u32) -> V, key_of: impl Fn(V) -> u64) {
        let slots = self.ent_bucket.len();
        let mut order: Vec<u32> = (0..slots as u32).collect();
        order.sort_unstable_by_key(|&s| (key_of(value_of(s)), s));
        self.buckets.clear();
        self.free.clear();
        self.head_bucket = NIL;
        self.tail_bucket = NIL;
        for s in &mut self.ent_bucket {
            *s = NIL;
        }
        for slot in order {
            let v = value_of(slot);
            let tail = self.tail_bucket;
            let target = if tail != NIL && self.buckets[tail as usize].value == v {
                tail
            } else {
                let b = self.alloc_bucket(v);
                match tail {
                    NIL => self.link_bucket_front(b),
                    t => self.link_bucket_after(b, t),
                }
                b
            };
            self.push_entry_tail(target, slot);
        }
    }

    /// Places a fresh slot holding value `one` into a list whose only
    /// possible smaller value is `zero` (slots reset by a not-full RFM).
    /// Callers use this while their table is below capacity, where those
    /// are the only two values at the bottom of the order — so placement
    /// is O(1) despite being an ordered insert.
    pub fn place_fresh(&mut self, slot: u32, zero: V, one: V) {
        let head = self.head_bucket;
        if head == NIL {
            let b = self.alloc_bucket(one);
            self.link_bucket_front(b);
            self.push_entry_tail(b, slot);
            return;
        }
        let hv = self.buckets[head as usize].value;
        let target = if hv == one {
            head
        } else if hv == zero {
            let nb = self.buckets[head as usize].next;
            if nb != NIL && self.buckets[nb as usize].value == one {
                nb
            } else {
                let t = self.alloc_bucket(one);
                self.link_bucket_after(t, head);
                t
            }
        } else {
            // Every occupied value exceeds `one`: the fresh slot is the
            // new minimum.
            let t = self.alloc_bucket(one);
            self.link_bucket_front(t);
            t
        };
        self.push_entry_tail(target, slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny harness pairing the list with its external counter array.
    struct Harness {
        list: BucketList<u64>,
        counts: Vec<u64>,
    }

    impl Harness {
        fn new() -> Self {
            Self {
                list: BucketList::with_capacity(8),
                counts: Vec::new(),
            }
        }

        fn insert(&mut self) -> u32 {
            let slot = self.counts.len() as u32;
            self.counts.push(1);
            self.list.push_slot();
            self.list.place_fresh(slot, 0, 1);
            slot
        }

        fn bump(&mut self, slot: u32) {
            self.counts[slot as usize] += 1;
            self.list.advance(slot, self.counts[slot as usize]);
        }
    }

    #[test]
    fn min_max_track_structurally() {
        let mut h = Harness::new();
        let a = h.insert();
        let b = h.insert();
        let _c = h.insert();
        assert_eq!(h.list.min_value(), Some(1));
        assert_eq!(h.list.max_value(), Some(1));
        h.bump(b);
        h.bump(b);
        h.bump(a);
        assert_eq!(h.list.min_value(), Some(1));
        assert_eq!(h.list.max_value(), Some(3));
        assert_eq!(h.list.oldest_max_slot(), Some(b));
    }

    #[test]
    fn oldest_min_is_fifo() {
        let mut h = Harness::new();
        let a = h.insert();
        let b = h.insert();
        assert_eq!(h.list.oldest_min_slot(), Some(a));
        h.bump(a); // a leaves the min bucket
        assert_eq!(h.list.oldest_min_slot(), Some(b));
    }

    #[test]
    fn drop_to_floor_joins_min_bucket_at_tail() {
        let mut h = Harness::new();
        let a = h.insert();
        let b = h.insert();
        h.bump(a);
        h.bump(a);
        // a: 3, b: 1. Drop a to the floor: it joins b's bucket, younger.
        h.counts[a as usize] = 1;
        h.list.drop_to_floor(a, 1);
        assert_eq!(h.list.max_value(), Some(1));
        assert_eq!(h.list.oldest_min_slot(), Some(b));
    }

    #[test]
    fn bucket_arena_is_bounded_and_recycled() {
        let mut h = Harness::new();
        let a = h.insert();
        for _ in 0..1000 {
            h.bump(a);
        }
        // One occupied slot → one live bucket, arena recycled throughout.
        assert_eq!(h.list.bucket_count(), 1);
        assert!(
            h.list.buckets.len() <= 3,
            "arena grew: {}",
            h.list.buckets.len()
        );
    }

    #[test]
    fn place_fresh_orders_around_zero_bucket() {
        let mut h = Harness::new();
        let a = h.insert();
        h.bump(a); // a: 2
                   // Simulate a not-full RFM reset of `a` to zero.
        h.counts[a as usize] = 0;
        h.list.drop_to_floor(a, 0);
        assert_eq!(h.list.min_value(), Some(0));
        // A fresh slot (value 1) lands between the 0 bucket and nothing.
        let b = h.insert();
        assert_eq!(h.list.min_value(), Some(0));
        assert_eq!(h.list.max_value(), Some(1));
        assert_eq!(h.list.oldest_max_slot(), Some(b));
    }

    #[test]
    fn self_check_detects_flipped_counter() {
        let mut h = Harness::new();
        let a = h.insert();
        let b = h.insert();
        h.bump(b);
        let ok = |h: &Harness| h.list.self_check(|s| h.counts[s as usize], |v| v);
        assert_eq!(ok(&h), Ok(()));
        // A soft error flips a stored counter bit; the bucket still holds
        // the old value, so the check trips on the value mismatch.
        h.counts[a as usize] ^= 1 << 4;
        assert!(ok(&h).unwrap_err().contains("disagrees"));
    }

    #[test]
    fn rebuild_restores_invariants_and_order() {
        let mut h = Harness::new();
        let a = h.insert();
        let b = h.insert();
        let c = h.insert();
        h.bump(b);
        h.bump(b);
        h.bump(c);
        // Corrupt two counters without telling the list.
        h.counts[a as usize] = 9;
        h.counts[c as usize] = 0;
        assert!(h.list.self_check(|s| h.counts[s as usize], |v| v).is_err());
        let counts = h.counts.clone();
        h.list.rebuild(|s| counts[s as usize], |v| v);
        assert_eq!(h.list.self_check(|s| h.counts[s as usize], |v| v), Ok(()));
        assert_eq!(h.list.min_value(), Some(0));
        assert_eq!(h.list.max_value(), Some(9));
        assert_eq!(h.list.oldest_min_slot(), Some(c));
        assert_eq!(h.list.oldest_max_slot(), Some(a));
        assert_eq!(h.list.slot_count(), 3);
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut h = Harness::new();
        h.insert();
        h.insert();
        h.list.clear();
        assert_eq!(h.list.min_value(), None);
        assert_eq!(h.list.bucket_count(), 0);
    }
}
