//! The Stream-Summary bucket list (Metwally et al.), shared by the Mithril
//! table (`mithril::MithrilTable`) and the Space-Saving tracker
//! (`mithril_trackers::SpaceSaving`).
//!
//! A [`BucketList`] groups externally-owned *slots* (the caller keeps the
//! per-slot addresses and counter values) into **buckets**, one per
//! distinct counter value, chained in a doubly-linked list ordered by
//! value. Each bucket holds the doubly-linked sub-list of its slots,
//! oldest joiner first. All maintenance — moving a slot to the adjacent
//! bucket on increment, dropping a slot to the minimum, evicting the
//! oldest minimum slot — is a constant number of pointer updates, giving
//! O(1) amortized updates and O(1) min/max reads where a scan-based
//! implementation pays O(capacity). See `ARCHITECTURE.md` at the repo
//! root for the full amortized-cost and wrap-safety argument.
//!
//! The list never *compares* values — it only tests equality against a
//! caller-supplied successor or floor value — so it works unchanged for
//! wrapping hardware counters (`u16` with diff-from-min ordering) and for
//! unbounded `u64` counts: order is maintained structurally, because
//! slots only ever move by exactly one increment or drop to the minimum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Sentinel for "no slot / no bucket" in the intrusive lists.
pub const NIL: u32 = u32::MAX;

/// One value bucket: position in the bucket list plus its slot sub-list.
#[derive(Debug, Clone, Copy)]
struct Bucket<V> {
    value: V,
    /// Neighbouring buckets, ordered by increasing (diff-from-min) value.
    prev: u32,
    next: u32,
    /// Slot sub-list, ordered by time of reaching `value` (oldest first).
    head: u32,
    tail: u32,
}

/// The bucket list over `V`-valued slots.
///
/// `V` only needs `Copy + Eq`; the caller supplies every new value
/// explicitly (successor on increment, floor on reset), so wrapping
/// arithmetic stays the caller's concern.
#[derive(Debug, Clone)]
pub struct BucketList<V> {
    /// Per-slot links within the owning bucket's sub-list.
    ent_prev: Vec<u32>,
    ent_next: Vec<u32>,
    /// Per-slot owning bucket.
    ent_bucket: Vec<u32>,
    /// Bucket arena; `free` recycles unlinked nodes, so at most
    /// `slots + 1` arena nodes ever exist.
    buckets: Vec<Bucket<V>>,
    free: Vec<u32>,
    /// Bucket holding the minimum value (`MinPtr` bucket).
    head_bucket: u32,
    /// Bucket holding the maximum value (`MaxPtr` bucket).
    tail_bucket: u32,
}

impl<V: Copy + Eq> BucketList<V> {
    /// Creates an empty list with room for `capacity` slots.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            ent_prev: Vec::with_capacity(capacity),
            ent_next: Vec::with_capacity(capacity),
            ent_bucket: Vec::with_capacity(capacity),
            buckets: Vec::with_capacity(capacity + 1),
            free: Vec::new(),
            head_bucket: NIL,
            tail_bucket: NIL,
        }
    }

    /// Registers a new slot (the caller's next slot index); it belongs to
    /// no bucket until [`place_fresh`] or an explicit move.
    ///
    /// [`place_fresh`]: BucketList::place_fresh
    pub fn push_slot(&mut self) {
        self.ent_prev.push(NIL);
        self.ent_next.push(NIL);
        self.ent_bucket.push(NIL);
    }

    /// The minimum value over all occupied slots, if any.
    pub fn min_value(&self) -> Option<V> {
        (self.head_bucket != NIL).then(|| self.buckets[self.head_bucket as usize].value)
    }

    /// The maximum value over all occupied slots, if any.
    pub fn max_value(&self) -> Option<V> {
        (self.tail_bucket != NIL).then(|| self.buckets[self.tail_bucket as usize].value)
    }

    /// The slot that has held the minimum value longest (eviction target).
    pub fn oldest_min_slot(&self) -> Option<u32> {
        (self.head_bucket != NIL).then(|| self.buckets[self.head_bucket as usize].head)
    }

    /// The slot that reached the maximum value first (greedy selection).
    pub fn oldest_max_slot(&self) -> Option<u32> {
        (self.tail_bucket != NIL).then(|| self.buckets[self.tail_bucket as usize].head)
    }

    /// Live buckets (diagnostics; at most the number of occupied slots).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len() - self.free.len()
    }

    /// Forgets all buckets and slots (allocations are kept).
    pub fn clear(&mut self) {
        self.ent_prev.clear();
        self.ent_next.clear();
        self.ent_bucket.clear();
        self.buckets.clear();
        self.free.clear();
        self.head_bucket = NIL;
        self.tail_bucket = NIL;
    }

    // ------------------------------------------------------------ plumbing

    fn alloc_bucket(&mut self, value: V) -> u32 {
        let node = Bucket {
            value,
            prev: NIL,
            next: NIL,
            head: NIL,
            tail: NIL,
        };
        match self.free.pop() {
            Some(b) => {
                self.buckets[b as usize] = node;
                b
            }
            None => {
                self.buckets.push(node);
                (self.buckets.len() - 1) as u32
            }
        }
    }

    fn link_bucket_after(&mut self, b: u32, after: u32) {
        let next = self.buckets[after as usize].next;
        self.buckets[b as usize].prev = after;
        self.buckets[b as usize].next = next;
        self.buckets[after as usize].next = b;
        match next {
            NIL => self.tail_bucket = b,
            n => self.buckets[n as usize].prev = b,
        }
    }

    fn link_bucket_front(&mut self, b: u32) {
        let head = self.head_bucket;
        self.buckets[b as usize].prev = NIL;
        self.buckets[b as usize].next = head;
        self.head_bucket = b;
        match head {
            NIL => self.tail_bucket = b,
            h => self.buckets[h as usize].prev = b,
        }
    }

    fn unlink_bucket(&mut self, b: u32) {
        debug_assert_eq!(
            self.buckets[b as usize].head, NIL,
            "only empty buckets unlink"
        );
        let Bucket { prev, next, .. } = self.buckets[b as usize];
        match prev {
            NIL => self.head_bucket = next,
            p => self.buckets[p as usize].next = next,
        }
        match next {
            NIL => self.tail_bucket = prev,
            n => self.buckets[n as usize].prev = prev,
        }
        self.free.push(b);
    }

    /// Appends `slot` to the sub-list of bucket `b` (newest joiner last —
    /// selection and eviction take from the front).
    fn push_entry_tail(&mut self, b: u32, slot: u32) {
        let tail = self.buckets[b as usize].tail;
        self.ent_prev[slot as usize] = tail;
        self.ent_next[slot as usize] = NIL;
        self.ent_bucket[slot as usize] = b;
        match tail {
            NIL => self.buckets[b as usize].head = slot,
            t => self.ent_next[t as usize] = slot,
        }
        self.buckets[b as usize].tail = slot;
    }

    /// Removes `slot` from its bucket's sub-list (bucket stays linked even
    /// if it becomes empty; callers unlink it afterwards).
    fn detach_entry(&mut self, slot: u32) {
        let b = self.ent_bucket[slot as usize] as usize;
        let (prev, next) = (self.ent_prev[slot as usize], self.ent_next[slot as usize]);
        match prev {
            NIL => self.buckets[b].head = next,
            p => self.ent_next[p as usize] = next,
        }
        match next {
            NIL => self.buckets[b].tail = prev,
            n => self.ent_prev[n as usize] = prev,
        }
    }

    // ----------------------------------------------------------- movement

    /// Moves `slot` from its bucket to the bucket for `successor` (its
    /// value plus one, in the caller's arithmetic), creating that bucket
    /// next to the current one if absent. O(1).
    pub fn advance(&mut self, slot: u32, successor: V) {
        let b = self.ent_bucket[slot as usize];
        let nb = self.buckets[b as usize].next;
        let target = if nb != NIL && self.buckets[nb as usize].value == successor {
            nb
        } else {
            let t = self.alloc_bucket(successor);
            self.link_bucket_after(t, b);
            t
        };
        self.detach_entry(slot);
        self.push_entry_tail(target, slot);
        if self.buckets[b as usize].head == NIL {
            self.unlink_bucket(b);
        }
    }

    /// Moves `slot` to the bucket holding `floor` (the current minimum, or
    /// below every occupied value), creating it at the front if absent.
    /// This is the decrement-to-min of the greedy RFM step. O(1).
    pub fn drop_to_floor(&mut self, slot: u32, floor: V) {
        let b = self.ent_bucket[slot as usize];
        self.detach_entry(slot);
        let head = self.head_bucket;
        if head != NIL && self.buckets[head as usize].value == floor {
            self.push_entry_tail(head, slot);
        } else {
            let nb = self.alloc_bucket(floor);
            self.link_bucket_front(nb);
            self.push_entry_tail(nb, slot);
        }
        if self.buckets[b as usize].head == NIL {
            self.unlink_bucket(b);
        }
    }

    /// Places a fresh slot holding value `one` into a list whose only
    /// possible smaller value is `zero` (slots reset by a not-full RFM).
    /// Callers use this while their table is below capacity, where those
    /// are the only two values at the bottom of the order — so placement
    /// is O(1) despite being an ordered insert.
    pub fn place_fresh(&mut self, slot: u32, zero: V, one: V) {
        let head = self.head_bucket;
        if head == NIL {
            let b = self.alloc_bucket(one);
            self.link_bucket_front(b);
            self.push_entry_tail(b, slot);
            return;
        }
        let hv = self.buckets[head as usize].value;
        let target = if hv == one {
            head
        } else if hv == zero {
            let nb = self.buckets[head as usize].next;
            if nb != NIL && self.buckets[nb as usize].value == one {
                nb
            } else {
                let t = self.alloc_bucket(one);
                self.link_bucket_after(t, head);
                t
            }
        } else {
            // Every occupied value exceeds `one`: the fresh slot is the
            // new minimum.
            let t = self.alloc_bucket(one);
            self.link_bucket_front(t);
            t
        };
        self.push_entry_tail(target, slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny harness pairing the list with its external counter array.
    struct Harness {
        list: BucketList<u64>,
        counts: Vec<u64>,
    }

    impl Harness {
        fn new() -> Self {
            Self {
                list: BucketList::with_capacity(8),
                counts: Vec::new(),
            }
        }

        fn insert(&mut self) -> u32 {
            let slot = self.counts.len() as u32;
            self.counts.push(1);
            self.list.push_slot();
            self.list.place_fresh(slot, 0, 1);
            slot
        }

        fn bump(&mut self, slot: u32) {
            self.counts[slot as usize] += 1;
            self.list.advance(slot, self.counts[slot as usize]);
        }
    }

    #[test]
    fn min_max_track_structurally() {
        let mut h = Harness::new();
        let a = h.insert();
        let b = h.insert();
        let _c = h.insert();
        assert_eq!(h.list.min_value(), Some(1));
        assert_eq!(h.list.max_value(), Some(1));
        h.bump(b);
        h.bump(b);
        h.bump(a);
        assert_eq!(h.list.min_value(), Some(1));
        assert_eq!(h.list.max_value(), Some(3));
        assert_eq!(h.list.oldest_max_slot(), Some(b));
    }

    #[test]
    fn oldest_min_is_fifo() {
        let mut h = Harness::new();
        let a = h.insert();
        let b = h.insert();
        assert_eq!(h.list.oldest_min_slot(), Some(a));
        h.bump(a); // a leaves the min bucket
        assert_eq!(h.list.oldest_min_slot(), Some(b));
    }

    #[test]
    fn drop_to_floor_joins_min_bucket_at_tail() {
        let mut h = Harness::new();
        let a = h.insert();
        let b = h.insert();
        h.bump(a);
        h.bump(a);
        // a: 3, b: 1. Drop a to the floor: it joins b's bucket, younger.
        h.counts[a as usize] = 1;
        h.list.drop_to_floor(a, 1);
        assert_eq!(h.list.max_value(), Some(1));
        assert_eq!(h.list.oldest_min_slot(), Some(b));
    }

    #[test]
    fn bucket_arena_is_bounded_and_recycled() {
        let mut h = Harness::new();
        let a = h.insert();
        for _ in 0..1000 {
            h.bump(a);
        }
        // One occupied slot → one live bucket, arena recycled throughout.
        assert_eq!(h.list.bucket_count(), 1);
        assert!(
            h.list.buckets.len() <= 3,
            "arena grew: {}",
            h.list.buckets.len()
        );
    }

    #[test]
    fn place_fresh_orders_around_zero_bucket() {
        let mut h = Harness::new();
        let a = h.insert();
        h.bump(a); // a: 2
                   // Simulate a not-full RFM reset of `a` to zero.
        h.counts[a as usize] = 0;
        h.list.drop_to_floor(a, 0);
        assert_eq!(h.list.min_value(), Some(0));
        // A fresh slot (value 1) lands between the 0 bucket and nothing.
        let b = h.insert();
        assert_eq!(h.list.min_value(), Some(0));
        assert_eq!(h.list.max_value(), Some(1));
        assert_eq!(h.list.oldest_max_slot(), Some(b));
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut h = Harness::new();
        h.insert();
        h.insert();
        h.list.clear();
        assert_eq!(h.list.min_value(), None);
        assert_eq!(h.list.bucket_count(), 0);
    }
}
