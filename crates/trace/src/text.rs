//! Line-oriented text trace parsers and writers.
//!
//! Two external formats are supported, both with precise line-numbered
//! error reporting so a malformed multi-gigabyte capture points at the
//! offending line instead of failing opaquely:
//!
//! * [`TextFormat::Ramulator`] — `<non_mem_insts> <R|W> <addr>` per line,
//!   the instruction-trace shape Ramulator-style simulators consume.
//! * [`TextFormat::AddrStream`] — one address per line, every access a
//!   read with no leading non-memory instructions (the shape raw
//!   address-capture tools emit).
//!
//! Addresses are **byte** addresses (hex with an `0x` prefix or decimal)
//! and are converted to cache-line addresses with the usual 64-byte line,
//! matching [`TraceOp::line_addr`]'s definition. Blank lines and lines
//! starting with `#` are skipped in both formats.

use std::io::{BufRead, Write};

use mithril_workloads::TraceOp;

use crate::error::{Result, TraceError};

/// Bytes per cache line assumed when converting byte addresses.
pub const LINE_BYTES: u64 = 64;

/// The supported text trace dialects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextFormat {
    /// `<non_mem_insts> <R|W> <addr>` per line.
    Ramulator,
    /// One byte address per line; all reads.
    AddrStream,
}

impl TextFormat {
    /// Parses a format name (`ramulator` / `addr`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "ramulator" => Some(TextFormat::Ramulator),
            "addr" | "addr-stream" => Some(TextFormat::AddrStream),
            _ => None,
        }
    }
}

fn parse_addr(token: &str, line: usize) -> Result<u64> {
    let parsed = if let Some(hex) = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16)
    } else {
        token.parse::<u64>()
    };
    parsed.map_err(|_| TraceError::Text {
        line,
        msg: format!("bad address {token:?} (expected decimal or 0x-hex)"),
    })
}

/// Parses one non-blank, non-comment line of `fmt`.
///
/// `line` is the 1-based line number used in errors.
pub fn parse_line(fmt: TextFormat, text: &str, line: usize) -> Result<TraceOp> {
    let mut tokens = text.split_whitespace();
    match fmt {
        TextFormat::AddrStream => {
            let addr = tokens.next().ok_or_else(|| TraceError::Text {
                line,
                msg: "empty line reached the parser".into(),
            })?;
            if let Some(extra) = tokens.next() {
                return Err(TraceError::Text {
                    line,
                    msg: format!("unexpected trailing token {extra:?}"),
                });
            }
            Ok(TraceOp::read(0, parse_addr(addr, line)? / LINE_BYTES))
        }
        TextFormat::Ramulator => {
            let (nmi, rw, addr) = match (tokens.next(), tokens.next(), tokens.next()) {
                (Some(a), Some(b), Some(c)) => (a, b, c),
                _ => {
                    return Err(TraceError::Text {
                        line,
                        msg: format!("expected `<non_mem_insts> <R|W> <addr>`, got {text:?}"),
                    })
                }
            };
            if let Some(extra) = tokens.next() {
                return Err(TraceError::Text {
                    line,
                    msg: format!("unexpected trailing token {extra:?}"),
                });
            }
            let non_mem_insts: u32 = nmi.parse().map_err(|_| TraceError::Text {
                line,
                msg: format!("bad instruction count {nmi:?}"),
            })?;
            let is_write = match rw {
                "R" | "r" => false,
                "W" | "w" => true,
                other => {
                    return Err(TraceError::Text {
                        line,
                        msg: format!("bad access kind {other:?} (expected R or W)"),
                    })
                }
            };
            let line_addr = parse_addr(addr, line)? / LINE_BYTES;
            Ok(TraceOp {
                non_mem_insts,
                line_addr,
                is_write,
                uncacheable: false,
            })
        }
    }
}

/// A streaming text-trace reader: an iterator of `Result<TraceOp>` that
/// holds one line in memory at a time.
pub struct TextReader<R: BufRead> {
    source: R,
    fmt: TextFormat,
    line_no: usize,
    buf: String,
}

impl<R: BufRead> TextReader<R> {
    /// Wraps `source` as a reader of `fmt` lines.
    pub fn new(source: R, fmt: TextFormat) -> Self {
        Self {
            source,
            fmt,
            line_no: 0,
            buf: String::new(),
        }
    }

    /// The 1-based number of the last line read.
    pub fn line_number(&self) -> usize {
        self.line_no
    }
}

impl<R: BufRead> Iterator for TextReader<R> {
    type Item = Result<TraceOp>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            match self.source.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => return Some(Err(TraceError::Io(e))),
            }
            self.line_no += 1;
            let text = self.buf.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            return Some(parse_line(self.fmt, text, self.line_no));
        }
    }
}

/// Reads a whole text trace into memory.
pub fn read_text<R: BufRead>(source: R, fmt: TextFormat) -> Result<Vec<TraceOp>> {
    TextReader::new(source, fmt).collect()
}

/// Writes `ops` in `fmt`. Information the dialect cannot express is
/// dropped: `AddrStream` loses instruction counts and write flags, and
/// neither dialect carries the `uncacheable` flag.
pub fn write_text<'a, W: Write>(
    sink: &mut W,
    fmt: TextFormat,
    ops: impl IntoIterator<Item = &'a TraceOp>,
) -> std::io::Result<()> {
    for op in ops {
        let byte_addr = op.line_addr.checked_mul(LINE_BYTES).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "line address 0x{:x} has no byte representation",
                    op.line_addr
                ),
            )
        })?;
        match fmt {
            TextFormat::AddrStream => writeln!(sink, "0x{byte_addr:x}")?,
            TextFormat::Ramulator => writeln!(
                sink,
                "{} {} 0x{byte_addr:x}",
                op.non_mem_insts,
                if op.is_write { "W" } else { "R" },
            )?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn ramulator_lines_parse() {
        let text = "# a comment\n10 R 0x1000\n\n3 W 640\n";
        let ops = read_text(Cursor::new(text), TextFormat::Ramulator).unwrap();
        assert_eq!(
            ops,
            vec![TraceOp::read(10, 0x1000 / 64), TraceOp::write(3, 10)]
        );
    }

    #[test]
    fn addr_stream_lines_parse() {
        let ops = read_text(Cursor::new("0x40\n128\n"), TextFormat::AddrStream).unwrap();
        assert_eq!(ops, vec![TraceOp::read(0, 1), TraceOp::read(0, 2)]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "10 R 0x1000\n11 X 0x2000\n";
        let err = read_text(Cursor::new(text), TextFormat::Ramulator).unwrap_err();
        match err {
            TraceError::Text { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains('X'), "{msg}");
            }
            other => panic!("unexpected error {other}"),
        }
        let err = read_text(Cursor::new("# c\n\nzz\n"), TextFormat::AddrStream).unwrap_err();
        assert!(matches!(err, TraceError::Text { line: 3, .. }), "{err}");
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        let err = read_text(Cursor::new("1 R 0x40 junk\n"), TextFormat::Ramulator).unwrap_err();
        assert!(err.to_string().contains("junk"), "{err}");
    }

    #[test]
    fn text_roundtrip_preserves_expressible_fields() {
        let ops = vec![
            TraceOp::read(5, 100),
            TraceOp::write(0, 7),
            TraceOp::read(4_000_000, 1 << 40),
        ];
        let mut buf = Vec::new();
        write_text(&mut buf, TextFormat::Ramulator, &ops).unwrap();
        let back = read_text(Cursor::new(buf), TextFormat::Ramulator).unwrap();
        assert_eq!(back, ops);
    }
}
