//! Corruption-tolerant MTRC reading: skip damaged chunks, keep the rest.
//!
//! The strict [`MtrcReader`](crate::MtrcReader) treats any damage as
//! fatal — correct for integrity checking, but it makes one flipped byte
//! discard a multi-gigabyte capture. [`ResilientMtrcReader`] instead
//! *skips* records that fail their checksum and resynchronizes on the
//! next decodable record, counting what it dropped in a
//! [`ResilienceReport`] so the loss is visible, never silent.
//!
//! # Resynchronization
//!
//! Chunks are self-delimiting (`core`/`count`/`payload_len` varints +
//! payload + checksum), so recovery tries the cheap exact path first: if
//! the damaged chunk's *frame* still parses, the next record starts at
//! its claimed extent. The claim is only trusted when the chain of
//! records from there leads to a checksum-valid record (or exact EOF) —
//! a corrupted `payload_len` would otherwise desynchronize the rest of
//! the file. When the frame itself is damaged the reader falls back to a
//! byte-by-byte scan for the next position where a record decodes and
//! checksums cleanly.
//!
//! Payload-only damage therefore skips exactly the damaged chunks, one
//! count each; frame damage may merge adjacent losses into one skip
//! region. Acceptance is always checksum-gated: the resilient reader
//! never yields ops the strict reader would reject.
//!
//! # What stays strict
//!
//! The header. A capture without a valid header has no trustworthy
//! geometry or core count, and replaying ops aimed at an unknown address
//! mapping answers nothing — that failure is still [`TraceError`].

use std::io::{Read, Seek, SeekFrom};

use mithril_workloads::TraceOp;

use crate::error::{Result, TraceError};
use crate::format::{read_raw_chunk, read_varint, CountingReader, RawChunk, TraceHeader, CORE_END};

/// What a resilient read skipped, for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Damaged records skipped (exact for payload-only damage; frame
    /// damage may merge adjacent losses into one).
    pub skipped_chunks: u64,
    /// Total bytes skipped over while resynchronizing.
    pub skipped_bytes: u64,
    /// The file ended without a valid end marker (torn tail).
    pub missing_end_marker: bool,
    /// A valid end marker was found but its op total disagrees with the
    /// ops actually decoded — expected whenever chunks were skipped.
    pub end_count_mismatch: bool,
}

impl ResilienceReport {
    /// True when the capture read back fully intact.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// Cap on chain-walk validation steps when vetting a claimed extent; a
/// real MTRC file reaches a valid record far sooner, so the cap only
/// bounds work on pathological garbage.
const MAX_CHAIN_STEPS: u32 = 1024;

/// A streaming MTRC reader that skips corrupt or torn records instead of
/// aborting, tallying the damage in a [`ResilienceReport`].
pub struct ResilientMtrcReader<R: Read + Seek> {
    source: R,
    header: TraceHeader,
    file_len: u64,
    payload: Vec<u8>,
    scratch_payload: Vec<u8>,
    scratch_ops: Vec<TraceOp>,
    ops_seen: u64,
    chunk_index: u64,
    done: bool,
    report: ResilienceReport,
}

impl<R: Read + Seek> ResilientMtrcReader<R> {
    /// Parses the header strictly and positions the reader at the first
    /// record.
    ///
    /// # Errors
    ///
    /// I/O failure or a damaged header — header corruption is fatal (see
    /// module docs); body corruption is not.
    pub fn new(mut source: R) -> Result<Self> {
        let file_len = source.seek(SeekFrom::End(0))?;
        source.seek(SeekFrom::Start(0))?;
        let header = TraceHeader::decode(&mut source)?;
        Ok(Self {
            source,
            header,
            file_len,
            payload: Vec::new(),
            scratch_payload: Vec::new(),
            scratch_ops: Vec::new(),
            ops_seen: 0,
            chunk_index: 0,
            done: false,
            report: ResilienceReport::default(),
        })
    }

    /// The file header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Ops decoded (from valid chunks) so far.
    pub fn ops_read(&self) -> u64 {
        self.ops_seen
    }

    /// The damage tally so far; complete once `next_chunk` returns
    /// `Ok(None)`.
    pub fn report(&self) -> ResilienceReport {
        self.report
    }

    /// Decodes the next *valid* chunk into `ops` (cleared first) and
    /// returns its core id, or `None` at end of stream. Damaged records
    /// in between are skipped and tallied, not returned as errors.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failure (device errors, not EOF/corruption).
    pub fn next_chunk(&mut self, ops: &mut Vec<TraceOp>) -> Result<Option<usize>> {
        ops.clear();
        if self.done {
            return Ok(None);
        }
        loop {
            let start = self.source.stream_position()?;
            if start >= self.file_len {
                self.done = true;
                self.report.missing_end_marker = true;
                return Ok(None);
            }
            match read_raw_chunk(
                &mut self.source,
                self.header.cores,
                self.chunk_index,
                &mut self.payload,
                ops,
            ) {
                Ok(RawChunk::End { total }) => {
                    self.done = true;
                    if total != self.ops_seen {
                        self.report.end_count_mismatch = true;
                    }
                    return Ok(None);
                }
                Ok(RawChunk::Ops { core }) => {
                    self.ops_seen += ops.len() as u64;
                    self.chunk_index += 1;
                    return Ok(Some(core));
                }
                Err(TraceError::Io(e)) => return Err(TraceError::Io(e)),
                Err(_) => {
                    let resumed_at = self.resync(start)?;
                    self.report.skipped_chunks += 1;
                    self.report.skipped_bytes += resumed_at - start;
                    self.source.seek(SeekFrom::Start(resumed_at))?;
                }
            }
        }
    }

    /// Finds the next believable record boundary after a failed decode at
    /// `start`: the damaged record's claimed extent when the chain from
    /// there validates, else the first byte offset where a record decodes
    /// cleanly, else EOF.
    fn resync(&mut self, start: u64) -> Result<u64> {
        if let Some(extent) = self.claimed_extent_at(start)? {
            let candidate = start + extent;
            if candidate <= self.file_len && self.chain_validates(candidate)? {
                return Ok(candidate);
            }
        }
        let mut offset = start + 1;
        while offset < self.file_len {
            if self.probe(offset)? {
                return Ok(offset);
            }
            offset += 1;
        }
        Ok(self.file_len)
    }

    /// The byte extent the record at `offset` claims for itself, when its
    /// frame still parses plausibly (`None` otherwise).
    fn claimed_extent_at(&mut self, offset: u64) -> Result<Option<u64>> {
        self.source.seek(SeekFrom::Start(offset))?;
        let mut counter = CountingReader {
            inner: &mut self.source,
            bytes: 0,
        };
        macro_rules! lenient {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(TraceError::Io(e)) => return Err(TraceError::Io(e)),
                    Err(_) => return Ok(None),
                }
            };
        }
        let core = lenient!(read_varint(&mut counter, "resync core id"));
        if core == CORE_END {
            lenient!(read_varint(&mut counter, "resync end-marker count"));
            return Ok(Some(counter.bytes + 8));
        }
        if core >= self.header.cores as u64 {
            return Ok(None);
        }
        let count = lenient!(read_varint(&mut counter, "resync op count"));
        let payload_len = lenient!(read_varint(&mut counter, "resync payload length"));
        // Two varints per op bounds a real payload; reject wild lengths
        // so a corrupted frame cannot claim half the file.
        if count == 0 || payload_len > (1 << 31) || payload_len > count.saturating_mul(20) {
            return Ok(None);
        }
        Ok(Some(counter.bytes + payload_len + 8))
    }

    /// True when a record decodes and checksums cleanly at `offset`.
    fn probe(&mut self, offset: u64) -> Result<bool> {
        self.source.seek(SeekFrom::Start(offset))?;
        match read_raw_chunk(
            &mut self.source,
            self.header.cores,
            self.chunk_index,
            &mut self.scratch_payload,
            &mut self.scratch_ops,
        ) {
            Ok(_) => Ok(true),
            Err(TraceError::Io(e)) => Err(TraceError::Io(e)),
            Err(_) => Ok(false),
        }
    }

    /// True when following claimed extents from `offset` reaches a
    /// checksum-valid record or exact EOF — the vetting that lets
    /// adjacent payload-damaged chunks each count as their own skip.
    fn chain_validates(&mut self, mut offset: u64) -> Result<bool> {
        for _ in 0..MAX_CHAIN_STEPS {
            if offset == self.file_len {
                return Ok(true);
            }
            if self.probe(offset)? {
                return Ok(true);
            }
            match self.claimed_extent_at(offset)? {
                Some(extent) if offset + extent <= self.file_len => offset += extent,
                _ => return Ok(false),
            }
        }
        Ok(false)
    }
}

/// Reads a whole trace tolerantly, demultiplexed per core, with the
/// damage tally. The ops returned are exactly those of the surviving
/// valid chunks, in file order.
///
/// # Errors
///
/// I/O failure or a damaged header only.
pub fn read_all_resilient<R: Read + Seek>(
    source: R,
) -> Result<(TraceHeader, Vec<Vec<TraceOp>>, ResilienceReport)> {
    let mut reader = ResilientMtrcReader::new(source)?;
    let mut per_core: Vec<Vec<TraceOp>> = (0..reader.header().cores).map(|_| Vec::new()).collect();
    let mut chunk = Vec::new();
    while let Some(core) = reader.next_chunk(&mut chunk)? {
        per_core[core].extend_from_slice(&chunk);
    }
    Ok((reader.header, per_core, reader.report))
}

/// [`read_all_resilient`] over a buffered file.
pub fn read_all_resilient_path(
    path: &std::path::Path,
) -> Result<(TraceHeader, Vec<Vec<TraceOp>>, ResilienceReport)> {
    let f = std::fs::File::open(path)?;
    read_all_resilient(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{read_all, MtrcWriter};
    use mithril_dram::Geometry;
    use std::io::Cursor;

    fn header(cores: usize) -> TraceHeader {
        TraceHeader {
            geometry: Geometry::default(),
            cores,
            base_seed: 7,
            insts_per_core: 1000,
            source: "resilient-test".into(),
        }
    }

    /// Writes `chunks` (core, ops) in order, one record each, and returns
    /// the bytes plus each chunk's (start, frame_len, payload_len).
    fn capture(cores: usize, chunks: &[(usize, Vec<TraceOp>)]) -> (Vec<u8>, Vec<(u64, u64, u64)>) {
        let mut w = ChunkedWriter::new(cores);
        for (core, ops) in chunks {
            w.chunk(*core, ops);
        }
        w.finish()
    }

    /// Minimal re-encoder mirroring MtrcWriter's byte layout while
    /// recording chunk offsets (the `layout_matches_strict_reader` test
    /// cross-checks it against the real reader).
    struct ChunkedWriter {
        bytes: Vec<u8>,
        layout: Vec<(u64, u64, u64)>,
        cores: usize,
        total: u64,
    }

    impl ChunkedWriter {
        fn new(cores: usize) -> Self {
            let mut sink = Vec::new();
            {
                // Dropped without finish(): sink holds exactly the
                // encoded header, no end marker.
                let _w = MtrcWriter::new(&mut sink, &header(cores)).unwrap();
            }
            Self {
                bytes: sink,
                layout: Vec::new(),
                cores,
                total: 0,
            }
        }

        fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
            loop {
                let byte = (v & 0x7f) as u8;
                v >>= 7;
                if v == 0 {
                    buf.push(byte);
                    return;
                }
                buf.push(byte | 0x80);
            }
        }

        fn fnv(bytes: &[u8]) -> u64 {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        }

        fn zigzag(v: i64) -> u64 {
            ((v << 1) ^ (v >> 63)) as u64
        }

        fn chunk(&mut self, core: usize, ops: &[TraceOp]) {
            assert!(core < self.cores && !ops.is_empty());
            let mut payload = Vec::new();
            let (mut prev_line, mut prev_nmi) = (0u64, 0i64);
            for op in ops {
                let flags = (op.uncacheable as u64) << 1 | op.is_write as u64;
                let nmi_delta = op.non_mem_insts as i64 - prev_nmi;
                Self::put_varint(&mut payload, Self::zigzag(nmi_delta) << 2 | flags);
                Self::put_varint(
                    &mut payload,
                    Self::zigzag(op.line_addr.wrapping_sub(prev_line) as i64),
                );
                prev_line = op.line_addr;
                prev_nmi = op.non_mem_insts as i64;
            }
            let mut frame = Vec::new();
            Self::put_varint(&mut frame, core as u64);
            Self::put_varint(&mut frame, ops.len() as u64);
            Self::put_varint(&mut frame, payload.len() as u64);
            let mut checked = frame.clone();
            checked.extend_from_slice(&payload);
            let start = self.bytes.len() as u64;
            self.layout
                .push((start, frame.len() as u64, payload.len() as u64));
            self.bytes.extend_from_slice(&frame);
            self.bytes.extend_from_slice(&payload);
            self.bytes
                .extend_from_slice(&Self::fnv(&checked).to_le_bytes());
            self.total += ops.len() as u64;
        }

        fn finish(mut self) -> (Vec<u8>, Vec<(u64, u64, u64)>) {
            let mut frame = Vec::new();
            Self::put_varint(&mut frame, u64::MAX);
            let count_start = frame.len();
            Self::put_varint(&mut frame, self.total);
            let check = Self::fnv(&frame[count_start..]);
            frame.extend_from_slice(&check.to_le_bytes());
            self.bytes.extend_from_slice(&frame);
            (self.bytes, self.layout)
        }
    }

    fn ops(tag: u64, n: usize) -> Vec<TraceOp> {
        (0..n as u64)
            .map(|i| TraceOp::read((tag * 10 + i) as u32, (tag << 20) | (i * 3)))
            .collect()
    }

    #[test]
    fn layout_matches_strict_reader() {
        // The hand-rolled test writer must stay byte-compatible with the
        // real format: the strict reader accepts its output verbatim.
        let chunks = vec![(0usize, ops(1, 5)), (1, ops(2, 3)), (0, ops(3, 7))];
        let (bytes, layout) = capture(2, &chunks);
        let (h, per_core) = read_all(&bytes[..]).unwrap();
        assert_eq!(h, header(2));
        assert_eq!(per_core[0].len(), 12);
        assert_eq!(per_core[1].len(), 3);
        assert_eq!(layout.len(), 3);
    }

    #[test]
    fn clean_file_reads_clean() {
        let (bytes, _) = capture(2, &[(0, ops(1, 4)), (1, ops(2, 4))]);
        let (h, per_core, report) = read_all_resilient(Cursor::new(bytes)).unwrap();
        assert_eq!(h.cores, 2);
        assert_eq!(per_core[0].len(), 4);
        assert!(report.is_clean(), "report: {report:?}");
    }

    #[test]
    fn payload_flip_skips_exactly_that_chunk() {
        let chunks = vec![(0usize, ops(1, 5)), (0, ops(2, 6)), (0, ops(3, 7))];
        let (bytes, layout) = capture(1, &chunks);
        let (start, frame_len, _) = layout[1];
        let mut corrupted = bytes.clone();
        corrupted[(start + frame_len) as usize] ^= 0x40;
        let (_, per_core, report) = read_all_resilient(Cursor::new(corrupted)).unwrap();
        let mut expect = ops(1, 5);
        expect.extend(ops(3, 7));
        assert_eq!(per_core[0], expect, "surviving chunks, in order");
        assert_eq!(report.skipped_chunks, 1);
        assert!(report.end_count_mismatch, "total no longer matches");
        assert!(!report.missing_end_marker);
    }

    #[test]
    fn adjacent_corrupt_chunks_count_individually() {
        let chunks = vec![
            (0usize, ops(1, 5)),
            (0, ops(2, 6)),
            (0, ops(3, 7)),
            (0, ops(4, 8)),
        ];
        let (bytes, layout) = capture(1, &chunks);
        let mut corrupted = bytes.clone();
        for &(start, frame_len, _) in &layout[1..3] {
            corrupted[(start + frame_len) as usize] ^= 0x40;
        }
        let (_, per_core, report) = read_all_resilient(Cursor::new(corrupted)).unwrap();
        let mut expect = ops(1, 5);
        expect.extend(ops(4, 8));
        assert_eq!(per_core[0], expect);
        assert_eq!(report.skipped_chunks, 2, "one count per damaged chunk");
    }

    #[test]
    fn frame_damage_resyncs_by_scanning() {
        let chunks = vec![(0usize, ops(1, 5)), (0, ops(2, 6)), (0, ops(3, 7))];
        let (bytes, layout) = capture(1, &chunks);
        let (start, _, _) = layout[1];
        let mut corrupted = bytes.clone();
        // Smash the frame varints themselves.
        corrupted[start as usize] = 0xff;
        corrupted[start as usize + 1] = 0xff;
        let (_, per_core, report) = read_all_resilient(Cursor::new(corrupted)).unwrap();
        let mut expect = ops(1, 5);
        expect.extend(ops(3, 7));
        assert_eq!(per_core[0], expect);
        assert!(report.skipped_chunks >= 1);
        assert!(report.skipped_bytes > 0);
    }

    #[test]
    fn torn_tail_is_counted_and_flagged() {
        let chunks = vec![(0usize, ops(1, 5)), (0, ops(2, 40))];
        let (bytes, layout) = capture(1, &chunks);
        let (start, frame_len, _) = layout[1];
        // Cut mid-payload of the second chunk.
        let cut = (start + frame_len + 10) as usize;
        let (_, per_core, report) = read_all_resilient(Cursor::new(bytes[..cut].to_vec())).unwrap();
        assert_eq!(per_core[0], ops(1, 5));
        assert_eq!(report.skipped_chunks, 1);
        assert!(report.missing_end_marker);
    }

    #[test]
    fn header_damage_stays_fatal() {
        let (mut bytes, _) = capture(1, &[(0, ops(1, 3))]);
        bytes[10] ^= 0x01;
        assert!(read_all_resilient(Cursor::new(bytes)).is_err());
    }

    use proptest::prelude::*;

    proptest! {
        /// The resilience contract, under arbitrary payload/checksum
        /// corruption of arbitrary chunks: the ops read back are exactly
        /// those of the surviving valid chunks, in file order, and the
        /// skipped-chunk count is exact (payload damage never merges or
        /// double-counts, even on adjacent chunks). Indices are generated
        /// wide and wrapped to the live ranges, as the shim has no
        /// dependent strategies.
        #[test]
        fn corrupted_captures_lose_exactly_their_chunks(
            cores in 1usize..4,
            specs in prop::collection::vec((0usize..8, 1usize..12), 1..10),
            damage in prop::collection::vec(
                (0usize..64, 0usize..4096, 1u64..256),
                0..6,
            ),
        ) {
            let chunks: Vec<(usize, Vec<TraceOp>)> = specs
                .iter()
                .enumerate()
                .map(|(i, &(core, n))| (core % cores, ops(i as u64 + 1, n)))
                .collect();
            let (mut bytes, layout) = capture(cores, &chunks);

            // One flip per chunk at most (a second flip could undo the
            // first and silently heal the record), anywhere in the
            // payload + checksum span so the frame stays parseable.
            let mut damaged: Vec<usize> = Vec::new();
            for &(chunk_ix, offset_ix, mask) in &damage {
                let c = chunk_ix % chunks.len();
                if damaged.contains(&c) {
                    continue;
                }
                let (start, frame_len, payload_len) = layout[c];
                let span = (payload_len + 8) as usize;
                let at = (start + frame_len) as usize + offset_ix % span;
                bytes[at] ^= mask as u8;
                damaged.push(c);
            }

            let (h, per_core, report) =
                read_all_resilient(Cursor::new(bytes)).unwrap();
            prop_assert_eq!(h, header(cores));
            prop_assert_eq!(report.skipped_chunks, damaged.len() as u64);
            prop_assert!(!report.missing_end_marker);
            prop_assert_eq!(report.end_count_mismatch, !damaged.is_empty());
            prop_assert_eq!(report.is_clean(), damaged.is_empty());

            let mut expect: Vec<Vec<TraceOp>> = vec![Vec::new(); cores];
            for (i, (core, ops)) in chunks.iter().enumerate() {
                if !damaged.contains(&i) {
                    expect[*core].extend_from_slice(ops);
                }
            }
            prop_assert_eq!(per_core, expect);
        }
    }
}
