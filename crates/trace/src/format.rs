//! The MTRC v1 binary trace format: a compact, streaming, checksummed
//! container for multi-core [`TraceOp`] streams.
//!
//! # Layout
//!
//! ```text
//! file   := header chunk* end
//! header := "MTRC" u16:version(=1)
//!           varint: channels ranks banks_per_rank rows_per_bank
//!                   row_bytes line_bytes cores insts_per_core
//!           u64le: base_seed
//!           varint: source_len  bytes: source (UTF-8)
//!           u64le: fnv1a64 of every header byte after the magic
//! chunk  := varint: core_id(< cores)  varint: op_count(> 0)
//!           varint: payload_len  bytes: payload
//!           u64le: fnv1a64 of the three frame varints ++ payload
//! end    := varint: CORE_END(= u64::MAX)  varint: total_ops
//!           u64le: fnv1a64 of the total_ops varint bytes
//! ```
//!
//! Within a chunk every op is two varints; the per-core delta state
//! (previous `line_addr`, previous `non_mem_insts`) **resets at each chunk
//! boundary**, so chunks decode independently and a reader never needs
//! more state than one chunk:
//!
//! ```text
//! op := varint( zigzag(Δnon_mem_insts) << 2
//!               | uncacheable << 1 | is_write )
//!       varint( zigzag(line_addr -w- prev_line_addr) )
//! ```
//!
//! `-w-` is wrapping subtraction over `u64`, which composed with zigzag is
//! a bijection — arbitrary 64-bit line addresses round-trip exactly.
//! Sequential streams (ubiquitous in DRAM traces) encode as 2 bytes/op.
//!
//! # Streaming and integrity
//!
//! [`MtrcWriter`] buffers at most `chunk_ops` ops per core and
//! [`MtrcReader`] holds one decoded chunk, so both run in O(1) memory over
//! `BufWriter`/`BufReader` regardless of trace length. Every payload is
//! guarded by an FNV-1a checksum and the file by an explicit end marker
//! carrying the total op count: flipped bytes report as
//! [`TraceError::BadChecksum`], missing bytes as [`TraceError::Truncated`].

use std::io::{Read, Seek, SeekFrom, Write};

use mithril_dram::Geometry;
use mithril_workloads::TraceOp;

use crate::error::{Result, TraceError};

/// Format magic, first four bytes of every trace file.
pub const MAGIC: [u8; 4] = *b"MTRC";

/// The format version this module reads and writes.
pub const VERSION: u16 = 1;

/// Core-id sentinel introducing the end marker.
pub(crate) const CORE_END: u64 = u64::MAX;

/// Default ops buffered per core before a chunk is flushed.
pub const DEFAULT_CHUNK_OPS: usize = 4096;

/// Longest source name a header may carry — enforced symmetrically by
/// writer and reader, so a writer can never produce a file its own
/// reader refuses.
pub const MAX_SOURCE_LEN: usize = 4096;

// --------------------------------------------------------------- primitives

/// Streaming FNV-1a over 64 bits — the chunk/header integrity check.
/// Not cryptographic: it guards against bit rot and truncation, not
/// malice, which matches what a trace file needs.
#[derive(Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes a varint from `buf[*pos..]`, advancing `pos`.
fn get_varint(buf: &[u8], pos: &mut usize, context: &'static str) -> Result<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or(TraceError::Truncated { context })?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(TraceError::Corrupt(format!(
                "varint overflow while reading {context}"
            )));
        }
        out |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Corrupt(format!(
                "varint longer than 10 bytes while reading {context}"
            )));
        }
    }
}

pub(crate) fn read_varint<R: Read>(r: &mut R, context: &'static str) -> Result<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        if let Err(e) = r.read_exact(&mut byte) {
            return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceError::Truncated { context }
            } else {
                TraceError::Io(e)
            });
        }
        let byte = byte[0];
        if shift == 63 && byte > 1 {
            return Err(TraceError::Corrupt(format!(
                "varint overflow while reading {context}"
            )));
        }
        out |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Corrupt(format!(
                "varint longer than 10 bytes while reading {context}"
            )));
        }
    }
}

pub(crate) fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], context: &'static str) -> Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::Truncated { context }
        } else {
            TraceError::Io(e)
        }
    })
}

// ------------------------------------------------------------------ header

/// The self-describing file header: enough to rebuild the scenario the
/// trace was captured under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// The memory hierarchy the trace's line addresses were aimed at.
    /// Replay requires a matching geometry so attack patterns land on the
    /// rows they were profiled against.
    pub geometry: Geometry,
    /// Number of per-core streams in the file.
    pub cores: usize,
    /// The *base* sweep seed the capture derived its generator seed from
    /// (see `replay seeding` in `ARCHITECTURE.md`); replaying under this
    /// base seed reproduces the live run bit-for-bit.
    pub base_seed: u64,
    /// Instructions per core the capture was sized for (0 = unknown; the
    /// recorded stream covers at least this many instructions per core).
    pub insts_per_core: u64,
    /// The registry workload name (or external origin) this trace records.
    pub source: String,
}

impl TraceHeader {
    /// Checks every constraint downstream consumers assume, so an invalid
    /// header is a clean [`TraceError::Corrupt`] instead of a panic deep
    /// inside `AddressMapping`/`Geometry`. Enforced symmetrically: the
    /// writer refuses to produce what the reader would refuse to load.
    fn validate(&self) -> Result<()> {
        let g = &self.geometry;
        let corrupt = |msg: String| Err(TraceError::Corrupt(msg));
        if g.channels == 0
            || g.ranks == 0
            || g.banks_per_rank == 0
            || g.rows_per_bank == 0
            || g.row_bytes == 0
            || g.line_bytes == 0
        {
            return corrupt("zero-sized geometry field".into());
        }
        if !g.channels.is_power_of_two() || !(g.ranks * g.banks_per_rank).is_power_of_two() {
            return corrupt(format!(
                "geometry {}ch x {}rk x {}b is not power-of-two mappable",
                g.channels, g.ranks, g.banks_per_rank
            ));
        }
        if !g.row_bytes.is_multiple_of(g.line_bytes)
            || !(g.row_bytes / g.line_bytes).is_power_of_two()
        {
            return corrupt(format!(
                "row_bytes {} / line_bytes {} is not a power-of-two line count",
                g.row_bytes, g.line_bytes
            ));
        }
        if self.cores == 0 || self.cores > 1 << 20 {
            return corrupt(format!("implausible core count {}", self.cores));
        }
        if self.source.len() > MAX_SOURCE_LEN {
            return corrupt(format!(
                "source name is {} bytes; readers accept at most {MAX_SOURCE_LEN}",
                self.source.len()
            ));
        }
        Ok(())
    }

    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64 + self.source.len());
        for v in [
            self.geometry.channels as u64,
            self.geometry.ranks as u64,
            self.geometry.banks_per_rank as u64,
            self.geometry.rows_per_bank,
            self.geometry.row_bytes,
            self.geometry.line_bytes,
            self.cores as u64,
            self.insts_per_core,
        ] {
            put_varint(&mut body, v);
        }
        body.extend_from_slice(&self.base_seed.to_le_bytes());
        put_varint(&mut body, self.source.len() as u64);
        body.extend_from_slice(self.source.as_bytes());

        let mut out = Vec::with_capacity(body.len() + 14);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        let mut checked = VERSION.to_le_bytes().to_vec();
        checked.extend_from_slice(&body);
        out.extend_from_slice(&body);
        out.extend_from_slice(&fnv1a64(&checked).to_le_bytes());
        out
    }

    pub(crate) fn decode<R: Read>(r: &mut R) -> Result<Self> {
        let mut magic = [0u8; 4];
        read_exact(r, &mut magic, "header magic")?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic(magic));
        }
        let mut ver = [0u8; 2];
        read_exact(r, &mut ver, "header version")?;
        let version = u16::from_le_bytes(ver);
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }

        // Re-read the checksummed region through a tee so the stored
        // checksum can be verified without buffering the whole file.
        let mut checked: Vec<u8> = ver.to_vec();
        let mut tee = Tee {
            inner: r,
            copy: &mut checked,
        };
        let mut fields = [0u64; 8];
        for (i, f) in fields.iter_mut().enumerate() {
            let names = [
                "header channels",
                "header ranks",
                "header banks_per_rank",
                "header rows_per_bank",
                "header row_bytes",
                "header line_bytes",
                "header cores",
                "header insts_per_core",
            ];
            *f = read_varint(&mut tee, names[i])?;
        }
        let mut seed = [0u8; 8];
        read_exact(&mut tee, &mut seed, "header base_seed")?;
        let source_len = read_varint(&mut tee, "header source length")?;
        if source_len > MAX_SOURCE_LEN as u64 {
            return Err(TraceError::Corrupt(format!(
                "unreasonable source-name length {source_len}"
            )));
        }
        let mut source = vec![0u8; source_len as usize];
        read_exact(&mut tee, &mut source, "header source name")?;

        let mut stored = [0u8; 8];
        read_exact(r, &mut stored, "header checksum")?;
        if u64::from_le_bytes(stored) != fnv1a64(&checked) {
            return Err(TraceError::Corrupt("header checksum mismatch".into()));
        }

        let [channels, ranks, banks_per_rank, rows_per_bank, row_bytes, line_bytes, cores, insts] =
            fields;
        if channels > 1 << 20 || ranks > 1 << 20 || banks_per_rank > 1 << 20 {
            return Err(TraceError::Corrupt("implausible geometry field".into()));
        }
        let header = Self {
            geometry: Geometry {
                channels: channels as usize,
                ranks: ranks as usize,
                banks_per_rank: banks_per_rank as usize,
                rows_per_bank,
                row_bytes,
                line_bytes,
            },
            cores: cores as usize,
            base_seed: u64::from_le_bytes(seed),
            insts_per_core: insts,
            source: String::from_utf8(source)
                .map_err(|_| TraceError::Corrupt("source name is not UTF-8".into()))?,
        };
        header.validate()?;
        Ok(header)
    }
}

/// A `Read` adapter copying everything it reads into a side buffer
/// (used to checksum the header while decoding it).
struct Tee<'a, R> {
    inner: &'a mut R,
    copy: &'a mut Vec<u8>,
}

impl<R: Read> Read for Tee<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.copy.extend_from_slice(&buf[..n]);
        Ok(n)
    }
}

// ------------------------------------------------------------------ writer

/// Streaming MTRC writer: feed ops per core, chunks flush themselves.
///
/// Dropping a writer without calling [`MtrcWriter::finish`] leaves the
/// file without its end marker; readers will report it as truncated —
/// which is the correct verdict for an interrupted capture.
pub struct MtrcWriter<W: Write> {
    sink: W,
    cores: usize,
    chunk_ops: usize,
    pending: Vec<Vec<TraceOp>>,
    payload: Vec<u8>,
    frame: Vec<u8>,
    total_ops: u64,
}

impl<W: Write> MtrcWriter<W> {
    /// Writes `header` to `sink` and returns the writer.
    ///
    /// # Errors
    ///
    /// I/O failures, plus [`TraceError::Corrupt`] for any header the
    /// reader side would reject (unmappable geometry, zero cores, source
    /// name over [`MAX_SOURCE_LEN`]) — refused up front rather than after
    /// a long capture.
    pub fn new(sink: W, header: &TraceHeader) -> Result<Self> {
        Self::with_chunk_ops(sink, header, DEFAULT_CHUNK_OPS)
    }

    /// As [`MtrcWriter::new`] with an explicit per-core chunk size
    /// (clamped to at least 1; mainly for tests exercising many chunks).
    pub fn with_chunk_ops(mut sink: W, header: &TraceHeader, chunk_ops: usize) -> Result<Self> {
        header.validate()?;
        sink.write_all(&header.encode())?;
        Ok(Self {
            sink,
            cores: header.cores,
            chunk_ops: chunk_ops.max(1),
            pending: (0..header.cores).map(|_| Vec::new()).collect(),
            payload: Vec::new(),
            frame: Vec::new(),
            total_ops: 0,
        })
    }

    /// Appends one op to `core`'s stream. ([`MtrcWriter::finish`]
    /// consumes the writer, so pushing after finish is a compile error,
    /// not a runtime state.)
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside the header's core count.
    pub fn push(&mut self, core: usize, op: TraceOp) -> Result<()> {
        assert!(core < self.cores, "core {core} >= {}", self.cores);
        self.pending[core].push(op);
        self.total_ops += 1;
        if self.pending[core].len() >= self.chunk_ops {
            self.flush_core(core)?;
        }
        Ok(())
    }

    fn flush_core(&mut self, core: usize) -> Result<()> {
        if self.pending[core].is_empty() {
            return Ok(());
        }
        self.payload.clear();
        let mut prev_line = 0u64;
        let mut prev_nmi = 0i64;
        for op in &self.pending[core] {
            let flags = (op.uncacheable as u64) << 1 | op.is_write as u64;
            let nmi_delta = op.non_mem_insts as i64 - prev_nmi;
            put_varint(&mut self.payload, zigzag(nmi_delta) << 2 | flags);
            put_varint(
                &mut self.payload,
                zigzag(op.line_addr.wrapping_sub(prev_line) as i64),
            );
            prev_line = op.line_addr;
            prev_nmi = op.non_mem_insts as i64;
        }
        self.frame.clear();
        put_varint(&mut self.frame, core as u64);
        put_varint(&mut self.frame, self.pending[core].len() as u64);
        put_varint(&mut self.frame, self.payload.len() as u64);
        // The checksum spans frame *and* payload: a flipped core-id bit
        // must not silently reroute a chunk to another core's stream.
        let mut check = Fnv64::new();
        check.update(&self.frame);
        check.update(&self.payload);
        self.sink.write_all(&self.frame)?;
        self.sink.write_all(&self.payload)?;
        self.sink.write_all(&check.finish().to_le_bytes())?;
        self.pending[core].clear();
        Ok(())
    }

    /// Flushes every pending chunk, writes the end marker and returns the
    /// underlying sink. Total ops written so far is recorded in the marker
    /// so readers can detect files cut at a chunk boundary.
    pub fn finish(mut self) -> Result<W> {
        for core in 0..self.cores {
            self.flush_core(core)?;
        }
        self.frame.clear();
        put_varint(&mut self.frame, CORE_END);
        let count_start = self.frame.len();
        put_varint(&mut self.frame, self.total_ops);
        let check = fnv1a64(&self.frame[count_start..]);
        self.frame.extend_from_slice(&check.to_le_bytes());
        self.sink.write_all(&self.frame)?;
        self.sink.flush()?;
        Ok(self.sink)
    }

    /// Ops accepted so far (across all cores).
    pub fn ops_written(&self) -> u64 {
        self.total_ops
    }
}

// ------------------------------------------------------------------ reader

/// Streaming MTRC reader: decodes one chunk at a time into a caller
/// buffer, verifying checksums as it goes.
pub struct MtrcReader<R: Read> {
    source: R,
    header: TraceHeader,
    payload: Vec<u8>,
    ops_seen: u64,
    chunk_index: u64,
    /// Byte offset of the first chunk (for [`MtrcReader::rewind`]).
    data_start: u64,
    done: bool,
}

impl<R: Read> MtrcReader<R> {
    /// Parses the header from `source` and returns the reader positioned
    /// at the first chunk.
    pub fn new(mut source: R) -> Result<Self> {
        let mut counter = CountingReader {
            inner: &mut source,
            bytes: 0,
        };
        let header = TraceHeader::decode(&mut counter)?;
        let data_start = counter.bytes;
        Ok(Self {
            source,
            header,
            payload: Vec::new(),
            ops_seen: 0,
            chunk_index: 0,
            data_start,
            done: false,
        })
    }

    /// The file header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Decodes the next chunk into `ops` (cleared first) and returns its
    /// core id, or `None` after a valid end marker.
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`] if the stream ends mid-chunk or without
    /// an end marker, [`TraceError::BadChecksum`] on payload corruption,
    /// [`TraceError::Corrupt`] on structural nonsense (bad core id, op
    /// count mismatch in the end marker, ...).
    pub fn next_chunk(&mut self, ops: &mut Vec<TraceOp>) -> Result<Option<usize>> {
        ops.clear();
        if self.done {
            return Ok(None);
        }
        match read_raw_chunk(
            &mut self.source,
            self.header.cores,
            self.chunk_index,
            &mut self.payload,
            ops,
        )? {
            RawChunk::End { total } => {
                if total != self.ops_seen {
                    return Err(TraceError::Corrupt(format!(
                        "end marker claims {total} ops, decoded {}",
                        self.ops_seen
                    )));
                }
                self.done = true;
                Ok(None)
            }
            RawChunk::Ops { core } => {
                self.ops_seen += ops.len() as u64;
                self.chunk_index += 1;
                Ok(Some(core))
            }
        }
    }

    /// Ops decoded so far.
    pub fn ops_read(&self) -> u64 {
        self.ops_seen
    }
}

/// One strictly-decoded record: a chunk of ops or the end marker.
pub(crate) enum RawChunk {
    /// A checksum-valid ops chunk; the decoded ops are in the caller's
    /// buffer, its count is `ops.len()`.
    Ops {
        /// The recorded core stream this chunk belongs to.
        core: usize,
    },
    /// A checksum-valid end marker claiming `total` ops for the file.
    End {
        /// The writer's total op count.
        total: u64,
    },
}

/// Decodes exactly one record at the stream's current position — the
/// single strict-decode path shared by [`MtrcReader`] and the resilient
/// reader, so both accept byte-for-byte the same records. `ops` is
/// cleared first; `chunk_index` only labels [`TraceError::BadChecksum`].
pub(crate) fn read_raw_chunk<R: Read>(
    source: &mut R,
    cores: usize,
    chunk_index: u64,
    payload: &mut Vec<u8>,
    ops: &mut Vec<TraceOp>,
) -> Result<RawChunk> {
    ops.clear();
    let mut frame_bytes = Vec::new();
    let core = {
        let mut tee = Tee {
            inner: source,
            copy: &mut frame_bytes,
        };
        read_varint(&mut tee, "chunk core id")?
    };
    if core == CORE_END {
        let mut count_bytes = Vec::new();
        let total = {
            let mut tee = Tee {
                inner: source,
                copy: &mut count_bytes,
            };
            read_varint(&mut tee, "end-marker op count")?
        };
        let mut stored = [0u8; 8];
        read_exact(source, &mut stored, "end-marker checksum")?;
        if u64::from_le_bytes(stored) != fnv1a64(&count_bytes) {
            return Err(TraceError::Corrupt("end-marker checksum mismatch".into()));
        }
        return Ok(RawChunk::End { total });
    }
    if core as usize >= cores {
        return Err(TraceError::Corrupt(format!(
            "chunk core id {core} >= header core count {cores}"
        )));
    }
    let (count, payload_len) = {
        let mut tee = Tee {
            inner: source,
            copy: &mut frame_bytes,
        };
        let count = read_varint(&mut tee, "chunk op count")?;
        if count == 0 {
            return Err(TraceError::Corrupt("empty chunk".into()));
        }
        let payload_len = read_varint(&mut tee, "chunk payload length")?;
        (count, payload_len)
    };
    if payload_len > (1 << 31) {
        return Err(TraceError::Corrupt(format!(
            "implausible chunk payload length {payload_len}"
        )));
    }
    payload.resize(payload_len as usize, 0);
    read_exact(source, payload, "chunk payload")?;
    let mut stored = [0u8; 8];
    read_exact(source, &mut stored, "chunk checksum")?;
    let mut check = Fnv64::new();
    check.update(&frame_bytes);
    check.update(payload);
    if u64::from_le_bytes(stored) != check.finish() {
        return Err(TraceError::BadChecksum { chunk: chunk_index });
    }

    ops.reserve(count as usize);
    let mut pos = 0usize;
    let mut prev_line = 0u64;
    let mut prev_nmi = 0i64;
    for _ in 0..count {
        let head = get_varint(payload, &mut pos, "op flags/Δnon_mem_insts")?;
        let nmi = prev_nmi + unzigzag(head >> 2);
        if !(0..=u32::MAX as i64).contains(&nmi) {
            return Err(TraceError::Corrupt(format!(
                "non_mem_insts {nmi} out of u32 range"
            )));
        }
        let line_z = get_varint(payload, &mut pos, "op Δline_addr")?;
        let line = prev_line.wrapping_add(unzigzag(line_z) as u64);
        ops.push(TraceOp {
            non_mem_insts: nmi as u32,
            line_addr: line,
            is_write: head & 1 != 0,
            uncacheable: head & 2 != 0,
        });
        prev_line = line;
        prev_nmi = nmi;
    }
    if pos != payload.len() {
        return Err(TraceError::Corrupt(format!(
            "chunk payload has {} trailing bytes",
            payload.len() - pos
        )));
    }
    Ok(RawChunk::Ops {
        core: core as usize,
    })
}

impl<R: Read + Seek> MtrcReader<R> {
    /// Repositions the reader at the first chunk (for looping replay).
    pub fn rewind(&mut self) -> Result<()> {
        self.source.seek(SeekFrom::Start(self.data_start))?;
        self.ops_seen = 0;
        self.chunk_index = 0;
        self.done = false;
        Ok(())
    }
}

/// A `Read` adapter counting the bytes that pass through it.
pub(crate) struct CountingReader<'a, R> {
    pub(crate) inner: &'a mut R,
    pub(crate) bytes: u64,
}

impl<R: Read> Read for CountingReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
}

// ------------------------------------------------------------ conveniences

/// Reads just the header of the trace file at `path`.
pub fn read_header_path(path: &std::path::Path) -> Result<TraceHeader> {
    let f = std::fs::File::open(path)?;
    let mut r = std::io::BufReader::new(f);
    TraceHeader::decode(&mut r)
}

/// Reads a whole trace, demultiplexed into one op vector per core.
///
/// This is the loader replay uses; memory is proportional to the trace, so
/// for statistics over arbitrarily large files prefer streaming over
/// [`MtrcReader::next_chunk`].
pub fn read_all<R: Read>(source: R) -> Result<(TraceHeader, Vec<Vec<TraceOp>>)> {
    let mut reader = MtrcReader::new(source)?;
    let mut per_core: Vec<Vec<TraceOp>> = (0..reader.header().cores).map(|_| Vec::new()).collect();
    let mut chunk = Vec::new();
    while let Some(core) = reader.next_chunk(&mut chunk)? {
        per_core[core].extend_from_slice(&chunk);
    }
    Ok((reader.header, per_core))
}

/// [`read_all`] over a buffered file.
pub fn read_all_path(path: &std::path::Path) -> Result<(TraceHeader, Vec<Vec<TraceOp>>)> {
    let f = std::fs::File::open(path)?;
    read_all(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn test_header(cores: usize) -> TraceHeader {
        TraceHeader {
            geometry: Geometry::default(),
            cores,
            base_seed: 7,
            insts_per_core: 1000,
            source: "unit".into(),
        }
    }

    fn roundtrip(ops_per_core: &[Vec<TraceOp>], chunk_ops: usize) -> Vec<Vec<TraceOp>> {
        let header = test_header(ops_per_core.len());
        let mut w = MtrcWriter::with_chunk_ops(Vec::new(), &header, chunk_ops).unwrap();
        // Interleave cores round-robin, as a simulator tee would.
        let longest = ops_per_core.iter().map(Vec::len).max().unwrap_or(0);
        for i in 0..longest {
            for (core, ops) in ops_per_core.iter().enumerate() {
                if let Some(&op) = ops.get(i) {
                    w.push(core, op).unwrap();
                }
            }
        }
        let bytes = w.finish().unwrap();
        let (h, decoded) = read_all(&bytes[..]).unwrap();
        assert_eq!(h, header);
        decoded
    }

    #[test]
    fn empty_trace_roundtrips() {
        assert_eq!(roundtrip(&[vec![], vec![]], 4), vec![vec![], vec![]]);
    }

    #[test]
    fn multi_core_interleaved_roundtrip() {
        let a: Vec<TraceOp> = (0..100).map(|i| TraceOp::read(i as u32, i * 3)).collect();
        let b: Vec<TraceOp> = (0..37)
            .map(|i| TraceOp {
                non_mem_insts: 1000 - i as u32,
                line_addr: u64::MAX - i,
                is_write: i % 2 == 0,
                uncacheable: i % 3 == 0,
            })
            .collect();
        let decoded = roundtrip(&[a.clone(), b.clone()], 8);
        assert_eq!(decoded, vec![a, b]);
    }

    #[test]
    fn sequential_stream_is_compact() {
        let header = test_header(1);
        let mut w = MtrcWriter::new(Vec::new(), &header).unwrap();
        for i in 0..10_000u64 {
            w.push(0, TraceOp::read(4, 1_000_000 + i)).unwrap();
        }
        let bytes = w.finish().unwrap();
        // Steady-state deltas are (Δnmi=0, Δline=1): 2 bytes per op plus
        // header/framing.
        assert!(
            bytes.len() < 10_000 * 2 + 256,
            "encoding not compact: {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        let header = test_header(1);
        let mut w = MtrcWriter::with_chunk_ops(Vec::new(), &header, 16).unwrap();
        for i in 0..64u64 {
            w.push(0, TraceOp::write(3, i * 17)).unwrap();
        }
        let bytes = w.finish().unwrap();
        // Cut the file at every prefix length: each one must either fail
        // to parse or fail with Truncated — never succeed.
        for cut in 0..bytes.len() {
            let err = read_all(&bytes[..cut]).expect_err("prefix accepted");
            assert!(
                matches!(
                    err,
                    TraceError::Truncated { .. } | TraceError::Corrupt(_) | TraceError::BadMagic(_)
                ),
                "cut {cut}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn bitflips_are_detected() {
        let header = test_header(2);
        let mut w = MtrcWriter::with_chunk_ops(Vec::new(), &header, 8).unwrap();
        for i in 0..40u64 {
            w.push((i % 2) as usize, TraceOp::read(1, i << 33)).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut rejected = 0usize;
        for bit in 0..bytes.len() * 8 {
            let mut corrupted = bytes.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            if read_all(&corrupted[..]).is_err() {
                rejected += 1;
            }
        }
        // Every header/payload/count bit is covered by a checksum; only
        // flips inside the stored checksum words themselves could in
        // principle collide, and FNV makes even those mismatch here.
        assert_eq!(rejected, bytes.len() * 8, "some bit flip went unnoticed");
    }

    #[test]
    fn reader_stops_at_end_marker_ignoring_trailing_bytes() {
        let header = test_header(1);
        let w = MtrcWriter::new(Vec::new(), &header).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes.extend_from_slice(&[0xff; 4]);
        assert!(read_all(&bytes[..]).is_ok());
    }

    #[test]
    fn unmappable_headers_are_rejected_at_write_time() {
        let reject = |mutate: fn(&mut TraceHeader)| {
            let mut h = test_header(1);
            mutate(&mut h);
            assert!(
                matches!(MtrcWriter::new(Vec::new(), &h), Err(TraceError::Corrupt(_))),
                "writer accepted invalid header {h:?}"
            );
        };
        reject(|h| h.geometry.line_bytes = 0);
        reject(|h| h.geometry.row_bytes = 0);
        reject(|h| h.geometry.channels = 3);
        reject(|h| h.geometry.banks_per_rank = 33);
        reject(|h| h.geometry.line_bytes = 48); // 8192/48 not a power of two
        reject(|h| h.cores = 0);
        reject(|h| h.source = "x".repeat(MAX_SOURCE_LEN + 1));
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let header = test_header(1);
        let bytes = MtrcWriter::new(Vec::new(), &header)
            .unwrap()
            .finish()
            .unwrap();
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(read_all(&wrong[..]), Err(TraceError::BadMagic(_))));
        let mut newer = bytes;
        newer[4] = 9; // version LE low byte
        assert!(matches!(
            read_all(&newer[..]),
            Err(TraceError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn rewind_replays_from_first_chunk() {
        let header = test_header(1);
        let mut w = MtrcWriter::with_chunk_ops(Vec::new(), &header, 4).unwrap();
        for i in 0..10u64 {
            w.push(0, TraceOp::read(0, i)).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut r = MtrcReader::new(std::io::Cursor::new(bytes)).unwrap();
        let mut chunk = Vec::new();
        let mut first_pass = Vec::new();
        while r.next_chunk(&mut chunk).unwrap().is_some() {
            first_pass.extend_from_slice(&chunk);
        }
        r.rewind().unwrap();
        let mut second_pass = Vec::new();
        while r.next_chunk(&mut chunk).unwrap().is_some() {
            second_pass.extend_from_slice(&chunk);
        }
        assert_eq!(first_pass, second_pass);
        assert_eq!(first_pass.len(), 10);
    }
}
