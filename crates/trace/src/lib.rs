//! Streaming trace capture, ingest and replay for the Mithril system
//! simulator.
//!
//! Every scenario used to be synthesized in-process by `mithril-workloads`
//! generators; this crate opens the second door the trace-driven
//! evaluation literature (BlockHammer, BreakHammer) relies on: capture an
//! access stream once — from a registry workload, a live simulation, or an
//! external text trace — and replay it through any protection scheme and
//! sweep configuration, bit-for-bit reproducibly.
//!
//! * [`format`](mod@format) — the **MTRC v1** chunked binary container
//!   ([`MtrcWriter`] / [`MtrcReader`]): varint + delta encoding,
//!   per-chunk checksums, O(1) memory in both directions.
//! * [`text`] — line-oriented ingest of Ramulator-style
//!   (`<non_mem_insts> <R|W> <addr>`) and raw address-stream traces, with
//!   line-numbered errors.
//! * [`recorder`] — capture: render a workload to disk, or tee a live
//!   [`ThreadSet`](mithril_workloads::ThreadSet) so a simulation records
//!   exactly what it consumed.
//! * [`replay`] — [`TraceReplay`] / [`StreamingReplay`] adapters
//!   implementing the `TraceSource` trait from a capture, and
//!   [`replay_thread_set`] for whole-file multi-core loads (what the
//!   runner's `trace:<path>` registry names use).
//! * [`resilient`] — [`ResilientMtrcReader`], a skip-and-tally variant of
//!   the strict reader: corrupt or torn chunks are resynchronized past and
//!   counted in a [`ResilienceReport`] instead of aborting the read (what
//!   the runner's `trace+skip:<path>` registry names use).
//! * [`stat`] — streaming capture statistics (access mix, per-channel /
//!   per-bank pressure, row-touch histogram, Space-Saving hot rows).
//!
//! The `trace` CLI in `mithril-runner` fronts all of this:
//!
//! ```text
//! cargo run --release -p mithril-runner --bin trace -- record \
//!     --workload mix-high --cores 4 --insts 20000 --out mix.mtrc
//! cargo run --release -p mithril-runner --bin trace -- stat   --trace mix.mtrc
//! cargo run --release -p mithril-runner --bin trace -- replay --trace mix.mtrc --scheme mithril
//! ```
//!
//! # Example
//!
//! ```
//! use mithril_dram::Geometry;
//! use mithril_trace::{read_all, MtrcWriter, TraceHeader};
//! use mithril_workloads::TraceOp;
//!
//! let header = TraceHeader {
//!     geometry: Geometry::default(),
//!     cores: 1,
//!     base_seed: 1,
//!     insts_per_core: 0,
//!     source: "doc".into(),
//! };
//! let mut w = MtrcWriter::new(Vec::new(), &header).unwrap();
//! for i in 0..100 {
//!     w.push(0, TraceOp::read(3, 1000 + i)).unwrap();
//! }
//! let bytes = w.finish().unwrap();
//! let (h, per_core) = read_all(&bytes[..]).unwrap();
//! assert_eq!(h, header);
//! assert_eq!(per_core[0].len(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod format;
pub mod recorder;
pub mod replay;
pub mod resilient;
pub mod stat;
pub mod text;

pub use error::{Result, TraceError};
pub use format::{
    read_all, read_all_path, read_header_path, MtrcReader, MtrcWriter, TraceHeader,
    DEFAULT_CHUNK_OPS, MAGIC, VERSION,
};
pub use recorder::{record_thread_set, tee_thread_set, SharedWriter, TraceRecorder};
pub use replay::{
    replay_thread_set, replay_thread_set_resilient, ReplayEnd, StreamingReplay, TraceReplay,
};
pub use resilient::{
    read_all_resilient, read_all_resilient_path, ResilienceReport, ResilientMtrcReader,
};
pub use stat::{
    stats_from_reader, stats_from_resilient_reader, HotRow, StatsCollector, TraceStats,
};
pub use text::{parse_line, read_text, write_text, TextFormat, TextReader};
