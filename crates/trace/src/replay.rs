//! Replaying captured traces through the simulator.
//!
//! [`TraceReplay`] adapts a recorded op vector back into the
//! [`TraceSource`] trait the system simulator consumes; [`replay_thread_set`]
//! loads a multi-core MTRC file into one replay thread per core, ready to
//! hand to `System::new` or the runner's scenario registry
//! (`workload("trace:<path>", ...)`).
//!
//! # Determinism
//!
//! Replay is literal: the ops come off the file exactly as recorded, so —
//! unlike generators — a replay thread needs no RNG at all. The only seed
//! that matters to a replayed scenario is the *scheme* seed the engine
//! derives per sweep position (`mithril_fasthash::splitmix64_seed`).
//! `trace record` derives its generator seed through the same helper at
//! position `(shard 0, offset 0)`, which is how `record → replay`
//! reproduces a live single-scenario run bit-for-bit (see the trace
//! section in `ARCHITECTURE.md`).

use std::collections::HashMap;
use std::io::{BufRead, Seek};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::SystemTime;

use mithril_workloads::{Thread, ThreadSet, TraceOp, TraceSource};

use crate::error::{Result, TraceError};
use crate::format::{read_all_path, MtrcReader, TraceHeader};
use crate::resilient::{read_all_resilient_path, ResilienceReport};

/// What a replay source does when the recorded stream runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayEnd {
    /// Restart from the first op (default: an infinite periodic source,
    /// matching the generators' infinite-stream contract).
    #[default]
    Loop,
    /// Keep yielding the final op. Turns the stream into a single-line
    /// hammer after exhaustion; useful to pad a short capture without
    /// re-introducing its earlier traffic.
    HoldLast,
}

impl ReplayEnd {
    /// Parses a policy name (`loop` / `hold-last`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "loop" => Some(ReplayEnd::Loop),
            "hold-last" | "hold" => Some(ReplayEnd::HoldLast),
            _ => None,
        }
    }
}

/// An in-memory replay of one core's recorded stream.
///
/// The ops live behind an `Arc` slice, so many replay threads (or many
/// scenarios of a sweep) can share one decoded capture without copies.
pub struct TraceReplay {
    name: String,
    ops: Arc<[TraceOp]>,
    pos: usize,
    end: ReplayEnd,
    laps: u64,
}

impl TraceReplay {
    /// Wraps `ops` as a replay source named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty — an empty stream cannot satisfy the
    /// infinite [`TraceSource`] contract under either end policy.
    pub fn new(name: impl Into<String>, ops: Vec<TraceOp>, end: ReplayEnd) -> Self {
        Self::from_shared(name, ops.into(), end)
    }

    /// As [`TraceReplay::new`], sharing an already-decoded stream.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn from_shared(name: impl Into<String>, ops: Arc<[TraceOp]>, end: ReplayEnd) -> Self {
        assert!(!ops.is_empty(), "cannot replay an empty op stream");
        Self {
            name: name.into(),
            ops,
            pos: 0,
            end,
            laps: 0,
        }
    }

    /// Completed passes over the recorded stream (0 while the first pass
    /// is still in progress; stays 0 forever under `HoldLast`… it counts
    /// wraps, and `HoldLast` never wraps).
    pub fn laps(&self) -> u64 {
        self.laps
    }

    /// Ops in one pass of the recorded stream.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Always false — construction rejects empty streams.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl TraceSource for TraceReplay {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        if self.pos + 1 < self.ops.len() {
            self.pos += 1;
        } else {
            match self.end {
                ReplayEnd::Loop => {
                    self.pos = 0;
                    self.laps += 1;
                }
                ReplayEnd::HoldLast => {}
            }
        }
        op
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A streaming replay over a single-core MTRC reader: holds one chunk in
/// memory, rewinding the underlying file on wrap. For multi-gigabyte
/// single-stream captures where [`replay_thread_set`]'s whole-file load is
/// unwelcome.
pub struct StreamingReplay<R: BufRead + Seek> {
    name: String,
    reader: MtrcReader<R>,
    chunk: Vec<TraceOp>,
    pos: usize,
}

impl<R: BufRead + Seek> StreamingReplay<R> {
    /// Wraps a reader whose header declares exactly one core.
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] for multi-core files (stream demux needs
    /// the whole-file loader) and for captures with no ops at all.
    pub fn new(mut reader: MtrcReader<R>) -> Result<Self> {
        if reader.header().cores != 1 {
            return Err(TraceError::Corrupt(format!(
                "streaming replay needs a single-core file, got {} cores",
                reader.header().cores
            )));
        }
        let name = format!("replay:{}", reader.header().source);
        let mut chunk = Vec::new();
        if reader.next_chunk(&mut chunk)?.is_none() {
            return Err(TraceError::Corrupt("cannot replay an empty capture".into()));
        }
        Ok(Self {
            name,
            reader,
            chunk,
            pos: 0,
        })
    }
}

impl<R: BufRead + Seek> TraceSource for StreamingReplay<R> {
    /// # Panics
    ///
    /// Panics if the file turns out corrupt or unreadable mid-stream; the
    /// constructor has already validated the header and first chunk.
    fn next_op(&mut self) -> TraceOp {
        let op = self.chunk[self.pos];
        self.pos += 1;
        if self.pos == self.chunk.len() {
            self.pos = 0;
            match self.reader.next_chunk(&mut self.chunk) {
                Ok(Some(_)) => {}
                Ok(None) => {
                    // End of capture: wrap around.
                    self.reader.rewind().expect("trace rewind failed");
                    self.reader
                        .next_chunk(&mut self.chunk)
                        .expect("trace re-read failed");
                }
                Err(e) => panic!("trace replay failed mid-stream: {e}"),
            }
        }
        op
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// One decoded capture shared across scenarios, with the file identity
/// (size + mtime) it was decoded from for staleness checks.
struct CachedCapture {
    len: u64,
    modified: Option<SystemTime>,
    header: TraceHeader,
    per_core: Vec<Arc<[TraceOp]>>,
}

/// Process-wide decoded-capture cache: a sweep instantiates the workload
/// once per scenario (scheme × geometry), and without this every
/// instantiation would re-read and re-decode the whole file from disk.
/// Keyed by path; entries are re-decoded when the file's size or mtime
/// changes. Memory is bounded by the set of distinct captures a process
/// replays — the same bound as replaying them at all.
static CAPTURE_CACHE: OnceLock<Mutex<HashMap<PathBuf, Arc<CachedCapture>>>> = OnceLock::new();

fn load_capture(path: &Path) -> Result<Arc<CachedCapture>> {
    let meta = std::fs::metadata(path)?;
    let (len, modified) = (meta.len(), meta.modified().ok());
    let cache = CAPTURE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("capture cache poisoned").get(path) {
        if hit.len == len && hit.modified == modified {
            return Ok(Arc::clone(hit));
        }
    }
    // Decode outside the lock so parallel workers loading *different*
    // captures don't serialize; racing loads of the same file are
    // idempotent (last insert wins).
    let (header, per_core) = read_all_path(path)?;
    for (core, ops) in per_core.iter().enumerate() {
        if ops.is_empty() {
            return Err(TraceError::Corrupt(format!(
                "core {core} of {} has no recorded ops",
                path.display()
            )));
        }
    }
    let entry = Arc::new(CachedCapture {
        len,
        modified,
        header,
        per_core: per_core.into_iter().map(Arc::from).collect(),
    });
    cache
        .lock()
        .expect("capture cache poisoned")
        .insert(path.to_path_buf(), Arc::clone(&entry));
    Ok(entry)
}

/// Loads the MTRC file at `path` into a [`ThreadSet`] of per-core replay
/// threads (set name `trace:<source>`), returning the header alongside.
///
/// Decoded captures are cached process-wide (invalidated on file size or
/// mtime change), so sweeping many schemes over one capture decodes it
/// once; each call still returns fresh replay threads positioned at op 0.
///
/// # Errors
///
/// Any codec error, plus [`TraceError::Corrupt`] if a recorded core has
/// no ops (it could never satisfy the infinite-source contract).
pub fn replay_thread_set(path: &Path, end: ReplayEnd) -> Result<(TraceHeader, ThreadSet)> {
    let capture = load_capture(path)?;
    let header = capture.header.clone();
    let threads = capture
        .per_core
        .iter()
        .enumerate()
        .map(|(core, ops)| {
            let name = format!("replay:{}/{core}", header.source);
            Thread::new(
                name.clone(),
                Box::new(TraceReplay::from_shared(name, Arc::clone(ops), end)),
            )
        })
        .collect();
    let set = ThreadSet {
        name: format!("trace:{}", header.source),
        threads,
    };
    Ok((header, set))
}

/// As [`replay_thread_set`], but through the corruption-tolerant reader:
/// damaged chunks are skipped (tallied in the returned
/// [`ResilienceReport`]) and the surviving ops replay in recorded order.
/// The runner's `trace+skip:<path>` registry names use this loader.
///
/// Not cached: a damaged capture is an incident being inspected, not a
/// fixture swept over thousands of scenarios — and caching would hide
/// the report.
///
/// # Errors
///
/// I/O failure, a damaged header, or a capture where some core's stream
/// lost *all* its ops to corruption (it could never satisfy the
/// infinite-source contract).
pub fn replay_thread_set_resilient(
    path: &Path,
    end: ReplayEnd,
) -> Result<(TraceHeader, ThreadSet, ResilienceReport)> {
    let (header, per_core, report) = read_all_resilient_path(path)?;
    for (core, ops) in per_core.iter().enumerate() {
        if ops.is_empty() {
            return Err(TraceError::Corrupt(format!(
                "core {core} of {} has no surviving ops ({} chunk(s) skipped)",
                path.display(),
                report.skipped_chunks
            )));
        }
    }
    let threads = per_core
        .into_iter()
        .enumerate()
        .map(|(core, ops)| {
            let name = format!("replay:{}/{core}", header.source);
            Thread::new(name.clone(), Box::new(TraceReplay::new(name, ops, end)))
        })
        .collect();
    let set = ThreadSet {
        name: format!("trace+skip:{}", header.source),
        threads,
    };
    Ok((header, set, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{MtrcWriter, TraceHeader};
    use mithril_dram::Geometry;

    fn ops(n: u64) -> Vec<TraceOp> {
        (0..n).map(|i| TraceOp::read(i as u32, i * 7)).collect()
    }

    #[test]
    fn looping_replay_is_periodic() {
        let mut r = TraceReplay::new("t", ops(3), ReplayEnd::Loop);
        let seen: Vec<u64> = (0..7).map(|_| r.next_op().line_addr).collect();
        assert_eq!(seen, vec![0, 7, 14, 0, 7, 14, 0]);
        assert_eq!(r.laps(), 2);
    }

    #[test]
    fn hold_last_repeats_final_op() {
        let mut r = TraceReplay::new("t", ops(2), ReplayEnd::HoldLast);
        let seen: Vec<u64> = (0..5).map(|_| r.next_op().line_addr).collect();
        assert_eq!(seen, vec![0, 7, 7, 7, 7]);
        assert_eq!(r.laps(), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_stream_is_rejected() {
        let _ = TraceReplay::new("t", Vec::new(), ReplayEnd::Loop);
    }

    #[test]
    fn streaming_replay_loops_across_chunks() {
        let header = TraceHeader {
            geometry: Geometry::default(),
            cores: 1,
            base_seed: 0,
            insts_per_core: 0,
            source: "s".into(),
        };
        let mut w = MtrcWriter::with_chunk_ops(Vec::new(), &header, 4).unwrap();
        let recorded = ops(10);
        for &op in &recorded {
            w.push(0, op).unwrap();
        }
        let bytes = w.finish().unwrap();
        let reader = MtrcReader::new(std::io::Cursor::new(bytes)).unwrap();
        let mut replay = StreamingReplay::new(reader).unwrap();
        let seen: Vec<TraceOp> = (0..25).map(|_| replay.next_op()).collect();
        let expected: Vec<TraceOp> = recorded.iter().cycle().take(25).copied().collect();
        assert_eq!(seen, expected);
    }
}
