//! Capturing workloads to MTRC files.
//!
//! Two capture modes:
//!
//! * [`record_thread_set`] — *render* a workload offline: pull each core's
//!   generator until it has produced enough instructions, writing as it
//!   goes. This is what `trace record` uses; the recorded stream covers at
//!   least `insts_per_core` instructions per core, which is exactly the
//!   upper bound on what a [`System`](../mithril_sim) run with the same
//!   budget can consume (every op retires at least one instruction), so a
//!   replay never runs dry before the live run would have finished.
//! * [`TraceRecorder`] / [`tee_thread_set`] — *tee* a live workload: wrap
//!   each thread so every op the simulator consumes is also appended to a
//!   shared writer. The capture then contains precisely the consumed
//!   prefix of each stream.

use std::io::Write;
use std::sync::{Arc, Mutex};

use mithril_workloads::{Thread, ThreadSet, TraceOp, TraceSource};

use crate::error::Result;
use crate::format::MtrcWriter;

/// A shared, locked MTRC writer for multi-core tees.
pub type SharedWriter<W> = Arc<Mutex<MtrcWriter<W>>>;

/// Renders `set` to `writer`: each core's stream is captured until its
/// cumulative instruction count reaches `insts_per_core`. Returns the
/// total ops written. The caller finishes the writer.
pub fn record_thread_set<W: Write>(
    set: &mut ThreadSet,
    insts_per_core: u64,
    writer: &mut MtrcWriter<W>,
) -> Result<u64> {
    let mut total = 0u64;
    for (core, thread) in set.threads.iter_mut().enumerate() {
        let mut insts = 0u64;
        while insts < insts_per_core {
            let op = thread.next_op();
            insts += op.instructions();
            writer.push(core, op)?;
            total += 1;
        }
    }
    Ok(total)
}

/// A [`TraceSource`] that tees every op it yields into a shared writer.
///
/// # Panics
///
/// `next_op` panics if the underlying writer fails — the `TraceSource`
/// trait is infallible, and losing capture bytes silently would defeat
/// the point of recording. (Sealing the file requires unwrapping the
/// shared writer, so it cannot happen while recorders still hold it.)
pub struct TraceRecorder<W: Write> {
    inner: Box<dyn TraceSource + Send>,
    core: usize,
    sink: SharedWriter<W>,
}

impl<W: Write> TraceRecorder<W> {
    /// Wraps `inner` as core `core` of the capture behind `sink`.
    pub fn new(inner: Box<dyn TraceSource + Send>, core: usize, sink: SharedWriter<W>) -> Self {
        Self { inner, core, sink }
    }
}

impl<W: Write> TraceSource for TraceRecorder<W> {
    fn next_op(&mut self) -> TraceOp {
        let op = self.inner.next_op();
        self.sink
            .lock()
            .expect("recorder writer poisoned")
            .push(self.core, op)
            .expect("trace capture write failed");
        op
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Wraps every thread of `set` in a [`TraceRecorder`] over `writer`.
///
/// Returns the wrapped set plus the shared writer handle; after the
/// simulation, unwrap it (`Arc::try_unwrap`) and call
/// [`MtrcWriter::finish`] to seal the file.
pub fn tee_thread_set<W: Write + Send + 'static>(
    set: ThreadSet,
    writer: MtrcWriter<W>,
) -> (ThreadSet, SharedWriter<W>) {
    let sink: SharedWriter<W> = Arc::new(Mutex::new(writer));
    let threads = set
        .threads
        .into_iter()
        .enumerate()
        .map(|(core, thread)| {
            let name = thread.name().to_string();
            let recorder = TraceRecorder::new(thread.into_source(), core, Arc::clone(&sink));
            Thread::new(name, Box::new(recorder))
        })
        .collect();
    (
        ThreadSet {
            name: set.name,
            threads,
        },
        sink,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{read_all, MtrcWriter, TraceHeader};
    use mithril_dram::Geometry;
    use mithril_workloads::mix_high;

    fn header(cores: usize, insts: u64) -> TraceHeader {
        TraceHeader {
            geometry: Geometry::default(),
            cores,
            base_seed: 3,
            insts_per_core: insts,
            source: "mix-high".into(),
        }
    }

    #[test]
    fn rendered_capture_covers_instruction_budget() {
        let mut set = mix_high(2, 9);
        let mut w = MtrcWriter::new(Vec::new(), &header(2, 500)).unwrap();
        let total = record_thread_set(&mut set, 500, &mut w).unwrap();
        let bytes = w.finish().unwrap();
        let (h, per_core) = read_all(&bytes[..]).unwrap();
        assert_eq!(h.cores, 2);
        assert_eq!(total, per_core.iter().map(|c| c.len() as u64).sum::<u64>());
        for ops in &per_core {
            let insts: u64 = ops.iter().map(|o| o.instructions()).sum();
            assert!(insts >= 500, "stream too short: {insts} insts");
            // Minimal overshoot: only the final op may cross the budget.
            let before_last: u64 = ops[..ops.len() - 1].iter().map(|o| o.instructions()).sum();
            assert!(before_last < 500);
        }
    }

    #[test]
    fn rendered_capture_is_deterministic() {
        let render = || {
            let mut set = mix_high(3, 42);
            let mut w = MtrcWriter::new(Vec::new(), &header(3, 300)).unwrap();
            record_thread_set(&mut set, 300, &mut w).unwrap();
            w.finish().unwrap()
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn tee_captures_exactly_what_was_consumed() {
        let set = mix_high(2, 5);
        let mut reference = mix_high(2, 5);
        let w = MtrcWriter::new(Vec::new(), &header(2, 0)).unwrap();
        let (mut teed, sink) = tee_thread_set(set, w);
        // Consume an uneven number of ops per core through the tee.
        let mut consumed = vec![Vec::new(), Vec::new()];
        for _ in 0..10 {
            consumed[0].push(teed.threads[0].next_op());
        }
        for _ in 0..3 {
            consumed[1].push(teed.threads[1].next_op());
        }
        drop(teed); // release the recorders' Arc clones
        let writer = Arc::try_unwrap(sink)
            .unwrap_or_else(|_| panic!("writer still shared"))
            .into_inner()
            .unwrap();
        let bytes = writer.finish().unwrap();
        let (_, per_core) = read_all(&bytes[..]).unwrap();
        assert_eq!(per_core, consumed);
        // The tee is transparent: consumers saw the unmodified stream.
        for (core, ops) in consumed.iter().enumerate() {
            for (i, op) in ops.iter().enumerate() {
                assert_eq!(*op, reference.threads[core].next_op(), "core {core} op {i}");
            }
        }
    }
}
