//! The error type shared by the MTRC codec, the text parsers and the
//! replay loaders.

use std::fmt;

/// Everything that can go wrong while reading, writing or replaying a
/// trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure (other than a premature end of file).
    Io(std::io::Error),
    /// The file does not start with the `MTRC` magic.
    BadMagic([u8; 4]),
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The stream ended before the structure it was decoding did.
    /// MTRC files are terminated by an explicit end marker, so a clean
    /// EOF without one also reports as truncation.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// A chunk's stored checksum does not match its payload.
    BadChecksum {
        /// Zero-based index of the offending chunk.
        chunk: u64,
    },
    /// A structurally invalid encoding (varint overflow, out-of-range
    /// field, core index beyond the header's core count, ...).
    Corrupt(String),
    /// A text-trace parse failure, with its 1-based line number.
    Text {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic(m) => {
                write!(f, "not an MTRC file (magic {:02x?})", m)
            }
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported MTRC version {v} (reader supports 1)")
            }
            TraceError::Truncated { context } => {
                write!(f, "truncated trace: EOF while reading {context}")
            }
            TraceError::BadChecksum { chunk } => {
                write!(f, "corrupt trace: checksum mismatch in chunk {chunk}")
            }
            TraceError::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
            TraceError::Text { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        // read_exact reports a short read as UnexpectedEof; surface it as
        // truncation so callers get one error for "file ends too soon"
        // regardless of where the reader noticed.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::Truncated {
                context: "(unexpected end of stream)",
            }
        } else {
            TraceError::Io(e)
        }
    }
}

/// Shorthand result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TraceError>;
