//! Streaming statistics over a captured trace: access mix, per-channel /
//! per-bank pressure, row-touch distribution and the hottest rows.
//!
//! The hot-row list is maintained with the Space-Saving tracker from
//! `mithril-trackers` — the same `mithril-streamsummary` bucket structure
//! the protection schemes themselves run on — so `trace stat` doubles as
//! a "what would a tracker see" probe: the rows it surfaces are the rows
//! a Mithril/Graphene table would be defending.

use mithril_fasthash::FastHashMap;
use mithril_memctrl::AddressMapping;
use mithril_trackers::{FrequencyTracker, SpaceSaving};
use mithril_workloads::TraceOp;

use crate::error::Result;
use crate::format::{MtrcReader, TraceHeader};
use crate::resilient::{ResilienceReport, ResilientMtrcReader};

/// One hot row with its DRAM coordinates and access counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotRow {
    /// Channel the row's lines map to.
    pub channel: usize,
    /// Flat bank index within the channel.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
    /// Exact access count.
    pub count: u64,
    /// What the streamsummary-backed Space-Saving tracker estimates for
    /// this row (`>= count` by the Space-Saving bracket; the gap shows how
    /// much slack a fixed-size hardware table would have on this trace).
    pub tracker_estimate: u64,
}

/// Aggregate statistics of one capture.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// The capture's header.
    pub header: TraceHeader,
    /// Total ops across cores.
    pub total_ops: u64,
    /// Ops per core stream.
    pub per_core_ops: Vec<u64>,
    /// Cacheable reads.
    pub reads: u64,
    /// Writes.
    pub writes: u64,
    /// Cache-bypassing accesses (attack traffic).
    pub uncacheable: u64,
    /// Accesses mapping to each channel.
    pub per_channel_accesses: Vec<u64>,
    /// Accesses mapping to each `[channel][bank]`.
    pub per_bank_accesses: Vec<Vec<u64>>,
    /// Distinct (channel, bank, row) tuples touched.
    pub distinct_rows: u64,
    /// Row-touch histogram: `(lo, hi, rows)` — number of distinct rows
    /// touched between `lo` and `hi` times inclusive (power-of-two
    /// buckets).
    pub row_touch_histogram: Vec<(u64, u64, u64)>,
    /// The top-N hottest rows, hottest first (ties broken by coordinates).
    pub hot_rows: Vec<HotRow>,
}

/// Streaming collector: feed `(core, op)` pairs, then [`finish`].
///
/// Memory: O(distinct rows touched) for the exact histogram plus the
/// fixed-size Space-Saving table — not O(ops).
///
/// [`finish`]: StatsCollector::finish
pub struct StatsCollector {
    header: TraceHeader,
    mapping: AddressMapping,
    top: usize,
    per_core_ops: Vec<u64>,
    reads: u64,
    writes: u64,
    uncacheable: u64,
    per_bank: Vec<Vec<u64>>,
    row_counts: FastHashMap<u64, u64>,
    summary: SpaceSaving,
}

impl StatsCollector {
    /// Creates a collector for captures under `header`, reporting the
    /// `top` hottest rows.
    pub fn new(header: TraceHeader, top: usize) -> Self {
        let mapping = AddressMapping::new(header.geometry);
        let channels = header.geometry.channels;
        let banks = header.geometry.banks_total();
        Self {
            per_core_ops: vec![0; header.cores],
            reads: 0,
            writes: 0,
            uncacheable: 0,
            per_bank: vec![vec![0; banks]; channels],
            row_counts: FastHashMap::default(),
            // Oversize the tracker relative to the report so the top-N
            // estimates are exact unless the trace touches far more hot
            // rows than the report shows (the Space-Saving guarantee
            // degrades gracefully from there).
            summary: SpaceSaving::new((top.max(1) * 8).max(64)),
            top: top.max(1),
            header,
            mapping,
        }
    }

    fn row_key(&self, channel: usize, bank: usize, row: u64) -> u64 {
        (channel as u64 * self.header.geometry.banks_total() as u64 + bank as u64)
            * self.header.geometry.rows_per_bank
            + row
    }

    fn unpack_key(&self, key: u64) -> (usize, usize, u64) {
        let rows = self.header.geometry.rows_per_bank;
        let banks = self.header.geometry.banks_total() as u64;
        let row = key % rows;
        let flat = key / rows;
        ((flat / banks) as usize, (flat % banks) as usize, row)
    }

    /// Accounts one op of `core`.
    pub fn push(&mut self, core: usize, op: &TraceOp) {
        self.per_core_ops[core] += 1;
        if op.uncacheable {
            self.uncacheable += 1;
        } else if op.is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        let a = self.mapping.map_line(op.line_addr);
        self.per_bank[a.channel.0][a.bank] += 1;
        let key = self.row_key(a.channel.0, a.bank, a.row);
        *self.row_counts.entry(key).or_insert(0) += 1;
        self.summary.record(key);
    }

    /// Seals the collection into a [`TraceStats`].
    pub fn finish(self) -> TraceStats {
        // Power-of-two row-touch buckets: [1,1], [2,3], [4,7], ...
        let mut hist: Vec<(u64, u64, u64)> = Vec::new();
        for &count in self.row_counts.values() {
            let bucket = 63 - count.leading_zeros() as u64;
            while hist.len() <= bucket as usize {
                let lo = 1u64 << hist.len();
                hist.push((lo, lo * 2 - 1, 0));
            }
            hist[bucket as usize].2 += 1;
        }

        // Top-N selected by the exact counts (ties broken by coordinates
        // for determinism); the Space-Saving estimate rides along as the
        // tracker's view of the same row.
        let mut hot: Vec<(u64, u64)> = self
            .row_counts
            .iter()
            .map(|(&key, &count)| (key, count))
            .collect();
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hot.truncate(self.top);
        let min = self.summary.min_count();
        let hot_rows = hot
            .into_iter()
            .map(|(key, count)| {
                let (channel, bank, row) = self.unpack_key(key);
                HotRow {
                    channel,
                    bank,
                    row,
                    count,
                    tracker_estimate: self.summary.tracked_count(key).unwrap_or(min),
                }
            })
            .collect();

        TraceStats {
            total_ops: self.per_core_ops.iter().sum(),
            per_core_ops: self.per_core_ops,
            reads: self.reads,
            writes: self.writes,
            uncacheable: self.uncacheable,
            per_channel_accesses: self.per_bank.iter().map(|b| b.iter().sum()).collect(),
            per_bank_accesses: self.per_bank,
            distinct_rows: self.row_counts.len() as u64,
            row_touch_histogram: hist,
            hot_rows,
            header: self.header,
        }
    }
}

/// Streams a whole MTRC reader through a collector.
pub fn stats_from_reader<R: std::io::Read>(
    mut reader: MtrcReader<R>,
    top: usize,
) -> Result<TraceStats> {
    let mut collector = StatsCollector::new(reader.header().clone(), top);
    let mut chunk = Vec::new();
    while let Some(core) = reader.next_chunk(&mut chunk)? {
        for op in &chunk {
            collector.push(core, op);
        }
    }
    Ok(collector.finish())
}

/// Streams a damaged capture through a collector via the resilient
/// reader: statistics cover exactly the ops of surviving chunks, and the
/// accompanying [`ResilienceReport`] says what was skipped.
pub fn stats_from_resilient_reader<R: std::io::Read + std::io::Seek>(
    mut reader: ResilientMtrcReader<R>,
    top: usize,
) -> Result<(TraceStats, ResilienceReport)> {
    let mut collector = StatsCollector::new(reader.header().clone(), top);
    let mut chunk = Vec::new();
    while let Some(core) = reader.next_chunk(&mut chunk)? {
        for op in &chunk {
            collector.push(core, op);
        }
    }
    Ok((collector.finish(), reader.report()))
}

/// Minimal JSON string escaping (the source name is the only free-form
/// string in the report).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl TraceStats {
    /// Renders the stats as deterministic JSON (fixed field order, no
    /// host- or time-dependent content), in the spirit of
    /// `BENCH_sweep.json`.
    pub fn render_json(&self) -> String {
        self.render_json_with(None)
    }

    /// [`render_json`](TraceStats::render_json) with an optional
    /// [`ResilienceReport`] embedded as a `resilience` object — the shape
    /// `trace stat --resilient` emits, so a damaged capture's statistics
    /// carry what was skipped to produce them.
    pub fn render_json_with(&self, resilience: Option<&ResilienceReport>) -> String {
        let g = &self.header.geometry;
        let per_core: Vec<String> = self.per_core_ops.iter().map(u64::to_string).collect();
        let per_channel: Vec<String> = self
            .per_channel_accesses
            .iter()
            .enumerate()
            .map(|(ch, &n)| {
                let banks: Vec<String> = self.per_bank_accesses[ch]
                    .iter()
                    .map(u64::to_string)
                    .collect();
                let rate = if self.total_ops == 0 {
                    0.0
                } else {
                    n as f64 / self.total_ops as f64
                };
                format!(
                    "{{\"channel\":{ch},\"accesses\":{n},\"access_fraction\":{rate:?},\
                     \"per_bank\":[{}]}}",
                    banks.join(",")
                )
            })
            .collect();
        let hist: Vec<String> = self
            .row_touch_histogram
            .iter()
            .filter(|(_, _, rows)| *rows > 0)
            .map(|(lo, hi, rows)| {
                format!("{{\"touches_lo\":{lo},\"touches_hi\":{hi},\"rows\":{rows}}}")
            })
            .collect();
        let hot: Vec<String> = self
            .hot_rows
            .iter()
            .map(|h| {
                format!(
                    "{{\"channel\":{},\"bank\":{},\"row\":{},\"count\":{},\"tracker_estimate\":{}}}",
                    h.channel, h.bank, h.row, h.count, h.tracker_estimate
                )
            })
            .collect();
        let resilience = match resilience {
            Some(r) => format!(
                ",\n  \"resilience\": {{\"skipped_chunks\":{},\"skipped_bytes\":{},\
                 \"missing_end_marker\":{},\"end_count_mismatch\":{},\"clean\":{}}}",
                r.skipped_chunks,
                r.skipped_bytes,
                r.missing_end_marker,
                r.end_count_mismatch,
                r.is_clean()
            ),
            None => String::new(),
        };
        format!(
            "{{\n  \"format_version\": {},\n  \"source\": \"{}\",\n  \"geometry\": \"{}ch{}rk{}b\",\n  \"cores\": {},\n  \
             \"base_seed\": {},\n  \"insts_per_core\": {},\n  \"total_ops\": {},\n  \
             \"per_core_ops\": [{}],\n  \"reads\": {},\n  \"writes\": {},\n  \
             \"uncacheable\": {},\n  \"distinct_rows\": {},\n  \"per_channel\": [{}],\n  \
             \"row_touch_histogram\": [{}],\n  \"hot_rows\": [{}]{resilience}\n}}\n",
            mithril_obs::FORMAT_VERSION,
            esc(&self.header.source),
            g.channels,
            g.ranks,
            g.banks_per_rank,
            self.header.cores,
            self.header.base_seed,
            self.header.insts_per_core,
            self.total_ops,
            per_core.join(","),
            self.reads,
            self.writes,
            self.uncacheable,
            self.distinct_rows,
            per_channel.join(","),
            hist.join(","),
            hot.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithril_dram::Geometry;

    fn header() -> TraceHeader {
        TraceHeader {
            geometry: Geometry::default(),
            cores: 2,
            base_seed: 1,
            insts_per_core: 0,
            source: "unit".into(),
        }
    }

    #[test]
    fn counts_mix_and_channels() {
        let mut c = StatsCollector::new(header(), 4);
        for i in 0..100u64 {
            c.push(0, &TraceOp::read(1, i));
        }
        c.push(1, &TraceOp::write(1, 5));
        c.push(
            1,
            &TraceOp {
                non_mem_insts: 0,
                line_addr: 9,
                is_write: false,
                uncacheable: true,
            },
        );
        let s = c.finish();
        assert_eq!(s.total_ops, 102);
        assert_eq!(s.per_core_ops, vec![100, 2]);
        assert_eq!(s.reads, 100);
        assert_eq!(s.writes, 1);
        assert_eq!(s.uncacheable, 1);
        assert_eq!(s.per_channel_accesses, vec![102]); // 1-channel geometry
        assert_eq!(
            s.per_bank_accesses[0].iter().sum::<u64>(),
            s.per_channel_accesses[0]
        );
    }

    #[test]
    fn hot_rows_find_the_hammered_row() {
        let g = Geometry::default();
        let mapping = AddressMapping::new(g);
        let mut c = StatsCollector::new(header(), 2);
        // Hammer one specific row via its line address, with background
        // noise spread over many rows.
        let hot_line =
            mithril_memctrl::AddressMapping::new(g).line_for(mithril_memctrl::MappedAddr {
                channel: mithril_dram::ChannelId(0),
                bank: 3,
                row: 1234,
                col: 0,
            });
        for i in 0..500u64 {
            c.push(0, &TraceOp::read(0, i * 4096));
            c.push(0, &TraceOp::read(0, hot_line));
            c.push(0, &TraceOp::read(0, hot_line));
        }
        let s = c.finish();
        let top = &s.hot_rows[0];
        let a = mapping.map_line(hot_line);
        assert_eq!((top.channel, top.bank, top.row), (0, a.bank, a.row));
        assert_eq!(top.count, 1000);
        // Space-Saving brackets the truth from above for tracked rows.
        assert!(top.tracker_estimate >= top.count);
        // Histogram: the hot row sits in a high bucket, noise rows low.
        let total_rows: u64 = s.row_touch_histogram.iter().map(|h| h.2).sum();
        assert_eq!(total_rows, s.distinct_rows);
    }

    #[test]
    fn source_names_are_json_escaped() {
        let mut h = header();
        h.source = "we\"ird\\name".into();
        let mut c = StatsCollector::new(h, 1);
        c.push(0, &TraceOp::read(0, 1));
        let json = c.finish().render_json();
        assert!(json.contains(r#""source": "we\"ird\\name""#), "{json}");
    }

    #[test]
    fn json_carries_format_version_and_optional_resilience() {
        let mut c = StatsCollector::new(header(), 1);
        c.push(0, &TraceOp::read(0, 1));
        let s = c.finish();
        let plain = s.render_json();
        let version_line = format!("\"format_version\": {}", mithril_obs::FORMAT_VERSION);
        assert!(plain.contains(&version_line), "{plain}");
        assert!(!plain.contains("\"resilience\""), "{plain}");
        let report = ResilienceReport {
            skipped_chunks: 2,
            skipped_bytes: 77,
            missing_end_marker: true,
            end_count_mismatch: true,
        };
        let with = s.render_json_with(Some(&report));
        assert!(
            with.contains(
                "\"resilience\": {\"skipped_chunks\":2,\"skipped_bytes\":77,\
                 \"missing_end_marker\":true,\"end_count_mismatch\":true,\"clean\":false}"
            ),
            "{with}"
        );
        assert_eq!(with.matches('{').count(), with.matches('}').count());
    }

    #[test]
    fn json_is_deterministic_and_balanced() {
        let mut c = StatsCollector::new(header(), 3);
        for i in 0..50u64 {
            c.push((i % 2) as usize, &TraceOp::read(2, i * 97));
        }
        let s = c.finish();
        let a = s.render_json();
        let b = s.render_json();
        assert_eq!(a, b);
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
        assert!(a.contains("\"hot_rows\""));
    }
}
