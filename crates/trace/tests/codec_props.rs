//! Property tests for the MTRC v1 codec: arbitrary multi-core op streams
//! round-trip exactly through encode → decode at any chunk size, and the
//! two corruption classes (truncation, bit flips) are always reported.

use mithril_dram::Geometry;
use mithril_trace::{read_all, MtrcReader, MtrcWriter, TraceError, TraceHeader};
use mithril_workloads::TraceOp;
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = TraceOp> {
    // Mix adversarial shapes: arbitrary 64-bit addresses (delta wrap-around),
    // tight sequential runs (the compact fast path) and bursty instruction
    // counts.
    prop_oneof![
        (any::<u32>(), any::<u64>(), any::<bool>(), any::<bool>()).prop_map(
            |(non_mem_insts, line_addr, is_write, uncacheable)| TraceOp {
                non_mem_insts,
                line_addr,
                is_write,
                uncacheable,
            }
        ),
        (0u64..64, 0u64..1024).prop_map(|(nmi, line)| TraceOp::read(nmi as u32, 1 << 20 | line)),
    ]
}

fn streams_strategy() -> impl Strategy<Value = Vec<Vec<TraceOp>>> {
    prop::collection::vec(prop::collection::vec(op_strategy(), 0..200), 1..5)
}

fn header_for(cores: usize) -> TraceHeader {
    TraceHeader {
        geometry: Geometry::default(),
        cores,
        base_seed: 99,
        insts_per_core: 0,
        source: "props".into(),
    }
}

fn encode(streams: &[Vec<TraceOp>], chunk_ops: usize) -> Vec<u8> {
    let mut w =
        MtrcWriter::with_chunk_ops(Vec::new(), &header_for(streams.len()), chunk_ops).unwrap();
    let longest = streams.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..longest {
        for (core, ops) in streams.iter().enumerate() {
            if let Some(&op) = ops.get(i) {
                w.push(core, op).unwrap();
            }
        }
    }
    w.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_exact(
        streams in streams_strategy(),
        chunk_ops in 1usize..40,
    ) {
        let bytes = encode(&streams, chunk_ops);
        let (header, decoded) = read_all(&bytes[..]).unwrap();
        prop_assert_eq!(header.cores, streams.len());
        prop_assert_eq!(decoded, streams);
    }

    #[test]
    fn chunk_size_does_not_change_decoded_streams(
        streams in streams_strategy(),
    ) {
        let small = encode(&streams, 3);
        let large = encode(&streams, 4096);
        let (_, a) = read_all(&small[..]).unwrap();
        let (_, b) = read_all(&large[..]).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn truncation_never_decodes_cleanly(
        streams in streams_strategy(),
        cut_frac in 0u64..1000,
    ) {
        let bytes = encode(&streams, 16);
        let cut = (bytes.len() as u64 * cut_frac / 1000) as usize;
        let err = read_all(&bytes[..cut]).expect_err("truncated prefix accepted");
        let is_expected_kind = matches!(
            err,
            TraceError::Truncated { .. } | TraceError::Corrupt(_) | TraceError::BadMagic(_)
        );
        prop_assert!(is_expected_kind);
    }

    #[test]
    fn payload_bitflips_are_reported(
        streams in streams_strategy(),
        flip_pos in any::<u64>(),
        flip_bit in 0u8..8,
    ) {
        let bytes = encode(&streams, 16);
        let mut corrupt = bytes.clone();
        let pos = (flip_pos % bytes.len() as u64) as usize;
        corrupt[pos] ^= 1 << flip_bit;
        // Any single-bit flip must be rejected — the checksums cover the
        // header, every chunk frame + payload, and the end-marker count.
        prop_assert!(read_all(&corrupt[..]).is_err(), "flip at byte {} accepted", pos);
    }
}

#[test]
fn bad_checksum_reports_chunk_index() {
    let streams = vec![(0..100u64).map(|i| TraceOp::read(1, i * 3)).collect()];
    let bytes = encode(&streams, 25); // 4 chunks
                                      // Find the third chunk's payload and flip a byte in it. Chunks start
                                      // after the header; walk them with a reader to locate offsets is
                                      // overkill — instead corrupt by brute force until we see chunk 2.
    let mut seen = None;
    for pos in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x40;
        if let Err(TraceError::BadChecksum { chunk }) = read_all(&corrupt[..]) {
            if chunk == 2 {
                seen = Some(chunk);
                break;
            }
        }
    }
    assert_eq!(
        seen,
        Some(2),
        "no flip surfaced as a chunk-2 checksum error"
    );
}

#[test]
fn streaming_reader_matches_bulk_loader() {
    let streams: Vec<Vec<TraceOp>> = (0..3)
        .map(|c| {
            (0..500u64)
                .map(|i| TraceOp::read((c * 7 + i) as u32, i.wrapping_mul(0x9E37_79B9)))
                .collect()
        })
        .collect();
    let bytes = encode(&streams, 64);
    let (_, bulk) = read_all(&bytes[..]).unwrap();
    let mut reader = MtrcReader::new(&bytes[..]).unwrap();
    let mut streamed: Vec<Vec<TraceOp>> = vec![Vec::new(); 3];
    let mut chunk = Vec::new();
    while let Some(core) = reader.next_chunk(&mut chunk).unwrap() {
        streamed[core].extend_from_slice(&chunk);
    }
    assert_eq!(streamed, bulk);
    assert_eq!(reader.ops_read(), 1500);
}
