//! Fault-injection property tests: after *arbitrary* injected entry
//! corruption, `self_check` detects the damage, `repair` restores every
//! structural invariant, and the repaired bucket table remains in
//! decision lockstep with the identically-corrupted-and-repaired naive
//! reference.
//!
//! The differential half runs on `MithrilTable<u64>` vs [`NaiveTable`]:
//! both hold identical raw `u64` counters (and `u64::recover_floor` is
//! the plain minimum, matching the reference), so an identical fault
//! sequence perturbs both tables into the same logical state and repair
//! must canonicalize them identically. The wrapping `u16` table gets its
//! own detect/repair invariant pass, where no raw-value twin exists.

use mithril::{Counter, MithrilTable, NaiveTable};
use proptest::prelude::*;

/// One step of the warmup / aftermath streams.
#[derive(Debug, Clone, Copy)]
enum Cmd {
    Act(u64),
    Rfm,
}

/// One injected fault. Slots / bits are taken modulo the live ranges so
/// every generated fault lands on a real entry.
#[derive(Debug, Clone, Copy)]
enum Fault {
    Flip { slot: usize, bit: u32 },
    ForceBit { slot: usize, bit: u32, one: bool },
    Invalidate { slot: usize },
}

fn cmd_stream(max_len: usize) -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![
            10 => (0u64..48).prop_map(Cmd::Act),
            1 => Just(Cmd::Rfm),
        ],
        1..max_len,
    )
}

fn fault_stream() -> impl Strategy<Value = Vec<Fault>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0usize..64, 0u32..64).prop_map(|(slot, bit)| Fault::Flip { slot, bit }),
            2 => (0usize..64, 0u32..64, any::<bool>())
                .prop_map(|(slot, bit, one)| Fault::ForceBit { slot, bit, one }),
            2 => (0usize..64).prop_map(|slot| Fault::Invalidate { slot }),
        ],
        1..12,
    )
}

fn drive<C: Counter>(fast: &mut MithrilTable<C>, naive: &mut NaiveTable, cmds: &[Cmd]) {
    for (i, cmd) in cmds.iter().enumerate() {
        match *cmd {
            Cmd::Act(row) => {
                fast.on_activate(row);
                naive.on_activate(row);
            }
            Cmd::Rfm => {
                assert_eq!(fast.on_rfm(), naive.on_rfm(), "RFM diverged at step {i}");
            }
        }
        assert_eq!(fast.spread(), naive.spread(), "spread diverged at step {i}");
    }
}

/// Applies `faults` identically to both tables (slot/bit wrapped to the
/// table's live ranges).
fn inject<C: Counter>(fast: &mut MithrilTable<C>, naive: &mut NaiveTable, faults: &[Fault]) {
    let cap = fast.capacity();
    for f in faults {
        match *f {
            Fault::Flip { slot, bit } => {
                let (slot, bit) = (slot % cap, bit % C::BITS);
                assert_eq!(
                    fast.flip_counter_bit(slot, bit),
                    naive.flip_counter_bit(slot, bit)
                );
            }
            Fault::ForceBit { slot, bit, one } => {
                let (slot, bit) = (slot % cap, bit % C::BITS);
                assert_eq!(
                    fast.force_counter_bit(slot, bit, one),
                    naive.force_counter_bit(slot, bit, one)
                );
            }
            Fault::Invalidate { slot } => {
                let slot = slot % cap;
                assert_eq!(fast.invalidate_entry(slot), naive.invalidate_entry(slot));
            }
        }
    }
}

/// Snapshot of the occupied slots' raw counter bits. Detection is only
/// owed when the *net* stored state changed — a flip that a later flip
/// undoes leaves nothing for a scrub to see.
fn raw_snapshot<C: Counter>(t: &MithrilTable<C>) -> Vec<Option<u64>> {
    (0..t.capacity()).map(|s| t.raw_counter(s)).collect()
}

proptest! {
    /// Differential detect/repair: identical corruption of the u64 bucket
    /// table and the naive reference — every counter-changing fault is
    /// detected by `self_check`, `repair` restores all invariants, and
    /// the repaired pair stays in decision lockstep afterwards.
    #[test]
    fn repaired_tables_stay_in_lockstep(
        warmup in cmd_stream(600),
        faults in fault_stream(),
        aftermath in cmd_stream(400),
        cap in 1usize..24,
    ) {
        let mut fast: MithrilTable<u64> = MithrilTable::new(cap);
        let mut naive = NaiveTable::new(cap);
        drive(&mut fast, &mut naive, &warmup);

        let before = raw_snapshot(&fast);
        inject(&mut fast, &mut naive, &faults);
        if raw_snapshot(&fast) != before {
            // A silent counter change must break a structural invariant
            // (bucket value vs stored counter) and be caught.
            prop_assert!(fast.self_check().is_err(), "corruption went undetected");
        }

        fast.repair();
        naive.repair();
        prop_assert!(fast.self_check().is_ok(), "repair left invariants broken: {:?}", fast.self_check());

        // Identical logical state after repair...
        let mut a: Vec<_> = fast.iter_relative().collect();
        let mut b: Vec<_> = naive.iter_relative().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "post-repair contents diverged");

        // ...and identical decisions from here on.
        drive(&mut fast, &mut naive, &aftermath);
        prop_assert!(fast.self_check().is_ok());
    }

    /// The wrapping u16 production table: arbitrary corruption is
    /// detected and repair restores a self-consistent table that keeps
    /// absorbing traffic (no reference twin exists at 16 bits — the raw
    /// values differ — so this checks the invariants, not lockstep).
    #[test]
    fn u16_table_detects_and_recovers(
        warmup in cmd_stream(600),
        faults in fault_stream(),
        aftermath in cmd_stream(300),
        cap in 1usize..24,
    ) {
        let mut t: MithrilTable<u16> = MithrilTable::new(cap);
        let mut shadow = NaiveTable::new(cap); // traffic twin for warmup only
        drive(&mut t, &mut shadow, &warmup);

        let before = raw_snapshot(&t);
        for f in &faults {
            match *f {
                Fault::Flip { slot, bit } => {
                    t.flip_counter_bit(slot % cap, bit % 16);
                }
                Fault::ForceBit { slot, bit, one } => {
                    t.force_counter_bit(slot % cap, bit % 16, one);
                }
                Fault::Invalidate { slot } => {
                    t.invalidate_entry(slot % cap);
                }
            }
        }
        if raw_snapshot(&t) != before {
            prop_assert!(t.self_check().is_err(), "corruption went undetected");
        }

        t.repair();
        prop_assert!(t.self_check().is_ok(), "repair left invariants broken: {:?}", t.self_check());

        for cmd in &aftermath {
            match *cmd {
                Cmd::Act(row) => t.on_activate(row),
                Cmd::Rfm => { t.on_rfm(); }
            }
        }
        prop_assert!(t.self_check().is_ok(), "post-repair traffic re-broke invariants");
        prop_assert!(t.len() <= t.capacity());
    }
}
