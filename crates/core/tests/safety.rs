//! Empirical validation of Mithril's deterministic protection guarantee.
//!
//! Theorem 1 proves the estimated-count increase of any row within a tREFW
//! is bounded by `M < FlipTH/2`. These tests drive solved configurations
//! with worst-case command streams on the command-level [`AttackHarness`]
//! and check the *exact* disturbance oracle: no victim may ever reach
//! FlipTH.

use mithril::{bounds, MithrilConfig, MithrilScheme};
use mithril_dram::{AttackHarness, Ddr5Timing};

fn run_attack(
    flip_th: u64,
    rfm_th: u64,
    adaptive: Option<u64>,
    mrr_elision: bool,
    rows: impl Fn(u64) -> u64,
    windows: u32,
) -> (u64, usize) {
    let timing = Ddr5Timing::ddr5_4800();
    let cfg = MithrilConfig::solve(flip_th, rfm_th, 1, adaptive, &timing).unwrap();
    let engine = MithrilScheme::new(cfg);
    let mut h = AttackHarness::new(timing, Box::new(engine), rfm_th, flip_th);
    h.set_mrr_elision(mrr_elision);
    let mut i = 0u64;
    for _ in 0..windows {
        while h.try_activate(rows(i)) {
            i += 1;
        }
        h.advance_window();
    }
    (h.oracle().max_disturbance(), h.oracle().flips().len())
}

#[test]
fn single_row_hammer_never_flips() {
    for (flip, rfm) in [(6_250u64, 128u64), (3_125, 64), (1_500, 32)] {
        let (max, flips) = run_attack(flip, rfm, None, false, |_| 1000, 1);
        assert_eq!(
            flips, 0,
            "FlipTH {flip}: flipped with max disturbance {max}"
        );
        assert!(max < flip, "FlipTH {flip}: max {max}");
    }
}

#[test]
fn double_sided_pair_never_flips() {
    // Rows 999 and 1001 share victim 1000.
    let (max, flips) = run_attack(6_250, 128, None, false, |i| 999 + 2 * (i % 2), 1);
    assert_eq!(flips, 0, "max disturbance {max}");
    assert!(max < 6_250);
}

#[test]
fn multi_sided_32_rows_never_flips() {
    // The TRRespass-style many-sided pattern of Section VI-A: 32 aggressor
    // rows side by side, each pair sandwiching victims.
    let (max, flips) = run_attack(6_250, 128, None, false, |i| 5_000 + 2 * (i % 32), 1);
    assert_eq!(flips, 0, "max disturbance {max}");
    assert!(max < 6_250);
}

#[test]
fn table_thrashing_attack_never_flips() {
    // Round-robin over slightly more rows than the table holds, forcing
    // constant evictions — the pattern that defeats naive trackers.
    let timing = Ddr5Timing::ddr5_4800();
    let cfg = MithrilConfig::for_flip_threshold(6_250, 128, &timing).unwrap();
    let n = cfg.nentry as u64;
    let (max, flips) = run_attack(6_250, 128, None, false, |i| 100 + 2 * (i % (n + 7)), 1);
    assert_eq!(flips, 0, "max disturbance {max}");
    assert!(max < 6_250);
}

#[test]
fn low_flipth_strained_config_holds_two_windows() {
    // FlipTH = 1.5K with RFMTH = 32 (the paper's most aggressive corner),
    // run across two refresh windows to catch window-boundary effects.
    let (max, flips) = run_attack(1_500, 32, None, false, |i| 2_000 + 2 * (i % 40), 2);
    assert_eq!(flips, 0, "max disturbance {max}");
    assert!(max < 1_500);
}

#[test]
fn adaptive_refresh_still_protects_under_attack() {
    // AdTH = 200 skips benign RFMs but must keep the Theorem-2 guarantee.
    for pattern in [0usize, 1, 2] {
        let f: Box<dyn Fn(u64) -> u64> = match pattern {
            0 => Box::new(|_| 1000),                 // single row
            1 => Box::new(|i| 999 + 2 * (i % 2)),    // double-sided
            _ => Box::new(|i| 5_000 + 2 * (i % 32)), // multi-sided
        };
        let (max, flips) = run_attack(3_125, 64, Some(200), false, f, 1);
        assert_eq!(flips, 0, "pattern {pattern}: max {max}");
        assert!(max < 3_125, "pattern {pattern}: max {max}");
    }
}

#[test]
fn mithril_plus_elision_preserves_safety() {
    // Mithril+ skips the RFM command entirely when the flag is clear; the
    // protection must be unchanged under attack.
    let (max, flips) = run_attack(3_125, 64, Some(200), true, |i| 999 + 2 * (i % 2), 1);
    assert_eq!(flips, 0, "max disturbance {max}");
    assert!(max < 3_125);
}

#[test]
fn estimated_bound_dominates_observed_disturbance() {
    // The disturbance any victim sees is at most 2×M (two adjacent
    // aggressors each bounded by M); observed worst cases must respect it.
    let timing = Ddr5Timing::ddr5_4800();
    let flip = 6_250u64;
    let rfm = 128u64;
    let m = {
        let cfg = MithrilConfig::for_flip_threshold(flip, rfm, &timing).unwrap();
        bounds::theorem1_bound(cfg.nentry, cfg.rfm_th, &timing)
    };
    let (max, _) = run_attack(flip, rfm, None, false, |i| 999 + 2 * (i % 2), 1);
    assert!(
        (max as f64) < 2.0 * m,
        "observed {max} exceeds twice the Theorem-1 bound {m}"
    );
}

#[test]
fn benign_uniform_sweep_has_tiny_disturbance() {
    // A uniform sweep spreads ACTs; max disturbance stays near the
    // per-interval count, far from FlipTH.
    let (max, flips) = run_attack(6_250, 128, Some(200), false, |i| (i * 17) % 60_000, 1);
    assert_eq!(flips, 0);
    assert!(max < 200, "uniform sweep disturbed a row {max} times");
}
