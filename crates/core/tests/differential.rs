//! Differential tests: the Stream-Summary bucket table must make
//! decisions *identical* to the retained linear-scan reference
//! ([`mithril::NaiveTable`]) — same RFM selections, same evictions, same
//! spreads, same estimates — on random and adversarial streams.
//!
//! `NaiveTable` uses unbounded `u64` counters, so running it against the
//! wrapping `u16` production table also re-proves the Section IV-E
//! wrapping-counter claim along the way.

use mithril::{MithrilTable, NaiveTable};
use proptest::prelude::*;

/// One step of a differential run: activate or RFM.
#[derive(Debug, Clone, Copy)]
enum Cmd {
    Act(u64),
    Rfm,
}

/// Drives both tables through `cmds`, asserting equal observable behavior
/// at every step. Returns the number of commands executed.
fn assert_lockstep<C: mithril::Counter>(
    fast: &mut MithrilTable<C>,
    naive: &mut NaiveTable,
    cmds: impl Iterator<Item = Cmd>,
) -> u64 {
    let mut n = 0;
    for cmd in cmds {
        match cmd {
            Cmd::Act(row) => {
                fast.on_activate(row);
                naive.on_activate(row);
                debug_assert_eq!(fast.contains(row), naive.contains(row));
            }
            Cmd::Rfm => {
                assert_eq!(fast.on_rfm(), naive.on_rfm(), "RFM diverged at step {n}");
            }
        }
        n += 1;
    }
    assert_eq!(fast.spread(), naive.spread(), "final spread diverged");
    assert_eq!(fast.len(), naive.len());
    let mut a: Vec<_> = fast.iter_relative().collect();
    let mut b: Vec<_> = naive.iter_relative().collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "final table contents diverged");
    n
}

/// Splitmix-style deterministic stream generator for the long runs.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// 10^5-activation uniform-random stream with an RFM cadence, several
/// capacities. Also checks per-step selections and estimates.
#[test]
fn random_stream_100k_identical_decisions() {
    for &(cap, universe, rfm_every) in &[
        (4usize, 10u64, 16u64),
        (16, 48, 32),
        (64, 256, 64),
        (128, 96, 24),
    ] {
        let mut fast: MithrilTable<u16> = MithrilTable::new(cap);
        let mut naive = NaiveTable::new(cap);
        let mut rng = Lcg(0xC0FFEE ^ cap as u64);
        let mut acts = 0u64;
        let mut step = 0u64;
        while acts < 100_000 {
            let row = rng.next() % universe;
            fast.on_activate(row);
            naive.on_activate(row);
            acts += 1;
            if step % rfm_every == rfm_every - 1 {
                assert_eq!(
                    fast.on_rfm(),
                    naive.on_rfm(),
                    "cap {cap}: RFM diverged after {acts} ACTs"
                );
            }
            if step.is_multiple_of(97) {
                let probe = rng.next() % universe;
                assert_eq!(
                    fast.estimate_above_min(probe),
                    naive.estimate_above_min(probe)
                );
                assert_eq!(fast.spread(), naive.spread());
            }
            step += 1;
        }
    }
}

/// Adversarial streams: double-sided hammer with camouflage, round-robin
/// eviction churn over capacity + 1 rows (the classic Space-Saving worst
/// case), and a sweeping wave. All at least 10^5 activations.
#[test]
fn attack_streams_100k_identical_decisions() {
    // Double-sided hammer: two hot aggressors, periodic camouflage noise.
    {
        let mut fast: MithrilTable<u16> = MithrilTable::new(16);
        let mut naive = NaiveTable::new(16);
        let mut rng = Lcg(7);
        let cmds = (0..120_000u64).map(|i| {
            if i % 48 == 47 {
                Cmd::Rfm
            } else if i % 3 == 2 {
                Cmd::Act(1000 + rng.next() % 64) // camouflage
            } else if i % 2 == 0 {
                Cmd::Act(499)
            } else {
                Cmd::Act(501)
            }
        });
        assert_lockstep(&mut fast, &mut naive, cmds);
    }
    // Round-robin over capacity + 1 rows: every miss evicts.
    {
        let cap = 32usize;
        let mut fast: MithrilTable<u16> = MithrilTable::new(cap);
        let mut naive = NaiveTable::new(cap);
        let cmds = (0..110_000u64).map(|i| {
            if i % 128 == 127 {
                Cmd::Rfm
            } else {
                Cmd::Act(i % (cap as u64 + 1))
            }
        });
        assert_lockstep(&mut fast, &mut naive, cmds);
    }
    // Sweeping wave: rows visited in bursts that shift over time.
    {
        let mut fast: MithrilTable<u16> = MithrilTable::new(24);
        let mut naive = NaiveTable::new(24);
        let cmds = (0..100_000u64).map(|i| {
            if i % 64 == 63 {
                Cmd::Rfm
            } else {
                Cmd::Act((i / 500) % 96 + (i % 5))
            }
        });
        assert_lockstep(&mut fast, &mut naive, cmds);
    }
}

fn cmd_stream() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![
            10 => (0u64..48).prop_map(Cmd::Act),
            2 => (10_000u64..10_064).prop_map(Cmd::Act), // cold tail
            1 => Just(Cmd::Rfm),
        ],
        1..3000,
    )
}

proptest! {
    /// Random interleavings of ACTs and RFMs: bucket and naive tables stay
    /// in lockstep at every step, for any capacity.
    #[test]
    fn proptest_lockstep_u16(stream in cmd_stream(), cap in 1usize..40) {
        let mut fast: MithrilTable<u16> = MithrilTable::new(cap);
        let mut naive = NaiveTable::new(cap);
        for (i, cmd) in stream.iter().enumerate() {
            match *cmd {
                Cmd::Act(row) => {
                    fast.on_activate(row);
                    naive.on_activate(row);
                }
                Cmd::Rfm => {
                    prop_assert_eq!(fast.on_rfm(), naive.on_rfm(), "diverged at step {}", i);
                }
            }
            prop_assert_eq!(fast.spread(), naive.spread());
        }
        let mut a: Vec<_> = fast.iter_relative().collect();
        let mut b: Vec<_> = naive.iter_relative().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// The wide (u64) bucket table matches the naive reference too — this
    /// isolates bucket-structure bugs from wrapping-counter bugs.
    #[test]
    fn proptest_lockstep_u64(stream in cmd_stream(), cap in 1usize..24) {
        let mut fast: MithrilTable<u64> = MithrilTable::new(cap);
        let mut naive = NaiveTable::new(cap);
        for cmd in &stream {
            match *cmd {
                Cmd::Act(row) => {
                    fast.on_activate(row);
                    naive.on_activate(row);
                }
                Cmd::Rfm => {
                    prop_assert_eq!(fast.on_rfm(), naive.on_rfm());
                }
            }
        }
        prop_assert_eq!(fast.spread(), naive.spread());
    }
}
