//! Property tests for the wrapping-counter claim (paper Section IV-E):
//! a Mithril table with narrow wrapping counters behaves *identically* to
//! one with unbounded counters, as long as the in-table spread stays within
//! the counter range — which the greedy decrement-to-min policy guarantees.

use mithril::MithrilTable;
use proptest::prelude::*;

/// A command stream interleaving ACTs over a small row universe with RFMs.
#[derive(Debug, Clone)]
enum Cmd {
    Act(u64),
    Rfm,
}

fn cmd_stream() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![
            8 => (0u64..24).prop_map(Cmd::Act),
            1 => Just(Cmd::Rfm),
        ],
        1..4000,
    )
}

proptest! {
    /// u16 and u64 tables make identical decisions on identical streams.
    #[test]
    fn wrapping_u16_equals_unbounded_u64(stream in cmd_stream(), cap in 1usize..16) {
        let mut narrow: MithrilTable<u16> = MithrilTable::new(cap);
        let mut wide: MithrilTable<u64> = MithrilTable::new(cap);
        for cmd in &stream {
            match cmd {
                Cmd::Act(row) => {
                    narrow.on_activate(*row);
                    wide.on_activate(*row);
                }
                Cmd::Rfm => {
                    let a = narrow.on_rfm();
                    let b = wide.on_rfm();
                    prop_assert_eq!(a, b, "diverging RFM selections");
                }
            }
            prop_assert_eq!(narrow.spread(), wide.spread());
        }
        // Final table contents agree.
        let mut a: Vec<_> = narrow.iter_relative().collect();
        let mut b: Vec<_> = wide.iter_relative().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Even after counters wrap many times, behaviour matches: force wraps
    /// by hammering a tiny table with > 2^16 ACTs but keeping spread small
    /// via frequent RFMs.
    #[test]
    fn equivalence_across_counter_wraps(seed in 0u64..1000) {
        let mut narrow: MithrilTable<u16> = MithrilTable::new(3);
        let mut wide: MithrilTable<u64> = MithrilTable::new(3);
        let mut x = seed;
        for i in 0..80_000u64 {
            // Cheap deterministic pseudo-random row.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let row = (x >> 33) % 6;
            narrow.on_activate(row);
            wide.on_activate(row);
            if i % 32 == 31 {
                prop_assert_eq!(narrow.on_rfm(), wide.on_rfm());
            }
        }
        prop_assert_eq!(narrow.spread(), wide.spread());
    }

    /// The spread never exceeds (stream-per-interval) bounds under a greedy
    /// RFM cadence: the invariant that makes wrapping counters sufficient.
    #[test]
    fn spread_stays_bounded_under_rfm_cadence(
        rows in 1u64..32,
        cap in 2usize..16,
        rfm_every in 8u64..128,
    ) {
        let mut t: MithrilTable<u32> = MithrilTable::new(cap);
        let mut worst = 0u64;
        for i in 0..50_000u64 {
            t.on_activate(i % rows);
            if i % rfm_every == rfm_every - 1 {
                t.on_rfm();
            }
            worst = worst.max(t.spread());
        }
        // Loose analytical cap: harmonic(N)*rfm_every + rfm_every * extra —
        // we only assert it does not grow with stream length (50K >> cap).
        let cap_bound = rfm_every * (cap as u64 + 2) + rows;
        prop_assert!(worst <= cap_bound, "worst spread {} > {}", worst, cap_bound);
    }
}

// The wrap-boundary properties pre-wind every counter close to 2^16
// (hundreds of thousands of activations per case), so they run with a
// reduced case count; the cheap safety properties above keep the shim
// default.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bucket ordering straddling the u16 wrap boundary: pre-wind every
    /// counter to just below 2^16 (round-robin hits keep the table full and
    /// balanced), then run a random stream that pushes the counters across
    /// the wrap. The `diff`-keyed bucket list must not misorder entries —
    /// the u16 table stays in lockstep with the unbounded u64 table.
    #[test]
    fn bucket_order_survives_u16_wrap(
        prewind in 65_400u64..65_700,
        stream in cmd_stream(),
        cap in 2usize..12,
    ) {
        let mut narrow: MithrilTable<u16> = MithrilTable::new(cap);
        let mut wide: MithrilTable<u64> = MithrilTable::new(cap);
        // Fill the table, then drive every counter to `prewind` with
        // round-robin hits (no evictions, spread stays 0). For prewind
        // past 65_535 the u16 counters have wrapped; the u64 have not.
        for round in 0..prewind {
            for row in 0..cap as u64 {
                narrow.on_activate(row);
                wide.on_activate(row);
            }
            // Keep an occasional RFM in the cadence so selections also
            // straddle the boundary.
            if round % 512 == 511 {
                prop_assert_eq!(narrow.on_rfm(), wide.on_rfm());
            }
        }
        prop_assert_eq!(narrow.spread(), wide.spread());
        // Now the random stream (rows 0..24 hit the wound-up entries when
        // cap permits; others churn through eviction at the wrapped min).
        for cmd in &stream {
            match cmd {
                Cmd::Act(row) => {
                    narrow.on_activate(*row);
                    wide.on_activate(*row);
                }
                Cmd::Rfm => {
                    prop_assert_eq!(narrow.on_rfm(), wide.on_rfm(), "diverged across wrap");
                }
            }
            prop_assert_eq!(narrow.spread(), wide.spread());
        }
        let mut a: Vec<_> = narrow.iter_relative().collect();
        let mut b: Vec<_> = wide.iter_relative().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// A single entry incrementing across the exact 65_535 → 0 edge keeps
    /// estimates, selection and spread exact. The whole (full) table is
    /// wound to just below the edge so the spread stays legal while row 0
    /// alone steps over it.
    #[test]
    fn single_entry_increment_across_wrap_edge(extra in 1u64..200, cap in 2usize..8) {
        let mut narrow: MithrilTable<u16> = MithrilTable::new(cap);
        let mut wide: MithrilTable<u64> = MithrilTable::new(cap);
        // Round-robin the full table up to the edge: every counter sits at
        // 65_530 (no evictions, spread 0, no RFMs — nothing resets).
        for _ in 0..65_530u64 {
            for row in 0..cap as u64 {
                narrow.on_activate(row);
                wide.on_activate(row);
            }
        }
        prop_assert_eq!(narrow.spread(), 0);
        // Row 0 alone steps across 65_535 → 0 (u16) while u64 keeps
        // counting; spread = extra stays far below the counter range.
        for i in 0..6 + extra {
            narrow.on_activate(0);
            wide.on_activate(0);
            prop_assert_eq!(
                narrow.estimate_above_min(0),
                wide.estimate_above_min(0),
                "estimate diverged {} past the edge", i
            );
            prop_assert_eq!(narrow.spread(), wide.spread());
        }
        // Selection across the edge agrees, and the reset drops row 0 back
        // into the (wrapped) minimum bucket correctly.
        prop_assert_eq!(narrow.on_rfm(), wide.on_rfm());
        prop_assert_eq!(narrow.spread(), wide.spread());
        narrow.on_activate(1);
        wide.on_activate(1);
        prop_assert_eq!(narrow.on_rfm(), wide.on_rfm());
    }
}
