//! # Mithril — RFM-compatible deterministic Row Hammer protection
//!
//! A from-scratch implementation of **Mithril** and **Mithril+** from
//! *Mithril: Cooperative Row Hammer Protection on Commodity DRAM Leveraging
//! Managed Refresh* (Kim et al., HPCA 2022).
//!
//! Mithril is a DRAM-side mitigation that cooperates with the memory
//! controller through the DDR5/LPDDR5 *Refresh Management* (RFM) interface:
//! the controller issues a row-agnostic RFM command every `RFMTH`
//! activations per bank, and the in-DRAM engine uses the tRFM time margin to
//! preventively refresh the victims of the row it *greedily* selects — the
//! entry with the highest estimated activation count in a Counter-based
//! Summary table (paper Section IV).
//!
//! This crate provides:
//!
//! * [`MithrilTable`] — the per-bank address/count CAM pair with
//!   `MaxPtr`/`MinPtr` and **wrapping counters** (Section IV-E);
//! * [`MithrilScheme`] — the engine (greedy selection, decrement-to-min,
//!   adaptive refresh of Section V-A, the Mithril+ mode-register flag of
//!   Section V-B), implementing [`mithril_dram::DramMitigation`];
//! * [`bounds`] — Theorem 1 and Theorem 2: the provable per-tREFW increase
//!   bound `M` (and `M'` under adaptive refresh);
//! * [`MithrilConfig`] — the `(Nentry, RFMTH)` configuration solver of
//!   Section IV-D (Fig. 6) and the non-adjacent-RH adjustment (Section V-C);
//! * [`area`] — the CAM bit-width and area model behind Table IV.
//!
//! # Example
//!
//! ```
//! use mithril::{MithrilConfig, MithrilScheme};
//! use mithril_dram::{Ddr5Timing, DramMitigation};
//!
//! let timing = Ddr5Timing::ddr5_4800();
//! let config = MithrilConfig::for_flip_threshold(6_250, 128, &timing)?;
//! // The solved table comfortably protects FlipTH = 6.25K:
//! assert!(config.bound(&timing) < 6_250.0 / 2.0);
//!
//! let mut scheme = MithrilScheme::new(config);
//! for i in 0..128u64 {
//!     scheme.on_activate(100 + i % 4); // hammer four rows
//! }
//! let outcome = scheme.on_rfm();
//! // The greedy selection refreshed the victims of one of the hot rows.
//! assert_eq!(outcome.refreshed_victims.len(), 2);
//! # Ok::<(), mithril::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod bounds;
mod config;
mod scheme;
mod table;

/// Shared fast hashing for hot-path keyed lookups (re-export of
/// [`mithril_fasthash`]): the multiply-fold [`fasthash::FastHashMap`]
/// backing the table index, and the multiply-shift sketch hash family.
pub mod fasthash {
    pub use mithril_fasthash::*;
}

pub use config::{ConfigError, MithrilConfig};
pub use scheme::{MithrilScheme, SchemeStats};
pub use table::{Counter, MithrilTable, NaiveTable, Selection, INVALID_ROW};
