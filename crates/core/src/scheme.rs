//! The Mithril mitigation engine (paper Section IV-B, Fig. 4/5).
//!
//! One [`MithrilScheme`] instance sits in every DRAM bank. It observes ACT
//! commands, and on every RFM command greedily selects the hottest tracked
//! row, preventively refreshes that row's victims, and decrements the
//! entry's counter to the table minimum.
//!
//! The **adaptive refresh** policy (Section V-A) skips the preventive
//! refresh when `MaxPtr − MinPtr < AdTH` — benign workloads rarely
//! concentrate enough ACTs on single rows to build a large spread, so the
//! energy cost disappears in the common case. **Mithril+** (Section V-B)
//! exposes the same condition as a mode-register flag so the memory
//! controller can elide the RFM command itself (via
//! [`DramMitigation::refresh_pending`]).

use crate::config::MithrilConfig;
use crate::table::{MithrilTable, INVALID_ROW};
use mithril_dram::{DramMitigation, FaultSurface, RfmOutcome, RowId};

/// Operation counters for one Mithril engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchemeStats {
    /// ACTs observed.
    pub acts: u64,
    /// RFM windows received.
    pub rfms: u64,
    /// Preventive refreshes actually executed.
    pub refreshes: u64,
    /// RFM windows skipped by the adaptive policy.
    pub skips: u64,
    /// Victim rows refreshed in total.
    pub victim_rows: u64,
}

/// The per-bank Mithril engine with a 16-bit wrapping-counter table.
///
/// # Example
///
/// ```
/// use mithril::{MithrilConfig, MithrilScheme};
/// use mithril_dram::{Ddr5Timing, DramMitigation};
///
/// let t = Ddr5Timing::ddr5_4800();
/// let mut m = MithrilScheme::new(MithrilConfig::for_flip_threshold(6_250, 128, &t)?);
/// for _ in 0..100 {
///     m.on_activate(1234);
/// }
/// let out = m.on_rfm();
/// assert_eq!(out.selected_aggressor, Some(1234));
/// assert_eq!(out.refreshed_victims, vec![1233, 1235]);
/// # Ok::<(), mithril::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MithrilScheme {
    table: MithrilTable<u16>,
    config: MithrilConfig,
    stats: SchemeStats,
}

impl MithrilScheme {
    /// Creates an engine from a solved configuration.
    pub fn new(config: MithrilConfig) -> Self {
        Self {
            table: MithrilTable::new(config.nentry),
            config,
            stats: SchemeStats::default(),
        }
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &MithrilConfig {
        &self.config
    }

    /// Operation counters.
    pub fn stats(&self) -> SchemeStats {
        self.stats
    }

    /// Current `MaxPtr − MinPtr` spread (the adaptive-refresh signal).
    pub fn spread(&self) -> u64 {
        self.table.spread()
    }

    /// Read-only view of the table.
    pub fn table(&self) -> &MithrilTable<u16> {
        &self.table
    }

    /// The victim rows of `aggressor` under the configured blast radius,
    /// clamped to the bank's row range.
    pub fn victims_of(&self, aggressor: RowId) -> Vec<RowId> {
        let mut v = Vec::with_capacity(2 * self.config.blast_radius as usize);
        self.fill_victims(aggressor, &mut v);
        v
    }

    /// Appends the victims of `aggressor` to `out` without allocating
    /// (the allocation-free path behind [`DramMitigation::on_rfm_into`]).
    fn fill_victims(&self, aggressor: RowId, out: &mut Vec<RowId>) {
        for d in 1..=self.config.blast_radius {
            if aggressor >= d {
                out.push(aggressor - d);
            }
            if aggressor + d < self.config.rows_per_bank {
                out.push(aggressor + d);
            }
        }
    }

    fn adaptive_skip(&self) -> bool {
        match self.config.adaptive_th {
            Some(ad) if ad > 0 => self.table.spread() < ad,
            _ => false,
        }
    }
}

impl DramMitigation for MithrilScheme {
    fn on_activate(&mut self, row: RowId) {
        self.stats.acts += 1;
        self.table.on_activate(row);
    }

    fn on_rfm_into(&mut self, out: &mut RfmOutcome) {
        out.reset_to_skipped();
        self.stats.rfms += 1;
        if self.adaptive_skip() {
            self.stats.skips += 1;
            return;
        }
        if let Some(sel) = self.table.on_rfm() {
            if sel.row == INVALID_ROW {
                // A fault-invalidated entry won the greedy selection: the
                // garbage tag yields no victims, so the window is burned
                // (the entry's counter still dropped to the minimum).
                return;
            }
            self.fill_victims(sel.row, &mut out.refreshed_victims);
            self.stats.refreshes += 1;
            self.stats.victim_rows += out.refreshed_victims.len() as u64;
            out.selected_aggressor = Some(sel.row);
            out.skipped = false;
        }
    }

    fn refresh_pending(&self) -> bool {
        // Mithril+ flag: set exactly when a refresh would execute.
        !self.adaptive_skip() && !self.table.is_empty()
    }

    fn name(&self) -> &'static str {
        if self.config.adaptive_th.is_some() {
            "mithril-adaptive"
        } else {
            "mithril"
        }
    }

    fn fault_surface(&mut self) -> Option<&mut dyn FaultSurface> {
        Some(self)
    }

    fn observe_tracker(&self) -> Option<mithril_obs::TrackerObservation> {
        Some(mithril_obs::Observe::observe(&self.table))
    }
}

/// The engine's injectable state is its counter table: soft errors land
/// on the 16-bit count CAM and the address CAM tags, and a scrub pass
/// checks/rebuilds the derived Stream-Summary order.
impl FaultSurface for MithrilScheme {
    fn fault_entries(&self) -> u64 {
        self.table.len() as u64
    }

    fn counter_bits(&self) -> u32 {
        16
    }

    fn flip_counter_bit(&mut self, entry: u64, bit: u32) -> bool {
        self.table.flip_counter_bit(entry as usize, bit)
    }

    fn force_counter_bit(&mut self, entry: u64, bit: u32, one: bool) -> bool {
        self.table.force_counter_bit(entry as usize, bit, one)
    }

    fn invalidate_entry(&mut self, entry: u64) -> bool {
        self.table.invalidate_entry(entry as usize)
    }

    fn check(&self) -> Result<(), String> {
        self.table.self_check()
    }

    fn repair(&mut self) {
        self.table.repair();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithril_dram::Ddr5Timing;

    fn config(flip: u64, rfm: u64) -> MithrilConfig {
        MithrilConfig::for_flip_threshold(flip, rfm, &Ddr5Timing::ddr5_4800()).unwrap()
    }

    #[test]
    fn greedy_selection_targets_hottest_row() {
        let mut m = MithrilScheme::new(config(6_250, 128));
        for _ in 0..50 {
            m.on_activate(100);
        }
        for _ in 0..10 {
            m.on_activate(200);
        }
        let out = m.on_rfm();
        assert_eq!(out.selected_aggressor, Some(100));
        assert_eq!(out.refreshed_victims, vec![99, 101]);
        // Next RFM picks the runner-up.
        let out = m.on_rfm();
        assert_eq!(out.selected_aggressor, Some(200));
    }

    #[test]
    fn edge_rows_have_clamped_victims() {
        let mut m = MithrilScheme::new(config(6_250, 128));
        m.on_activate(0);
        let out = m.on_rfm();
        assert_eq!(out.refreshed_victims, vec![1]);
        let last = m.config().rows_per_bank - 1;
        m.on_activate(last);
        let out = m.on_rfm();
        assert_eq!(out.refreshed_victims, vec![last - 1]);
    }

    #[test]
    fn adaptive_skips_flat_tables() {
        let t = Ddr5Timing::ddr5_4800();
        let cfg = config(6_250, 64).with_adaptive(100, &t).unwrap();
        let mut m = MithrilScheme::new(cfg);
        // A perfectly uniform sweep keeps spread ≈ 1: all RFMs skipped.
        for i in 0..10_000u64 {
            m.on_activate(i % (cfg.nentry as u64 * 4));
            if i % 64 == 63 {
                m.on_rfm();
            }
        }
        let s = m.stats();
        assert!(s.skips > 0, "uniform sweep should trigger skips");
        assert_eq!(s.refreshes + s.skips, s.rfms);
        assert!(s.skips as f64 / s.rfms as f64 > 0.9, "skips = {s:?}");
    }

    #[test]
    fn adaptive_still_fires_under_attack() {
        let t = Ddr5Timing::ddr5_4800();
        let cfg = config(6_250, 64).with_adaptive(100, &t).unwrap();
        let mut m = MithrilScheme::new(cfg);
        // A focused hammer builds spread past AdTH quickly.
        for i in 0..10_000u64 {
            m.on_activate(777);
            if i % 64 == 63 {
                m.on_rfm();
            }
        }
        let s = m.stats();
        // With AdTH=100 > RFMTH=64 the spread crosses AdTH every other
        // interval: half the RFMs refresh, which is exactly what Theorem 2
        // accounts for. The attack must never be *persistently* skipped.
        assert!(
            s.refreshes >= s.rfms / 3,
            "attack persistently skipped: {s:?}"
        );
        assert!(s.refreshes > 0);
    }

    #[test]
    fn mithril_plus_flag_mirrors_refresh_decision() {
        let t = Ddr5Timing::ddr5_4800();
        let cfg = config(6_250, 64).with_adaptive(50, &t).unwrap();
        let mut m = MithrilScheme::new(cfg);
        for i in 0..200u64 {
            m.on_activate(i); // uniform: spread stays tiny
        }
        assert!(!m.refresh_pending());
        for _ in 0..100 {
            m.on_activate(5); // attack: spread grows past AdTH
        }
        assert!(m.refresh_pending());
    }

    #[test]
    fn without_adaptive_always_pending() {
        let mut m = MithrilScheme::new(config(6_250, 128));
        assert!(!m.refresh_pending()); // empty table has nothing to refresh
        m.on_activate(1);
        assert!(m.refresh_pending());
        assert_eq!(m.name(), "mithril");
    }

    #[test]
    fn stats_account_every_rfm() {
        let t = Ddr5Timing::ddr5_4800();
        let cfg = config(3_125, 16).with_adaptive(200, &t).unwrap();
        let mut m = MithrilScheme::new(cfg);
        for i in 0..5_000u64 {
            m.on_activate(i % 97);
            if i % 16 == 15 {
                m.on_rfm();
            }
        }
        let s = m.stats();
        assert_eq!(s.rfms, 5_000 / 16);
        assert_eq!(s.refreshes + s.skips, s.rfms);
        assert_eq!(s.acts, 5_000);
    }

    #[test]
    fn blast_radius_three_refreshes_six_victims() {
        let t = Ddr5Timing::ddr5_4800();
        let cfg = MithrilConfig::solve(6_250, 64, 3, None, &t).unwrap();
        let mut m = MithrilScheme::new(cfg);
        for _ in 0..10 {
            m.on_activate(1000);
        }
        let out = m.on_rfm();
        assert_eq!(out.refreshed_victims.len(), 6);
        assert!(out.refreshed_victims.contains(&997));
        assert!(out.refreshed_victims.contains(&1003));
    }
}
