//! The protection bounds of Theorems 1 and 2.
//!
//! **Theorem 1** (paper Section IV-C, proved in the Appendix): within any
//! tREFW window, the increase in the *estimated* activation count of any
//! single row under Mithril's greedy-selection policy is bounded by
//!
//! ```text
//! M = Σ_{k=1}^{N} RFMTH/k  +  RFMTH · (W − 2) / N
//! W = ⌈ tREFW · (1 − tRFC/tREFI) / (tRC·RFMTH + tRFM) ⌉
//! ```
//!
//! where `N` is the number of Mithril table entries and `W` the maximum
//! number of RFM intervals per tREFW. Because estimates never under-count
//! (inequality (1)), choosing `N` and `RFMTH` such that `M < FlipTH/2`
//! deterministically prevents double-sided Row Hammer.
//!
//! **Theorem 2** (Appendix B) generalizes the bound to the adaptive-refresh
//! policy that skips a preventive refresh whenever `max − min < AdTH`:
//!
//! ```text
//! M' = Σ_{k=1}^{n*} RFMTH/k
//!      + ((W − n* + N − 2)·RFMTH + (N − n*)·AdTH) / N
//! n* = ⌈ N·RFMTH / (RFMTH + AdTH) ⌉
//! ```
//!
//! With `AdTH = 0`, `n* = N` and `M'` collapses to `M` (tested below).

use mithril_dram::Ddr5Timing;

/// Maximum number of RFM intervals in one tREFW window (the `W` term).
///
/// # Panics
///
/// Panics if `rfm_th` is zero.
///
/// # Example
///
/// ```
/// use mithril::bounds::rfm_intervals;
/// use mithril_dram::Ddr5Timing;
///
/// let t = Ddr5Timing::ddr5_4800();
/// // Twice the RFM threshold, roughly half the intervals.
/// assert!(rfm_intervals(128, &t) < rfm_intervals(64, &t));
/// ```
pub fn rfm_intervals(rfm_th: u64, timing: &Ddr5Timing) -> u64 {
    timing.rfm_intervals_per_trefw(rfm_th)
}

/// The Theorem-1 bound `M` on the per-tREFW estimated-count increase.
///
/// # Panics
///
/// Panics if `nentry` or `rfm_th` is zero.
///
/// # Example
///
/// ```
/// use mithril::bounds::theorem1_bound;
/// use mithril_dram::Ddr5Timing;
///
/// let t = Ddr5Timing::ddr5_4800();
/// // More table entries tighten the bound (until N approaches W):
/// assert!(theorem1_bound(512, 128, &t) < theorem1_bound(64, 128, &t));
/// ```
pub fn theorem1_bound(nentry: usize, rfm_th: u64, timing: &Ddr5Timing) -> f64 {
    assert!(nentry > 0, "nentry must be non-zero");
    assert!(rfm_th > 0, "rfm_th must be non-zero");
    let w = rfm_intervals(rfm_th, timing) as f64;
    let n = nentry as f64;
    let rfm = rfm_th as f64;
    rfm * harmonic(nentry) + rfm * (w - 2.0) / n
}

/// The Theorem-2 bound `M'` under adaptive refresh with threshold `ad_th`.
///
/// For `ad_th = 0` this equals [`theorem1_bound`].
///
/// # Panics
///
/// Panics if `nentry` or `rfm_th` is zero.
///
/// # Example
///
/// ```
/// use mithril::bounds::{theorem1_bound, theorem2_bound};
/// use mithril_dram::Ddr5Timing;
///
/// let t = Ddr5Timing::ddr5_4800();
/// // Skipping refreshes (AdTH > 0) can only loosen the bound:
/// assert!(theorem2_bound(256, 64, 200, &t) >= theorem1_bound(256, 64, &t));
/// ```
pub fn theorem2_bound(nentry: usize, rfm_th: u64, ad_th: u64, timing: &Ddr5Timing) -> f64 {
    assert!(nentry > 0, "nentry must be non-zero");
    assert!(rfm_th > 0, "rfm_th must be non-zero");
    let w = rfm_intervals(rfm_th, timing) as f64;
    let n = nentry as f64;
    let rfm = rfm_th as f64;
    let ad = ad_th as f64;
    // n* = ceil(N·RFMTH / (RFMTH + AdTH)), clamped to [1, N].
    let n_star = ((n * rfm) / (rfm + ad)).ceil().clamp(1.0, n);
    let n_star_usize = n_star as usize;
    rfm * harmonic(n_star_usize) + ((w - n_star + n - 2.0) * rfm + (n - n_star) * ad) / n
}

/// Smallest `Nentry` such that the Theorem-1 bound satisfies
/// `M < flip_th / aggregated_effect` — the configuration rule of
/// Section IV-D (with `aggregated_effect = 2` for the double-sided attack,
/// or larger under non-adjacent RH, Section V-C).
///
/// Returns `None` when no table size can protect the given `(FlipTH,
/// RFMTH)` pair — the bound is minimized near `N ≈ W − 2` and grows again
/// beyond it, so feasibility is decidable.
///
/// # Panics
///
/// Panics if `rfm_th` is zero or `aggregated_effect` is not positive.
///
/// # Example
///
/// ```
/// use mithril::bounds::min_entries;
/// use mithril_dram::Ddr5Timing;
///
/// let t = Ddr5Timing::ddr5_4800();
/// let n = min_entries(6_250, 128, 2.0, None, &t).expect("feasible");
/// // Paper Section VI-B: ~1 KB table at FlipTH 6.25K / RFMTH 128,
/// // i.e. a few hundred entries.
/// assert!((200..400).contains(&n), "n = {n}");
/// ```
pub fn min_entries(
    flip_th: u64,
    rfm_th: u64,
    aggregated_effect: f64,
    ad_th: Option<u64>,
    timing: &Ddr5Timing,
) -> Option<usize> {
    assert!(rfm_th > 0, "rfm_th must be non-zero");
    assert!(
        aggregated_effect > 0.0,
        "aggregated_effect must be positive"
    );
    let target = flip_th as f64 / aggregated_effect;
    let w = rfm_intervals(rfm_th, timing) as usize;
    // M(N) decreases while N < W − 2 and increases afterwards; scan the
    // decreasing region with an incremental harmonic sum.
    let limit = w.max(4);
    let rfm = rfm_th as f64;
    let mut harmonic_sum = 0.0;
    for n in 1..=limit {
        harmonic_sum += 1.0 / n as f64;
        let m = match ad_th {
            None | Some(0) => rfm * harmonic_sum + rfm * (w as f64 - 2.0) / n as f64,
            Some(ad) => theorem2_bound(n, rfm_th, ad, timing),
        };
        if m < target {
            return Some(n);
        }
    }
    None
}

/// The first `n` terms of the harmonic series, `Σ_{k=1}^{n} 1/k`.
pub fn harmonic(n: usize) -> f64 {
    // Exact summation is cheap for the table sizes involved (≤ ~100K).
    (1..=n).map(|k| 1.0 / k as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Ddr5Timing {
        Ddr5Timing::ddr5_4800()
    }

    #[test]
    fn harmonic_known_values() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn theorem1_matches_hand_computation() {
        // At RFMTH = 128: W = ceil(29.5836 ms / 6323.2 ns) = 4679.
        let timing = t();
        let w = rfm_intervals(128, &timing);
        assert_eq!(w, 4679);
        let m = theorem1_bound(256, 128, &timing);
        let expect = 128.0 * harmonic(256) + 128.0 * (4679.0 - 2.0) / 256.0;
        assert!((m - expect).abs() < 1e-9);
        // And that lands just under the FlipTH = 6.25K protection target,
        // matching the paper's ~1KB @ (6.25K, 128) configuration.
        assert!(m < 3125.0);
        assert!(theorem1_bound(230, 128, &timing) > 3125.0);
    }

    #[test]
    fn theorem2_reduces_to_theorem1_at_zero_adth() {
        let timing = t();
        for (n, rfm) in [(64, 32), (256, 128), (1024, 256)] {
            let m1 = theorem1_bound(n, rfm, &timing);
            let m2 = theorem2_bound(n, rfm, 0, &timing);
            assert!((m1 - m2).abs() < 1e-9, "n={n} rfm={rfm}: {m1} vs {m2}");
        }
    }

    #[test]
    fn theorem2_monotone_in_adth() {
        let timing = t();
        let mut prev = theorem2_bound(256, 64, 0, &timing);
        for ad in [50, 100, 150, 200, 400] {
            let m = theorem2_bound(256, 64, ad, &timing);
            assert!(m >= prev - 1e-9, "AdTH={ad}: {m} < {prev}");
            prev = m;
        }
    }

    #[test]
    fn min_entries_feasible_configs_match_paper_scale() {
        let timing = t();
        // Paper Fig. 6 / Table IV sanity: higher FlipTH → smaller tables.
        let n50k = min_entries(50_000, 256, 2.0, None, &timing).unwrap();
        let n6k = min_entries(6_250, 128, 2.0, None, &timing).unwrap();
        let n1_5k = min_entries(1_500, 32, 2.0, None, &timing).unwrap();
        assert!(n50k < n6k && n6k < n1_5k, "{n50k} {n6k} {n1_5k}");
        // Table IV: Mithril-256 @50K is 0.08 KB (~20 entries at ~29 bits).
        assert!((8..40).contains(&n50k), "n50k = {n50k}");
        // Table IV: Mithril-32 @1.5K is 4.64 KB (~1.3K entries).
        assert!((800..2200).contains(&n1_5k), "n1_5k = {n1_5k}");
    }

    #[test]
    fn min_entries_detects_infeasibility() {
        let timing = t();
        // RFMTH = 1024 cannot protect FlipTH = 1.5K no matter the table:
        // each interval admits 1024 ACTs > FlipTH/2 already.
        assert_eq!(min_entries(1_500, 1024, 2.0, None, &timing), None);
    }

    #[test]
    fn adaptive_needs_more_entries() {
        let timing = t();
        // Paper Fig. 7: additional Nentry up to ~12% at low FlipTH.
        let base = min_entries(3_125, 16, 2.0, None, &timing).unwrap();
        let adaptive = min_entries(3_125, 16, 2.0, Some(200), &timing).unwrap();
        assert!(adaptive >= base);
        let increase = (adaptive - base) as f64 / base as f64;
        assert!(increase < 0.35, "unreasonable Nentry increase {increase}");
    }

    #[test]
    fn non_adjacent_effect_needs_more_entries() {
        let timing = t();
        // Section V-C: range-3 aggregated effect 3.5 tightens the target.
        let double = min_entries(6_250, 64, 2.0, None, &timing).unwrap();
        let wide = min_entries(6_250, 64, 3.5, None, &timing).unwrap();
        assert!(wide > double);
    }

    #[test]
    fn bound_is_conservative_vs_trivial_lower_limit() {
        // M can never be below RFMTH (the first harmonic term alone).
        let timing = t();
        for rfm in [16u64, 64, 256] {
            assert!(theorem1_bound(1000, rfm, &timing) >= rfm as f64);
        }
    }

    #[test]
    #[should_panic(expected = "nentry")]
    fn zero_nentry_panics() {
        let _ = theorem1_bound(0, 64, &t());
    }
}
