//! Mithril configuration: solving `(Nentry, RFMTH)` for a target FlipTH.
//!
//! Section IV-D of the paper: for every target FlipTH there is a family of
//! feasible `(Nentry, RFMTH)` pairs satisfying `M < FlipTH/2` (Fig. 6) — a
//! DRAM vendor picks the trade-off between table area (`Nentry`) and
//! performance/energy (`RFMTH`). The solver below reproduces that family.

use crate::area;
use crate::bounds;
use mithril_dram::Ddr5Timing;

/// Why a requested Mithril configuration cannot provide protection.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// No table size satisfies `M < FlipTH/effect` at this RFM threshold.
    Infeasible {
        /// The requested Row Hammer threshold.
        flip_th: u64,
        /// The requested RFM threshold.
        rfm_th: u64,
    },
    /// A parameter was zero or out of its domain.
    InvalidParameter(&'static str),
    /// The bound `M` does not fit the hardware counter width.
    CounterOverflow {
        /// Bits required by the bound.
        required_bits: u32,
        /// Bits available in the deployed counter CAM.
        available_bits: u32,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Infeasible { flip_th, rfm_th } => write!(
                f,
                "no table size can protect FlipTH {flip_th} at RFMTH {rfm_th}; lower RFMTH"
            ),
            ConfigError::InvalidParameter(p) => write!(f, "invalid parameter: {p}"),
            ConfigError::CounterOverflow {
                required_bits,
                available_bits,
            } => write!(
                f,
                "bound needs {required_bits}-bit counters but only {available_bits} provisioned"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A validated Mithril deployment configuration for one DRAM bank.
///
/// # Example
///
/// ```
/// use mithril::MithrilConfig;
/// use mithril_dram::Ddr5Timing;
///
/// let t = Ddr5Timing::ddr5_4800();
/// let c = MithrilConfig::for_flip_threshold(12_500, 256, &t)?;
/// assert!(c.bound(&t) < 12_500.0 / 2.0);
/// // Table IV reports 0.41 KB for Mithril-256 at FlipTH 12.5K.
/// assert!(c.table_kib() < 1.0);
/// # Ok::<(), mithril::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MithrilConfig {
    /// Number of table entries (`Nentry`).
    pub nentry: usize,
    /// RFM threshold the memory controller is programmed with.
    pub rfm_th: u64,
    /// Adaptive-refresh threshold (`AdTH`), `None` to refresh on every RFM.
    pub adaptive_th: Option<u64>,
    /// The Row Hammer threshold being protected against.
    pub flip_th: u64,
    /// Blast radius: 1 = adjacent rows only (aggregated effect 2).
    pub blast_radius: u64,
    /// Rows per bank (for the address-CAM width and victim clamping).
    pub rows_per_bank: u64,
}

impl MithrilConfig {
    /// Solves the smallest table protecting `flip_th` at `rfm_th`
    /// (double-sided attack, blast radius 1, no adaptive refresh).
    ///
    /// # Errors
    ///
    /// [`ConfigError::Infeasible`] if no table size suffices, and
    /// [`ConfigError::InvalidParameter`] for zero parameters.
    pub fn for_flip_threshold(
        flip_th: u64,
        rfm_th: u64,
        timing: &Ddr5Timing,
    ) -> Result<Self, ConfigError> {
        Self::solve(flip_th, rfm_th, 1, None, timing)
    }

    /// Full solver: picks the minimal `Nentry` for the given blast radius
    /// and optional adaptive threshold.
    ///
    /// The aggregated RH effect follows Section V-C: radius 1 → 2 (two
    /// adjacent aggressors), radius ≥ 2 → 3.5 with 2×radius victim rows.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Infeasible`] if no table size satisfies the bound;
    /// [`ConfigError::InvalidParameter`] for zero `flip_th`, `rfm_th` or
    /// `blast_radius`.
    pub fn solve(
        flip_th: u64,
        rfm_th: u64,
        blast_radius: u64,
        adaptive_th: Option<u64>,
        timing: &Ddr5Timing,
    ) -> Result<Self, ConfigError> {
        if flip_th == 0 {
            return Err(ConfigError::InvalidParameter("flip_th"));
        }
        if rfm_th == 0 {
            return Err(ConfigError::InvalidParameter("rfm_th"));
        }
        if blast_radius == 0 {
            return Err(ConfigError::InvalidParameter("blast_radius"));
        }
        let effect = Self::aggregated_effect(blast_radius);
        let nentry = bounds::min_entries(flip_th, rfm_th, effect, adaptive_th, timing)
            .ok_or(ConfigError::Infeasible { flip_th, rfm_th })?;
        Ok(Self {
            nentry,
            rfm_th,
            adaptive_th,
            flip_th,
            blast_radius,
            rows_per_bank: 65_536,
        })
    }

    /// The aggregated Row Hammer effect for a blast radius (Section V-C).
    pub fn aggregated_effect(blast_radius: u64) -> f64 {
        if blast_radius <= 1 {
            2.0
        } else {
            3.5
        }
    }

    /// Returns a copy with the adaptive-refresh threshold enabled, re-solving
    /// `Nentry` so the Theorem-2 bound still holds.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Infeasible`] if the adjusted bound cannot be met.
    pub fn with_adaptive(self, ad_th: u64, timing: &Ddr5Timing) -> Result<Self, ConfigError> {
        let mut solved = Self::solve(
            self.flip_th,
            self.rfm_th,
            self.blast_radius,
            Some(ad_th),
            timing,
        )?;
        solved.rows_per_bank = self.rows_per_bank;
        Ok(solved)
    }

    /// Returns a copy with a different bank row count.
    pub fn with_rows_per_bank(mut self, rows: u64) -> Self {
        self.rows_per_bank = rows;
        self
    }

    /// The active protection bound: Theorem 2 when adaptive refresh is on,
    /// Theorem 1 otherwise.
    pub fn bound(&self, timing: &Ddr5Timing) -> f64 {
        match self.adaptive_th {
            Some(ad) if ad > 0 => bounds::theorem2_bound(self.nentry, self.rfm_th, ad, timing),
            _ => bounds::theorem1_bound(self.nentry, self.rfm_th, timing),
        }
    }

    /// Checks that the bound actually protects `flip_th` and fits 16-bit
    /// wrapping counters.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Infeasible`] if `M >= FlipTH/effect`;
    /// [`ConfigError::CounterOverflow`] if the bound exceeds the counter
    /// range.
    pub fn validate(&self, timing: &Ddr5Timing) -> Result<(), ConfigError> {
        let m = self.bound(timing);
        if m >= self.flip_th as f64 / Self::aggregated_effect(self.blast_radius) {
            return Err(ConfigError::Infeasible {
                flip_th: self.flip_th,
                rfm_th: self.rfm_th,
            });
        }
        let required = area::counter_bits(m, self.rfm_th);
        if required > 16 {
            return Err(ConfigError::CounterOverflow {
                required_bits: required,
                available_bits: 16,
            });
        }
        Ok(())
    }

    /// Counter-CAM width in bits (Section VI-E: bounded by `M`, not by the
    /// tREFW ACT maximum).
    pub fn counter_bits(&self, timing: &Ddr5Timing) -> u32 {
        area::counter_bits(self.bound(timing), self.rfm_th)
    }

    /// Address-CAM width in bits.
    pub fn address_bits(&self) -> u32 {
        area::address_bits(self.rows_per_bank)
    }

    /// Per-bank table size in KiB, using the solved counter width for the
    /// default DDR5-4800 timing.
    pub fn table_kib(&self) -> f64 {
        let timing = Ddr5Timing::ddr5_4800();
        let bits = self.address_bits() + self.counter_bits(&timing);
        area::table_kib(self.nentry, bits)
    }

    /// Per-bank table area in mm².
    pub fn table_mm2(&self) -> f64 {
        let timing = Ddr5Timing::ddr5_4800();
        let bits = self.address_bits() + self.counter_bits(&timing);
        area::table_mm2(self.nentry, bits)
    }

    /// Number of victim rows refreshed per preventive refresh
    /// (2 for radius 1; 2×radius — e.g. 6 within range 3 — otherwise).
    pub fn victims_per_refresh(&self) -> u64 {
        2 * self.blast_radius.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Ddr5Timing {
        Ddr5Timing::ddr5_4800()
    }

    #[test]
    fn paper_configurations_are_feasible() {
        // The (FlipTH, RFMTH) pairs evaluated in Section VI.
        let timing = t();
        for (flip, rfm) in [
            (50_000u64, 256u64),
            (25_000, 256),
            (12_500, 256),
            (12_500, 128),
            (6_250, 128),
            (6_250, 64),
            (3_125, 64),
            (3_125, 32),
            (3_125, 16),
            (1_500, 32),
        ] {
            let c = MithrilConfig::for_flip_threshold(flip, rfm, &timing)
                .unwrap_or_else(|e| panic!("({flip},{rfm}): {e}"));
            c.validate(&timing).unwrap();
        }
    }

    #[test]
    fn table_sizes_match_table_iv_scale() {
        let timing = t();
        // Mithril-128 @ 6.25K: paper reports 0.84 KB.
        let c = MithrilConfig::for_flip_threshold(6_250, 128, &timing).unwrap();
        let kib = c.table_kib();
        assert!((0.5..1.5).contains(&kib), "kib = {kib}");
        // Mithril-32 @ 1.5K: paper reports 4.64 KB.
        let c = MithrilConfig::for_flip_threshold(1_500, 32, &timing).unwrap();
        let kib = c.table_kib();
        assert!((2.5..7.0).contains(&kib), "kib = {kib}");
    }

    #[test]
    fn infeasible_combination_errors() {
        let timing = t();
        let err = MithrilConfig::for_flip_threshold(1_500, 1024, &timing).unwrap_err();
        assert!(matches!(err, ConfigError::Infeasible { .. }));
        assert!(err.to_string().contains("1024"));
    }

    #[test]
    fn zero_parameters_rejected() {
        let timing = t();
        assert!(matches!(
            MithrilConfig::for_flip_threshold(0, 64, &timing),
            Err(ConfigError::InvalidParameter("flip_th"))
        ));
        assert!(matches!(
            MithrilConfig::for_flip_threshold(6_250, 0, &timing),
            Err(ConfigError::InvalidParameter("rfm_th"))
        ));
        assert!(matches!(
            MithrilConfig::solve(6_250, 64, 0, None, &timing),
            Err(ConfigError::InvalidParameter("blast_radius"))
        ));
    }

    #[test]
    fn adaptive_config_grows_table_modestly() {
        let timing = t();
        let base = MithrilConfig::for_flip_threshold(6_250, 64, &timing).unwrap();
        let adaptive = base.with_adaptive(200, &timing).unwrap();
        assert!(adaptive.nentry >= base.nentry);
        // Fig. 7: the increase stays small (≤ ~12% in the paper; we allow
        // some slack for our exact integer solver).
        let ratio = adaptive.nentry as f64 / base.nentry as f64;
        assert!(ratio < 1.4, "ratio = {ratio}");
        assert_eq!(adaptive.adaptive_th, Some(200));
    }

    #[test]
    fn wider_blast_radius_refreshes_more_victims() {
        let timing = t();
        let c = MithrilConfig::solve(6_250, 64, 3, None, &timing).unwrap();
        assert_eq!(c.victims_per_refresh(), 6);
        assert_eq!(MithrilConfig::aggregated_effect(3), 3.5);
    }

    #[test]
    fn counter_width_is_m_bounded_not_budget_bounded() {
        let timing = t();
        let c = MithrilConfig::for_flip_threshold(6_250, 128, &timing).unwrap();
        // Graphene-style counters must count to the tREFW ACT budget
        // (~620K → 20 bits); Mithril's stay at M + RFMTH (< 13 bits here).
        assert!(c.counter_bits(&timing) <= 13);
        assert!(area::bits_for(timing.act_budget_per_trefw()) >= 20);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ConfigError::CounterOverflow {
            required_bits: 17,
            available_bits: 16,
        };
        assert!(e.to_string().contains("17"));
        let e = ConfigError::InvalidParameter("rfm_th");
        assert!(e.to_string().contains("rfm_th"));
    }
}
