//! CAM bit-width and area model (paper Section VI-E, Table IV).
//!
//! A Mithril table entry holds a row address (address CAM) and an activation
//! counter (count CAM). Two Mithril-specific savings apply:
//!
//! * **No table reset** — the wrapping-counter scheme (Section IV-E) avoids
//!   Graphene-style periodic resets, which would otherwise force the design
//!   to protect `FlipTH/4` instead of `FlipTH/2` (a two-fold `Nentry`
//!   saving, accounted for in the baselines, not here).
//! * **Narrow counters** — the counter only needs to express the maximum
//!   in-table difference, which Theorem 1 bounds by `M (< FlipTH/2)` plus
//!   one RFM interval, instead of the maximum ACT count in tREFW.
//!
//! The mm² estimate applies a constant derived from the paper's synthesis
//! result (0.024 mm² for the ~7K-bit table at FlipTH = 6.25K, RFMTH = 128,
//! after TSMC 40 nm → DRAM 20 nm scaling and the conservative 10× DRAM
//! process penalty): ≈ 3.4 µm² per CAM bit.

/// Area constant: µm² per CAM bit after DRAM-process derating.
pub const UM2_PER_CAM_BIT: f64 = 3.4;

/// Bits required to express values in `0..=max_value`.
///
/// # Example
///
/// ```
/// use mithril::area::bits_for;
///
/// assert_eq!(bits_for(1), 1);
/// assert_eq!(bits_for(255), 8);
/// assert_eq!(bits_for(256), 9);
/// ```
pub fn bits_for(max_value: u64) -> u32 {
    u64::BITS - max_value.max(1).leading_zeros()
}

/// Counter CAM width for a Mithril table with Theorem-1 bound `m_bound`
/// and the given RFM threshold: the in-table difference never exceeds
/// `M + RFMTH` (one interval's worth of slack above the proven bound).
pub fn counter_bits(m_bound: f64, rfm_th: u64) -> u32 {
    bits_for(m_bound.ceil() as u64 + rfm_th)
}

/// Address CAM width for a bank of `rows_per_bank` rows.
pub fn address_bits(rows_per_bank: u64) -> u32 {
    bits_for(rows_per_bank.saturating_sub(1))
}

/// Table size in KiB for `nentry` entries of `bits_per_entry` bits.
pub fn table_kib(nentry: usize, bits_per_entry: u32) -> f64 {
    nentry as f64 * bits_per_entry as f64 / 8.0 / 1024.0
}

/// Table area in mm² for `nentry` entries of `bits_per_entry` bits.
pub fn table_mm2(nentry: usize, bits_per_entry: u32) -> f64 {
    nentry as f64 * bits_per_entry as f64 * UM2_PER_CAM_BIT / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_edge_cases() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn address_bits_for_ddr5_bank() {
        assert_eq!(address_bits(65_536), 16);
        assert_eq!(address_bits(131_072), 17);
    }

    #[test]
    fn counter_bits_for_paper_configs() {
        // FlipTH = 6.25K (M < 3125) at RFMTH = 128 needs 12 bits:
        assert_eq!(counter_bits(3122.0, 128), 12);
        // FlipTH = 50K (M < 25000) at RFMTH = 256: 15 bits.
        assert_eq!(counter_bits(24_900.0, 256), 15);
    }

    #[test]
    fn paper_table_iv_mithril_128_at_6_25k() {
        // ~256 entries × (16 addr + 12 counter) bits ≈ 0.88 KiB — the
        // paper reports 0.84 KB.
        let kib = table_kib(256, 16 + 12);
        assert!((0.7..1.1).contains(&kib), "kib = {kib}");
    }

    #[test]
    fn paper_synthesis_area_cross_check() {
        // 0.024 mm² at FlipTH = 6.25K (Section VI-E).
        let mm2 = table_mm2(256, 28);
        assert!((0.018..0.032).contains(&mm2), "mm2 = {mm2}");
    }

    #[test]
    fn kib_scales_linearly() {
        assert!((table_kib(1024, 32) - 4.0).abs() < 1e-12);
        assert!((table_kib(2048, 32) - 8.0).abs() < 1e-12);
    }
}
