//! The Mithril table: address CAM + count CAM with `MaxPtr`/`MinPtr`.
//!
//! Hardware-faithful model of the per-bank structure of paper Fig. 4. The
//! counter CAM uses **wrapping counters** (Section IV-E): Mithril never
//! needs absolute counts, only the *relative difference* to the minimum
//! entry, and the greedy decrement-to-min policy keeps that difference
//! bounded by `M`. Provisioning `⌈log2(max diff)⌉` bits therefore suffices —
//! no periodic table reset (Graphene) or duplicated table (BlockHammer) is
//! needed, which is where Mithril's two-fold area advantage comes from.
//!
//! The table is generic over the [`Counter`] width so the wrapping `u16`
//! hardware table can be checked against an unbounded `u64` reference: for
//! any stream whose spread stays under the counter range, the two behave
//! *identically* (see the property tests in `tests/wrapping.rs`).

use mithril_dram::RowId;
use std::collections::HashMap;

/// A fixed-width, wrapping hardware counter.
///
/// Ordering between counters is defined *relative to the table minimum*
/// via [`Counter::diff`], which is exact as long as the true difference
/// fits in the counter range — the invariant Theorem 1 guarantees.
pub trait Counter: Copy + Eq + std::fmt::Debug {
    /// Counter width in bits.
    const BITS: u32;

    /// The zero counter.
    fn zero() -> Self;

    /// Wrapping increment by one.
    fn incremented(self) -> Self;

    /// `self − other` modulo the counter range.
    fn diff(self, other: Self) -> u64;
}

impl Counter for u16 {
    const BITS: u32 = 16;

    fn zero() -> Self {
        0
    }

    fn incremented(self) -> Self {
        self.wrapping_add(1)
    }

    fn diff(self, other: Self) -> u64 {
        self.wrapping_sub(other) as u64
    }
}

impl Counter for u32 {
    const BITS: u32 = 32;

    fn zero() -> Self {
        0
    }

    fn incremented(self) -> Self {
        self.wrapping_add(1)
    }

    fn diff(self, other: Self) -> u64 {
        self.wrapping_sub(other) as u64
    }
}

impl Counter for u64 {
    const BITS: u32 = 64;

    fn zero() -> Self {
        0
    }

    fn incremented(self) -> Self {
        self.wrapping_add(1)
    }

    fn diff(self, other: Self) -> u64 {
        self.wrapping_sub(other)
    }
}

/// The row selected by a greedy RFM step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// The selected (hottest) aggressor row.
    pub row: RowId,
    /// Its estimated count above the table minimum at selection time.
    pub count_above_min: u64,
}

/// The per-bank Mithril table (paper Fig. 4/5).
///
/// `C` is the hardware counter type; the deployed configuration is `u16`
/// (the default), and `u64` serves as the unbounded reference model.
///
/// # Example
///
/// ```
/// use mithril::MithrilTable;
///
/// let mut t: MithrilTable = MithrilTable::new(4);
/// for _ in 0..9 {
///     t.on_activate(0xA0);
/// }
/// t.on_activate(0xB0);
/// // Greedy selection returns the hottest row and resets it to min.
/// let sel = t.on_rfm().unwrap();
/// assert_eq!(sel.row, 0xA0);
/// assert_eq!(t.spread(), 1); // 0xB0 is now the max, one above min
/// ```
#[derive(Debug, Clone)]
pub struct MithrilTable<C: Counter = u16> {
    addrs: Vec<RowId>,
    counts: Vec<C>,
    index: HashMap<RowId, usize>,
    /// Slot of the current minimum (MinPtr).
    min_slot: usize,
    /// Slot of the current maximum (MaxPtr).
    max_slot: usize,
    /// Number of occupied slots whose count equals the minimum.
    at_min: usize,
    /// Queue of candidate minimum slots (lazy; validated on pop).
    min_candidates: Vec<usize>,
    capacity: usize,
}

impl<C: Counter> MithrilTable<C> {
    /// Creates an empty table with `capacity` entries (`Nentry`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        Self {
            addrs: Vec::with_capacity(capacity),
            counts: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            min_slot: 0,
            max_slot: 0,
            at_min: 0,
            min_candidates: Vec::new(),
            capacity,
        }
    }

    /// `Nentry`, the number of table entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True if no entries are occupied.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The count difference between `MaxPtr` and `MinPtr` — the adaptive
    /// refresh proxy (paper Section V-A). Zero while the table is not full
    /// does not arise in practice because a non-full table has min 0.
    pub fn spread(&self) -> u64 {
        if self.addrs.is_empty() {
            return 0;
        }
        let min = if self.len() < self.capacity { C::zero() } else { self.counts[self.min_slot] };
        self.counts[self.max_slot].diff(min)
    }

    /// Estimated count of `row` above the table minimum (`0` for off-table
    /// rows: their estimate *is* the minimum).
    pub fn estimate_above_min(&self, row: RowId) -> u64 {
        let min = if self.len() < self.capacity { C::zero() } else { self.counts[self.min_slot] };
        match self.index.get(&row) {
            Some(&slot) => self.counts[slot].diff(min),
            None => 0,
        }
    }

    /// True if `row` currently occupies a table entry.
    pub fn contains(&self, row: RowId) -> bool {
        self.index.contains_key(&row)
    }

    /// Processes one ACT command (paper Fig. 5 steps ① and ②).
    pub fn on_activate(&mut self, row: RowId) {
        if let Some(&slot) = self.index.get(&row) {
            self.increment(slot);
            return;
        }
        if self.addrs.len() < self.capacity {
            let slot = self.addrs.len();
            self.addrs.push(row);
            self.counts.push(C::zero().incremented());
            self.index.insert(row, slot);
            if self.counts[slot].diff(C::zero()) > self.counts[self.max_slot].diff(C::zero())
                || self.addrs.len() == 1
            {
                self.max_slot = slot;
            }
            if self.addrs.len() == self.capacity {
                self.rescan_min();
            }
            return;
        }
        // Miss on a full table: replace the MinPtr entry (Fig. 3).
        let slot = self.pop_min_slot();
        let old = self.addrs[slot];
        self.index.remove(&old);
        self.addrs[slot] = row;
        self.index.insert(row, slot);
        self.increment(slot);
    }

    /// Processes one RFM command: greedy selection of the `MaxPtr` entry and
    /// decrement of its counter to the table minimum (Fig. 5 step ③).
    /// Returns `None` only if the table is empty.
    pub fn on_rfm(&mut self) -> Option<Selection> {
        if self.addrs.is_empty() {
            return None;
        }
        let slot = self.max_slot;
        let row = self.addrs[slot];
        let min =
            if self.len() < self.capacity { C::zero() } else { self.counts[self.min_slot] };
        let above = self.counts[slot].diff(min);
        if above > 0 && self.len() == self.capacity {
            self.counts[slot] = min;
            self.at_min += 1;
            self.min_candidates.push(slot);
        } else if above > 0 {
            // Table not yet full: "minimum" is the implicit zero of the
            // free entries; the entry keeps count 0.
            self.counts[slot] = C::zero();
        }
        // The new MaxPtr must be found within the tRFM window.
        self.rescan_max();
        Some(Selection { row, count_above_min: above })
    }

    fn increment(&mut self, slot: usize) {
        let full = self.len() == self.capacity;
        let min_val = if full { self.counts[self.min_slot] } else { C::zero() };
        let was_min = full && self.counts[slot] == min_val;
        self.counts[slot] = self.counts[slot].incremented();
        // Max update: compare relative to the (pre-increment) minimum.
        if self.counts[slot].diff(min_val) > self.counts[self.max_slot].diff(min_val) {
            self.max_slot = slot;
        }
        if was_min {
            self.at_min -= 1;
            if self.at_min == 0 {
                self.rescan_min();
            } else if self.min_slot == slot {
                // MinPtr must keep pointing at a true minimum.
                self.min_slot = self
                    .counts
                    .iter()
                    .position(|&c| c == min_val)
                    .expect("at_min > 0 entries still hold the minimum");
            }
        }
    }

    /// Pops a slot that currently holds the minimum count.
    fn pop_min_slot(&mut self) -> usize {
        debug_assert_eq!(self.len(), self.capacity);
        while let Some(&slot) = self.min_candidates.last() {
            if self.counts[slot] == self.counts[self.min_slot] {
                self.min_candidates.pop();
                return slot;
            }
            self.min_candidates.pop();
        }
        self.min_slot
    }

    fn rescan_min(&mut self) {
        debug_assert_eq!(self.len(), self.capacity);
        // Relative order is defined against the max: the minimum is the
        // entry with the largest distance below the max (first-wins rule).
        let max = self.counts[self.max_slot];
        let mut best = 0usize;
        let mut best_diff = max.diff(self.counts[0]);
        for (i, &c) in self.counts.iter().enumerate().skip(1) {
            let d = max.diff(c);
            if d > best_diff {
                best = i;
                best_diff = d;
            }
        }
        self.min_slot = best;
        let min = self.counts[best];
        self.at_min = self.counts.iter().filter(|&&c| c == min).count();
        self.min_candidates.clear();
        self.min_candidates
            .extend(self.counts.iter().enumerate().filter(|(_, &c)| c == min).map(|(i, _)| i));
        self.min_candidates.reverse(); // pop() yields the first slot first
    }

    fn rescan_max(&mut self) {
        if self.addrs.is_empty() {
            return;
        }
        let min =
            if self.len() < self.capacity { C::zero() } else { self.counts[self.min_slot] };
        let mut best = 0usize;
        let mut best_diff = self.counts[0].diff(min);
        for (i, &c) in self.counts.iter().enumerate().skip(1) {
            let d = c.diff(min);
            if d > best_diff {
                best = i;
                best_diff = d;
            }
        }
        self.max_slot = best;
    }

    /// Iterates over `(row, count_above_min)` pairs.
    pub fn iter_relative(&self) -> impl Iterator<Item = (RowId, u64)> + '_ {
        let min = if self.len() < self.capacity { C::zero() } else { self.counts[self.min_slot] };
        self.addrs.iter().zip(self.counts.iter()).map(move |(&a, &c)| (a, c.diff(min)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure5_with_wrapping_counters() {
        let mut t: MithrilTable<u16> = MithrilTable::new(4);
        for _ in 0..9 {
            t.on_activate(0xA0);
        }
        for _ in 0..9 {
            t.on_activate(0xB0);
        }
        for _ in 0..3 {
            t.on_activate(0xC0);
        }
        t.on_activate(0xD0);
        // ① ACT 0xA0 → 10.
        t.on_activate(0xA0);
        assert_eq!(t.estimate_above_min(0xA0), 9); // 10 above min 1
        // ② ACT 0xE0 → replaces 0xD0 (min 1) and becomes 2.
        t.on_activate(0xE0);
        assert!(!t.contains(0xD0));
        assert!(t.contains(0xE0));
        // ③ RFM → greedy selection of 0xA0; reset to min (2).
        let sel = t.on_rfm().unwrap();
        assert_eq!(sel.row, 0xA0);
        assert_eq!(sel.count_above_min, 8); // 10 − min 2
        assert_eq!(t.estimate_above_min(0xA0), 0);
        // New max is 0xB0 at 9 (7 above min).
        assert_eq!(t.on_rfm().unwrap().row, 0xB0);
    }

    #[test]
    fn wrapping_survives_counter_overflow() {
        // Tiny 2-entry table hammered way past the u16 range: relative
        // behaviour must stay exact because spread stays small.
        let mut t: MithrilTable<u16> = MithrilTable::new(2);
        for i in 0..200_000u64 {
            t.on_activate(i % 2);
            if i % 64 == 63 {
                t.on_rfm();
            }
            assert!(t.spread() <= 64 + 2, "spread exploded at {i}");
        }
    }

    #[test]
    fn spread_zero_on_empty_and_balanced() {
        let mut t: MithrilTable<u16> = MithrilTable::new(2);
        assert_eq!(t.spread(), 0);
        t.on_activate(1);
        t.on_activate(2);
        // Both at count 1 → spread = 1 above implicit-zero min? No: table
        // is now full, min = 1, max = 1 → spread 0.
        assert_eq!(t.spread(), 0);
    }

    #[test]
    fn rfm_on_empty_table_is_none() {
        let mut t: MithrilTable<u16> = MithrilTable::new(2);
        assert_eq!(t.on_rfm(), None);
    }

    #[test]
    fn rfm_selects_first_max_on_ties() {
        let mut t: MithrilTable<u16> = MithrilTable::new(4);
        t.on_activate(10);
        t.on_activate(20);
        t.on_activate(10);
        t.on_activate(20);
        // Both at 2; 10 was incremented to 2 first and stays MaxPtr.
        assert_eq!(t.on_rfm().unwrap().row, 10);
    }

    #[test]
    fn eviction_targets_first_min_slot() {
        let mut t: MithrilTable<u16> = MithrilTable::new(3);
        t.on_activate(1);
        t.on_activate(1);
        t.on_activate(2);
        t.on_activate(3);
        // 2 and 3 both at min=1; a miss replaces the earlier slot (2).
        t.on_activate(4);
        assert!(!t.contains(2));
        assert!(t.contains(3));
        assert!(t.contains(4));
    }

    #[test]
    fn estimates_relative_to_min_are_consistent() {
        let mut t: MithrilTable<u32> = MithrilTable::new(8);
        for i in 0..1000u64 {
            t.on_activate(i % 12);
        }
        let spread = t.spread();
        for (_, above) in t.iter_relative() {
            assert!(above <= spread);
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _: MithrilTable<u16> = MithrilTable::new(0);
    }
}
