//! The Mithril table: address CAM + count CAM with `MaxPtr`/`MinPtr`.
//!
//! Hardware-faithful model of the per-bank structure of paper Fig. 4. The
//! counter CAM uses **wrapping counters** (Section IV-E): Mithril never
//! needs absolute counts, only the *relative difference* to the minimum
//! entry, and the greedy decrement-to-min policy keeps that difference
//! bounded by `M`. Provisioning `⌈log2(max diff)⌉` bits therefore suffices —
//! no periodic table reset (Graphene) or duplicated table (BlockHammer) is
//! needed, which is where Mithril's two-fold area advantage comes from.
//!
//! # Software model: the Stream-Summary bucket structure
//!
//! Hardware resolves `MaxPtr`/`MinPtr` with parallel comparators in the
//! count CAM; a software model has no such luxury, and per-ACT linear
//! rescans made the table update O(Nentry) — the hot loop of the entire
//! simulator. [`MithrilTable`] therefore keeps its entries in the classic
//! *Stream-Summary* layout (Metwally et al., "Efficient computation of
//! frequent and top-k elements in data streams"): a doubly-linked list of
//! **buckets**, one per distinct counter value, each holding the
//! doubly-linked list of entries at that value. Increments move an entry to
//! the neighbouring bucket in O(1); `MinPtr` is the first entry of the head
//! bucket and `MaxPtr` the first entry of the tail bucket, both O(1) reads.
//! Buckets are ordered by *difference from the table minimum*, not by
//! absolute counter value — the order is maintained purely structurally
//! (entries only ever move by +1 or drop to the minimum), so it stays
//! correct across `u16` wrap-arounds as long as the spread fits the counter
//! range, exactly the invariant Theorem 1 guarantees. See
//! `ARCHITECTURE.md` for the amortized-cost argument.
//!
//! [`NaiveTable`] retains the obvious O(Nentry) linear-scan implementation
//! (with unbounded `u64` counters) as the differential-testing reference:
//! `tests/differential.rs` proves both make identical decisions on random
//! and adversarial streams.
//!
//! The table is generic over the [`Counter`] width so the wrapping `u16`
//! hardware table can be checked against an unbounded `u64` reference: for
//! any stream whose spread stays under the counter range, the two behave
//! *identically* (see the property tests in `tests/wrapping.rs`).

use mithril_dram::RowId;
use mithril_fasthash::{fast_map_with_capacity, FastHashMap};
use mithril_streamsummary::BucketList;

/// A fixed-width, wrapping hardware counter.
///
/// Ordering between counters is defined *relative to the table minimum*
/// via [`Counter::diff`], which is exact as long as the true difference
/// fits in the counter range — the invariant Theorem 1 guarantees.
pub trait Counter: Copy + Eq + std::fmt::Debug {
    /// Counter width in bits.
    const BITS: u32;

    /// The zero counter.
    fn zero() -> Self;

    /// Wrapping increment by one.
    fn incremented(self) -> Self;

    /// `self − other` modulo the counter range.
    fn diff(self, other: Self) -> u64;

    /// The stored bits, widened to `u64`.
    fn raw(self) -> u64;

    /// A counter from raw bits (truncated to [`Counter::BITS`]).
    fn from_raw(raw: u64) -> Self;

    /// The counter with bit `bit` flipped (fault injection).
    fn flip_bit(self, bit: u32) -> Self {
        debug_assert!(bit < Self::BITS);
        Self::from_raw(self.raw() ^ (1u64 << bit))
    }

    /// The counter with bit `bit` forced to `one` (stuck-at fault).
    fn with_bit(self, bit: u32, one: bool) -> Self {
        debug_assert!(bit < Self::BITS);
        let mask = 1u64 << bit;
        Self::from_raw(if one {
            self.raw() | mask
        } else {
            self.raw() & !mask
        })
    }

    /// Recovers the table minimum from a bag of possibly-corrupted
    /// counters (fault repair). Wrapping counters carry no absolute
    /// order, so the minimum is taken as the value just past the largest
    /// gap on the `2^BITS` circle — the basis that minimizes the spread
    /// the rebuilt order has to explain. Ties break toward the first gap
    /// in ascending raw order (deterministic). Unbounded reference
    /// counters override this with the plain minimum.
    fn recover_floor(values: &[Self]) -> Self {
        let mut raws: Vec<u64> = values.iter().map(|v| v.raw()).collect();
        raws.sort_unstable();
        raws.dedup();
        match raws.len() {
            0 => Self::zero(),
            1 => Self::from_raw(raws[0]),
            n => {
                let mut best_gap = 0u64;
                let mut floor = raws[0];
                for i in 0..n {
                    let cur = raws[i];
                    let next = raws[(i + 1) % n];
                    let gap = Self::from_raw(next).diff(Self::from_raw(cur));
                    if gap > best_gap {
                        best_gap = gap;
                        floor = next;
                    }
                }
                Self::from_raw(floor)
            }
        }
    }
}

impl Counter for u16 {
    const BITS: u32 = 16;

    fn zero() -> Self {
        0
    }

    fn incremented(self) -> Self {
        self.wrapping_add(1)
    }

    fn diff(self, other: Self) -> u64 {
        self.wrapping_sub(other) as u64
    }

    fn raw(self) -> u64 {
        self as u64
    }

    fn from_raw(raw: u64) -> Self {
        raw as u16
    }
}

impl Counter for u32 {
    const BITS: u32 = 32;

    fn zero() -> Self {
        0
    }

    fn incremented(self) -> Self {
        self.wrapping_add(1)
    }

    fn diff(self, other: Self) -> u64 {
        self.wrapping_sub(other) as u64
    }

    fn raw(self) -> u64 {
        self as u64
    }

    fn from_raw(raw: u64) -> Self {
        raw as u32
    }
}

impl Counter for u64 {
    const BITS: u32 = 64;

    fn zero() -> Self {
        0
    }

    fn incremented(self) -> Self {
        self.wrapping_add(1)
    }

    fn diff(self, other: Self) -> u64 {
        self.wrapping_sub(other)
    }

    fn raw(self) -> u64 {
        self
    }

    fn from_raw(raw: u64) -> Self {
        raw
    }

    /// The unbounded reference counter never wraps, so the recovered
    /// floor is the plain minimum — this keeps post-repair decisions
    /// identical to [`NaiveTable`]'s absolute-order scans.
    fn recover_floor(values: &[Self]) -> Self {
        values.iter().copied().min().unwrap_or(0)
    }
}

/// The address-tag sentinel of an invalidated table entry: a CAM upset
/// leaves the slot's counter behind but its tag no longer matches any
/// real row. Schemes treat a selection of this row as a burned RFM
/// window (no victims can be derived from a garbage tag).
pub const INVALID_ROW: RowId = RowId::MAX;

/// The row selected by a greedy RFM step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// The selected (hottest) aggressor row.
    pub row: RowId,
    /// Its estimated count above the table minimum at selection time.
    pub count_above_min: u64,
}

/// The per-bank Mithril table (paper Fig. 4/5), Stream-Summary backed.
///
/// `C` is the hardware counter type; the deployed configuration is `u16`
/// (the default), and `u64` serves as the unbounded reference model.
///
/// Tie-breaking is *age at the current counter value*: the entry that has
/// held the minimum longest is evicted first, and the entry that reached
/// the maximum first is selected first. [`NaiveTable`] implements the same
/// policy with linear scans.
///
/// # Example
///
/// ```
/// use mithril::MithrilTable;
///
/// let mut t: MithrilTable = MithrilTable::new(4);
/// for _ in 0..9 {
///     t.on_activate(0xA0);
/// }
/// t.on_activate(0xB0);
/// // Greedy selection returns the hottest row and resets it to min.
/// let sel = t.on_rfm().unwrap();
/// assert_eq!(sel.row, 0xA0);
/// assert_eq!(t.spread(), 1); // 0xB0 is now the max, one above min
/// ```
#[derive(Debug, Clone)]
pub struct MithrilTable<C: Counter = u16> {
    addrs: Vec<RowId>,
    counts: Vec<C>,
    index: FastHashMap<RowId, u32>,
    /// The shared Stream-Summary bucket list over the slots.
    list: BucketList<C>,
    capacity: usize,
    /// Cumulative minimum-entry evictions (observability counter).
    evictions: u64,
}

impl<C: Counter> MithrilTable<C> {
    /// Creates an empty table with `capacity` entries (`Nentry`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        Self {
            addrs: Vec::with_capacity(capacity),
            counts: Vec::with_capacity(capacity),
            index: fast_map_with_capacity(capacity),
            list: BucketList::with_capacity(capacity),
            capacity,
            evictions: 0,
        }
    }

    /// `Nentry`, the number of table entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True if no entries are occupied.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The minimum the table currently measures against: the head bucket's
    /// value when full, the implicit zero of the free entries otherwise.
    #[inline]
    fn min_value(&self) -> C {
        if self.len() == self.capacity {
            self.list.min_value().expect("full table has a min bucket")
        } else {
            C::zero()
        }
    }

    /// The count difference between `MaxPtr` and `MinPtr` — the adaptive
    /// refresh proxy (paper Section V-A).
    pub fn spread(&self) -> u64 {
        if self.addrs.is_empty() {
            return 0;
        }
        self.list
            .max_value()
            .expect("non-empty")
            .diff(self.min_value())
    }

    /// Estimated count of `row` above the table minimum (`0` for off-table
    /// rows: their estimate *is* the minimum).
    pub fn estimate_above_min(&self, row: RowId) -> u64 {
        match self.index.get(&row) {
            Some(&slot) => self.counts[slot as usize].diff(self.min_value()),
            None => 0,
        }
    }

    /// True if `row` currently occupies a table entry.
    pub fn contains(&self, row: RowId) -> bool {
        self.index.contains_key(&row)
    }

    /// Moves `slot` to the bucket for `value + 1`. O(1) via the shared
    /// [`BucketList`].
    fn increment(&mut self, slot: u32) {
        let v1 = self.counts[slot as usize].incremented();
        self.counts[slot as usize] = v1;
        self.list.advance(slot, v1);
    }

    /// Processes one ACT command (paper Fig. 5 steps ① and ②).
    pub fn on_activate(&mut self, row: RowId) {
        if let Some(&slot) = self.index.get(&row) {
            self.increment(slot);
            return;
        }
        if self.addrs.len() < self.capacity {
            let slot = self.addrs.len() as u32;
            self.addrs.push(row);
            self.counts.push(C::zero().incremented());
            self.index.insert(row, slot);
            self.list.push_slot();
            self.list
                .place_fresh(slot, C::zero(), C::zero().incremented());
            return;
        }
        // Miss on a full table: replace the entry that has held the
        // minimum longest (the MinPtr entry, Fig. 3) and increment it.
        let victim = self
            .list
            .oldest_min_slot()
            .expect("full table is non-empty");
        let old = self.addrs[victim as usize];
        self.index.remove(&old);
        self.addrs[victim as usize] = row;
        self.index.insert(row, victim);
        self.evictions += 1;
        self.increment(victim);
    }

    /// Cumulative minimum-entry evictions since construction — the
    /// Space-Saving replacement pressure the observability layer tracks.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Processes one RFM command: greedy selection of the `MaxPtr` entry and
    /// decrement of its counter to the table minimum (Fig. 5 step ③).
    /// Returns `None` only if the table is empty.
    pub fn on_rfm(&mut self) -> Option<Selection> {
        if self.addrs.is_empty() {
            return None;
        }
        let full = self.len() == self.capacity;
        let slot = self.list.oldest_max_slot().expect("non-empty");
        let row = self.addrs[slot as usize];
        let min_c = self.min_value();
        let above = self.counts[slot as usize].diff(min_c);
        if above > 0 {
            // Full tables decrement to the minimum entry; not-full tables
            // measure against the implicit zero of the free entries.
            let floor = if full { min_c } else { C::zero() };
            self.counts[slot as usize] = floor;
            self.list.drop_to_floor(slot, floor);
        }
        Some(Selection {
            row,
            count_above_min: above,
        })
    }

    /// Iterates over `(row, count_above_min)` pairs.
    pub fn iter_relative(&self) -> impl Iterator<Item = (RowId, u64)> + '_ {
        let min = if self.addrs.is_empty() {
            C::zero()
        } else {
            self.min_value()
        };
        self.addrs
            .iter()
            .zip(self.counts.iter())
            .map(move |(&a, &c)| (a, c.diff(min)))
    }

    /// Number of live value buckets (diagnostics; at most `len()`).
    pub fn bucket_count(&self) -> usize {
        self.list.bucket_count()
    }

    // ------------------------------------------------------ fault surface

    /// Flips one bit of slot `slot`'s stored counter — a *silent*
    /// transient upset: the Stream-Summary structure is not told, so the
    /// table's order is now wrong until a scrub ([`self_check`] +
    /// [`repair`]) notices. Returns `false` if `slot`/`bit` is out of
    /// range.
    ///
    /// [`self_check`]: MithrilTable::self_check
    /// [`repair`]: MithrilTable::repair
    pub fn flip_counter_bit(&mut self, slot: usize, bit: u32) -> bool {
        if slot >= self.counts.len() || bit >= C::BITS {
            return false;
        }
        self.counts[slot] = self.counts[slot].flip_bit(bit);
        true
    }

    /// Forces one bit of slot `slot`'s stored counter to `one` (stuck-at
    /// re-assertion), as silently as [`flip_counter_bit`]. Returns `true`
    /// only if the stored bit changed.
    ///
    /// [`flip_counter_bit`]: MithrilTable::flip_counter_bit
    pub fn force_counter_bit(&mut self, slot: usize, bit: u32, one: bool) -> bool {
        if slot >= self.counts.len() || bit >= C::BITS {
            return false;
        }
        let forced = self.counts[slot].with_bit(bit, one);
        let changed = forced != self.counts[slot];
        self.counts[slot] = forced;
        changed
    }

    /// Invalidates slot `slot`'s address tag (CAM upset): the entry keeps
    /// its counter and its place in the order, but stops tracking its row
    /// ([`INVALID_ROW`] sentinel). The slot is reclaimed normally when it
    /// becomes the oldest minimum entry. Returns `false` if the slot is
    /// out of range or already invalid.
    pub fn invalidate_entry(&mut self, slot: usize) -> bool {
        if slot >= self.addrs.len() || self.addrs[slot] == INVALID_ROW {
            return false;
        }
        let row = self.addrs[slot];
        self.index.remove(&row);
        self.addrs[slot] = INVALID_ROW;
        true
    }

    /// Slot `slot`'s stored counter bits (scrub diagnostics), or `None`
    /// if the slot is unoccupied.
    pub fn raw_counter(&self, slot: usize) -> Option<u64> {
        self.counts.get(slot).map(|c| c.raw())
    }

    /// Verifies the table's derived structures against its stored
    /// entries: the row index maps exactly the valid tags, and the
    /// Stream-Summary list satisfies every structural invariant with
    /// bucket values matching the stored counters (see
    /// [`BucketList::self_check`]). `Err` describes the first broken
    /// invariant. O(capacity).
    pub fn self_check(&self) -> Result<(), String> {
        let mut valid = 0usize;
        for (slot, &row) in self.addrs.iter().enumerate() {
            if row == INVALID_ROW {
                continue;
            }
            valid += 1;
            match self.index.get(&row) {
                Some(&s) if s as usize == slot => {}
                Some(&s) => {
                    return Err(format!(
                        "row {row}: index points at slot {s}, stored in {slot}"
                    ))
                }
                None => return Err(format!("row {row} (slot {slot}): missing from index")),
            }
        }
        if self.index.len() != valid {
            return Err(format!(
                "index has {} rows, table stores {valid} valid tags",
                self.index.len()
            ));
        }
        let basis = self.list.min_value().unwrap_or_else(C::zero);
        self.list
            .self_check(|s| self.counts[s as usize], |v| v.diff(basis))
    }

    /// Rebuilds the derived structures from the stored entries — the
    /// repair half of a scrub pass. The row index is rebuilt from the
    /// valid tags (a duplicated tag invalidates the higher slot), the
    /// minimum is re-recovered from the raw counters
    /// ([`Counter::recover_floor`]), and the Stream-Summary list is
    /// rebuilt in ascending `(diff-from-minimum, slot)` order. Arrival
    /// ages are unrecoverable after corruption, so ties canonicalize to
    /// ascending slot index. O(capacity·log).
    pub fn repair(&mut self) {
        self.index.clear();
        for slot in 0..self.addrs.len() {
            let row = self.addrs[slot];
            if row == INVALID_ROW {
                continue;
            }
            match self.index.entry(row) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(slot as u32);
                }
                std::collections::hash_map::Entry::Occupied(_) => {
                    self.addrs[slot] = INVALID_ROW;
                }
            }
        }
        let floor = if self.len() == self.capacity {
            C::recover_floor(&self.counts)
        } else {
            C::zero()
        };
        let counts = &self.counts;
        self.list.rebuild(|s| counts[s as usize], |v| v.diff(floor));
    }
}

impl<C: Counter> mithril_obs::Observe for MithrilTable<C> {
    /// O(1) snapshot for the cycle-domain sampler. The wrapping hardware
    /// counters have no absolute value, so min/max are reported *relative
    /// to the table floor*: `min` is always `0` and `max` is the spread —
    /// exactly the quantity the adaptive-refresh decision reads.
    fn observe(&self) -> mithril_obs::TrackerObservation {
        mithril_obs::TrackerObservation {
            len: self.len() as u64,
            capacity: self.capacity as u64,
            min: 0,
            max: self.spread(),
            evictions: self.evictions,
            invalidations: (self.len() - self.index.len()) as u64,
        }
    }
}

/// The retained linear-scan reference implementation of the Mithril table.
///
/// Uses unbounded `u64` counters and O(capacity) scans per decision. Ties
/// are broken by *age at the current counter value* (tracked with an
/// explicit sequence number), the same policy [`MithrilTable`]'s bucket
/// lists realize structurally — so the two make identical decisions on any
/// stream whose spread fits the wrapping counter's range. Kept for
/// differential property tests (`tests/differential.rs`) and as the
/// baseline of the `table_hot_path` benchmark.
#[derive(Debug, Clone)]
pub struct NaiveTable {
    addrs: Vec<RowId>,
    counts: Vec<u64>,
    /// Global sequence number of the entry's last counter change; within a
    /// set of equal counters, smaller = held the value longer.
    seqs: Vec<u64>,
    index: std::collections::HashMap<RowId, usize>,
    next_seq: u64,
    capacity: usize,
}

impl NaiveTable {
    /// Creates an empty table with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        Self {
            addrs: Vec::with_capacity(capacity),
            counts: Vec::with_capacity(capacity),
            seqs: Vec::with_capacity(capacity),
            index: std::collections::HashMap::with_capacity(capacity),
            next_seq: 0,
            capacity,
        }
    }

    /// `Nentry`, the number of table entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True if no entries are occupied.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    fn min_value(&self) -> u64 {
        if self.len() == self.capacity {
            self.counts.iter().copied().min().expect("non-empty")
        } else {
            0
        }
    }

    /// Slot holding the minimum count the longest (the eviction target).
    fn min_slot(&self) -> usize {
        (0..self.counts.len())
            .min_by_key(|&i| (self.counts[i], self.seqs[i]))
            .expect("non-empty")
    }

    /// Slot holding the maximum count the longest (the RFM selection).
    fn max_slot(&self) -> usize {
        (0..self.counts.len())
            .min_by_key(|&i| (std::cmp::Reverse(self.counts[i]), self.seqs[i]))
            .expect("non-empty")
    }

    /// `MaxPtr − MinPtr` spread.
    pub fn spread(&self) -> u64 {
        if self.addrs.is_empty() {
            return 0;
        }
        self.counts[self.max_slot()] - self.min_value()
    }

    /// Estimated count of `row` above the table minimum.
    pub fn estimate_above_min(&self, row: RowId) -> u64 {
        match self.index.get(&row) {
            Some(&slot) => self.counts[slot] - self.min_value(),
            None => 0,
        }
    }

    /// True if `row` currently occupies a table entry.
    pub fn contains(&self, row: RowId) -> bool {
        self.index.contains_key(&row)
    }

    /// Processes one ACT command.
    pub fn on_activate(&mut self, row: RowId) {
        if let Some(&slot) = self.index.get(&row) {
            self.counts[slot] += 1;
            self.seqs[slot] = self.bump_seq();
            return;
        }
        if self.addrs.len() < self.capacity {
            self.addrs.push(row);
            self.counts.push(1);
            let seq = self.bump_seq();
            self.seqs.push(seq);
            self.index.insert(row, self.addrs.len() - 1);
            return;
        }
        let slot = self.min_slot();
        let old = self.addrs[slot];
        self.index.remove(&old);
        self.addrs[slot] = row;
        self.index.insert(row, slot);
        self.counts[slot] += 1;
        self.seqs[slot] = self.bump_seq();
    }

    /// Greedy RFM selection + decrement-to-min.
    pub fn on_rfm(&mut self) -> Option<Selection> {
        if self.addrs.is_empty() {
            return None;
        }
        let slot = self.max_slot();
        let row = self.addrs[slot];
        let min = self.min_value();
        let above = self.counts[slot] - min;
        if above > 0 {
            // Full tables decrement to the minimum entry; not-full tables
            // measure against the implicit zero of the free entries.
            self.counts[slot] = if self.len() == self.capacity { min } else { 0 };
            self.seqs[slot] = self.bump_seq();
        }
        Some(Selection {
            row,
            count_above_min: above,
        })
    }

    /// Iterates over `(row, count_above_min)` pairs.
    pub fn iter_relative(&self) -> impl Iterator<Item = (RowId, u64)> + '_ {
        let min = if self.addrs.is_empty() {
            0
        } else {
            self.min_value()
        };
        self.addrs
            .iter()
            .zip(self.counts.iter())
            .map(move |(&a, &c)| (a, c - min))
    }

    // ------------------------------------------------------ fault surface

    /// Mirror of [`MithrilTable::flip_counter_bit`] on the reference
    /// table's unbounded counters.
    pub fn flip_counter_bit(&mut self, slot: usize, bit: u32) -> bool {
        if slot >= self.counts.len() || bit >= 64 {
            return false;
        }
        self.counts[slot] ^= 1u64 << bit;
        true
    }

    /// Mirror of [`MithrilTable::force_counter_bit`].
    pub fn force_counter_bit(&mut self, slot: usize, bit: u32, one: bool) -> bool {
        if slot >= self.counts.len() || bit >= 64 {
            return false;
        }
        let mask = 1u64 << bit;
        let forced = if one {
            self.counts[slot] | mask
        } else {
            self.counts[slot] & !mask
        };
        let changed = forced != self.counts[slot];
        self.counts[slot] = forced;
        changed
    }

    /// Mirror of [`MithrilTable::invalidate_entry`].
    pub fn invalidate_entry(&mut self, slot: usize) -> bool {
        if slot >= self.addrs.len() || self.addrs[slot] == INVALID_ROW {
            return false;
        }
        let row = self.addrs[slot];
        self.index.remove(&row);
        self.addrs[slot] = INVALID_ROW;
        true
    }

    /// Mirror of [`MithrilTable::raw_counter`].
    pub fn raw_counter(&self, slot: usize) -> Option<u64> {
        self.counts.get(slot).copied()
    }

    /// Mirror of [`MithrilTable::repair`]: the scan-based table has no
    /// order structure to rebuild, but its tie-breaking ages are as lost
    /// as the bucket list's, so they canonicalize the same way —
    /// ascending slot index — keeping the two implementations'
    /// post-repair decisions identical. A duplicated tag invalidates the
    /// higher slot, as in the bucket table.
    pub fn repair(&mut self) {
        self.index.clear();
        for slot in 0..self.addrs.len() {
            let row = self.addrs[slot];
            if row == INVALID_ROW {
                continue;
            }
            match self.index.entry(row) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(slot);
                }
                std::collections::hash_map::Entry::Occupied(_) => {
                    self.addrs[slot] = INVALID_ROW;
                }
            }
        }
        for (slot, seq) in self.seqs.iter_mut().enumerate() {
            *seq = slot as u64;
        }
        self.next_seq = self.seqs.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure5_with_wrapping_counters() {
        let mut t: MithrilTable<u16> = MithrilTable::new(4);
        for _ in 0..9 {
            t.on_activate(0xA0);
        }
        for _ in 0..9 {
            t.on_activate(0xB0);
        }
        for _ in 0..3 {
            t.on_activate(0xC0);
        }
        t.on_activate(0xD0);
        // ① ACT 0xA0 → 10.
        t.on_activate(0xA0);
        assert_eq!(t.estimate_above_min(0xA0), 9); // 10 above min 1
                                                   // ② ACT 0xE0 → replaces 0xD0 (min 1) and becomes 2.
        t.on_activate(0xE0);
        assert!(!t.contains(0xD0));
        assert!(t.contains(0xE0));
        // ③ RFM → greedy selection of 0xA0; reset to min (2).
        let sel = t.on_rfm().unwrap();
        assert_eq!(sel.row, 0xA0);
        assert_eq!(sel.count_above_min, 8); // 10 − min 2
        assert_eq!(t.estimate_above_min(0xA0), 0);
        // New max is 0xB0 at 9 (7 above min).
        assert_eq!(t.on_rfm().unwrap().row, 0xB0);
    }

    #[test]
    fn wrapping_survives_counter_overflow() {
        // Tiny 2-entry table hammered way past the u16 range: relative
        // behaviour must stay exact because spread stays small.
        let mut t: MithrilTable<u16> = MithrilTable::new(2);
        for i in 0..200_000u64 {
            t.on_activate(i % 2);
            if i % 64 == 63 {
                t.on_rfm();
            }
            assert!(t.spread() <= 64 + 2, "spread exploded at {i}");
        }
    }

    #[test]
    fn spread_zero_on_empty_and_balanced() {
        let mut t: MithrilTable<u16> = MithrilTable::new(2);
        assert_eq!(t.spread(), 0);
        t.on_activate(1);
        t.on_activate(2);
        // Both at count 1 → table full, min = 1, max = 1 → spread 0.
        assert_eq!(t.spread(), 0);
    }

    #[test]
    fn rfm_on_empty_table_is_none() {
        let mut t: MithrilTable<u16> = MithrilTable::new(2);
        assert_eq!(t.on_rfm(), None);
    }

    #[test]
    fn rfm_selects_first_max_on_ties() {
        let mut t: MithrilTable<u16> = MithrilTable::new(4);
        t.on_activate(10);
        t.on_activate(20);
        t.on_activate(10);
        t.on_activate(20);
        // Both at 2; 10 reached 2 first and is selected.
        assert_eq!(t.on_rfm().unwrap().row, 10);
    }

    #[test]
    fn eviction_targets_oldest_min_entry() {
        let mut t: MithrilTable<u16> = MithrilTable::new(3);
        t.on_activate(1);
        t.on_activate(1);
        t.on_activate(2);
        t.on_activate(3);
        // 2 and 3 both at min = 1; 2 has held it longer and is replaced.
        t.on_activate(4);
        assert!(!t.contains(2));
        assert!(t.contains(3));
        assert!(t.contains(4));
    }

    #[test]
    fn estimates_relative_to_min_are_consistent() {
        let mut t: MithrilTable<u32> = MithrilTable::new(8);
        for i in 0..1000u64 {
            t.on_activate(i % 12);
        }
        let spread = t.spread();
        for (_, above) in t.iter_relative() {
            assert!(above <= spread);
        }
    }

    #[test]
    fn bucket_count_never_exceeds_entries() {
        let mut t: MithrilTable<u16> = MithrilTable::new(16);
        for i in 0..10_000u64 {
            t.on_activate((i * 7) % 40);
            if i % 24 == 23 {
                t.on_rfm();
            }
            assert!(t.bucket_count() <= t.len().max(1), "arena leaked buckets");
        }
    }

    #[test]
    fn not_full_rfm_resets_to_zero_and_rejoins_order() {
        let mut t: MithrilTable<u16> = MithrilTable::new(8);
        for _ in 0..5 {
            t.on_activate(1);
        }
        t.on_activate(2);
        // RFM drops row 1 from 5 to 0 (table not full → implicit zero min).
        let sel = t.on_rfm().unwrap();
        assert_eq!(sel.row, 1);
        assert_eq!(sel.count_above_min, 5);
        assert_eq!(t.estimate_above_min(1), 0);
        assert_eq!(t.estimate_above_min(2), 1);
        // Next RFM now selects row 2.
        assert_eq!(t.on_rfm().unwrap().row, 2);
    }

    #[test]
    fn naive_matches_bucket_on_smoke_stream() {
        let mut fast: MithrilTable<u64> = MithrilTable::new(4);
        let mut naive = NaiveTable::new(4);
        let mut x = 99u64;
        for i in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let row = (x >> 33) % 10;
            fast.on_activate(row);
            naive.on_activate(row);
            if i % 17 == 16 {
                assert_eq!(fast.on_rfm(), naive.on_rfm(), "diverged at {i}");
            }
            assert_eq!(fast.spread(), naive.spread(), "spread diverged at {i}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _: MithrilTable<u16> = MithrilTable::new(0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn naive_zero_capacity_panics() {
        let _ = NaiveTable::new(0);
    }
}
