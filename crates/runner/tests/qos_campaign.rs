//! QoS campaign acceptance and determinism pins.
//!
//! The acceptance criterion of the multi-tenant QoS layer: on the
//! noisy-neighbor tenancy mix under Mithril, turning throttling on must
//! improve the victims' tail latency *and* the activations fairness
//! ratio at equal flip safety — and the campaign report proving it must
//! be byte-identical at any worker-thread count.

use mithril_runner::engine::PoolConfig;
use mithril_runner::report::qos_campaign_json;
use mithril_runner::run_qos_campaign;
use mithril_runner::scenarios::QosCampaignSpec;
use mithril_sim::Metrics;

fn pool(threads: usize) -> PoolConfig {
    PoolConfig {
        threads,
        shard_size: 1,
    }
}

/// The smoke campaign at a horizon long enough for suspect election to
/// engage (the 4k-inst smoke default rotates only a couple of pressured
/// windows).
fn acceptance_spec() -> QosCampaignSpec {
    let mut spec = QosCampaignSpec::smoke();
    spec.base.insts_per_core = 20_000;
    spec
}

/// Worst victim read tail: the noisy-neighbor mix pins the hammering
/// tenant on the highest core index, victims below it.
fn victim_p99(m: &Metrics) -> u64 {
    let hammer = m.per_core.iter().map(|(core, _)| core).max();
    m.per_core
        .iter()
        .filter(|(core, _)| Some(*core) != hammer)
        .map(|(_, c)| c.read_latency.p99())
        .max()
        .unwrap_or(0)
}

/// min/max activations ratio across all tenants (1.0 = perfectly fair).
fn fairness(m: &Metrics) -> f64 {
    let acts: Vec<u64> = m.per_core.iter().map(|(_, c)| c.acts).collect();
    match (acts.iter().min(), acts.iter().max()) {
        (Some(&lo), Some(&hi)) if hi > 0 => lo as f64 / hi as f64,
        _ => 0.0,
    }
}

#[test]
fn throttling_improves_victims_at_equal_flip_safety() {
    let spec = acceptance_spec();
    let results = run_qos_campaign(&spec, pool(2), 1, None);
    let per_pass = results.len() / 2;
    let off_res = results
        .iter()
        .find(|r| r.scenario.name.starts_with("mithril/"))
        .expect("mithril scenario present");
    let on_res = results[per_pass..]
        .iter()
        .find(|r| r.scenario.name.starts_with("mithril/") && r.scenario.name.ends_with("+qos"))
        .expect("mithril+qos scenario present");
    assert_eq!(
        off_res.seed, on_res.seed,
        "pair members must run under the same seed"
    );
    let off = off_res.outcome.as_ref().expect("QoS-off run succeeds");
    let on = on_res.outcome.as_ref().expect("QoS-on run succeeds");

    // QoS-off carries no QoS section at all (byte-identity contract);
    // QoS-on reports real throttling.
    assert!(off.qos.is_none());
    let q = on.qos.as_ref().expect("QoS-on run carries stats");
    assert!(q.windows > 0);
    assert!(q.throttled_acts > 0, "the hammer must actually be deferred");

    // Attribution: the hammering tenant (highest thread id) owns the
    // dominant share of the cumulative tracker pressure and all of the
    // deferrals; no victim was ever elected suspect.
    let hammer = q.per_thread.len() - 1;
    let victim_pressure: u64 = q.per_thread[..hammer].iter().map(|t| t.pressure).sum();
    assert!(q.per_thread[hammer].pressure > victim_pressure);
    assert_eq!(
        q.per_thread[..hammer]
            .iter()
            .map(|t| t.suspect_windows)
            .sum::<u64>(),
        0,
        "no victim may be elected suspect on this mix"
    );

    // The acceptance inequality: victims' tail latency and the fairness
    // ratio both improve, at equal flip safety.
    assert!(
        victim_p99(on) < victim_p99(off),
        "victim p99 must improve: off {} vs on {}",
        victim_p99(off),
        victim_p99(on)
    );
    assert!(
        fairness(on) > fairness(off),
        "fairness must improve: off {} vs on {}",
        fairness(off),
        fairness(on)
    );
    assert_eq!(on.flips, off.flips, "flip safety must not degrade");
    assert!(on.max_disturbance <= off.max_disturbance);
}

fn campaign_report_at(threads: usize) -> String {
    let mut spec = QosCampaignSpec::smoke();
    spec.base.insts_per_core = 2_000;
    spec.base.cores = 3;
    let results = run_qos_campaign(&spec, pool(threads), 9, None);
    qos_campaign_json(9, &results)
}

#[test]
fn qos_campaign_report_identical_at_1_2_and_8_threads() {
    let base = campaign_report_at(1);
    assert_eq!(base, campaign_report_at(2), "2 threads diverged from 1");
    assert_eq!(base, campaign_report_at(8), "8 threads diverged from 1");
    // The per-tenant comparison pairs are present and complete.
    assert!(base.contains("\"pairs\": ["));
    assert!(base.contains("\"off\":{\"victim_p50_ps\":"));
    assert!(base.contains("\"qos\":{\"victim_p50_ps\":"));
    assert!(base.contains("\"fairness_acts\":"));
    // QoS-on runs embed the qos metrics section; off runs never do.
    let on_entries = base.matches("\"qos\":{\"windows\":").count();
    assert_eq!(on_entries, 3, "every +qos scenario carries a qos section");
    assert!(base.contains("+qos\""));
}
