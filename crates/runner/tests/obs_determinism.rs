//! Observability regression suite: attaching the event/series
//! instrumentation must not change what is simulated, and everything it
//! records must be bit-identical at any worker thread count.

use mithril_runner::engine::PoolConfig;
use mithril_runner::report::{obs_counts_json, sweep_json, validate_format_version};
use mithril_runner::scenarios::SweepSpec;
use mithril_runner::{run_sweep, run_sweep_observed, write_obs_outputs};
use mithril_sim::ObsConfig;

fn tiny_spec() -> SweepSpec {
    let mut spec = SweepSpec::smoke();
    spec.insts_per_core = 1_500;
    spec.cores = 2;
    spec
}

fn pool(threads: usize) -> PoolConfig {
    PoolConfig {
        threads,
        shard_size: 1,
    }
}

/// The full deterministic obs projection of one observed sweep: every
/// per-position event log and time series plus the aggregate counts.
fn obs_fingerprint(threads: usize, seed: u64, obs: ObsConfig) -> String {
    let observed = run_sweep_observed(&tiny_spec(), pool(threads), seed, obs, None);
    let mut out = String::new();
    for (result, capture) in &observed {
        let capture = capture.as_ref().expect("every scenario produces a capture");
        out.push_str(&format!("== {}\n", result.scenario.name));
        out.push_str(&capture.events_jsonl());
        out.push_str(&capture.series_csv());
        out.push_str(&capture.summary_json());
    }
    out
}

#[test]
fn observed_metrics_equal_unobserved_metrics_over_seeds() {
    // The report renders Metrics (and, per channel, McStats-derived
    // counters) — byte equality here means the instrumentation changed
    // nothing observable about the simulation.
    let spec = tiny_spec();
    for seed in [1u64, 42, 1234] {
        let plain = sweep_json(seed, &run_sweep(&spec, pool(2), seed));
        let observed = run_sweep_observed(&spec, pool(2), seed, ObsConfig::default(), None);
        let results: Vec<_> = observed.into_iter().map(|(r, _)| r).collect();
        let with_obs = sweep_json(seed, &results);
        assert_eq!(plain, with_obs, "obs changed the simulation at seed {seed}");
        validate_format_version(&plain).expect("report must carry format_version");
    }
}

#[test]
fn obs_output_is_identical_at_1_2_and_8_threads() {
    let obs = ObsConfig::default();
    let base = obs_fingerprint(1, 42, obs);
    assert_eq!(base, obs_fingerprint(2, 42, obs), "2 threads diverged");
    assert_eq!(base, obs_fingerprint(8, 42, obs), "8 threads diverged");
    // Sanity: the fingerprint actually contains recorded events.
    assert!(base.contains("\"kind\":\"act\""), "no ACT events recorded");
}

#[test]
fn obs_counts_baseline_is_thread_count_invariant_and_versioned() {
    let spec = tiny_spec();
    let dir_a = std::env::temp_dir().join("mithril-obs-test-a");
    let dir_b = std::env::temp_dir().join("mithril-obs-test-b");
    for d in [&dir_a, &dir_b] {
        let _ = std::fs::remove_dir_all(d);
    }
    let a = write_obs_outputs(
        &dir_a,
        7,
        &run_sweep_observed(&spec, pool(1), 7, ObsConfig::default(), None),
    )
    .unwrap();
    let b = write_obs_outputs(
        &dir_b,
        7,
        &run_sweep_observed(&spec, pool(8), 7, ObsConfig::default(), None),
    )
    .unwrap();
    assert_eq!(a, b, "obs_counts.json diverged across thread counts");
    validate_format_version(&a).expect("baseline must carry format_version");
    assert_eq!(
        a,
        std::fs::read_to_string(dir_a.join("obs_counts.json")).unwrap()
    );
    // Per-position artifacts exist for position 0.
    let sub = std::fs::read_dir(&dir_a)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().starts_with("000_"))
        .expect("per-position directory");
    for f in ["events.jsonl", "series.csv", "summary.json"] {
        assert!(sub.path().join(f).exists(), "{f} missing");
    }
    for d in [&dir_a, &dir_b] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// Acceptance pin: the latency histograms and per-core attribution that
/// now ride in every metrics object are integer-rendered and must be
/// byte-identical at any worker thread count, with real percentiles in
/// them (not an all-zero shell).
#[test]
fn latency_sections_are_byte_identical_at_1_2_and_8_threads() {
    let spec = tiny_spec();
    let base = sweep_json(42, &run_sweep(&spec, pool(1), 42));
    assert!(
        base.contains("\"latency\":{\"read\":{\"count\":"),
        "latency section missing"
    );
    assert!(
        base.contains("\"per_core\":[{\"core\":0,"),
        "per-core section missing"
    );
    // At least one scenario recorded a nonzero read p99.
    let nonzero_p99 = base
        .match_indices("\"p99_ps\":")
        .any(|(i, pat)| !base[i + pat.len()..].starts_with('0'));
    assert!(nonzero_p99, "every p99 is zero — nothing was recorded");
    for threads in [2usize, 8] {
        assert_eq!(
            base,
            sweep_json(42, &run_sweep(&spec, pool(threads), 42)),
            "latency/per_core sections diverged at {threads} threads"
        );
    }
}

#[test]
fn obs_counts_reject_foreign_format_versions() {
    let json = obs_counts_json(1, &[]);
    validate_format_version(&json).unwrap();
    let forged = json.replace(
        &format!(
            "\"format_version\": {}",
            mithril_runner::report::FORMAT_VERSION
        ),
        "\"format_version\": 999",
    );
    assert!(validate_format_version(&forged).is_err());
}
