//! End-to-end trace-replay determinism: recording a registry workload and
//! replaying the capture through the sweep engine must produce metrics
//! byte-identical to generating the workload live — at any worker-thread
//! count. This is the contract that makes captures interchangeable with
//! generators in every experiment.

use std::io::BufWriter;
use std::path::PathBuf;

use mithril_fasthash::splitmix64_seed;
use mithril_runner::engine::PoolConfig;
use mithril_runner::report::metrics_only_json;
use mithril_runner::run_sweep;
use mithril_runner::scenarios::{workload, workload_compatible, SweepSpec};
use mithril_sim::{Scheme, SystemConfig};
use mithril_trace::{record_thread_set, MtrcWriter, TraceHeader};

const BASE_SEED: u64 = 9;
const CORES: usize = 4;
const INSTS: u64 = 3_000;
const FLIP_TH: u64 = 6_250;

/// Records `name` the way `trace record` does: generator seeded with the
/// item seed of (shard 0, offset 0) under `BASE_SEED`.
///
/// `tag` must be unique per test: libtest runs tests as parallel threads
/// of one process, so a pid-only file name would race one test's
/// create/remove against another's replay.
fn record(name: &str, tag: &str) -> PathBuf {
    let mut cfg = SystemConfig::table_iii();
    cfg.cores = CORES;
    cfg.flip_th = FLIP_TH;
    let mut set = workload(name, CORES, &cfg, splitmix64_seed(BASE_SEED, 0, 0));
    let path = std::env::temp_dir().join(format!(
        "mithril_replay_test_{}_{tag}_{}.mtrc",
        std::process::id(),
        name
    ));
    let header = TraceHeader {
        geometry: cfg.geometry,
        cores: CORES,
        base_seed: BASE_SEED,
        insts_per_core: INSTS,
        source: name.to_string(),
    };
    let file = std::fs::File::create(&path).expect("create capture");
    let mut w = MtrcWriter::new(BufWriter::new(file), &header).expect("write header");
    record_thread_set(&mut set, INSTS, &mut w).expect("record");
    w.finish().expect("finish capture");
    path
}

fn schemes() -> Vec<(String, Scheme)> {
    vec![
        ("none".into(), Scheme::None),
        (
            "mithril".into(),
            Scheme::Mithril {
                rfm_th: 64,
                ad_th: Some(200),
                plus: false,
            },
        ),
    ]
}

fn spec_for(workload_name: String, schemes: Vec<(String, Scheme)>) -> SweepSpec {
    SweepSpec {
        geometries: vec![mithril_dram::Geometry::table_iii_system()],
        schemes,
        workloads: vec![workload_name],
        flip_th: FLIP_TH,
        cores: CORES,
        insts_per_core: INSTS,
    }
}

fn metrics_report(spec: &SweepSpec, threads: usize) -> String {
    let results = run_sweep(
        spec,
        PoolConfig {
            threads,
            shard_size: 1,
        },
        BASE_SEED,
    );
    for r in &results {
        assert!(
            r.outcome.is_ok(),
            "{} failed: {:?}",
            r.scenario.name,
            r.outcome
        );
    }
    metrics_only_json(BASE_SEED, &results)
}

#[test]
fn replayed_capture_matches_live_generation_at_any_thread_count() {
    // A benign mix and an attack mix (uncacheable, mapping-aimed ops) —
    // the two op shapes the codec must carry losslessly. The bit-identical
    // contract is per sweep *position*: the capture's generator seed is the
    // item seed of (shard 0, offset 0), so each scheme is compared through
    // its own single-scheme sweep, where live generation derives exactly
    // that seed. (In a multi-scheme replay sweep the capture is the same
    // for every scheme — deliberately: one input stream, N schemes — while
    // live generation would reseed per position.)
    for name in ["mix-high", "attack-multi"] {
        let path = record(name, "identical");
        for (label, scheme) in schemes() {
            let one = |w: String| spec_for(w, vec![(label.clone(), scheme)]);
            let live = metrics_report(&one(name.to_string()), 1);
            let replay_1 = metrics_report(&one(format!("trace:{}", path.display())), 1);
            let replay_4 = metrics_report(&one(format!("trace:{}", path.display())), 4);
            assert_eq!(
                live, replay_1,
                "{name}/{label}: replay diverged from live generation"
            );
            assert_eq!(
                replay_1, replay_4,
                "{name}/{label}: replay depends on thread count"
            );
            assert!(live.contains("\"total_insts\""));
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn multi_scheme_replay_is_thread_count_invariant() {
    let path = record("mix-high", "multischeme");
    let spec = spec_for(format!("trace:{}", path.display()), schemes());
    let a = metrics_report(&spec, 1);
    let b = metrics_report(&spec, 4);
    std::fs::remove_file(&path).ok();
    assert_eq!(a, b);
}

#[test]
fn replay_scenarios_skip_mismatched_geometries() {
    let path = record("mix-high", "geoskip"); // recorded on the 2-channel Table III system
    let name = format!("trace:{}", path.display());
    assert!(workload_compatible(
        &name,
        &mithril_dram::Geometry::table_iii_system()
    ));
    assert!(!workload_compatible(
        &name,
        &mithril_dram::Geometry::default()
    ));

    let mut spec = spec_for(name.clone(), schemes());
    spec.geometries.push(mithril_dram::Geometry::default());
    let scenarios = spec.scenarios();
    assert!(
        scenarios.iter().all(|s| s.geometry.channels == 2),
        "1-channel replay scenarios must be skipped"
    );
    std::fs::remove_file(&path).ok();

    // A missing capture is "compatible" (so it isn't silently skipped)
    // and then fails loudly at instantiation time.
    assert!(workload_compatible(
        "trace:/nonexistent/capture.mtrc",
        &mithril_dram::Geometry::default()
    ));
}

#[test]
#[should_panic(expected = "cannot replay")]
fn missing_capture_fails_loudly() {
    let cfg = SystemConfig::table_iii();
    let _ = workload("trace:/nonexistent/capture.mtrc", 4, &cfg, 1);
}

#[test]
#[should_panic(expected = "cores")]
fn core_count_mismatch_fails_loudly() {
    let path = record("mix-high", "coremismatch");
    let cfg = SystemConfig::table_iii();
    let result = std::panic::catch_unwind(|| {
        let name = format!("trace:{}", path.display());
        workload(&name, CORES + 1, &cfg, 1)
    });
    std::fs::remove_file(&path).ok();
    match result {
        Ok(_) => (),
        Err(e) => std::panic::resume_unwind(e),
    }
}
