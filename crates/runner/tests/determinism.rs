//! Determinism-under-sharding regression: the same sweep at the same base
//! seed must produce a byte-identical `BENCH_sweep.json` report at any
//! worker thread count.

use mithril_runner::engine::PoolConfig;
use mithril_runner::report::sweep_json;
use mithril_runner::run_sweep;
use mithril_runner::scenarios::SweepSpec;

fn tiny_spec() -> SweepSpec {
    let mut spec = SweepSpec::smoke();
    spec.insts_per_core = 2_000;
    spec.cores = 2;
    spec
}

fn report_at(threads: usize, shard_size: usize, seed: u64) -> String {
    let results = run_sweep(
        &tiny_spec(),
        PoolConfig {
            threads,
            shard_size,
        },
        seed,
    );
    sweep_json(seed, &results)
}

#[test]
fn identical_report_at_1_2_and_8_threads() {
    let base = report_at(1, 1, 42);
    assert_eq!(base, report_at(2, 1, 42), "2 threads diverged from 1");
    assert_eq!(base, report_at(8, 1, 42), "8 threads diverged from 1");
}

#[test]
fn identical_report_across_shard_sizes() {
    // Shard size is part of the seeding contract: it must be the *same*
    // between runs being compared, but any fixed size is deterministic
    // across thread counts.
    let a = report_at(1, 4, 7);
    let b = report_at(8, 4, 7);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_produce_different_reports() {
    assert_ne!(report_at(2, 1, 1), report_at(2, 1, 2));
}

#[test]
fn sweep_covers_multi_channel_multi_rank() {
    let results = run_sweep(
        &tiny_spec(),
        PoolConfig {
            threads: 4,
            shard_size: 1,
        },
        3,
    );
    let multi = results
        .iter()
        .find(|r| r.scenario.geometry.channels == 2 && r.scenario.geometry.ranks == 2)
        .expect("2ch x 2rk scenario present");
    let m = multi.outcome.as_ref().expect("multi-rank scenario runs");
    assert!(m.total_insts > 0);
    assert_eq!(m.per_channel.len(), 2);
    // Per-channel counters roll up to the system totals.
    let acts: u64 = m.per_channel.iter().map(|c| c.counters.acts).sum();
    assert_eq!(acts, m.counters.acts);
}

#[test]
fn interference_attack_is_channel_local_under_mithril() {
    let results = run_sweep(
        &tiny_spec(),
        PoolConfig {
            threads: 2,
            shard_size: 1,
        },
        5,
    );
    let find = |scheme: &str| {
        results
            .iter()
            .find(|r| {
                r.scenario.scheme_label == scheme
                    && r.scenario.workload == "channel-interference"
                    && r.scenario.geometry == mithril_dram::Geometry::table_iii_system()
            })
            .and_then(|r| r.outcome.as_ref().ok())
            .expect("interference scenario ran")
    };
    let mithril = find("mithril");
    // The hammer runs on channel 0: all preventive refreshes happen there,
    // while the victims' channel keeps streaming without RFM work.
    assert!(
        mithril.per_channel[0].rfms > 0,
        "hammered channel must see RFMs"
    );
    assert_eq!(
        mithril.per_channel[1].counters.preventive_rows, 0,
        "victim channel must not pay preventive-refresh energy"
    );
    assert_eq!(mithril.flips, 0);
}
