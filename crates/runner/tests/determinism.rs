//! Determinism-under-sharding regression: the same sweep at the same base
//! seed must produce a byte-identical `BENCH_sweep.json` report at any
//! worker thread count.

use mithril_runner::engine::{run_sharded_robust, PoolConfig};
use mithril_runner::report::{faults_json, sweep_json};
use mithril_runner::scenarios::{FaultCampaignSpec, SweepSpec};
use mithril_runner::{run_fault_campaign, run_sweep, run_sweep_journaled};

fn tiny_spec() -> SweepSpec {
    let mut spec = SweepSpec::smoke();
    spec.insts_per_core = 2_000;
    spec.cores = 2;
    spec
}

fn report_at(threads: usize, shard_size: usize, seed: u64) -> String {
    let results = run_sweep(
        &tiny_spec(),
        PoolConfig {
            threads,
            shard_size,
        },
        seed,
    );
    sweep_json(seed, &results)
}

#[test]
fn identical_report_at_1_2_and_8_threads() {
    let base = report_at(1, 1, 42);
    assert_eq!(base, report_at(2, 1, 42), "2 threads diverged from 1");
    assert_eq!(base, report_at(8, 1, 42), "8 threads diverged from 1");
}

#[test]
fn identical_report_across_shard_sizes() {
    // Shard size is part of the seeding contract: it must be the *same*
    // between runs being compared, but any fixed size is deterministic
    // across thread counts.
    let a = report_at(1, 4, 7);
    let b = report_at(8, 4, 7);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_produce_different_reports() {
    assert_ne!(report_at(2, 1, 1), report_at(2, 1, 2));
}

#[test]
fn sweep_covers_multi_channel_multi_rank() {
    let results = run_sweep(
        &tiny_spec(),
        PoolConfig {
            threads: 4,
            shard_size: 1,
        },
        3,
    );
    let multi = results
        .iter()
        .find(|r| r.scenario.geometry.channels == 2 && r.scenario.geometry.ranks == 2)
        .expect("2ch x 2rk scenario present");
    let m = multi.outcome.as_ref().expect("multi-rank scenario runs");
    assert!(m.total_insts > 0);
    assert_eq!(m.per_channel.len(), 2);
    // Per-channel counters roll up to the system totals.
    let acts: u64 = m.per_channel.iter().map(|c| c.counters.acts).sum();
    assert_eq!(acts, m.counters.acts);
}

fn tiny_campaign() -> FaultCampaignSpec {
    let mut spec = FaultCampaignSpec::smoke();
    spec.base.insts_per_core = 1_500;
    spec.base.cores = 2;
    spec.rates_ppm = vec![0, 10_000];
    spec
}

fn campaign_report_at(threads: usize, seed: u64) -> String {
    let spec = tiny_campaign();
    let runs = run_fault_campaign(
        &spec,
        PoolConfig {
            threads,
            shard_size: 1,
        },
        seed,
    );
    faults_json(seed, spec.scrub, &spec.rates_ppm, &runs)
}

#[test]
fn fault_campaign_is_identical_at_1_2_and_8_threads() {
    let base = campaign_report_at(1, 42);
    assert_eq!(base, campaign_report_at(2, 42), "2 threads diverged");
    assert_eq!(base, campaign_report_at(8, 42), "8 threads diverged");
    // The campaign actually injected something at the non-zero rate.
    assert!(base.contains("\"rate_ppm\":10000"));
    assert!(
        !base.contains("\"fault_stats\":{\"bit_flips\":0,\"invalidations\":0,\"stuck_bits\":0")
            || base.matches("\"fault_stats\":{").count() > 1
    );
}

#[test]
fn engine_retry_reuses_position_seeds_at_any_thread_count() {
    // A transiently panicking sweep must report exactly what a clean
    // sweep reports: the retry re-runs the item under its original
    // position seed, never a re-drawn one.
    use std::collections::HashSet;
    use std::sync::Mutex;
    let scenarios = tiny_spec().scenarios();
    let clean: Vec<(u64, String)> = run_sharded_robust(
        &scenarios,
        PoolConfig {
            threads: 1,
            shard_size: 1,
        },
        42,
        0,
        |s, seed| (seed, format!("{}@{seed}", s.name)),
    )
    .into_iter()
    .map(|o| o.into_result().unwrap())
    .collect();
    for threads in [1, 2, 8] {
        let attempted: Mutex<HashSet<usize>> = Mutex::new(HashSet::new());
        let flaky: Vec<(u64, String)> = run_sharded_robust(
            &scenarios,
            PoolConfig {
                threads,
                shard_size: 1,
            },
            42,
            1,
            |s, seed| {
                let index = scenarios
                    .iter()
                    .position(|c| std::ptr::eq(c, s))
                    .expect("item is a registry scenario");
                let first = attempted.lock().unwrap().insert(index);
                if first && index % 3 == 0 {
                    panic!("transient failure on {index}");
                }
                (seed, format!("{}@{seed}", s.name))
            },
        )
        .into_iter()
        .map(|o| o.into_result().unwrap())
        .collect();
        assert_eq!(flaky, clean, "retries diverged at {threads} threads");
    }
}

#[test]
fn resumed_journal_reproduces_the_uninterrupted_report() {
    let spec = tiny_spec();
    let pool = PoolConfig {
        threads: 4,
        shard_size: 1,
    };
    let dir = std::env::temp_dir().join("mithril-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sweep.mtrj");

    let baseline = sweep_json(42, &run_sweep(&spec, pool, 42));
    let full = run_sweep_journaled(&spec, pool, 42, &path, false).unwrap();
    assert_eq!(full.report, baseline, "journaled run diverged");
    assert_eq!(full.recovered, 0);

    // Simulate a kill: keep the header and a prefix of completions, with
    // a torn partial record at the cut.
    let text = std::fs::read_to_string(&path).unwrap();
    let keep: Vec<&str> = text.lines().take(8).collect();
    std::fs::write(&path, format!("{}\n9 fee1dead {{\"na", keep.join("\n"))).unwrap();

    let resumed = run_sweep_journaled(&spec, pool, 42, &path, true).unwrap();
    assert_eq!(resumed.report, baseline, "resumed report diverged");
    assert_eq!(resumed.recovered, 7);
    assert_eq!(resumed.dropped_lines, 1, "torn record must be dropped");
    assert_eq!(resumed.ran, spec.scenarios().len() - 7);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn interference_attack_is_channel_local_under_mithril() {
    let results = run_sweep(
        &tiny_spec(),
        PoolConfig {
            threads: 2,
            shard_size: 1,
        },
        5,
    );
    let find = |scheme: &str| {
        results
            .iter()
            .find(|r| {
                r.scenario.scheme_label == scheme
                    && r.scenario.workload == "channel-interference"
                    && r.scenario.geometry == mithril_dram::Geometry::table_iii_system()
            })
            .and_then(|r| r.outcome.as_ref().ok())
            .expect("interference scenario ran")
    };
    let mithril = find("mithril");
    // The hammer runs on channel 0: all preventive refreshes happen there,
    // while the victims' channel keeps streaming without RFM work.
    assert!(
        mithril.per_channel[0].rfms > 0,
        "hammered channel must see RFMs"
    );
    assert_eq!(
        mithril.per_channel[1].counters.preventive_rows, 0,
        "victim channel must not pay preventive-refresh energy"
    );
    assert_eq!(mithril.flips, 0);
}
