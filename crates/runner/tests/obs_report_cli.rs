//! End-to-end pins for the `obs report` CLI: exit codes and table output
//! over real emitted reports, including the acceptance case — a nonzero
//! exit on an injected synthetic regression.

use std::path::PathBuf;
use std::process::Command;

use mithril_runner::engine::PoolConfig;
use mithril_runner::report::{sweep_json, SweepResult};
use mithril_runner::run_sweep;
use mithril_runner::scenarios::SweepSpec;

fn tiny_sweep(seed: u64) -> Vec<SweepResult> {
    let mut spec = SweepSpec::smoke();
    spec.insts_per_core = 800;
    spec.cores = 2;
    let mut results = run_sweep(
        &spec,
        PoolConfig {
            threads: 2,
            shard_size: 1,
        },
        seed,
    );
    results.truncate(4);
    results
}

fn write_temp(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("mithril-obs-report-{name}"));
    std::fs::write(&path, content).unwrap();
    path
}

fn run_obs(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_obs"))
        .args(args)
        .output()
        .expect("obs binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn identical_reports_pass_the_gate() {
    let json = sweep_json(7, &tiny_sweep(7));
    let a = write_temp("same-a.json", &json);
    let b = write_temp("same-b.json", &json);
    let (code, stdout, _) = run_obs(&[
        "report",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--fail-on-regression",
        "5",
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("0 changed"), "{stdout}");
}

#[test]
fn injected_regression_exits_nonzero() {
    let results = tiny_sweep(42);
    let old = sweep_json(42, &results);
    let mut worse = results;
    for r in &mut worse {
        if let Ok(m) = &mut r.outcome {
            m.aggregate_ipc *= 0.80;
        }
    }
    let new = sweep_json(42, &worse);
    let a = write_temp("reg-old.json", &old);
    let b = write_temp("reg-new.json", &new);

    // Without a threshold the table prints but the exit stays 0.
    let (code, stdout, _) = run_obs(&["report", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("<-- worse"), "{stdout}");

    // With the CI gate the regression turns into a nonzero exit.
    let (code, stdout, _) = run_obs(&[
        "report",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--fail-on-regression",
        "5",
    ]);
    assert_ne!(code, 0, "{stdout}");
    assert!(stdout.contains("aggregate_ipc"), "{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");

    // The reverse direction (an improvement) passes the same gate.
    let (code, stdout, _) = run_obs(&[
        "report",
        b.to_str().unwrap(),
        a.to_str().unwrap(),
        "--fail-on-regression",
        "5",
    ]);
    assert_eq!(code, 0, "{stdout}");
}

/// Acceptance pin for the per-tenant gate: a single core's p99 blowup —
/// the noisy-neighbor failure mode — must trip `--fail-on-regression`
/// even though the aggregate latency histogram is untouched.
#[test]
fn per_tenant_p99_blowup_trips_the_gate() {
    let results = tiny_sweep(11);
    let old = sweep_json(11, &results);
    let mut worse = results;
    for r in &mut worse {
        if let Ok(m) = &mut r.outcome {
            // Blow up core 1's tail only; the system-level histogram and
            // averages stay exactly as emitted.
            let slot = m.per_core.slot(1);
            for _ in 0..4096 {
                slot.read_latency.record(50_000_000);
            }
        }
    }
    let new = sweep_json(11, &worse);
    let a = write_temp("tenant-old.json", &old);
    let b = write_temp("tenant-new.json", &new);
    let (code, stdout, _) = run_obs(&[
        "report",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--fail-on-regression",
        "5",
    ]);
    assert_ne!(code, 0, "{stdout}");
    assert!(stdout.contains("core1_p99_ps"), "{stdout}");
    assert!(stdout.contains("<-- worse"), "{stdout}");
    assert!(
        !stdout
            .lines()
            .any(|l| l.contains("read_p99_ps") && l.contains("worse")),
        "aggregate percentiles must stay clean: {stdout}"
    );
}

#[test]
fn forged_format_version_is_refused() {
    let json = sweep_json(7, &tiny_sweep(7));
    let forged = json.replace(
        &format!(
            "\"format_version\": {}",
            mithril_runner::report::FORMAT_VERSION
        ),
        "\"format_version\": 999",
    );
    let a = write_temp("forged-a.json", &json);
    let b = write_temp("forged-b.json", &forged);
    let (code, _, stderr) = run_obs(&["report", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("999"), "{stderr}");
}

#[test]
fn usage_errors_exit_2() {
    let (code, _, stderr) = run_obs(&["report", "only-one.json"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage"), "{stderr}");
    let (code, _, _) = run_obs(&["unknown-subcommand"]);
    assert_eq!(code, 2);
}
