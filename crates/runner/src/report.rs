//! Machine-readable sweep reports (`BENCH_sweep.json`).
//!
//! The writer is deliberately dependency-free and **deterministic**: field
//! order is fixed, floats are emitted with Rust's shortest-round-trip
//! formatting, and nothing time- or host-dependent enters the file. The
//! determinism regression test compares whole report strings across thread
//! counts, so keep it that way: wall-clock and worker counts belong on
//! stdout, not in the report.

use mithril_dram::EnergyCounters;
use mithril_sim::{ChannelMetrics, CoreStats, FaultStats, Metrics, PerCore, QosStats};

use crate::scenarios::{geometry_tag, Scenario};

pub use mithril_obs::{validate_format_version, FORMAT_VERSION};
use mithril_obs::{KINDS, KIND_NAMES};

/// One executed scenario with its seed and results.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// What ran.
    pub scenario: Scenario,
    /// The deterministic seed the engine assigned.
    pub seed: u64,
    /// The run's metrics, or the configuration error that prevented it.
    pub outcome: Result<Metrics, String>,
}

/// One fault-campaign run: a sweep result plus the injection counters
/// its [`FaultyEngine`](mithril_sim::FaultyEngine) wrappers accumulated.
#[derive(Debug, Clone)]
pub struct FaultRun {
    /// Injected fault rate in faults per million ACTs (0 = anchor run).
    pub rate_ppm: u64,
    /// The executed scenario and its metrics.
    pub result: SweepResult,
    /// Aggregated fault counters (`None` for the rate-0 anchor).
    pub fault_stats: Option<FaultStats>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

fn counters_json(c: &EnergyCounters) -> String {
    format!(
        "{{\"acts\":{},\"pres\":{},\"reads\":{},\"writes\":{},\"auto_refresh_rows\":{},\
         \"preventive_rows\":{},\"rfm_commands\":{},\"mrr_commands\":{}}}",
        c.acts,
        c.pres,
        c.reads,
        c.writes,
        c.auto_refresh_rows,
        c.preventive_rows,
        c.rfm_commands,
        c.mrr_commands
    )
}

fn channel_json(c: &ChannelMetrics) -> String {
    format!(
        "{{\"channel\":{},\"reads_done\":{},\"writes_done\":{},\"avg_read_latency_ns\":{},\
         \"row_hit_rate\":{},\"energy_pj\":{},\"rfms\":{},\"rfm_elisions\":{},\"arrs\":{},\
         \"throttled_acts\":{},\"max_disturbance\":{},\"flips\":{},\"counters\":{}}}",
        c.channel.0,
        c.reads_done,
        c.writes_done,
        num(c.avg_read_latency_ns),
        num(c.row_hit_rate),
        num(c.energy_pj),
        c.rfms,
        c.rfm_elisions,
        c.arrs,
        c.throttled_acts,
        c.max_disturbance,
        c.flips,
        counters_json(&c.counters)
    )
}

/// Renders the per-core attribution array: one entry per issuing core,
/// with its command shares, latency percentiles and its share of the
/// mitigation triggers (the "who is hammering" signal, rendered as an
/// exact fraction of the run's total triggers).
fn per_core_json(per_core: &PerCore<CoreStats>) -> String {
    let total_triggers: u64 = per_core.iter().map(|(_, c)| c.mitigation_triggers).sum();
    let entries: Vec<String> = per_core
        .iter()
        .map(|(core, c)| {
            let share = if total_triggers == 0 {
                0.0
            } else {
                c.mitigation_triggers as f64 / total_triggers as f64
            };
            format!(
                "{{\"core\":{core},\"acts\":{},\"reads\":{},\"writes\":{},\
                 \"throttled_acts\":{},\"rfm_triggers\":{},\"mitigation_triggers\":{},\
                 \"trigger_share\":{},\"p50_ps\":{},\"p99_ps\":{}}}",
                c.acts,
                c.reads_done,
                c.writes_done,
                c.throttled_acts,
                c.rfm_triggers,
                c.mitigation_triggers,
                num(share),
                c.read_latency.p50(),
                c.read_latency.p99()
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

/// Renders the QoS throttling summary: window count, total deferred
/// ACTs, and the per-thread suspect/throttle attribution.
fn qos_json(q: &QosStats) -> String {
    let threads: Vec<String> = q
        .per_thread
        .iter()
        .enumerate()
        .map(|(thread, t)| {
            format!(
                "{{\"thread\":{thread},\"suspect_windows\":{},\"throttled_acts\":{},\
                 \"score\":{},\"pressure\":{}}}",
                t.suspect_windows, t.throttled_acts, t.score, t.pressure
            )
        })
        .collect();
    format!(
        "{{\"windows\":{},\"throttled_acts\":{},\"per_thread\":[{}]}}",
        q.windows,
        q.throttled_acts,
        threads.join(",")
    )
}

/// Renders one run's [`Metrics`] in the deterministic report dialect.
///
/// Public because replay comparisons diff *metrics*, not scenario labels:
/// a replayed scenario is named `trace:<path>` while its live twin carries
/// the generator name, so whole-report strings can never match — this
/// projection is the byte-comparable part.
///
/// The `latency` section embeds the read/write histograms' integer
/// summaries (exact count/sum/min/max plus bucket-lower-bound
/// percentiles) and `per_core` the per-issuing-core attribution; both are
/// integer-rendered, so they are byte-identical at any thread count like
/// the rest of the report.
///
/// A `qos` section rides at the end *only* when the run had QoS
/// throttling enabled — QoS-off runs carry no QoS state at all, keeping
/// their reports byte-identical to pre-QoS builds.
pub fn metrics_json(m: &Metrics) -> String {
    let channels: Vec<String> = m.per_channel.iter().map(channel_json).collect();
    let qos = match &m.qos {
        Some(q) => format!(",\"qos\":{}", qos_json(q)),
        None => String::new(),
    };
    format!(
        "{{\"aggregate_ipc\":{},\"total_insts\":{},\"sim_time_ps\":{},\"llc_miss_rate\":{},\
         \"energy_pj\":{},\"rfms\":{},\"rfm_elisions\":{},\"arrs\":{},\"throttled_acts\":{},\
         \"avg_read_latency_ns\":{},\"max_disturbance\":{},\"flips\":{},\"counters\":{},\
         \"per_channel\":[{}],\
         \"latency\":{{\"read\":{},\"write\":{}}},\"per_core\":{}{}}}",
        num(m.aggregate_ipc),
        m.total_insts,
        m.sim_time_ps,
        num(m.llc_miss_rate),
        num(m.energy_pj),
        m.rfms,
        m.rfm_elisions,
        m.arrs,
        m.throttled_acts,
        num(m.avg_read_latency_ns),
        m.max_disturbance,
        m.flips,
        counters_json(&m.counters),
        channels.join(","),
        m.read_latency.summary_json(),
        m.write_latency.summary_json(),
        per_core_json(&m.per_core),
        qos
    )
}

fn result_json_fields(r: &SweepResult) -> String {
    let s = &r.scenario;
    let g = &s.geometry;
    let outcome = match &r.outcome {
        Ok(m) => format!("\"metrics\":{}", metrics_json(m)),
        Err(e) => format!("\"error\":\"{}\"", esc(e)),
    };
    format!(
        "\"name\":\"{}\",\"scheme\":\"{}\",\"workload\":\"{}\",\
         \"geometry\":{{\"tag\":\"{}\",\"channels\":{},\"ranks\":{},\"banks_per_rank\":{}}},\
         \"flip_th\":{},\"cores\":{},\"insts_per_core\":{},\"seed\":{},{}",
        esc(&s.name),
        esc(&s.scheme_label),
        esc(&s.workload),
        geometry_tag(g),
        g.channels,
        g.ranks,
        g.banks_per_rank,
        s.flip_th,
        s.cores,
        s.insts_per_core,
        r.seed,
        outcome
    )
}

/// Renders one sweep result as a single report entry (one line, 4-space
/// indent) — the unit the crash-safe sweep journal stores and
/// [`sweep_json_from_entries`] reassembles.
pub fn result_json(r: &SweepResult) -> String {
    format!("    {{{}}}", result_json_fields(r))
}

/// Renders [`FaultStats`] in the deterministic report dialect.
pub fn fault_stats_json(f: &FaultStats) -> String {
    format!(
        "{{\"bit_flips\":{},\"invalidations\":{},\"stuck_bits\":{},\"stuck_assertions\":{},\
         \"scrubs\":{},\"scrub_detections\":{},\"repairs\":{},\"dropped\":{}}}",
        f.bit_flips,
        f.invalidations,
        f.stuck_bits,
        f.stuck_assertions,
        f.scrubs,
        f.scrub_detections,
        f.repairs,
        f.dropped
    )
}

/// Renders only the scheme labels and metrics of a sweep — the
/// label-independent projection `trace replay --metrics-only` emits so a
/// replayed capture and its live-generated twin can be compared
/// byte-for-byte (`cmp`/`git diff`) despite their different workload
/// names.
pub fn metrics_only_json(base_seed: u64, results: &[SweepResult]) -> String {
    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            let outcome = match &r.outcome {
                Ok(m) => format!("\"metrics\":{}", metrics_json(m)),
                Err(e) => format!("\"error\":\"{}\"", esc(e)),
            };
            format!(
                "    {{\"scheme\":\"{}\",\"flip_th\":{},{}}}",
                esc(&r.scenario.scheme_label),
                r.scenario.flip_th,
                outcome
            )
        })
        .collect();
    format!(
        "{{\n  \"format_version\": {FORMAT_VERSION},\n  \"base_seed\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        base_seed,
        entries.join(",\n")
    )
}

/// Renders a whole sweep to the `BENCH_sweep.json` format.
///
/// Identical inputs render to identical strings; the engine guarantees
/// identical inputs for any worker count, so reports are comparable
/// byte-for-byte across thread counts.
pub fn sweep_json(base_seed: u64, results: &[SweepResult]) -> String {
    let entries: Vec<String> = results.iter().map(result_json).collect();
    sweep_json_from_entries(base_seed, &entries)
}

/// Assembles a `BENCH_sweep.json` report from pre-rendered
/// [`result_json`] entries (in scenario-registry order).
///
/// This is the resume path's assembly point: entries recovered from a
/// crash-safe journal and entries rendered live in the same process go
/// through the same function, so a resumed report is byte-identical to
/// an uninterrupted one.
pub fn sweep_json_from_entries(base_seed: u64, entries: &[String]) -> String {
    format!(
        "{{\n  \"format_version\": {FORMAT_VERSION},\n  \"base_seed\": {},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        base_seed,
        entries.join(",\n")
    )
}

/// Renders a fault campaign to the `BENCH_faults.json` format: the flat
/// run list (each entry a [`result_json`] record extended with its rate
/// and fault counters), followed by one degradation curve per
/// scheme × workload × geometry cell — protection (`max_disturbance`,
/// `flips`) and cost (`rfms`, `preventive_rows`) as functions of the
/// injected fault rate.
///
/// Deterministic like [`sweep_json`]: identical campaigns render to
/// identical strings at any worker count.
pub fn faults_json(base_seed: u64, scrub: bool, rates_ppm: &[u64], runs: &[FaultRun]) -> String {
    let entries: Vec<String> = runs
        .iter()
        .map(|fr| {
            let faults = match &fr.fault_stats {
                Some(f) => fault_stats_json(f),
                None => "null".to_string(),
            };
            format!(
                "    {{{},\"rate_ppm\":{},\"fault_stats\":{}}}",
                result_json_fields(&fr.result),
                fr.rate_ppm,
                faults
            )
        })
        .collect();

    // One curve per base cell, in first-appearance order (the campaign
    // expands rate-major, so the rate-0 pass fixes the cell order).
    let mut cells: Vec<(String, String, String)> = Vec::new();
    for fr in runs {
        let s = &fr.result.scenario;
        let cell = (
            s.scheme_label.clone(),
            s.workload.clone(),
            geometry_tag(&s.geometry),
        );
        if !cells.contains(&cell) {
            cells.push(cell);
        }
    }
    let curves: Vec<String> = cells
        .iter()
        .map(|(scheme, workload, geom)| {
            let points: Vec<String> = runs
                .iter()
                .filter(|fr| {
                    let s = &fr.result.scenario;
                    s.scheme_label == *scheme
                        && s.workload == *workload
                        && geometry_tag(&s.geometry) == *geom
                })
                .map(|fr| match &fr.result.outcome {
                    Ok(m) => format!(
                        "{{\"rate_ppm\":{},\"injected\":{},\"repairs\":{},\
                         \"max_disturbance\":{},\"flips\":{},\"rfms\":{},\"preventive_rows\":{}}}",
                        fr.rate_ppm,
                        fr.fault_stats.as_ref().map_or(0, |f| f.injected()),
                        fr.fault_stats.as_ref().map_or(0, |f| f.repairs),
                        m.max_disturbance,
                        m.flips,
                        m.rfms,
                        m.counters.preventive_rows
                    ),
                    Err(e) => format!("{{\"rate_ppm\":{},\"error\":\"{}\"}}", fr.rate_ppm, esc(e)),
                })
                .collect();
            format!(
                "    {{\"scheme\":\"{}\",\"workload\":\"{}\",\"geometry\":\"{}\",\"points\":[{}]}}",
                esc(scheme),
                esc(workload),
                geom,
                points.join(",")
            )
        })
        .collect();

    let rates: Vec<String> = rates_ppm.iter().map(|r| r.to_string()).collect();
    format!(
        "{{\n  \"format_version\": {FORMAT_VERSION},\n  \"base_seed\": {},\n  \"scrub\": {},\n  \"rates_ppm\": [{}],\n  \"runs\": [\n{}\n  ],\n  \"curves\": [\n{}\n  ]\n}}\n",
        base_seed,
        scrub,
        rates.join(","),
        entries.join(",\n"),
        curves.join(",\n")
    )
}

/// Per-tenant outcome summary of one noisy-neighbor run: worst victim
/// tail latency, the hammering tenant's tail, an activations fairness
/// ratio, flip safety, and QoS throttle attribution.
///
/// The noisy-neighbor mix pins the hammering tenant on the **highest
/// core index** (victims occupy the lower indices), so tenant roles are
/// recovered from core position, not from a heuristic.
fn tenant_summary_json(m: &Metrics) -> String {
    let hammer = m.per_core.iter().map(|(core, _)| core).max();
    let victims: Vec<&CoreStats> = m
        .per_core
        .iter()
        .filter(|(core, _)| Some(*core) != hammer)
        .map(|(_, c)| c)
        .collect();
    let victim_p50 = victims
        .iter()
        .map(|c| c.read_latency.p50())
        .max()
        .unwrap_or(0);
    let victim_p99 = victims
        .iter()
        .map(|c| c.read_latency.p99())
        .max()
        .unwrap_or(0);
    let hammer_p99 = hammer
        .and_then(|h| m.per_core.get(h))
        .map_or(0, |c| c.read_latency.p99());
    let acts: Vec<u64> = m.per_core.iter().map(|(_, c)| c.acts).collect();
    let fairness = match (acts.iter().min(), acts.iter().max()) {
        (Some(&lo), Some(&hi)) if hi > 0 => lo as f64 / hi as f64,
        _ => 0.0,
    };
    format!(
        "{{\"victim_p50_ps\":{victim_p50},\"victim_p99_ps\":{victim_p99},\
         \"hammer_p99_ps\":{hammer_p99},\"fairness_acts\":{},\"flips\":{},\
         \"max_disturbance\":{},\"qos_throttled_acts\":{}}}",
        num(fairness),
        m.flips,
        m.max_disturbance,
        m.qos.as_ref().map_or(0, |q| q.throttled_acts)
    )
}

/// Renders a QoS campaign to the `BENCH_qos.json` format: the flat run
/// list (QoS-off pass first, then the `+qos` pass), followed by one
/// comparison pair per scheme × geometry cell — the per-tenant summaries
/// of the QoS-off and QoS-on runs side by side, so victim tail latency,
/// fairness and flip safety can be read off without re-deriving them
/// from the per-core arrays.
///
/// Deterministic like [`sweep_json`]: identical campaigns render to
/// identical strings at any worker count.
pub fn qos_campaign_json(base_seed: u64, results: &[SweepResult]) -> String {
    let entries: Vec<String> = results.iter().map(result_json).collect();
    let pairs: Vec<String> = results
        .iter()
        .filter(|r| !r.scenario.name.ends_with("+qos"))
        .filter_map(|off| {
            let on = results
                .iter()
                .find(|r| r.scenario.name == format!("{}+qos", off.scenario.name))?;
            let (Ok(m_off), Ok(m_on)) = (&off.outcome, &on.outcome) else {
                return None;
            };
            Some(format!(
                "    {{\"scheme\":\"{}\",\"workload\":\"{}\",\"geometry\":\"{}\",\
                 \"off\":{},\"qos\":{}}}",
                esc(&off.scenario.scheme_label),
                esc(&off.scenario.workload),
                geometry_tag(&off.scenario.geometry),
                tenant_summary_json(m_off),
                tenant_summary_json(m_on)
            ))
        })
        .collect();
    format!(
        "{{\n  \"format_version\": {FORMAT_VERSION},\n  \"base_seed\": {},\n  \"scenarios\": [\n{}\n  ],\n  \"pairs\": [\n{}\n  ]\n}}\n",
        base_seed,
        entries.join(",\n"),
        pairs.join(",\n")
    )
}

/// One observed position's exact per-kind event counts, as recorded by
/// the observability ring sinks (counts are exact even when the ring
/// dropped payloads).
#[derive(Debug, Clone)]
pub struct ObsCountEntry {
    /// Position of the scenario in the sweep registry.
    pub index: usize,
    /// Scenario name.
    pub name: String,
    /// Seed the engine assigned to this position.
    pub seed: u64,
    /// Exact per-kind counts summed over channels, indexed like
    /// [`KIND_NAMES`].
    pub counts: [u64; KINDS],
    /// Events evicted from the bounded rings (payloads lost, counts kept).
    pub dropped: u64,
}

fn kind_counts_json(counts: &[u64; KINDS]) -> String {
    let fields: Vec<String> = KIND_NAMES
        .iter()
        .zip(counts.iter())
        .map(|(name, c)| format!("\"{name}\":{c}"))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Renders the aggregate observability baseline (`BENCH_obs.json`): exact
/// per-kind event counts for every observed sweep position plus the
/// sweep-wide totals. Deterministic like [`sweep_json`] — counts depend
/// only on simulated execution, never on thread count or ring capacity,
/// so CI can diff this file byte-for-byte against a committed baseline.
///
/// Ring drops surface as a top-level `warnings` array (one entry per
/// affected position) rather than only the silent `total_dropped`
/// counter; `obs report` flags any nonzero drop it ingests.
pub fn obs_counts_json(base_seed: u64, entries: &[ObsCountEntry]) -> String {
    let mut totals = [0u64; KINDS];
    let mut total_dropped = 0u64;
    for e in entries {
        for (t, c) in totals.iter_mut().zip(e.counts.iter()) {
            *t += c;
        }
        total_dropped += e.dropped;
    }
    let warnings: Vec<String> = entries
        .iter()
        .filter(|e| e.dropped > 0)
        .map(|e| {
            format!(
                "position {} ({}) ring dropped {} events (payloads lost, counts exact)",
                e.index, e.name, e.dropped
            )
        })
        .collect();
    let lines: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "    {{\"index\":{},\"name\":\"{}\",\"seed\":{},\"counts\":{},\"dropped\":{}}}",
                e.index,
                esc(&e.name),
                e.seed,
                kind_counts_json(&e.counts),
                e.dropped
            )
        })
        .collect();
    format!(
        "{{\n  \"format_version\": {FORMAT_VERSION},\n  \"base_seed\": {},\n  \"positions\": [\n{}\n  ],\n  \"totals\": {},\n  \"total_dropped\": {},\n  \"warnings\": [{}]\n}}\n",
        base_seed,
        lines.join(",\n"),
        kind_counts_json(&totals),
        total_dropped,
        mithril_obs::warnings_json(&warnings)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::SweepSpec;

    fn sample_results() -> Vec<SweepResult> {
        let spec = SweepSpec::smoke();
        let mut scenarios = spec.scenarios();
        scenarios.truncate(2);
        scenarios
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let outcome = s.run(i as u64 + 1);
                SweepResult {
                    scenario: s,
                    seed: i as u64 + 1,
                    outcome,
                }
            })
            .collect()
    }

    #[test]
    fn report_is_valid_enough_json_and_deterministic() {
        let results = sample_results();
        let a = sweep_json(7, &results);
        let b = sweep_json(7, &results);
        assert_eq!(a, b);
        // Structural sanity without a JSON parser: balanced braces and
        // brackets, expected keys present.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
        assert!(a.contains("\"base_seed\": 7"));
        assert!(a.contains("\"per_channel\""));
        assert!(a.contains("\"geometry\""));
        // The latency histograms and per-core attribution ride in every
        // metrics object, integer-rendered.
        assert!(a.contains("\"latency\":{\"read\":{\"count\":"));
        assert!(a.contains("\"p999_ps\":"));
        assert!(a.contains("\"per_core\":[{\"core\":0,"));
        assert!(a.contains("\"trigger_share\":"));
    }

    #[test]
    fn per_core_trigger_shares_sum_to_one() {
        let mut per_core: PerCore<CoreStats> = PerCore::new();
        per_core.slot(0).mitigation_triggers = 3;
        per_core.slot(1).mitigation_triggers = 1;
        let json = per_core_json(&per_core);
        assert!(json.contains("\"trigger_share\":0.75"), "{json}");
        assert!(json.contains("\"trigger_share\":0.25"), "{json}");
        // No triggers at all: shares are 0, not NaN.
        let json = per_core_json(&PerCore::new());
        assert_eq!(json, "[]");
    }

    #[test]
    fn obs_counts_surface_drops_as_warnings() {
        let entry = |index: usize, dropped: u64| ObsCountEntry {
            index,
            name: format!("scenario-{index}"),
            seed: 1,
            counts: [0; KINDS],
            dropped,
        };
        let clean = obs_counts_json(1, &[entry(0, 0)]);
        assert!(clean.contains("\"warnings\": []"), "{clean}");
        let noisy = obs_counts_json(1, &[entry(0, 0), entry(1, 9)]);
        assert!(
            noisy.contains("\"warnings\": [\"position 1 (scenario-1) ring dropped 9 events"),
            "{noisy}"
        );
    }

    #[test]
    fn errors_serialize_without_metrics() {
        let mut results = sample_results();
        results[0].outcome = Err("no \"config\"".into());
        let s = sweep_json(1, &results);
        assert!(s.contains("\"error\":\"no \\\"config\\\"\""));
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(1.5), "1.5");
    }
}
