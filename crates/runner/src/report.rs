//! Machine-readable sweep reports (`BENCH_sweep.json`).
//!
//! The writer is deliberately dependency-free and **deterministic**: field
//! order is fixed, floats are emitted with Rust's shortest-round-trip
//! formatting, and nothing time- or host-dependent enters the file. The
//! determinism regression test compares whole report strings across thread
//! counts, so keep it that way: wall-clock and worker counts belong on
//! stdout, not in the report.

use mithril_dram::EnergyCounters;
use mithril_sim::{ChannelMetrics, Metrics};

use crate::scenarios::{geometry_tag, Scenario};

/// One executed scenario with its seed and results.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// What ran.
    pub scenario: Scenario,
    /// The deterministic seed the engine assigned.
    pub seed: u64,
    /// The run's metrics, or the configuration error that prevented it.
    pub outcome: Result<Metrics, String>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

fn counters_json(c: &EnergyCounters) -> String {
    format!(
        "{{\"acts\":{},\"pres\":{},\"reads\":{},\"writes\":{},\"auto_refresh_rows\":{},\
         \"preventive_rows\":{},\"rfm_commands\":{},\"mrr_commands\":{}}}",
        c.acts,
        c.pres,
        c.reads,
        c.writes,
        c.auto_refresh_rows,
        c.preventive_rows,
        c.rfm_commands,
        c.mrr_commands
    )
}

fn channel_json(c: &ChannelMetrics) -> String {
    format!(
        "{{\"channel\":{},\"reads_done\":{},\"writes_done\":{},\"avg_read_latency_ns\":{},\
         \"row_hit_rate\":{},\"energy_pj\":{},\"rfms\":{},\"rfm_elisions\":{},\"arrs\":{},\
         \"throttled_acts\":{},\"max_disturbance\":{},\"flips\":{},\"counters\":{}}}",
        c.channel.0,
        c.reads_done,
        c.writes_done,
        num(c.avg_read_latency_ns),
        num(c.row_hit_rate),
        num(c.energy_pj),
        c.rfms,
        c.rfm_elisions,
        c.arrs,
        c.throttled_acts,
        c.max_disturbance,
        c.flips,
        counters_json(&c.counters)
    )
}

/// Renders one run's [`Metrics`] in the deterministic report dialect.
///
/// Public because replay comparisons diff *metrics*, not scenario labels:
/// a replayed scenario is named `trace:<path>` while its live twin carries
/// the generator name, so whole-report strings can never match — this
/// projection is the byte-comparable part.
pub fn metrics_json(m: &Metrics) -> String {
    let channels: Vec<String> = m.per_channel.iter().map(channel_json).collect();
    format!(
        "{{\"aggregate_ipc\":{},\"total_insts\":{},\"sim_time_ps\":{},\"llc_miss_rate\":{},\
         \"energy_pj\":{},\"rfms\":{},\"rfm_elisions\":{},\"arrs\":{},\"throttled_acts\":{},\
         \"avg_read_latency_ns\":{},\"max_disturbance\":{},\"flips\":{},\"counters\":{},\
         \"per_channel\":[{}]}}",
        num(m.aggregate_ipc),
        m.total_insts,
        m.sim_time_ps,
        num(m.llc_miss_rate),
        num(m.energy_pj),
        m.rfms,
        m.rfm_elisions,
        m.arrs,
        m.throttled_acts,
        num(m.avg_read_latency_ns),
        m.max_disturbance,
        m.flips,
        counters_json(&m.counters),
        channels.join(",")
    )
}

fn result_json(r: &SweepResult) -> String {
    let s = &r.scenario;
    let g = &s.geometry;
    let outcome = match &r.outcome {
        Ok(m) => format!("\"metrics\":{}", metrics_json(m)),
        Err(e) => format!("\"error\":\"{}\"", esc(e)),
    };
    format!(
        "    {{\"name\":\"{}\",\"scheme\":\"{}\",\"workload\":\"{}\",\
         \"geometry\":{{\"tag\":\"{}\",\"channels\":{},\"ranks\":{},\"banks_per_rank\":{}}},\
         \"flip_th\":{},\"cores\":{},\"insts_per_core\":{},\"seed\":{},{}}}",
        esc(&s.name),
        esc(&s.scheme_label),
        esc(&s.workload),
        geometry_tag(g),
        g.channels,
        g.ranks,
        g.banks_per_rank,
        s.flip_th,
        s.cores,
        s.insts_per_core,
        r.seed,
        outcome
    )
}

/// Renders only the scheme labels and metrics of a sweep — the
/// label-independent projection `trace replay --metrics-only` emits so a
/// replayed capture and its live-generated twin can be compared
/// byte-for-byte (`cmp`/`git diff`) despite their different workload
/// names.
pub fn metrics_only_json(base_seed: u64, results: &[SweepResult]) -> String {
    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            let outcome = match &r.outcome {
                Ok(m) => format!("\"metrics\":{}", metrics_json(m)),
                Err(e) => format!("\"error\":\"{}\"", esc(e)),
            };
            format!(
                "    {{\"scheme\":\"{}\",\"flip_th\":{},{}}}",
                esc(&r.scenario.scheme_label),
                r.scenario.flip_th,
                outcome
            )
        })
        .collect();
    format!(
        "{{\n  \"base_seed\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        base_seed,
        entries.join(",\n")
    )
}

/// Renders a whole sweep to the `BENCH_sweep.json` format.
///
/// Identical inputs render to identical strings; the engine guarantees
/// identical inputs for any worker count, so reports are comparable
/// byte-for-byte across thread counts.
pub fn sweep_json(base_seed: u64, results: &[SweepResult]) -> String {
    let entries: Vec<String> = results.iter().map(result_json).collect();
    format!(
        "{{\n  \"base_seed\": {},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        base_seed,
        entries.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::SweepSpec;

    fn sample_results() -> Vec<SweepResult> {
        let spec = SweepSpec::smoke();
        let mut scenarios = spec.scenarios();
        scenarios.truncate(2);
        scenarios
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let outcome = s.run(i as u64 + 1);
                SweepResult {
                    scenario: s,
                    seed: i as u64 + 1,
                    outcome,
                }
            })
            .collect()
    }

    #[test]
    fn report_is_valid_enough_json_and_deterministic() {
        let results = sample_results();
        let a = sweep_json(7, &results);
        let b = sweep_json(7, &results);
        assert_eq!(a, b);
        // Structural sanity without a JSON parser: balanced braces and
        // brackets, expected keys present.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
        assert!(a.contains("\"base_seed\": 7"));
        assert!(a.contains("\"per_channel\""));
        assert!(a.contains("\"geometry\""));
    }

    #[test]
    fn errors_serialize_without_metrics() {
        let mut results = sample_results();
        results[0].outcome = Err("no \"config\"".into());
        let s = sweep_json(1, &results);
        assert!(s.contains("\"error\":\"no \\\"config\\\"\""));
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(1.5), "1.5");
    }
}
