//! The sweep runner: executes a scheme × workload × geometry sweep on the
//! sharded parallel engine and writes `BENCH_sweep.json`.
//!
//! ```text
//! cargo run --release -p mithril-runner --bin sweep -- [options]
//!   --smoke           tiny CI sweep (default)
//!   --full            the full default sweep
//!   --threads N       worker threads (default: host parallelism, max 8)
//!   --shard-size N    scenarios per shard (default 1)
//!   --seed N          base seed (default 1)
//!   --insts N         override instructions per core
//!   --cores N         override cores per scenario
//!   --out PATH        report path (default BENCH_sweep.json,
//!                     BENCH_faults.json in --faults mode)
//!   --obs DIR         attach observability: per-scenario event logs
//!                     (events.jsonl), cycle-domain time series
//!                     (series.csv) and summaries under DIR, plus the
//!                     aggregate DIR/obs_counts.json baseline
//!   --progress        heartbeat on stderr: one `# progress: d/total`
//!                     line per finished scenario (journal-aware)
//!   --journal PATH    crash-safe mode: append each completed scenario to
//!                     PATH as it finishes
//!   --resume          recover completed scenarios from --journal PATH
//!                     and run only what is missing
//!   --faults          fault-injection campaign: the smoke grid crossed
//!                     with a soft-error rate ladder, reported as
//!                     degradation curves per scheme
//!   --fault-rates R,R,...  override the campaign's rates (ppm of ACTs)
//!   --no-scrub        disable scrub (self-check + repair) in --faults
//!   --qos             multi-tenant QoS campaign: the noisy-neighbor grid
//!                     run with QoS off and on, reported as per-tenant
//!                     comparison pairs (default out: BENCH_qos.json)
//! ```
//!
//! The report contains only deterministic content; wall-clock and thread
//! count are printed to stdout so the file stays byte-comparable across
//! worker counts (the determinism regression test relies on this).
//!
//! Operational errors — malformed arguments, an unwritable report path, a
//! foreign journal — exit nonzero with a one-line message, not a panic
//! backtrace.

use std::time::Instant;

use mithril_runner::engine::{default_threads, PoolConfig};
use mithril_runner::scenarios::{FaultCampaignSpec, QosCampaignSpec, SweepSpec};
use mithril_runner::{
    report, run_fault_campaign, run_qos_campaign, run_sweep_journaled_with, run_sweep_observed,
    run_sweep_with, write_obs_outputs, Progress,
};
use mithril_sim::ObsConfig;

struct Args {
    smoke: bool,
    threads: usize,
    shard_size: usize,
    seed: u64,
    insts: Option<u64>,
    cores: Option<usize>,
    out: Option<String>,
    obs: Option<String>,
    progress: bool,
    journal: Option<String>,
    resume: bool,
    faults: bool,
    fault_rates: Option<Vec<u64>>,
    scrub: bool,
    qos: bool,
}

fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("sweep: {msg}");
    std::process::exit(2);
}

fn value<'a>(args: &'a [String], i: &mut usize, usage: &str) -> &'a str {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| die(format!("missing value: expected {usage}")))
        .as_str()
}

fn parsed<T: std::str::FromStr>(args: &[String], i: &mut usize, usage: &str) -> T {
    let raw = value(args, i, usage);
    raw.parse()
        .unwrap_or_else(|_| die(format!("invalid value {raw:?}: expected {usage}")))
}

fn parse_args() -> Args {
    let mut out = Args {
        smoke: true,
        threads: default_threads(),
        shard_size: 1,
        seed: 1,
        insts: None,
        cores: None,
        out: None,
        obs: None,
        progress: false,
        journal: None,
        resume: false,
        faults: false,
        fault_rates: None,
        scrub: true,
        qos: false,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => out.smoke = true,
            "--full" => out.smoke = false,
            "--threads" => out.threads = parsed(&args, &mut i, "--threads N"),
            "--shard-size" => out.shard_size = parsed(&args, &mut i, "--shard-size N"),
            "--seed" => out.seed = parsed(&args, &mut i, "--seed N"),
            "--insts" => out.insts = Some(parsed(&args, &mut i, "--insts N")),
            "--cores" => out.cores = Some(parsed(&args, &mut i, "--cores N")),
            "--out" => out.out = Some(value(&args, &mut i, "--out PATH").to_string()),
            "--obs" => out.obs = Some(value(&args, &mut i, "--obs DIR").to_string()),
            "--progress" => out.progress = true,
            "--journal" => out.journal = Some(value(&args, &mut i, "--journal PATH").to_string()),
            "--resume" => out.resume = true,
            "--faults" => out.faults = true,
            "--fault-rates" => {
                let raw = value(&args, &mut i, "--fault-rates R,R,...");
                let rates: Result<Vec<u64>, _> = raw.split(',').map(str::parse).collect();
                out.fault_rates = Some(rates.unwrap_or_else(|_| {
                    die(format!(
                        "invalid value {raw:?}: expected --fault-rates R,R,..."
                    ))
                }));
            }
            "--no-scrub" => out.scrub = false,
            "--qos" => out.qos = true,
            other => die(format!(
                "unknown argument {other} (see --help in the crate docs)"
            )),
        }
        i += 1;
    }
    if out.resume && out.journal.is_none() {
        die("--resume requires --journal PATH");
    }
    if out.faults && out.journal.is_some() {
        die("--faults and --journal are mutually exclusive");
    }
    if out.obs.is_some() && out.journal.is_some() {
        die("--obs and --journal are mutually exclusive");
    }
    if out.obs.is_some() && out.faults {
        die("--obs and --faults are mutually exclusive");
    }
    if out.qos && (out.faults || out.journal.is_some() || out.obs.is_some()) {
        die("--qos is mutually exclusive with --faults, --journal and --obs");
    }
    out
}

fn write_report(path: &str, json: &str) {
    std::fs::write(path, json).unwrap_or_else(|e| die(format!("cannot write report {path}: {e}")));
}

fn base_spec(args: &Args) -> SweepSpec {
    let mut spec = if args.smoke {
        SweepSpec::smoke()
    } else {
        SweepSpec::full()
    };
    if let Some(insts) = args.insts {
        spec.insts_per_core = insts;
    }
    if let Some(cores) = args.cores {
        spec.cores = cores;
    }
    spec
}

fn run_faults_mode(args: &Args, pool: PoolConfig) {
    let mut spec = FaultCampaignSpec::smoke();
    if !args.smoke {
        spec.base = SweepSpec::full();
    }
    if let Some(insts) = args.insts {
        spec.base.insts_per_core = insts;
    }
    if let Some(cores) = args.cores {
        spec.base.cores = cores;
    }
    if let Some(rates) = &args.fault_rates {
        spec.rates_ppm = rates.clone();
    }
    spec.scrub = args.scrub;

    let n = spec.scenarios().len();
    println!(
        "# fault campaign: {n} runs ({} base scenarios x {} rates, scrub {})",
        spec.base.scenarios().len(),
        spec.rates_ppm.len(),
        if spec.scrub { "on" } else { "off" }
    );
    println!(
        "# engine: {} threads, shard size {}, base seed {}",
        pool.threads, pool.shard_size, args.seed
    );

    let t0 = Instant::now();
    let runs = run_fault_campaign(&spec, pool, args.seed);
    let wall = t0.elapsed();

    println!(
        "{:<48} {:>9} {:>8} {:>12} {:>6} {:>9} {:>8}",
        "run", "rate_ppm", "rfms", "disturb(max)", "flips", "injected", "repairs"
    );
    for r in &runs {
        match &r.result.outcome {
            Ok(m) => println!(
                "{:<48} {:>9} {:>8} {:>12} {:>6} {:>9} {:>8}",
                r.result.scenario.name,
                r.rate_ppm,
                m.rfms,
                m.max_disturbance,
                m.flips,
                r.fault_stats.as_ref().map_or(0, |f| f.injected()),
                r.fault_stats.as_ref().map_or(0, |f| f.repairs),
            ),
            Err(e) => println!("{:<48} unavailable: {e}", r.result.scenario.name),
        }
    }

    let out = args.out.as_deref().unwrap_or("BENCH_faults.json");
    let json = report::faults_json(args.seed, spec.scrub, &spec.rates_ppm, &runs);
    write_report(out, &json);
    let ok = runs.iter().filter(|r| r.result.outcome.is_ok()).count();
    println!(
        "# {ok}/{} runs ok; wall-clock {:.2}s at {} threads; wrote {out}",
        runs.len(),
        wall.as_secs_f64(),
        pool.threads,
    );
}

fn run_qos_mode(args: &Args, pool: PoolConfig) {
    let mut spec = if args.smoke {
        QosCampaignSpec::smoke()
    } else {
        QosCampaignSpec::full()
    };
    if let Some(insts) = args.insts {
        spec.base.insts_per_core = insts;
    }
    if let Some(cores) = args.cores {
        spec.base.cores = cores;
    }

    let n = spec.scenarios().len();
    println!(
        "# qos campaign: {n} runs ({} base scenarios, off + throttled passes)",
        spec.base.scenarios().len()
    );
    println!(
        "# engine: {} threads, shard size {}, base seed {}",
        pool.threads, pool.shard_size, args.seed
    );

    let heartbeat = args.progress.then(|| Progress::new(n));
    let t0 = Instant::now();
    let results = run_qos_campaign(&spec, pool, args.seed, heartbeat.as_ref());
    let wall = t0.elapsed();

    println!(
        "{:<48} {:>12} {:>12} {:>9} {:>6} {:>9}",
        "run", "victim_p99", "hammer_p99", "fairness", "flips", "qos_thr"
    );
    for r in &results {
        match &r.outcome {
            Ok(m) => {
                let hammer = m.per_core.iter().map(|(core, _)| core).max();
                let victim_p99 = m
                    .per_core
                    .iter()
                    .filter(|(core, _)| Some(*core) != hammer)
                    .map(|(_, c)| c.read_latency.p99())
                    .max()
                    .unwrap_or(0);
                let hammer_p99 = hammer
                    .and_then(|h| m.per_core.get(h))
                    .map_or(0, |c| c.read_latency.p99());
                let acts: Vec<u64> = m.per_core.iter().map(|(_, c)| c.acts).collect();
                let fairness = match (acts.iter().min(), acts.iter().max()) {
                    (Some(&lo), Some(&hi)) if hi > 0 => lo as f64 / hi as f64,
                    _ => 0.0,
                };
                println!(
                    "{:<48} {:>12} {:>12} {:>9.3} {:>6} {:>9}",
                    r.scenario.name,
                    victim_p99,
                    hammer_p99,
                    fairness,
                    m.flips,
                    m.qos.as_ref().map_or(0, |q| q.throttled_acts)
                );
            }
            Err(e) => println!("{:<48} unavailable: {e}", r.scenario.name),
        }
    }

    let out = args.out.as_deref().unwrap_or("BENCH_qos.json");
    let json = report::qos_campaign_json(args.seed, &results);
    write_report(out, &json);
    let ok = results.iter().filter(|r| r.outcome.is_ok()).count();
    println!(
        "# {ok}/{} runs ok; wall-clock {:.2}s at {} threads; wrote {out}",
        results.len(),
        wall.as_secs_f64(),
        pool.threads,
    );
}

fn main() {
    let args = parse_args();
    let pool = PoolConfig {
        threads: args.threads,
        shard_size: args.shard_size,
    };
    if args.faults {
        run_faults_mode(&args, pool);
        return;
    }
    if args.qos {
        run_qos_mode(&args, pool);
        return;
    }

    let spec = base_spec(&args);
    let n = spec.scenarios().len();
    println!(
        "# sweep: {n} scenarios ({} geometries x {} schemes x {} workloads, minus skips)",
        spec.geometries.len(),
        spec.schemes.len(),
        spec.workloads.len()
    );
    println!(
        "# engine: {} threads, shard size {}, base seed {}",
        pool.threads, pool.shard_size, args.seed
    );

    let out = args.out.as_deref().unwrap_or("BENCH_sweep.json");
    let t0 = Instant::now();
    if let Some(journal) = &args.journal {
        let sweep = run_sweep_journaled_with(
            &spec,
            pool,
            args.seed,
            std::path::Path::new(journal),
            args.resume,
            args.progress,
        )
        .unwrap_or_else(|e| die(e));
        let wall = t0.elapsed();
        write_report(out, &sweep.report);
        println!(
            "# journal {journal}: {} recovered, {} run, {} corrupt line(s) dropped",
            sweep.recovered, sweep.ran, sweep.dropped_lines
        );
        println!(
            "# {n} scenarios; wall-clock {:.2}s at {} threads; wrote {out}",
            wall.as_secs_f64(),
            pool.threads,
        );
        return;
    }

    let heartbeat = args.progress.then(|| Progress::new(n));
    let (results, obs_written) = if let Some(obs_dir) = &args.obs {
        let observed = run_sweep_observed(
            &spec,
            pool,
            args.seed,
            ObsConfig::default(),
            heartbeat.as_ref(),
        );
        let dir = std::path::Path::new(obs_dir);
        write_obs_outputs(dir, args.seed, &observed).unwrap_or_else(|e| die(e));
        let results: Vec<_> = observed.into_iter().map(|(r, _)| r).collect();
        (results, Some(obs_dir.as_str()))
    } else {
        (
            run_sweep_with(&spec, pool, args.seed, heartbeat.as_ref()),
            None,
        )
    };
    let wall = t0.elapsed();

    println!(
        "{:<40} {:>9} {:>10} {:>8} {:>12} {:>6}",
        "scenario", "agg_ipc", "energy_pj", "rfms", "disturb(max)", "flips"
    );
    for r in &results {
        match &r.outcome {
            Ok(m) => println!(
                "{:<40} {:>9.3} {:>10.3e} {:>8} {:>12} {:>6}",
                r.scenario.name, m.aggregate_ipc, m.energy_pj, m.rfms, m.max_disturbance, m.flips
            ),
            Err(e) => println!("{:<40} unavailable: {e}", r.scenario.name),
        }
    }

    let json = report::sweep_json(args.seed, &results);
    write_report(out, &json);
    let ok = results.iter().filter(|r| r.outcome.is_ok()).count();
    if let Some(dir) = obs_written {
        println!("# obs: wrote event logs, time series and {dir}/obs_counts.json");
    }
    println!(
        "# {ok}/{} scenarios ok; wall-clock {:.2}s at {} threads; wrote {out}",
        results.len(),
        wall.as_secs_f64(),
        pool.threads,
    );
}
