//! The sweep runner: executes a scheme × workload × geometry sweep on the
//! sharded parallel engine and writes `BENCH_sweep.json`.
//!
//! ```text
//! cargo run --release -p mithril-runner --bin sweep -- [options]
//!   --smoke           tiny CI sweep (default)
//!   --full            the full default sweep
//!   --threads N       worker threads (default: host parallelism, max 8)
//!   --shard-size N    scenarios per shard (default 1)
//!   --seed N          base seed (default 1)
//!   --insts N         override instructions per core
//!   --cores N         override cores per scenario
//!   --out PATH        report path (default BENCH_sweep.json)
//! ```
//!
//! The report contains only deterministic content; wall-clock and thread
//! count are printed to stdout so the file stays byte-comparable across
//! worker counts (the determinism regression test relies on this).

use std::time::Instant;

use mithril_runner::engine::{default_threads, PoolConfig};
use mithril_runner::scenarios::SweepSpec;
use mithril_runner::{report, run_sweep};

struct Args {
    smoke: bool,
    threads: usize,
    shard_size: usize,
    seed: u64,
    insts: Option<u64>,
    cores: Option<usize>,
    out: String,
}

fn value<'a>(args: &'a [String], i: &mut usize, usage: &str) -> &'a str {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| panic!("missing value: expected {usage}"))
        .as_str()
}

fn parse_args() -> Args {
    let mut out = Args {
        smoke: true,
        threads: default_threads(),
        shard_size: 1,
        seed: 1,
        insts: None,
        cores: None,
        out: "BENCH_sweep.json".to_string(),
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => out.smoke = true,
            "--full" => out.smoke = false,
            "--threads" => {
                out.threads = value(&args, &mut i, "--threads N")
                    .parse()
                    .expect("--threads N")
            }
            "--shard-size" => {
                out.shard_size = value(&args, &mut i, "--shard-size N")
                    .parse()
                    .expect("--shard-size N")
            }
            "--seed" => out.seed = value(&args, &mut i, "--seed N").parse().expect("--seed N"),
            "--insts" => {
                out.insts = Some(
                    value(&args, &mut i, "--insts N")
                        .parse()
                        .expect("--insts N"),
                )
            }
            "--cores" => {
                out.cores = Some(
                    value(&args, &mut i, "--cores N")
                        .parse()
                        .expect("--cores N"),
                )
            }
            "--out" => out.out = value(&args, &mut i, "--out PATH").to_string(),
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    out
}

fn main() {
    let args = parse_args();
    let mut spec = if args.smoke {
        SweepSpec::smoke()
    } else {
        SweepSpec::full()
    };
    if let Some(insts) = args.insts {
        spec.insts_per_core = insts;
    }
    if let Some(cores) = args.cores {
        spec.cores = cores;
    }

    let pool = PoolConfig {
        threads: args.threads,
        shard_size: args.shard_size,
    };
    let n = spec.scenarios().len();
    println!(
        "# sweep: {n} scenarios ({} geometries x {} schemes x {} workloads, minus skips)",
        spec.geometries.len(),
        spec.schemes.len(),
        spec.workloads.len()
    );
    println!(
        "# engine: {} threads, shard size {}, base seed {}",
        pool.threads, pool.shard_size, args.seed
    );

    let t0 = Instant::now();
    let results = run_sweep(&spec, pool, args.seed);
    let wall = t0.elapsed();

    println!(
        "{:<40} {:>9} {:>10} {:>8} {:>12} {:>6}",
        "scenario", "agg_ipc", "energy_pj", "rfms", "disturb(max)", "flips"
    );
    for r in &results {
        match &r.outcome {
            Ok(m) => println!(
                "{:<40} {:>9.3} {:>10.3e} {:>8} {:>12} {:>6}",
                r.scenario.name, m.aggregate_ipc, m.energy_pj, m.rfms, m.max_disturbance, m.flips
            ),
            Err(e) => println!("{:<40} unavailable: {e}", r.scenario.name),
        }
    }

    let json = report::sweep_json(args.seed, &results);
    std::fs::write(&args.out, &json).expect("write report");
    let ok = results.iter().filter(|r| r.outcome.is_ok()).count();
    println!(
        "# {ok}/{} scenarios ok; wall-clock {:.2}s at {} threads; wrote {}",
        results.len(),
        wall.as_secs_f64(),
        pool.threads,
        args.out
    );
}
