//! The `trace` CLI: capture, inspect, convert and replay access traces.
//!
//! ```text
//! cargo run --release -p mithril-runner --bin trace -- <command> [options]
//!
//! record    render a registry workload to an MTRC capture
//!   --workload NAME    registry workload (mix-high, attack-multi, ...)
//!   --out PATH         capture file to write
//!   --cores N          threads to record          (default 4)
//!   --insts N          instructions per core      (default 20000)
//!   --seed N           base sweep seed            (default 1)
//!   --channels N       geometry override          (default 2: Table III)
//!   --ranks N          geometry override          (default 1)
//!   --flip-th N        FlipTH for profiled attack workloads (default 6250)
//!
//! replay    run a capture (or its live generator twin) through System
//!   --trace PATH       MTRC capture to replay (cores/geometry/insts/seed
//!                      default from its header), or
//!   --workload NAME    generate live instead — the comparison baseline
//!   --scheme NAME      none|mithril|mithril+|parfm|para|graphene|twice|
//!                      cbt|blockhammer|all      (default mithril)
//!   --flip-th N        Row Hammer threshold       (default 6250)
//!   --rfm-th N         Mithril RFMTH              (default per FlipTH)
//!   --nbl-scale N      BlockHammer NBL divisor    (default 6)
//!   --threads N        engine workers             (default host, max 8)
//!   --shard-size N     scenarios per shard        (default 1)
//!   --seed/--cores/--insts overrides; --channels/--ranks only with
//!   --workload (a capture replays on its recorded geometry)
//!   --metrics-only     emit the label-independent metrics projection
//!   --resilient        tolerate a damaged capture: skip corrupt/torn
//!                      chunks (reported on stderr) instead of aborting
//!   --obs DIR          attach observability: per-run event logs, cycle-
//!                      domain time series and DIR/obs_counts.json
//!   --out PATH         write the JSON report here instead of stdout
//!
//! stat      access-mix / hot-row statistics of a capture
//!   --trace PATH  [--top N (default 10)]  [--resilient]  [--out PATH]
//!   with --resilient the JSON embeds the resilience report (skipped
//!   chunks/bytes, end-marker status) alongside the statistics
//!
//! convert   re-encode between trace dialects
//!   --in PATH --out PATH  [--resilient (mtrc input only)]
//!   --in-format / --out-format   mtrc|ramulator|addr   (default: by
//!                                extension, .mtrc = mtrc, else ramulator)
//!   --core N           which stream of a multi-core capture to export
//!   --source NAME      source label for text → mtrc     (default: input
//!                      file name)
//! ```
//!
//! Replay determinism: `record` derives its generator seed as
//! `splitmix64_seed(base, 0, 0)` — exactly the seed the sweep engine
//! assigns the first scenario of a single-workload replay sweep under the
//! same base seed — so `record → replay --metrics-only` is byte-identical
//! to `replay --workload <same> --metrics-only`, at any `--threads`.

use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use mithril_fasthash::splitmix64_seed;
use mithril_runner::engine::{default_threads, PoolConfig};
use mithril_runner::report::{metrics_only_json, sweep_json};
use mithril_runner::scenarios::{all_schemes, default_rfm_th, workload, SweepSpec};
use mithril_runner::{run_sweep, run_sweep_observed, write_obs_outputs};
use mithril_sim::{ObsConfig, Scheme, SystemConfig};
use mithril_trace::{
    read_header_path, record_thread_set, stats_from_reader, stats_from_resilient_reader,
    write_text, MtrcReader, MtrcWriter, ResilientMtrcReader, TextFormat, TextReader, TraceHeader,
};

fn die(msg: &str) -> ! {
    eprintln!("trace: {msg}");
    eprintln!("trace: run with no arguments for usage");
    std::process::exit(2);
}

fn usage() -> ! {
    eprintln!(
        "usage: trace <record|replay|stat|convert> [options]\n\
         see the module docs (cargo doc -p mithril-runner) or the\n\
         quickstart in ARCHITECTURE.md for the option list"
    );
    std::process::exit(2);
}

/// `--key value` argument bag with typed take-out helpers.
struct Args(Vec<(String, String)>);

impl Args {
    fn parse(raw: &[String]) -> (Vec<String>, Self) {
        let mut flags = Vec::new();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(key) = a.strip_prefix("--") {
                if key == "metrics-only" || key == "resilient" {
                    flags.push(key.to_string());
                    i += 1;
                    continue;
                }
                let v = raw
                    .get(i + 1)
                    .unwrap_or_else(|| die(&format!("--{key} needs a value")));
                pairs.push((key.to_string(), v.clone()));
                i += 2;
            } else {
                die(&format!("unexpected argument {a:?}"));
            }
        }
        (flags, Self(pairs))
    }

    fn take(&mut self, key: &str) -> Option<String> {
        let i = self.0.iter().position(|(k, _)| k == key)?;
        Some(self.0.remove(i).1)
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, key: &str) -> Option<T> {
        self.take(key).map(|v| {
            v.parse()
                .unwrap_or_else(|_| die(&format!("bad value {v:?} for --{key}")))
        })
    }

    fn finish(self) {
        if let Some((k, _)) = self.0.into_iter().next() {
            die(&format!("unknown option --{k}"));
        }
    }
}

fn schemes_for(
    name: &str,
    flip_th: u64,
    rfm_th: Option<u64>,
    nbl_scale: u64,
) -> Vec<(String, Scheme)> {
    let rfm = rfm_th.unwrap_or_else(|| default_rfm_th(flip_th));
    if name == "all" {
        return all_schemes(rfm, nbl_scale)
            .into_iter()
            .map(|(l, s)| (l.to_string(), s))
            .collect();
    }
    let scheme = match name {
        "none" => Scheme::None,
        "mithril" => Scheme::Mithril {
            rfm_th: rfm,
            ad_th: Some(200),
            plus: false,
        },
        "mithril+" => Scheme::Mithril {
            rfm_th: rfm,
            ad_th: Some(200),
            plus: true,
        },
        "parfm" => Scheme::Parfm,
        "para" => Scheme::Para,
        "graphene" => Scheme::Graphene,
        "twice" => Scheme::TwiCe,
        "cbt" => Scheme::Cbt,
        "blockhammer" => Scheme::BlockHammer { nbl_scale },
        other => die(&format!("unknown scheme {other:?}")),
    };
    vec![(name.to_string(), scheme)]
}

fn geometry_from(args: &mut Args) -> mithril_dram::Geometry {
    let mut g = mithril_dram::Geometry::table_iii_system();
    if let Some(ch) = args.take_parsed::<usize>("channels") {
        g = g.with_channels(ch);
    }
    if let Some(rk) = args.take_parsed::<usize>("ranks") {
        g = g.with_ranks(rk);
    }
    g
}

fn write_output(out: Option<String>, content: &str) {
    match out {
        Some(path) => {
            std::fs::write(&path, content).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
            println!("# wrote {path}");
        }
        None => print!("{content}"),
    }
}

// ------------------------------------------------------------------ record

fn cmd_record(mut args: Args) {
    let name = args
        .take("workload")
        .unwrap_or_else(|| die("record needs --workload NAME"));
    let out: PathBuf = args
        .take("out")
        .unwrap_or_else(|| die("record needs --out PATH"))
        .into();
    let cores: usize = args.take_parsed("cores").unwrap_or(4);
    let insts: u64 = args.take_parsed("insts").unwrap_or(20_000);
    let base_seed: u64 = args.take_parsed("seed").unwrap_or(1);
    let flip_th: u64 = args.take_parsed("flip-th").unwrap_or(6_250);
    let geometry = geometry_from(&mut args);
    args.finish();

    let mut cfg = SystemConfig::table_iii();
    cfg.cores = cores;
    cfg.geometry = geometry;
    cfg.flip_th = flip_th;
    // The first scenario of a single-workload sweep under `base_seed`
    // gets item seed (shard 0, offset 0); generate with exactly that so
    // replaying this capture reproduces the live sweep bit-for-bit.
    let gen_seed = splitmix64_seed(base_seed, 0, 0);
    let mut set = workload(&name, cores, &cfg, gen_seed);

    let header = TraceHeader {
        geometry,
        cores,
        base_seed,
        insts_per_core: insts,
        source: name.clone(),
    };
    let file = std::fs::File::create(&out)
        .unwrap_or_else(|e| die(&format!("create {}: {e}", out.display())));
    let mut writer = MtrcWriter::new(BufWriter::new(file), &header)
        .unwrap_or_else(|e| die(&format!("write {}: {e}", out.display())));
    let ops = record_thread_set(&mut set, insts, &mut writer)
        .unwrap_or_else(|e| die(&format!("record: {e}")));
    writer
        .finish()
        .unwrap_or_else(|e| die(&format!("finish {}: {e}", out.display())));
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!(
        "# recorded {name}: {cores} cores x {insts} insts -> {ops} ops, {bytes} bytes ({:.2} B/op) at {}",
        bytes as f64 / ops.max(1) as f64,
        out.display()
    );
}

// ------------------------------------------------------------------ replay

fn cmd_replay(flags: Vec<String>, mut args: Args) {
    let resilient = flags.iter().any(|f| f == "resilient");
    let trace_path = args.take("trace");
    let live_workload = args.take("workload");
    let (workload_name, header) = match (&trace_path, &live_workload) {
        (Some(p), None) => {
            let header =
                read_header_path(Path::new(p)).unwrap_or_else(|e| die(&format!("{p}: {e}")));
            // `trace+skip:` loads through the resilient reader, which
            // tolerates damaged chunks and reports what it skipped;
            // `trace:` keeps the strict fail-fast reader. Validate the
            // whole capture up front either way, so an unreplayable file
            // dies here with a clear message rather than surfacing as a
            // panic inside a sweep worker.
            if resilient {
                let (_, per_core, report) = mithril_trace::read_all_resilient_path(Path::new(p))
                    .unwrap_or_else(|e| die(&format!("{p}: {e}")));
                if let Some(c) = per_core.iter().position(|ops| ops.is_empty()) {
                    die(&format!(
                        "{p}: core {c} has no surviving ops ({} damaged chunk(s) skipped); \
                         nothing left to replay for that stream",
                        report.skipped_chunks
                    ));
                }
            } else {
                mithril_trace::read_all_path(Path::new(p))
                    .unwrap_or_else(|e| die(&format!("{p}: {e}")));
            }
            let prefix = if resilient { "trace+skip" } else { "trace" };
            (format!("{prefix}:{p}"), Some(header))
        }
        (None, Some(w)) => {
            if resilient {
                die("--resilient applies to --trace replays; a live --workload has no capture to repair");
            }
            (w.clone(), None)
        }
        _ => die("replay needs exactly one of --trace PATH / --workload NAME"),
    };

    let scheme_name = args.take("scheme").unwrap_or_else(|| "mithril".into());
    let flip_th: u64 = args.take_parsed("flip-th").unwrap_or(6_250);
    let rfm_th = args.take_parsed("rfm-th");
    let nbl_scale: u64 = args.take_parsed("nbl-scale").unwrap_or(6);
    let threads: usize = args.take_parsed("threads").unwrap_or_else(default_threads);
    let shard_size: usize = args.take_parsed("shard-size").unwrap_or(1);
    let out = args.take("out");
    let obs_dir = args.take("obs");

    // Header defaults, CLI overrides on top.
    let base_seed: u64 = args
        .take_parsed("seed")
        .or(header.as_ref().map(|h| h.base_seed))
        .unwrap_or(1);
    let cores: usize = args
        .take_parsed("cores")
        .or(header.as_ref().map(|h| h.cores))
        .unwrap_or(4);
    let insts: u64 = args
        .take_parsed("insts")
        .or(header.as_ref().map(|h| h.insts_per_core).filter(|&i| i > 0))
        .unwrap_or(20_000);
    let geometry = match &header {
        Some(h) => {
            if args.take("channels").is_some() || args.take("ranks").is_some() {
                die(
                    "a capture only replays on the geometry it was recorded against \
                     (it is in the header); --channels/--ranks apply to --workload runs",
                );
            }
            h.geometry
        }
        None => geometry_from(&mut args),
    };
    args.finish();

    let spec = SweepSpec {
        geometries: vec![geometry],
        schemes: schemes_for(&scheme_name, flip_th, rfm_th, nbl_scale),
        workloads: vec![workload_name.clone()],
        flip_th,
        cores,
        insts_per_core: insts,
    };
    let pool = PoolConfig {
        threads,
        shard_size,
    };
    let results = match &obs_dir {
        Some(dir) => {
            let observed = run_sweep_observed(&spec, pool, base_seed, ObsConfig::default(), None);
            write_obs_outputs(Path::new(dir), base_seed, &observed)
                .unwrap_or_else(|e| die(&format!("--obs {dir}: {e}")));
            eprintln!("# obs: wrote event logs, time series and {dir}/obs_counts.json");
            observed.into_iter().map(|(r, _)| r).collect()
        }
        None => run_sweep(&spec, pool, base_seed),
    };

    let mut table = String::new();
    for r in &results {
        match &r.outcome {
            Ok(m) => table.push_str(&format!(
                "# {:<40} agg_ipc {:>8.3}  rfms {:>7}  max_disturbance {:>7}  flips {}\n",
                r.scenario.name, m.aggregate_ipc, m.rfms, m.max_disturbance, m.flips
            )),
            Err(e) => table.push_str(&format!("# {:<40} unavailable: {e}\n", r.scenario.name)),
        }
    }
    eprint!("{table}");

    let json = if flags.iter().any(|f| f == "metrics-only") {
        metrics_only_json(base_seed, &results)
    } else {
        sweep_json(base_seed, &results)
    };
    write_output(out, &json);
}

// -------------------------------------------------------------------- stat

fn cmd_stat(flags: Vec<String>, mut args: Args) {
    let path = args
        .take("trace")
        .unwrap_or_else(|| die("stat needs --trace PATH"));
    let top: usize = args.take_parsed("top").unwrap_or(10);
    let out = args.take("out");
    args.finish();

    let file = std::fs::File::open(&path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let (stats, resilience) = if flags.iter().any(|f| f == "resilient") {
        let reader = ResilientMtrcReader::new(BufReader::new(file))
            .unwrap_or_else(|e| die(&format!("{path}: {e}")));
        let (stats, report) = stats_from_resilient_reader(reader, top)
            .unwrap_or_else(|e| die(&format!("{path}: {e}")));
        print_skip_report(&path, report);
        (stats, Some(report))
    } else {
        let reader =
            MtrcReader::new(BufReader::new(file)).unwrap_or_else(|e| die(&format!("{path}: {e}")));
        let stats = stats_from_reader(reader, top).unwrap_or_else(|e| die(&format!("{path}: {e}")));
        (stats, None)
    };
    write_output(out, &stats.render_json_with(resilience.as_ref()));
}

/// What a `--resilient` read had to step over, on stderr so it never
/// contaminates a piped JSON report.
fn print_skip_report(path: &str, report: mithril_trace::ResilienceReport) {
    if report.is_clean() {
        return;
    }
    let torn = if report.missing_end_marker {
        "; capture is torn (no end marker)"
    } else {
        ""
    };
    eprintln!(
        "# {path}: skipped {} damaged chunk(s) ({} bytes){torn}",
        report.skipped_chunks, report.skipped_bytes
    );
}

// ----------------------------------------------------------------- convert

#[derive(Clone, Copy, PartialEq)]
enum Dialect {
    Mtrc,
    Text(TextFormat),
}

fn dialect_of(path: &str, flag: Option<String>) -> Dialect {
    match flag.as_deref() {
        Some("mtrc") => Dialect::Mtrc,
        Some(name) => Dialect::Text(
            TextFormat::from_name(name).unwrap_or_else(|| die(&format!("unknown format {name:?}"))),
        ),
        None if path.ends_with(".mtrc") => Dialect::Mtrc,
        None => Dialect::Text(TextFormat::Ramulator),
    }
}

fn cmd_convert(flags: Vec<String>, mut args: Args) {
    let resilient = flags.iter().any(|f| f == "resilient");
    let input = args
        .take("in")
        .unwrap_or_else(|| die("convert needs --in PATH"));
    let output = args
        .take("out")
        .unwrap_or_else(|| die("convert needs --out PATH"));
    let in_fmt = dialect_of(&input, args.take("in-format"));
    let out_fmt = dialect_of(&output, args.take("out-format"));
    let core: Option<usize> = args.take_parsed("core");

    // Ingest into (header, per-core ops). The header-shaping flags
    // (--source/--seed/--channels/--ranks) only make sense for text input,
    // which has no header of its own; an .mtrc input keeps its header, so
    // silently consuming them would mislead.
    let (header, per_core) = match in_fmt {
        Dialect::Mtrc => {
            for key in ["source", "seed", "channels", "ranks"] {
                if args.take(key).is_some() {
                    die(&format!(
                        "--{key} only applies to text input; an .mtrc input keeps its header"
                    ));
                }
            }
            if resilient {
                let (header, per_core, report) =
                    mithril_trace::read_all_resilient_path(Path::new(&input))
                        .unwrap_or_else(|e| die(&format!("{input}: {e}")));
                print_skip_report(&input, report);
                (header, per_core)
            } else {
                mithril_trace::read_all_path(Path::new(&input))
                    .unwrap_or_else(|e| die(&format!("{input}: {e}")))
            }
        }
        Dialect::Text(fmt) => {
            if resilient {
                die("--resilient only applies to mtrc input (text ingest already reports bad lines)");
            }
            let source = args.take("source");
            let base_seed: u64 = args.take_parsed("seed").unwrap_or(1);
            let geometry = geometry_from(&mut args);
            let file =
                std::fs::File::open(&input).unwrap_or_else(|e| die(&format!("{input}: {e}")));
            let ops: Result<Vec<_>, _> = TextReader::new(BufReader::new(file), fmt).collect();
            let ops = ops.unwrap_or_else(|e| die(&format!("{input}: {e}")));
            let header = TraceHeader {
                geometry,
                cores: 1,
                base_seed,
                insts_per_core: 0,
                source: source.unwrap_or_else(|| {
                    Path::new(&input)
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_else(|| input.clone())
                }),
            };
            (header, vec![ops])
        }
    };
    args.finish();

    // --core selects one stream of a multi-core capture, for either output
    // dialect (the resulting MTRC file is single-core).
    let (mut header, mut per_core) = (header, per_core);
    if let Some(c) = core {
        if c >= per_core.len() {
            die(&format!(
                "--core {c} out of range (capture has {} cores)",
                per_core.len()
            ));
        }
        per_core = vec![per_core.swap_remove(c)];
        header.cores = 1;
    }

    match out_fmt {
        Dialect::Mtrc => {
            let file =
                std::fs::File::create(&output).unwrap_or_else(|e| die(&format!("{output}: {e}")));
            let mut w = MtrcWriter::new(BufWriter::new(file), &header)
                .unwrap_or_else(|e| die(&format!("{output}: {e}")));
            for (c, ops) in per_core.iter().enumerate() {
                for &op in ops {
                    w.push(c, op)
                        .unwrap_or_else(|e| die(&format!("{output}: {e}")));
                }
            }
            w.finish()
                .unwrap_or_else(|e| die(&format!("{output}: {e}")));
        }
        Dialect::Text(fmt) => {
            if per_core.len() != 1 {
                die(&format!(
                    "capture has {} cores; pick one with --core N for text output",
                    per_core.len()
                ));
            }
            let file =
                std::fs::File::create(&output).unwrap_or_else(|e| die(&format!("{output}: {e}")));
            let mut w = BufWriter::new(file);
            write_text(&mut w, fmt, &per_core[0])
                .unwrap_or_else(|e| die(&format!("{output}: {e}")));
            w.flush().unwrap_or_else(|e| die(&format!("{output}: {e}")));
        }
    }
    let ops: usize = per_core.iter().map(Vec::len).sum();
    println!(
        "# converted {input} -> {output} ({ops} ops, {} cores)",
        per_core.len()
    );
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        usage();
    };
    let (flags, args) = Args::parse(rest);
    match cmd.as_str() {
        "record" => cmd_record(args),
        "replay" => cmd_replay(flags, args),
        "stat" => cmd_stat(flags, args),
        "convert" => cmd_convert(flags, args),
        other => die(&format!("unknown command {other:?}")),
    }
}
