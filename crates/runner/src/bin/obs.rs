//! `obs` — observability report analytics.
//!
//! ```text
//! obs report BASELINE CANDIDATE [MORE...] [--fail-on-regression PCT]
//! ```
//!
//! Ingests two or more emitted reports — `BENCH_sweep.json` sweeps,
//! `trace replay --metrics-only` outputs, `BENCH_obs.json` /
//! `obs_counts.json` count baselines, or `--obs` output directories
//! (their `obs_counts.json` is read) — validates every input's
//! `format_version`, and prints a regression table against the first
//! input: per-metric deltas (direction-aware), latency-percentile
//! shifts, new/missing scenarios, and ring-drop warnings.
//!
//! With `--fail-on-regression PCT` the process exits nonzero when any
//! metric regressed by more than PCT percent or any ingested report
//! carries ring-drop warnings — the CI gate for perf trajectories.

use std::path::Path;
use std::process::ExitCode;

use mithril_runner::analytics::{compare, parse_report, Report};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!();
    usage();
    std::process::exit(2);
}

fn usage() {
    eprintln!("usage:");
    eprintln!("  obs report BASELINE CANDIDATE [MORE...] [--fail-on-regression PCT]");
    eprintln!();
    eprintln!("inputs: sweep/replay/obs-count JSON reports, or --obs output");
    eprintln!("directories (their obs_counts.json is read). The first input");
    eprintln!("is the baseline; every later input is compared against it.");
}

/// Loads one input: a report file, or a directory holding
/// `obs_counts.json`.
fn load(path: &str) -> Result<Report, String> {
    let p = Path::new(path);
    let file = if p.is_dir() {
        p.join("obs_counts.json")
    } else {
        p.to_path_buf()
    };
    let text =
        std::fs::read_to_string(&file).map_err(|e| format!("reading {}: {e}", file.display()))?;
    parse_report(&text).map_err(|e| format!("{}: {e}", file.display()))
}

fn cmd_report(args: &[String]) -> ExitCode {
    let mut inputs: Vec<String> = Vec::new();
    let mut fail_pct: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fail-on-regression" => {
                let v = args
                    .get(i + 1)
                    .unwrap_or_else(|| die("--fail-on-regression needs a percent value"));
                fail_pct = Some(
                    v.parse::<f64>()
                        .unwrap_or_else(|_| die(&format!("bad percent value `{v}`"))),
                );
                i += 2;
            }
            flag if flag.starts_with("--") => die(&format!("unknown flag `{flag}`")),
            _ => {
                inputs.push(args[i].clone());
                i += 1;
            }
        }
    }
    if inputs.len() < 2 {
        die("need at least a baseline and one candidate report");
    }

    let baseline = load(&inputs[0]).unwrap_or_else(|e| die(&e));
    println!(
        "baseline: {} ({}, {} runs)",
        inputs[0],
        baseline.kind,
        baseline.runs.len()
    );

    let mut failed = false;
    for input in &inputs[1..] {
        let candidate = load(input).unwrap_or_else(|e| die(&e));
        if candidate.kind != baseline.kind {
            die(&format!(
                "cannot compare a {} report ({input}) against a {} baseline",
                candidate.kind, baseline.kind
            ));
        }
        println!("\n== {} vs baseline", input);
        let cmp = compare(&baseline, &candidate);
        print!("{}", cmp.render());
        if let Some(pct) = fail_pct {
            let regs = cmp.regressions(pct);
            if !regs.is_empty() {
                println!(
                    "FAIL: {} metric(s) regressed by more than {pct}%",
                    regs.len()
                );
                failed = true;
            }
            if !cmp.warnings.is_empty() {
                println!("FAIL: {} warning(s) present", cmp.warnings.len());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") => cmd_report(&args[1..]),
        Some("--help" | "-h") | None => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => die(&format!("unknown subcommand `{other}`")),
    }
}
