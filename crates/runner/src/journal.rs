//! Crash-safe sweep journal: append-only completion log + tolerant
//! recovery.
//!
//! A journaled sweep appends one line per completed scenario *as it
//! completes*, each line self-checked by an FNV-1a hash, so a killed
//! process loses at most the in-flight scenarios. On resume the journal
//! is re-read tolerantly — corrupt or torn lines are dropped and simply
//! re-run — and only missing indices execute, each re-seeded by sweep
//! *position* (never by execution order), so a resumed report is
//! byte-identical to an uninterrupted one.
//!
//! # Format
//!
//! Plain text, one record per line:
//!
//! ```text
//! MTRJ1 <base_seed> <fingerprint-hex>
//! <index> <fnv1a64-hex of entry> <entry>
//! ```
//!
//! The header pins the base seed and a fingerprint of the expanded
//! scenario list; resuming against a different spec or seed is refused
//! rather than silently mixed. `<entry>` is the single-line
//! [`result_json`](crate::report::result_json) record (without its
//! 4-space indent). Duplicate indices are legal — the last valid record
//! wins (a retried item may append twice; the rendered entry is
//! deterministic, so duplicates are byte-equal anyway).

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::scenarios::Scenario;

/// Magic tag of journal format v1.
pub const JOURNAL_MAGIC: &str = "MTRJ1";

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a sweep's identity: the base seed plus every expanded
/// scenario's name and size knobs. Two sweeps with the same fingerprint
/// produce the same entry at every index, which is exactly what resuming
/// requires.
pub fn fingerprint(base_seed: u64, scenarios: &[Scenario]) -> u64 {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&base_seed.to_le_bytes());
    for s in scenarios {
        bytes.extend_from_slice(s.name.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&(s.cores as u64).to_le_bytes());
        bytes.extend_from_slice(&s.insts_per_core.to_le_bytes());
        bytes.extend_from_slice(&s.flip_th.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// What tolerant recovery found in a journal.
#[derive(Debug)]
pub struct LoadedJournal {
    /// Recovered entries by scenario index (`None` = must run).
    pub entries: Vec<Option<String>>,
    /// Lines dropped as corrupt, torn, or out of range.
    pub dropped_lines: usize,
}

impl LoadedJournal {
    /// How many entries were recovered intact.
    pub fn recovered(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

/// Re-reads a journal tolerantly, validating its header strictly.
///
/// # Errors
///
/// I/O failure, a malformed header, or a header whose seed/fingerprint
/// disagrees with this sweep (resuming someone else's journal corrupts
/// silently — refuse instead). Body damage is *not* an error: corrupt,
/// torn, duplicate or out-of-range lines are dropped and counted.
pub fn load(
    path: &Path,
    base_seed: u64,
    fingerprint: u64,
    scenario_count: usize,
) -> Result<LoadedJournal, String> {
    let file =
        File::open(path).map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
    let mut lines = BufReader::new(file).lines();
    let header = match lines.next() {
        Some(Ok(line)) => line,
        Some(Err(e)) => return Err(format!("cannot read journal {}: {e}", path.display())),
        None => return Err(format!("journal {} is empty", path.display())),
    };
    let mut parts = header.split(' ');
    if parts.next() != Some(JOURNAL_MAGIC) {
        return Err(format!(
            "journal {} is not a {JOURNAL_MAGIC} file",
            path.display()
        ));
    }
    let h_seed: u64 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("journal {}: malformed header seed", path.display()))?;
    let h_fp = parts
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| format!("journal {}: malformed header fingerprint", path.display()))?;
    if h_seed != base_seed {
        return Err(format!(
            "journal {} was written for base seed {h_seed}, this sweep uses {base_seed}",
            path.display()
        ));
    }
    if h_fp != fingerprint {
        return Err(format!(
            "journal {} belongs to a different sweep spec (fingerprint {h_fp:016x} != {fingerprint:016x})",
            path.display()
        ));
    }

    let mut out = LoadedJournal {
        entries: vec![None; scenario_count],
        dropped_lines: 0,
    };
    for line in lines {
        let line = match line {
            Ok(l) => l,
            // A read error mid-body (e.g. invalid UTF-8 in a torn tail)
            // ends recovery; everything after re-runs.
            Err(_) => {
                out.dropped_lines += 1;
                break;
            }
        };
        let mut fields = line.splitn(3, ' ');
        let parsed = (|| {
            let index: usize = fields.next()?.parse().ok()?;
            let hash = u64::from_str_radix(fields.next()?, 16).ok()?;
            let entry = fields.next()?;
            (index < scenario_count && fnv1a64(entry.as_bytes()) == hash)
                .then(|| (index, entry.to_string()))
        })();
        match parsed {
            Some((index, entry)) => out.entries[index] = Some(entry),
            None => out.dropped_lines += 1,
        }
    }
    Ok(out)
}

/// Concurrent append-side of the journal: workers record completions
/// through a shared mutex, one flushed line per completed scenario.
#[derive(Debug)]
pub struct JournalWriter {
    file: Mutex<File>,
}

impl JournalWriter {
    /// Creates (truncating) a fresh journal and writes its header.
    ///
    /// # Errors
    ///
    /// Propagates I/O failure as a displayable message.
    pub fn create(path: &Path, base_seed: u64, fingerprint: u64) -> Result<Self, String> {
        let mut file = File::create(path)
            .map_err(|e| format!("cannot create journal {}: {e}", path.display()))?;
        writeln!(file, "{JOURNAL_MAGIC} {base_seed} {fingerprint:016x}")
            .and_then(|_| file.flush())
            .map_err(|e| format!("cannot write journal {}: {e}", path.display()))?;
        Ok(Self {
            file: Mutex::new(file),
        })
    }

    /// Reopens an existing journal for appending (resume path; the
    /// header was already validated by [`load`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O failure as a displayable message.
    pub fn append(path: &Path) -> Result<Self, String> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot reopen journal {}: {e}", path.display()))?;
        Ok(Self {
            file: Mutex::new(file),
        })
    }

    /// Appends one completed scenario and flushes, making it durable
    /// before the sweep moves on. `entry` must be a single line.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure or a multi-line entry; inside the robust
    /// engine the panic is caught and surfaces as that item's outcome
    /// instead of killing the sweep.
    pub fn record(&self, index: usize, entry: &str) {
        assert!(
            !entry.contains('\n'),
            "journal entries are single-line records"
        );
        let mut file = self.file.lock().unwrap();
        writeln!(file, "{index} {:016x} {entry}", fnv1a64(entry.as_bytes()))
            .and_then(|_| file.flush())
            .unwrap_or_else(|e| panic!("cannot append to journal: {e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(name: &str) -> Scenario {
        Scenario {
            name: name.into(),
            scheme_label: "none".into(),
            scheme: mithril_sim::Scheme::None,
            workload: "mix-high".into(),
            geometry: mithril_dram::Geometry::default(),
            flip_th: 6_250,
            cores: 1,
            insts_per_core: 100,
            faults: None,
            qos: mithril_sim::QosPolicy::Off,
        }
    }

    #[test]
    fn roundtrips_entries_by_index() {
        let dir = std::env::temp_dir().join("mtrj-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.mtrj");
        let scenarios = vec![scenario("a"), scenario("b"), scenario("c")];
        let fp = fingerprint(7, &scenarios);
        let w = JournalWriter::create(&path, 7, fp).unwrap();
        w.record(2, "{\"name\":\"c\"}");
        w.record(0, "{\"name\":\"a\"}");
        let loaded = load(&path, 7, fp, 3).unwrap();
        assert_eq!(loaded.recovered(), 2);
        assert_eq!(loaded.dropped_lines, 0);
        assert_eq!(loaded.entries[0].as_deref(), Some("{\"name\":\"a\"}"));
        assert!(loaded.entries[1].is_none());
        assert_eq!(loaded.entries[2].as_deref(), Some("{\"name\":\"c\"}"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn drops_torn_and_corrupt_lines() {
        let dir = std::env::temp_dir().join("mtrj-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.mtrj");
        let scenarios = vec![scenario("a"), scenario("b")];
        let fp = fingerprint(1, &scenarios);
        let w = JournalWriter::create(&path, 1, fp).unwrap();
        w.record(0, "entry-zero");
        w.record(1, "entry-one");
        drop(w);
        // Corrupt record 1's payload and append a torn (truncated) line.
        let text = std::fs::read_to_string(&path).unwrap();
        let mangled = text.replace("entry-one", "entry-0ne") + "1 deadbeef";
        std::fs::write(&path, mangled).unwrap();
        let loaded = load(&path, 1, fp, 2).unwrap();
        assert_eq!(loaded.entries[0].as_deref(), Some("entry-zero"));
        assert!(loaded.entries[1].is_none(), "hash mismatch must drop");
        assert_eq!(loaded.dropped_lines, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn refuses_foreign_journals() {
        let dir = std::env::temp_dir().join("mtrj-foreign");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.mtrj");
        let a = vec![scenario("a")];
        let b = vec![scenario("b")];
        let fp_a = fingerprint(1, &a);
        JournalWriter::create(&path, 1, fp_a).unwrap();
        assert!(load(&path, 2, fp_a, 1).unwrap_err().contains("base seed"));
        assert!(load(&path, 1, fingerprint(1, &b), 1)
            .unwrap_err()
            .contains("fingerprint"));
        assert!(load(&path, 1, fp_a, 1).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_tracks_spec_identity() {
        let a = vec![scenario("a")];
        let mut bigger = a.clone();
        bigger[0].insts_per_core = 200;
        assert_ne!(fingerprint(1, &a), fingerprint(2, &a));
        assert_ne!(fingerprint(1, &a), fingerprint(1, &bigger));
        assert_eq!(fingerprint(1, &a), fingerprint(1, &a.clone()));
    }
}
