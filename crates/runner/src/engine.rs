//! The sharded parallel execution engine.
//!
//! Scenario lists are cut into fixed-size **shards** (contiguous index
//! ranges) that are dealt round-robin onto worker-local deques; workers
//! drain their own deque from the front and **steal** from the back of the
//! busiest other deque when idle. Determinism rules:
//!
//! 1. Sharding depends only on the item list and the shard size — never on
//!    the worker count.
//! 2. Every item's RNG seed is derived from `(base_seed, shard index,
//!    offset in shard)` through splitmix64, so the seed an item sees is a
//!    pure function of its position, not of which worker ran it or when.
//! 3. Results land in an index-addressed buffer, so output order equals
//!    input order regardless of completion order.
//!
//! Together these make `run_sharded` produce bit-identical results at any
//! thread count — the regression test in `tests/determinism.rs` pins this.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Shard-pool sizing.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Worker threads. Clamped to at least 1.
    pub threads: usize,
    /// Items per shard. Clamped to at least 1. Smaller shards balance
    /// load better; larger shards amortize steal overhead.
    pub shard_size: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            threads: default_threads(),
            shard_size: 1,
        }
    }
}

/// The host's available parallelism, capped at 8 (sweep scenarios are
/// memory-bound; more workers than memory channels rarely helps).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

pub use mithril_fasthash::splitmix64;

/// The deterministic RNG seed of shard `shard` under `base_seed`.
pub fn shard_seed(base_seed: u64, shard: usize) -> u64 {
    mithril_fasthash::splitmix64_shard(base_seed, shard as u64)
}

/// The deterministic RNG seed of the item at `offset` within its shard.
///
/// Delegates to [`mithril_fasthash::splitmix64_seed`] — the same helper
/// trace record/replay seeds through, so a recorded trace's generator seed
/// can be made to match the seed the engine will assign the replay
/// scenario at the same sweep position.
pub fn item_seed(base_seed: u64, shard: usize, offset: usize) -> u64 {
    mithril_fasthash::splitmix64_seed(base_seed, shard as u64, offset as u64)
}

/// The deterministic seed of the item at flat index `index` of a sweep
/// sharded with `shard_size` — [`item_seed`] at the position the sharding
/// assigns. Lets checkpoint/resume re-derive any single item's seed
/// without re-running the pool.
pub fn position_seed(base_seed: u64, shard_size: usize, index: usize) -> u64 {
    let shard_size = shard_size.max(1);
    item_seed(base_seed, index / shard_size, index % shard_size)
}

/// How [`run_sharded_robust`] disposed of one item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemOutcome<R> {
    /// The item completed (possibly after retries of a panicking run).
    Done(R),
    /// Every attempt panicked; the item's result is lost but the sweep
    /// survived. Carries the total attempts and the last panic message.
    Panicked {
        /// Attempts made (`1 + retries`).
        attempts: u32,
        /// Panic payload of the final attempt.
        message: String,
    },
}

impl<R> ItemOutcome<R> {
    /// The completed result, or the final panic message as an error.
    pub fn into_result(self) -> Result<R, String> {
        match self {
            ItemOutcome::Done(r) => Ok(r),
            ItemOutcome::Panicked { attempts, message } => {
                Err(format!("panicked ({attempts} attempts): {message}"))
            }
        }
    }
}

/// Default bounded retry budget of the robust engine: one retry. A
/// deterministic panic fails again immediately, so more buys nothing;
/// one retry absorbs environmental one-offs (e.g. a transient allocation
/// failure) without meaningfully extending a poisoned sweep.
pub const DEFAULT_RETRIES: u32 = 1;

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f(item, seed)` over every item on a work-stealing shard pool and
/// returns the results in input order.
///
/// `f` receives the item and its deterministic seed (see [`item_seed`]).
/// The result is bit-identical for any `cfg.threads`. A panicking item
/// panics the whole call (after the other in-flight items finish); use
/// [`run_sharded_robust`] to isolate failures instead.
pub fn run_sharded<T, R, F>(items: &[T], cfg: PoolConfig, base_seed: u64, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, u64) -> R + Sync,
{
    run_sharded_robust(items, cfg, base_seed, 0, f)
        .into_iter()
        .map(|o| match o {
            ItemOutcome::Done(r) => r,
            ItemOutcome::Panicked { message, .. } => {
                panic!("sweep item panicked: {message}")
            }
        })
        .collect()
}

/// As [`run_sharded`], but each item runs under panic isolation
/// (`catch_unwind`) with a bounded retry budget, so one poisoned item
/// cannot take down the sweep.
///
/// Every retry of an item reuses the item's **original position seed** —
/// the seed is computed once per item from `(base_seed, shard, offset)`
/// and never re-derived from attempt count — so a sweep that needed
/// retries reports byte-identically to one that didn't
/// (`tests/determinism.rs` pins this).
pub fn run_sharded_robust<T, R, F>(
    items: &[T],
    cfg: PoolConfig,
    base_seed: u64,
    retries: u32,
    f: F,
) -> Vec<ItemOutcome<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T, u64) -> R + Sync,
{
    let threads = cfg.threads.max(1);
    let shard_size = cfg.shard_size.max(1);
    if items.is_empty() {
        return Vec::new();
    }
    let n_shards = items.len().div_ceil(shard_size);

    // Deal shards round-robin onto worker-local deques.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for shard in 0..n_shards {
        queues[shard % threads].lock().unwrap().push_back(shard);
    }

    let results: Mutex<Vec<Option<ItemOutcome<R>>>> =
        Mutex::new((0..items.len()).map(|_| None).collect());

    let next_shard = |worker: usize| -> Option<usize> {
        // Own queue first (front: the shards dealt to us, in order)...
        if let Some(s) = queues[worker].lock().unwrap().pop_front() {
            return Some(s);
        }
        // ...then steal from the back of any other queue. Try every
        // victim: racing thieves may drain a queue between observation
        // and pop, and a worker must only retire once *all* queues are
        // empty (shards never re-enter a queue, so empty-everywhere is
        // final).
        (0..queues.len())
            .filter(|&w| w != worker)
            .find_map(|w| queues[w].lock().unwrap().pop_back())
    };

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let f = &f;
            let results = &results;
            let next_shard = &next_shard;
            scope.spawn(move || {
                while let Some(shard) = next_shard(worker) {
                    let lo = shard * shard_size;
                    let hi = (lo + shard_size).min(items.len());
                    // Compute the whole shard locally, then publish once.
                    let shard_results: Vec<(usize, ItemOutcome<R>)> = (lo..hi)
                        .map(|i| {
                            // One seed per position, reused verbatim on
                            // every retry — never reseeded.
                            let seed = item_seed(base_seed, shard, i - lo);
                            let mut attempts = 0u32;
                            let outcome = loop {
                                attempts += 1;
                                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    f(&items[i], seed)
                                })) {
                                    Ok(r) => break ItemOutcome::Done(r),
                                    Err(payload) if attempts > retries => {
                                        break ItemOutcome::Panicked {
                                            attempts,
                                            message: panic_message(&*payload),
                                        };
                                    }
                                    Err(_) => {}
                                }
                            };
                            (i, outcome)
                        })
                        .collect();
                    let mut out = results.lock().unwrap();
                    for (i, r) in shard_results {
                        out[i] = Some(r);
                    }
                }
            });
        }
    });

    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every item processed by some worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_sharded(
            &items,
            PoolConfig {
                threads: 4,
                shard_size: 3,
            },
            7,
            |&x, _seed| x * 2,
        );
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_are_thread_count_invariant() {
        let items: Vec<usize> = (0..53).collect();
        let run = |threads| {
            run_sharded(
                &items,
                PoolConfig {
                    threads,
                    shard_size: 4,
                },
                99,
                |_, seed| seed,
            )
        };
        let a = run(1);
        let b = run(3);
        let c = run(8);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn seeds_differ_across_items_and_base_seeds() {
        let items: Vec<usize> = (0..64).collect();
        let seeds = run_sharded(&items, PoolConfig::default(), 1, |_, s| s);
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len(), "item seeds must not collide");
        let other = run_sharded(&items, PoolConfig::default(), 2, |_, s| s);
        assert_ne!(seeds, other, "base seed must matter");
    }

    #[test]
    fn all_items_run_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..257).collect();
        let out = run_sharded(
            &items,
            PoolConfig {
                threads: 8,
                shard_size: 2,
            },
            3,
            |&i, _| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn robust_isolates_panicking_items() {
        let items: Vec<u64> = (0..20).collect();
        let out = run_sharded_robust(
            &items,
            PoolConfig {
                threads: 4,
                shard_size: 2,
            },
            5,
            0,
            |&x, _seed| {
                if x % 5 == 3 {
                    panic!("boom {x}");
                }
                x * 10
            },
        );
        for (i, o) in out.iter().enumerate() {
            match o {
                ItemOutcome::Done(r) => {
                    assert_eq!(*r, i as u64 * 10);
                    assert_ne!(i as u64 % 5, 3);
                }
                ItemOutcome::Panicked { attempts, message } => {
                    assert_eq!(i as u64 % 5, 3, "wrong item panicked");
                    assert_eq!(*attempts, 1);
                    assert!(message.contains("boom"), "message: {message}");
                }
            }
        }
    }

    #[test]
    fn retry_reuses_the_original_position_seed() {
        use std::collections::HashMap;
        let items: Vec<usize> = (0..30).collect();
        // Record every seed each item is attempted with; fail the first
        // attempt of every third item.
        let seen: Mutex<HashMap<usize, Vec<u64>>> = Mutex::new(HashMap::new());
        let out = run_sharded_robust(
            &items,
            PoolConfig {
                threads: 3,
                shard_size: 4,
            },
            42,
            2,
            |&i, seed| {
                let mut m = seen.lock().unwrap();
                let attempts = m.entry(i).or_default();
                attempts.push(seed);
                let fail = i % 3 == 0 && attempts.len() == 1;
                drop(m);
                if fail {
                    panic!("transient failure");
                }
                seed
            },
        );
        let seen = seen.into_inner().unwrap();
        for (i, seeds) in &seen {
            assert!(
                seeds.windows(2).all(|w| w[0] == w[1]),
                "item {i} was reseeded across retries: {seeds:?}"
            );
            assert_eq!(seeds.len(), if i % 3 == 0 { 2 } else { 1 });
        }
        // The retried sweep reports exactly the seeds of a clean sweep.
        let clean = run_sharded(
            &items,
            PoolConfig {
                threads: 1,
                shard_size: 4,
            },
            42,
            |_, seed| seed,
        );
        let robust: Vec<u64> = out.into_iter().map(|o| o.into_result().unwrap()).collect();
        assert_eq!(robust, clean);
    }

    #[test]
    fn position_seed_matches_engine_assignment() {
        let items: Vec<usize> = (0..23).collect();
        let seeds = run_sharded(
            &items,
            PoolConfig {
                threads: 4,
                shard_size: 5,
            },
            77,
            |_, s| s,
        );
        for (i, &s) in seeds.iter().enumerate() {
            assert_eq!(s, position_seed(77, 5, i));
        }
    }

    #[test]
    fn exhausted_retries_report_attempt_count() {
        let items = vec![1u32];
        let out = run_sharded_robust(&items, PoolConfig::default(), 1, 3, |_, _| -> u32 {
            panic!("always")
        });
        assert_eq!(
            out,
            vec![ItemOutcome::Panicked {
                attempts: 4,
                message: "always".into()
            }]
        );
        assert!(out[0].clone().into_result().is_err());
    }

    #[test]
    fn empty_and_single_item_edge_cases() {
        let none: Vec<u32> = vec![];
        assert!(run_sharded(&none, PoolConfig::default(), 1, |&x, _| x).is_empty());
        let one = vec![42u32];
        assert_eq!(
            run_sharded(&one, PoolConfig::default(), 1, |&x, _| x),
            vec![42]
        );
    }
}
