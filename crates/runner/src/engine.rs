//! The sharded parallel execution engine.
//!
//! Scenario lists are cut into fixed-size **shards** (contiguous index
//! ranges) that are dealt round-robin onto worker-local deques; workers
//! drain their own deque from the front and **steal** from the back of the
//! busiest other deque when idle. Determinism rules:
//!
//! 1. Sharding depends only on the item list and the shard size — never on
//!    the worker count.
//! 2. Every item's RNG seed is derived from `(base_seed, shard index,
//!    offset in shard)` through splitmix64, so the seed an item sees is a
//!    pure function of its position, not of which worker ran it or when.
//! 3. Results land in an index-addressed buffer, so output order equals
//!    input order regardless of completion order.
//!
//! Together these make `run_sharded` produce bit-identical results at any
//! thread count — the regression test in `tests/determinism.rs` pins this.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Shard-pool sizing.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Worker threads. Clamped to at least 1.
    pub threads: usize,
    /// Items per shard. Clamped to at least 1. Smaller shards balance
    /// load better; larger shards amortize steal overhead.
    pub shard_size: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            threads: default_threads(),
            shard_size: 1,
        }
    }
}

/// The host's available parallelism, capped at 8 (sweep scenarios are
/// memory-bound; more workers than memory channels rarely helps).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

pub use mithril_fasthash::splitmix64;

/// The deterministic RNG seed of shard `shard` under `base_seed`.
pub fn shard_seed(base_seed: u64, shard: usize) -> u64 {
    mithril_fasthash::splitmix64_shard(base_seed, shard as u64)
}

/// The deterministic RNG seed of the item at `offset` within its shard.
///
/// Delegates to [`mithril_fasthash::splitmix64_seed`] — the same helper
/// trace record/replay seeds through, so a recorded trace's generator seed
/// can be made to match the seed the engine will assign the replay
/// scenario at the same sweep position.
pub fn item_seed(base_seed: u64, shard: usize, offset: usize) -> u64 {
    mithril_fasthash::splitmix64_seed(base_seed, shard as u64, offset as u64)
}

/// Runs `f(item, seed)` over every item on a work-stealing shard pool and
/// returns the results in input order.
///
/// `f` receives the item and its deterministic seed (see [`item_seed`]).
/// The result is bit-identical for any `cfg.threads`.
pub fn run_sharded<T, R, F>(items: &[T], cfg: PoolConfig, base_seed: u64, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, u64) -> R + Sync,
{
    let threads = cfg.threads.max(1);
    let shard_size = cfg.shard_size.max(1);
    if items.is_empty() {
        return Vec::new();
    }
    let n_shards = items.len().div_ceil(shard_size);

    // Deal shards round-robin onto worker-local deques.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for shard in 0..n_shards {
        queues[shard % threads].lock().unwrap().push_back(shard);
    }

    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());

    let next_shard = |worker: usize| -> Option<usize> {
        // Own queue first (front: the shards dealt to us, in order)...
        if let Some(s) = queues[worker].lock().unwrap().pop_front() {
            return Some(s);
        }
        // ...then steal from the back of any other queue. Try every
        // victim: racing thieves may drain a queue between observation
        // and pop, and a worker must only retire once *all* queues are
        // empty (shards never re-enter a queue, so empty-everywhere is
        // final).
        (0..queues.len())
            .filter(|&w| w != worker)
            .find_map(|w| queues[w].lock().unwrap().pop_back())
    };

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let f = &f;
            let results = &results;
            let next_shard = &next_shard;
            scope.spawn(move || {
                while let Some(shard) = next_shard(worker) {
                    let lo = shard * shard_size;
                    let hi = (lo + shard_size).min(items.len());
                    // Compute the whole shard locally, then publish once.
                    let shard_results: Vec<(usize, R)> = (lo..hi)
                        .map(|i| (i, f(&items[i], item_seed(base_seed, shard, i - lo))))
                        .collect();
                    let mut out = results.lock().unwrap();
                    for (i, r) in shard_results {
                        out[i] = Some(r);
                    }
                }
            });
        }
    });

    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every item processed by some worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_sharded(
            &items,
            PoolConfig {
                threads: 4,
                shard_size: 3,
            },
            7,
            |&x, _seed| x * 2,
        );
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_are_thread_count_invariant() {
        let items: Vec<usize> = (0..53).collect();
        let run = |threads| {
            run_sharded(
                &items,
                PoolConfig {
                    threads,
                    shard_size: 4,
                },
                99,
                |_, seed| seed,
            )
        };
        let a = run(1);
        let b = run(3);
        let c = run(8);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn seeds_differ_across_items_and_base_seeds() {
        let items: Vec<usize> = (0..64).collect();
        let seeds = run_sharded(&items, PoolConfig::default(), 1, |_, s| s);
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len(), "item seeds must not collide");
        let other = run_sharded(&items, PoolConfig::default(), 2, |_, s| s);
        assert_ne!(seeds, other, "base seed must matter");
    }

    #[test]
    fn all_items_run_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..257).collect();
        let out = run_sharded(
            &items,
            PoolConfig {
                threads: 8,
                shard_size: 2,
            },
            3,
            |&i, _| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn empty_and_single_item_edge_cases() {
        let none: Vec<u32> = vec![];
        assert!(run_sharded(&none, PoolConfig::default(), 1, |&x, _| x).is_empty());
        let one = vec![42u32];
        assert_eq!(
            run_sharded(&one, PoolConfig::default(), 1, |&x, _| x),
            vec![42]
        );
    }
}
