//! Scenario registry and sharded parallel sweep engine.
//!
//! `mithril-runner` turns the system simulator into an experiment machine:
//!
//! * [`scenarios`] — the registry of named workloads, scheme catalogs and
//!   scheme × workload × geometry [`scenarios::SweepSpec`]s (the figure
//!   binaries' shared source of truth);
//! * [`engine`] — a std::thread work-stealing shard pool with
//!   deterministic per-shard RNG seeding: the same base seed produces
//!   bit-identical metrics at any worker count;
//! * [`report`] — the deterministic `BENCH_sweep.json` writer.
//!
//! The `sweep` binary ties the three together:
//!
//! ```text
//! cargo run --release -p mithril-runner --bin sweep -- --smoke --threads 4
//! ```
//!
//! # Example
//!
//! ```
//! use mithril_runner::engine::{run_sharded, PoolConfig};
//! use mithril_runner::scenarios::SweepSpec;
//!
//! let mut spec = SweepSpec::smoke();
//! spec.insts_per_core = 500; // keep the doctest quick
//! spec.workloads.truncate(1);
//! spec.geometries.truncate(1);
//! let scenarios = spec.scenarios();
//! let results = run_sharded(
//!     &scenarios,
//!     PoolConfig { threads: 2, shard_size: 1 },
//!     42,
//!     |s, seed| s.run(seed).map(|m| m.total_insts),
//! );
//! assert_eq!(results.len(), scenarios.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod report;
pub mod scenarios;

use engine::PoolConfig;
use report::SweepResult;
use scenarios::SweepSpec;

/// Executes `spec` on the shard pool and returns per-scenario results in
/// registry order. Bit-identical for any `pool.threads`.
pub fn run_sweep(spec: &SweepSpec, pool: PoolConfig, base_seed: u64) -> Vec<SweepResult> {
    let scenarios = spec.scenarios();
    let outcomes = engine::run_sharded(&scenarios, pool, base_seed, |s, seed| (seed, s.run(seed)));
    scenarios
        .into_iter()
        .zip(outcomes)
        .map(|(scenario, (seed, outcome))| SweepResult {
            scenario,
            seed,
            outcome,
        })
        .collect()
}
