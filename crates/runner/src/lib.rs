//! Scenario registry and sharded parallel sweep engine.
//!
//! `mithril-runner` turns the system simulator into an experiment machine:
//!
//! * [`scenarios`] — the registry of named workloads, scheme catalogs and
//!   scheme × workload × geometry [`scenarios::SweepSpec`]s (the figure
//!   binaries' shared source of truth);
//! * [`engine`] — a std::thread work-stealing shard pool with
//!   deterministic per-shard RNG seeding: the same base seed produces
//!   bit-identical metrics at any worker count;
//! * [`report`] — the deterministic `BENCH_sweep.json` writer.
//!
//! The `sweep` binary ties the three together:
//!
//! ```text
//! cargo run --release -p mithril-runner --bin sweep -- --smoke --threads 4
//! ```
//!
//! # Example
//!
//! ```
//! use mithril_runner::engine::{run_sharded, PoolConfig};
//! use mithril_runner::scenarios::SweepSpec;
//!
//! let mut spec = SweepSpec::smoke();
//! spec.insts_per_core = 500; // keep the doctest quick
//! spec.workloads.truncate(1);
//! spec.geometries.truncate(1);
//! let scenarios = spec.scenarios();
//! let results = run_sharded(
//!     &scenarios,
//!     PoolConfig { threads: 2, shard_size: 1 },
//!     42,
//!     |s, seed| s.run(seed).map(|m| m.total_insts),
//! );
//! assert_eq!(results.len(), scenarios.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod engine;
pub mod journal;
pub mod report;
pub mod scenarios;

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

use engine::{ItemOutcome, PoolConfig, DEFAULT_RETRIES};
use mithril_obs::ObsCapture;
use mithril_sim::ObsConfig;
use report::{FaultRun, ObsCountEntry, SweepResult};
use scenarios::{FaultCampaignSpec, QosCampaignSpec, Scenario, SweepSpec};

/// A sweep heartbeat: worker threads [`tick`](Progress::tick) it after
/// every finished scenario and it prints `# progress: done/total (name)`
/// lines to **stderr** — never stdout, which carries the result table,
/// and never the report, which must stay deterministic.
///
/// Journal-aware: a resumed sweep starts the counter at the number of
/// recovered scenarios, so the heartbeat counts toward the same total an
/// uninterrupted run would.
#[derive(Debug)]
pub struct Progress {
    done: AtomicUsize,
    total: usize,
}

impl Progress {
    /// A heartbeat over `total` scenarios starting from zero done.
    pub fn new(total: usize) -> Self {
        Self::start_at(total, 0)
    }

    /// A heartbeat starting from `done` already-finished scenarios
    /// (journal recovery).
    pub fn start_at(total: usize, done: usize) -> Self {
        Self {
            done: AtomicUsize::new(done),
            total,
        }
    }

    /// Records one finished scenario and prints the heartbeat line.
    pub fn tick(&self, name: &str) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        eprintln!("# progress: {done}/{} ({name})", self.total);
    }
}

/// Executes `spec` on the shard pool and returns per-scenario results in
/// registry order. Bit-identical for any `pool.threads`.
///
/// A scenario that *panics* (rather than erroring) is isolated: the
/// engine retries it once with its original position seed and, if it
/// keeps panicking, reports the panic as that scenario's `Err` outcome
/// instead of taking the whole sweep down.
pub fn run_sweep(spec: &SweepSpec, pool: PoolConfig, base_seed: u64) -> Vec<SweepResult> {
    run_sweep_with(spec, pool, base_seed, None)
}

/// [`run_sweep`] with an optional [`Progress`] heartbeat ticked after
/// every finished scenario.
pub fn run_sweep_with(
    spec: &SweepSpec,
    pool: PoolConfig,
    base_seed: u64,
    progress: Option<&Progress>,
) -> Vec<SweepResult> {
    run_scenarios(spec.scenarios(), pool, base_seed, progress)
}

/// Executes a QoS campaign (`spec.base` with QoS off, then the same grid
/// with throttling on) and returns results in registry (off-pass-first)
/// order. Bit-identical at any `pool.threads` like [`run_sweep`].
///
/// The two passes are seeded independently from the same `base_seed`, so
/// a QoS-off run and its `+qos` twin execute under the **same** seed —
/// every off/on pair differs only in the throttling policy, never in the
/// workload's or scheme's RNG draw.
///
/// ```
/// use mithril_runner::engine::PoolConfig;
/// use mithril_runner::run_qos_campaign;
/// use mithril_runner::scenarios::QosCampaignSpec;
///
/// let mut spec = QosCampaignSpec::smoke();
/// spec.base.insts_per_core = 400; // keep the doctest quick
/// spec.base.cores = 2;
/// let pool = PoolConfig { threads: 2, shard_size: 1 };
/// let results = run_qos_campaign(&spec, pool, 7, None);
/// let half = results.len() / 2;
/// // Position i of the off pass pairs with position half + i of the on
/// // pass: same scenario, same seed, QoS policy flipped.
/// assert_eq!(results[0].seed, results[half].seed);
/// assert_eq!(
///     format!("{}+qos", results[0].scenario.name),
///     results[half].scenario.name
/// );
/// ```
pub fn run_qos_campaign(
    spec: &QosCampaignSpec,
    pool: PoolConfig,
    base_seed: u64,
    progress: Option<&Progress>,
) -> Vec<SweepResult> {
    let all = spec.scenarios();
    let per_pass = all.len() / 2;
    let (off, on) = all.split_at(per_pass);
    let mut results = run_scenarios(off.to_vec(), pool, base_seed, progress);
    results.extend(run_scenarios(on.to_vec(), pool, base_seed, progress));
    results
}

fn run_scenarios(
    scenarios: Vec<Scenario>,
    pool: PoolConfig,
    base_seed: u64,
    progress: Option<&Progress>,
) -> Vec<SweepResult> {
    let outcomes =
        engine::run_sharded_robust(&scenarios, pool, base_seed, DEFAULT_RETRIES, |s, seed| {
            let outcome = s.run(seed);
            if let Some(p) = progress {
                p.tick(&s.name);
            }
            (seed, outcome)
        });
    scenarios
        .into_iter()
        .enumerate()
        .zip(outcomes)
        .map(|((i, scenario), item)| {
            let (seed, outcome) = match item.into_result() {
                Ok((seed, outcome)) => (seed, outcome),
                Err(e) => (engine::position_seed(base_seed, pool.shard_size, i), Err(e)),
            };
            SweepResult {
                scenario,
                seed,
                outcome,
            }
        })
        .collect()
}

/// Executes `spec` with ring-sink observability attached to every
/// scenario and returns, per registry position, the sweep result plus
/// its [`ObsCapture`] (`None` when the scenario errored or panicked
/// before producing one).
///
/// Determinism: every position runs its own independent [`System`]
/// seeded by sweep position, so both the metrics *and* the captures are
/// bit-identical at any `pool.threads`.
///
/// [`System`]: mithril_sim::System
pub fn run_sweep_observed(
    spec: &SweepSpec,
    pool: PoolConfig,
    base_seed: u64,
    obs: ObsConfig,
    progress: Option<&Progress>,
) -> Vec<(SweepResult, Option<ObsCapture>)> {
    let scenarios = spec.scenarios();
    let outcomes =
        engine::run_sharded_robust(&scenarios, pool, base_seed, DEFAULT_RETRIES, |s, seed| {
            let out = s.run_observed(seed, obs);
            if let Some(p) = progress {
                p.tick(&s.name);
            }
            match out {
                Ok((metrics, capture)) => (seed, Ok(metrics), Some(capture)),
                Err(e) => (seed, Err(e), None),
            }
        });
    scenarios
        .into_iter()
        .enumerate()
        .zip(outcomes)
        .map(|((i, scenario), item)| {
            let (seed, outcome, capture) = match item.into_result() {
                Ok((seed, outcome, capture)) => (seed, outcome, capture),
                Err(e) => (
                    engine::position_seed(base_seed, pool.shard_size, i),
                    Err(e),
                    None,
                ),
            };
            (
                SweepResult {
                    scenario,
                    seed,
                    outcome,
                },
                capture,
            )
        })
        .collect()
}

/// Directory-name-safe projection of a scenario name: alphanumerics,
/// `-`, `_` and `.` pass through, everything else becomes `-`.
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// Writes the observability artifacts of an observed sweep under `dir`:
///
/// * `dir/NNN_<scenario>/events.jsonl` — merged per-position event log;
/// * `dir/NNN_<scenario>/series.csv` — cycle-domain time series;
/// * `dir/NNN_<scenario>/summary.json` — per-position counts summary;
/// * `dir/obs_counts.json` — the aggregate per-kind count baseline
///   ([`report::obs_counts_json`], the `BENCH_obs.json` format CI diffs).
///
/// Returns the aggregate `obs_counts.json` string so callers can also
/// write it elsewhere (e.g. refresh the committed baseline).
///
/// # Errors
///
/// Any I/O failure, rendered with the offending path.
pub fn write_obs_outputs(
    dir: &Path,
    base_seed: u64,
    observed: &[(SweepResult, Option<ObsCapture>)],
) -> Result<String, String> {
    let io = |path: &Path, e: std::io::Error| format!("{}: {e}", path.display());
    std::fs::create_dir_all(dir).map_err(|e| io(dir, e))?;
    let mut entries = Vec::new();
    for (index, (result, capture)) in observed.iter().enumerate() {
        let Some(capture) = capture else { continue };
        let sub = dir.join(format!(
            "{index:03}_{}",
            sanitize_name(&result.scenario.name)
        ));
        std::fs::create_dir_all(&sub).map_err(|e| io(&sub, e))?;
        for (file, contents) in [
            ("events.jsonl", capture.events_jsonl()),
            ("series.csv", capture.series_csv()),
            ("summary.json", capture.summary_json()),
        ] {
            let path = sub.join(file);
            std::fs::write(&path, contents).map_err(|e| io(&path, e))?;
        }
        entries.push(ObsCountEntry {
            index,
            name: result.scenario.name.clone(),
            seed: result.seed,
            counts: capture.total_counts(),
            dropped: capture.total_dropped(),
        });
    }
    let counts = report::obs_counts_json(base_seed, &entries);
    let path = dir.join("obs_counts.json");
    std::fs::write(&path, &counts).map_err(|e| io(&path, e))?;
    Ok(counts)
}

/// Executes a fault-resilience campaign (`spec.base` × `spec.rates_ppm`)
/// and returns one [`FaultRun`] per scenario in registry (rate-major)
/// order. Fault plans are seeded by sweep position, so the campaign is
/// bit-identical at any `pool.threads`.
pub fn run_fault_campaign(
    spec: &FaultCampaignSpec,
    pool: PoolConfig,
    base_seed: u64,
) -> Vec<FaultRun> {
    let scenarios = spec.scenarios();
    let outcomes =
        engine::run_sharded_robust(&scenarios, pool, base_seed, DEFAULT_RETRIES, |s, seed| {
            (seed, s.run_detailed(seed))
        });
    let per_rate = scenarios.len() / spec.rates_ppm.len().max(1);
    scenarios
        .into_iter()
        .enumerate()
        .zip(outcomes)
        .map(|((i, scenario), item)| {
            let rate_ppm = scenario.faults.map_or_else(
                || *spec.rates_ppm.get(i / per_rate.max(1)).unwrap_or(&0),
                |f| f.rate_ppm,
            );
            let (seed, outcome, fault_stats) = match item.into_result() {
                Ok((seed, Ok((metrics, stats)))) => (seed, Ok(metrics), stats),
                Ok((seed, Err(e))) => (seed, Err(e), None),
                Err(e) => (
                    engine::position_seed(base_seed, pool.shard_size, i),
                    Err(e),
                    None,
                ),
            };
            FaultRun {
                rate_ppm,
                result: SweepResult {
                    scenario,
                    seed,
                    outcome,
                },
                fault_stats,
            }
        })
        .collect()
}

/// The outcome of a journaled (crash-safe) sweep.
#[derive(Debug)]
pub struct JournaledSweep {
    /// The assembled `BENCH_sweep.json` report.
    pub report: String,
    /// Scenarios recovered from the journal instead of re-run.
    pub recovered: usize,
    /// Journal lines dropped as corrupt or torn during recovery.
    pub dropped_lines: usize,
    /// Scenarios executed (or re-executed) by this invocation.
    pub ran: usize,
}

/// Executes `spec` with a crash-safe completion journal at `path`.
///
/// Every completed scenario is appended to the journal (hash-guarded,
/// flushed) *before* the sweep moves on, so a killed process loses only
/// in-flight work. With `resume`, an existing journal for the same seed
/// and spec is recovered first — corrupt or torn lines are dropped and
/// re-run — and only missing scenarios execute, each seeded by its sweep
/// *position*. The assembled report is byte-identical to what an
/// uninterrupted [`run_sweep`] + [`report::sweep_json`] would produce.
///
/// # Errors
///
/// Journal I/O failure, or a journal that belongs to a different sweep
/// (seed or spec fingerprint mismatch).
pub fn run_sweep_journaled(
    spec: &SweepSpec,
    pool: PoolConfig,
    base_seed: u64,
    path: &Path,
    resume: bool,
) -> Result<JournaledSweep, String> {
    run_sweep_journaled_with(spec, pool, base_seed, path, resume, false)
}

/// [`run_sweep_journaled`] with an optional stderr [`Progress`]
/// heartbeat; the counter starts at the number of journal-recovered
/// scenarios so it counts toward the full sweep total.
pub fn run_sweep_journaled_with(
    spec: &SweepSpec,
    pool: PoolConfig,
    base_seed: u64,
    path: &Path,
    resume: bool,
    progress: bool,
) -> Result<JournaledSweep, String> {
    let scenarios = spec.scenarios();
    let fp = journal::fingerprint(base_seed, &scenarios);
    let (mut entries, dropped_lines, writer) = if resume && path.exists() {
        let loaded = journal::load(path, base_seed, fp, scenarios.len())?;
        let writer = journal::JournalWriter::append(path)?;
        (loaded.entries, loaded.dropped_lines, writer)
    } else {
        let writer = journal::JournalWriter::create(path, base_seed, fp)?;
        (vec![None; scenarios.len()], 0, writer)
    };
    let recovered = entries.iter().filter(|e| e.is_some()).count();

    let missing: Vec<(usize, &Scenario)> = entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.is_none())
        .map(|(i, _)| (i, &scenarios[i]))
        .collect();
    let ran = missing.len();
    let heartbeat = progress.then(|| Progress::start_at(scenarios.len(), recovered));

    // The engine seeds by position in `missing`, which shifts on resume;
    // seed by position in the *full* scenario list instead, so resumed
    // and uninterrupted runs execute identical work.
    let outcomes = engine::run_sharded_robust(
        &missing,
        pool,
        base_seed,
        DEFAULT_RETRIES,
        |&(index, scenario), _| {
            let seed = engine::position_seed(base_seed, pool.shard_size, index);
            let result = SweepResult {
                scenario: scenario.clone(),
                seed,
                outcome: scenario.run(seed),
            };
            let entry = report::result_json(&result);
            writer.record(index, entry.trim_start());
            if let Some(p) = &heartbeat {
                p.tick(&scenario.name);
            }
            entry
        },
    );
    for (&(index, scenario), item) in missing.iter().zip(outcomes) {
        let entry = match item {
            ItemOutcome::Done(entry) => entry,
            panicked => {
                let seed = engine::position_seed(base_seed, pool.shard_size, index);
                report::result_json(&SweepResult {
                    scenario: scenario.clone(),
                    seed,
                    outcome: Err(panicked.into_result().unwrap_err()),
                })
            }
        };
        entries[index] = Some(entry.trim_start().to_string());
    }

    let full: Vec<String> = entries
        .into_iter()
        .map(|e| format!("    {}", e.expect("every index recovered or run")))
        .collect();
    Ok(JournaledSweep {
        report: report::sweep_json_from_entries(base_seed, &full),
        recovered,
        dropped_lines,
        ran,
    })
}
