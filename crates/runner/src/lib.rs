//! Scenario registry and sharded parallel sweep engine.
//!
//! `mithril-runner` turns the system simulator into an experiment machine:
//!
//! * [`scenarios`] — the registry of named workloads, scheme catalogs and
//!   scheme × workload × geometry [`scenarios::SweepSpec`]s (the figure
//!   binaries' shared source of truth);
//! * [`engine`] — a std::thread work-stealing shard pool with
//!   deterministic per-shard RNG seeding: the same base seed produces
//!   bit-identical metrics at any worker count;
//! * [`report`] — the deterministic `BENCH_sweep.json` writer.
//!
//! The `sweep` binary ties the three together:
//!
//! ```text
//! cargo run --release -p mithril-runner --bin sweep -- --smoke --threads 4
//! ```
//!
//! # Example
//!
//! ```
//! use mithril_runner::engine::{run_sharded, PoolConfig};
//! use mithril_runner::scenarios::SweepSpec;
//!
//! let mut spec = SweepSpec::smoke();
//! spec.insts_per_core = 500; // keep the doctest quick
//! spec.workloads.truncate(1);
//! spec.geometries.truncate(1);
//! let scenarios = spec.scenarios();
//! let results = run_sharded(
//!     &scenarios,
//!     PoolConfig { threads: 2, shard_size: 1 },
//!     42,
//!     |s, seed| s.run(seed).map(|m| m.total_insts),
//! );
//! assert_eq!(results.len(), scenarios.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod journal;
pub mod report;
pub mod scenarios;

use std::path::Path;

use engine::{ItemOutcome, PoolConfig, DEFAULT_RETRIES};
use report::{FaultRun, SweepResult};
use scenarios::{FaultCampaignSpec, Scenario, SweepSpec};

/// Executes `spec` on the shard pool and returns per-scenario results in
/// registry order. Bit-identical for any `pool.threads`.
///
/// A scenario that *panics* (rather than erroring) is isolated: the
/// engine retries it once with its original position seed and, if it
/// keeps panicking, reports the panic as that scenario's `Err` outcome
/// instead of taking the whole sweep down.
pub fn run_sweep(spec: &SweepSpec, pool: PoolConfig, base_seed: u64) -> Vec<SweepResult> {
    let scenarios = spec.scenarios();
    let outcomes =
        engine::run_sharded_robust(&scenarios, pool, base_seed, DEFAULT_RETRIES, |s, seed| {
            (seed, s.run(seed))
        });
    scenarios
        .into_iter()
        .enumerate()
        .zip(outcomes)
        .map(|((i, scenario), item)| {
            let (seed, outcome) = match item.into_result() {
                Ok((seed, outcome)) => (seed, outcome),
                Err(e) => (engine::position_seed(base_seed, pool.shard_size, i), Err(e)),
            };
            SweepResult {
                scenario,
                seed,
                outcome,
            }
        })
        .collect()
}

/// Executes a fault-resilience campaign (`spec.base` × `spec.rates_ppm`)
/// and returns one [`FaultRun`] per scenario in registry (rate-major)
/// order. Fault plans are seeded by sweep position, so the campaign is
/// bit-identical at any `pool.threads`.
pub fn run_fault_campaign(
    spec: &FaultCampaignSpec,
    pool: PoolConfig,
    base_seed: u64,
) -> Vec<FaultRun> {
    let scenarios = spec.scenarios();
    let outcomes =
        engine::run_sharded_robust(&scenarios, pool, base_seed, DEFAULT_RETRIES, |s, seed| {
            (seed, s.run_detailed(seed))
        });
    let per_rate = scenarios.len() / spec.rates_ppm.len().max(1);
    scenarios
        .into_iter()
        .enumerate()
        .zip(outcomes)
        .map(|((i, scenario), item)| {
            let rate_ppm = scenario.faults.map_or_else(
                || *spec.rates_ppm.get(i / per_rate.max(1)).unwrap_or(&0),
                |f| f.rate_ppm,
            );
            let (seed, outcome, fault_stats) = match item.into_result() {
                Ok((seed, Ok((metrics, stats)))) => (seed, Ok(metrics), stats),
                Ok((seed, Err(e))) => (seed, Err(e), None),
                Err(e) => (
                    engine::position_seed(base_seed, pool.shard_size, i),
                    Err(e),
                    None,
                ),
            };
            FaultRun {
                rate_ppm,
                result: SweepResult {
                    scenario,
                    seed,
                    outcome,
                },
                fault_stats,
            }
        })
        .collect()
}

/// The outcome of a journaled (crash-safe) sweep.
#[derive(Debug)]
pub struct JournaledSweep {
    /// The assembled `BENCH_sweep.json` report.
    pub report: String,
    /// Scenarios recovered from the journal instead of re-run.
    pub recovered: usize,
    /// Journal lines dropped as corrupt or torn during recovery.
    pub dropped_lines: usize,
    /// Scenarios executed (or re-executed) by this invocation.
    pub ran: usize,
}

/// Executes `spec` with a crash-safe completion journal at `path`.
///
/// Every completed scenario is appended to the journal (hash-guarded,
/// flushed) *before* the sweep moves on, so a killed process loses only
/// in-flight work. With `resume`, an existing journal for the same seed
/// and spec is recovered first — corrupt or torn lines are dropped and
/// re-run — and only missing scenarios execute, each seeded by its sweep
/// *position*. The assembled report is byte-identical to what an
/// uninterrupted [`run_sweep`] + [`report::sweep_json`] would produce.
///
/// # Errors
///
/// Journal I/O failure, or a journal that belongs to a different sweep
/// (seed or spec fingerprint mismatch).
pub fn run_sweep_journaled(
    spec: &SweepSpec,
    pool: PoolConfig,
    base_seed: u64,
    path: &Path,
    resume: bool,
) -> Result<JournaledSweep, String> {
    let scenarios = spec.scenarios();
    let fp = journal::fingerprint(base_seed, &scenarios);
    let (mut entries, dropped_lines, writer) = if resume && path.exists() {
        let loaded = journal::load(path, base_seed, fp, scenarios.len())?;
        let writer = journal::JournalWriter::append(path)?;
        (loaded.entries, loaded.dropped_lines, writer)
    } else {
        let writer = journal::JournalWriter::create(path, base_seed, fp)?;
        (vec![None; scenarios.len()], 0, writer)
    };
    let recovered = entries.iter().filter(|e| e.is_some()).count();

    let missing: Vec<(usize, &Scenario)> = entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.is_none())
        .map(|(i, _)| (i, &scenarios[i]))
        .collect();
    let ran = missing.len();

    // The engine seeds by position in `missing`, which shifts on resume;
    // seed by position in the *full* scenario list instead, so resumed
    // and uninterrupted runs execute identical work.
    let outcomes = engine::run_sharded_robust(
        &missing,
        pool,
        base_seed,
        DEFAULT_RETRIES,
        |&(index, scenario), _| {
            let seed = engine::position_seed(base_seed, pool.shard_size, index);
            let result = SweepResult {
                scenario: scenario.clone(),
                seed,
                outcome: scenario.run(seed),
            };
            let entry = report::result_json(&result);
            writer.record(index, entry.trim_start());
            entry
        },
    );
    for (&(index, scenario), item) in missing.iter().zip(outcomes) {
        let entry = match item {
            ItemOutcome::Done(entry) => entry,
            panicked => {
                let seed = engine::position_seed(base_seed, pool.shard_size, index);
                report::result_json(&SweepResult {
                    scenario: scenario.clone(),
                    seed,
                    outcome: Err(panicked.into_result().unwrap_err()),
                })
            }
        };
        entries[index] = Some(entry.trim_start().to_string());
    }

    let full: Vec<String> = entries
        .into_iter()
        .map(|e| format!("    {}", e.expect("every index recovered or run")))
        .collect();
    Ok(JournaledSweep {
        report: report::sweep_json_from_entries(base_seed, &full),
        recovered,
        dropped_lines,
        ran,
    })
}
