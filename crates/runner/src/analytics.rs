//! Regression analytics over emitted reports — the library behind
//! `obs report`.
//!
//! Ingests two or more of the workspace's deterministic JSON reports
//! (`BENCH_sweep.json` sweeps, `trace replay --metrics-only` runs,
//! `BENCH_obs.json` / `obs_counts.json` event-count baselines, or `--obs`
//! output directories) and compares a baseline against each candidate:
//! per-metric deltas with direction-aware regression classification,
//! latency-percentile shifts, new/missing scenarios, and ring-drop
//! warnings. Every input is `format_version`-validated before any
//! numbers are compared, so schema drift fails loudly instead of
//! producing a nonsense table.

use mithril_obs::json::Json;
use mithril_obs::FORMAT_VERSION;

/// Whether a metric counts as *better* when it goes up or when it goes
/// down; `Neutral` metrics are reported but never classified as
/// regressions (counters that merely describe the workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (throughput-like).
    HigherBetter,
    /// Smaller is better (latency/energy-like).
    LowerBetter,
    /// Informational only.
    Neutral,
}

/// The per-scenario metrics `obs report` tracks, with the JSON path each
/// is extracted from and its regression direction.
const SCENARIO_METRICS: &[(&str, &[&str], Direction)] = &[
    ("aggregate_ipc", &["aggregate_ipc"], Direction::HigherBetter),
    ("energy_pj", &["energy_pj"], Direction::LowerBetter),
    (
        "avg_read_latency_ns",
        &["avg_read_latency_ns"],
        Direction::LowerBetter,
    ),
    (
        "max_disturbance",
        &["max_disturbance"],
        Direction::LowerBetter,
    ),
    ("flips", &["flips"], Direction::LowerBetter),
    ("throttled_acts", &["throttled_acts"], Direction::Neutral),
    (
        "read_p50_ps",
        &["latency", "read", "p50_ps"],
        Direction::LowerBetter,
    ),
    (
        "read_p99_ps",
        &["latency", "read", "p99_ps"],
        Direction::LowerBetter,
    ),
    (
        "read_p999_ps",
        &["latency", "read", "p999_ps"],
        Direction::LowerBetter,
    ),
    (
        "write_p99_ps",
        &["latency", "write", "p99_ps"],
        Direction::LowerBetter,
    ),
];

/// One named run extracted from a report, with its flat metric list.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Scenario name (sweeps), scheme label (metrics-only runs) or kind
    /// name (count baselines).
    pub name: String,
    /// `(metric, value, direction)` triples in extraction order.
    pub metrics: Vec<(String, f64, Direction)>,
}

/// A parsed, validated report in comparison-ready form.
#[derive(Debug, Clone)]
pub struct Report {
    /// What kind of report this was parsed from (for the table header).
    pub kind: &'static str,
    /// The comparable runs, in report order.
    pub runs: Vec<RunMetrics>,
    /// Ring-drop (and other) warnings the report itself carried, plus
    /// any nonzero drop counters found while parsing.
    pub warnings: Vec<String>,
}

fn walk<'a>(root: &'a Json, path: &[&str]) -> Option<&'a Json> {
    let mut cur = root;
    for key in path {
        cur = cur.get(key)?;
    }
    Some(cur)
}

fn scenario_metrics(name: &str, metrics: &Json) -> RunMetrics {
    let mut out = Vec::new();
    for &(label, path, dir) in SCENARIO_METRICS {
        if let Some(v) = walk(metrics, path).and_then(Json::as_f64) {
            out.push((label.to_string(), v, dir));
        }
    }
    // Per-tenant tails: one `core<N>_p99_ps` metric per issuing core, so
    // a single tenant's latency blowup (the noisy-neighbor failure mode)
    // trips the gate even when the aggregate percentiles barely move.
    if let Some(per_core) = metrics.get("per_core").and_then(Json::as_arr) {
        for c in per_core {
            let (Some(core), Some(p99)) = (
                c.get("core").and_then(Json::as_u64),
                c.get("p99_ps").and_then(Json::as_f64),
            ) else {
                continue;
            };
            out.push((format!("core{core}_p99_ps"), p99, Direction::LowerBetter));
        }
    }
    RunMetrics {
        name: name.to_string(),
        metrics: out,
    }
}

/// Parses and validates one report document. Accepts every dialect the
/// workspace emits: sweeps (`scenarios`), metrics-only replays (`runs`),
/// and obs count baselines/summaries (`positions`/`totals` or `counts`).
pub fn parse_report(text: &str) -> Result<Report, String> {
    let doc = Json::parse(text)?;
    let version = doc
        .get("format_version")
        .and_then(Json::as_u64)
        .ok_or_else(|| "report carries no format_version stamp".to_string())?;
    if version != FORMAT_VERSION {
        return Err(format!(
            "format_version {version} does not match this tool's {FORMAT_VERSION} \
             (regenerate the report or use a matching obs binary)"
        ));
    }

    let mut warnings: Vec<String> = Vec::new();
    if let Some(list) = doc.get("warnings").and_then(Json::as_arr) {
        warnings.extend(list.iter().filter_map(Json::as_str).map(String::from));
    }

    if let Some(scenarios) = doc.get("scenarios").and_then(Json::as_arr) {
        let mut runs = Vec::new();
        for s in scenarios {
            let name = s.get("name").and_then(Json::as_str).unwrap_or("?");
            match s.get("metrics") {
                Some(m) => runs.push(scenario_metrics(name, m)),
                None => warnings.push(format!(
                    "scenario {name} carries an error instead of metrics: {}",
                    s.get("error").and_then(Json::as_str).unwrap_or("unknown")
                )),
            }
        }
        return Ok(Report {
            kind: "sweep",
            runs,
            warnings,
        });
    }

    if let Some(replays) = doc.get("runs").and_then(Json::as_arr) {
        let mut runs = Vec::new();
        for (i, r) in replays.iter().enumerate() {
            let scheme = r.get("scheme").and_then(Json::as_str).unwrap_or("?");
            let name = format!("{i}/{scheme}");
            if let Some(m) = r.get("metrics") {
                runs.push(scenario_metrics(&name, m));
            }
        }
        return Ok(Report {
            kind: "metrics-only replay",
            runs,
            warnings,
        });
    }

    if let Some(totals) = doc.get("totals").and_then(Json::as_obj) {
        // obs_counts.json: per-kind totals are the comparable metrics;
        // any drop is a warning even if the report predates `warnings`.
        let metrics: Vec<(String, f64, Direction)> = totals
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|x| (k.clone(), x, Direction::Neutral)))
            .collect();
        if let Some(d) = doc.get("total_dropped").and_then(Json::as_u64) {
            if d > 0 && warnings.is_empty() {
                warnings.push(format!("rings dropped {d} events"));
            }
        }
        return Ok(Report {
            kind: "obs counts",
            runs: vec![RunMetrics {
                name: "totals".to_string(),
                metrics,
            }],
            warnings,
        });
    }

    if let Some(counts) = doc.get("counts").and_then(Json::as_obj) {
        // A single capture's summary.json.
        let metrics: Vec<(String, f64, Direction)> = counts
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|x| (k.clone(), x, Direction::Neutral)))
            .collect();
        if let Some(d) = doc.get("events_dropped").and_then(Json::as_u64) {
            if d > 0 && warnings.is_empty() {
                warnings.push(format!("rings dropped {d} events"));
            }
        }
        return Ok(Report {
            kind: "obs summary",
            runs: vec![RunMetrics {
                name: "counts".to_string(),
                metrics,
            }],
            warnings,
        });
    }

    Err("unrecognized report shape (expected scenarios/runs/totals/counts)".to_string())
}

/// One compared metric of one run.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Which run the metric belongs to.
    pub run: String,
    /// The metric label.
    pub metric: String,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
    /// Signed percent change relative to the baseline (`new` vs `old`);
    /// +100 when a zero baseline became nonzero.
    pub delta_pct: f64,
    /// True when the change moves against the metric's direction.
    pub worse: bool,
}

/// Result of comparing a candidate report against the baseline.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// All metric deltas for runs present in both reports.
    pub deltas: Vec<Delta>,
    /// Runs only in the candidate.
    pub new_runs: Vec<String>,
    /// Runs only in the baseline.
    pub missing_runs: Vec<String>,
    /// Warnings from either side (ring drops, errored scenarios).
    pub warnings: Vec<String>,
}

impl Comparison {
    /// Deltas that regressed by more than `pct` percent (direction-aware;
    /// `Neutral` metrics never qualify).
    pub fn regressions(&self, pct: f64) -> Vec<&Delta> {
        self.deltas
            .iter()
            .filter(|d| d.worse && d.delta_pct.abs() > pct)
            .collect()
    }

    /// Renders the regression table: changed metrics first (largest
    /// regression first), then scenario-set drift and warnings, then a
    /// one-line summary of unchanged metrics.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut changed: Vec<&Delta> = self.deltas.iter().filter(|d| d.delta_pct != 0.0).collect();
        changed.sort_by(|a, b| {
            (b.worse, b.delta_pct.abs())
                .partial_cmp(&(a.worse, a.delta_pct.abs()))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out.push_str(&format!(
            "{:<44} {:>20} {:>14} {:>14} {:>9}\n",
            "run", "metric", "old", "new", "delta%"
        ));
        for d in &changed {
            out.push_str(&format!(
                "{:<44} {:>20} {:>14} {:>14} {:>+9.2}{}\n",
                d.run,
                d.metric,
                trim_num(d.old),
                trim_num(d.new),
                d.delta_pct,
                if d.worse { "  <-- worse" } else { "" }
            ));
        }
        let unchanged = self.deltas.len() - changed.len();
        out.push_str(&format!(
            "{} metrics compared, {} changed, {} unchanged\n",
            self.deltas.len(),
            changed.len(),
            unchanged
        ));
        for name in &self.new_runs {
            out.push_str(&format!("NEW      {name}\n"));
        }
        for name in &self.missing_runs {
            out.push_str(&format!("MISSING  {name}\n"));
        }
        for w in &self.warnings {
            out.push_str(&format!("WARN     {w}\n"));
        }
        out
    }
}

fn trim_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.4}")
    }
}

/// Compares `new` against the `old` baseline, matching runs by name.
pub fn compare(old: &Report, new: &Report) -> Comparison {
    let mut cmp = Comparison::default();
    for w in old.warnings.iter().chain(new.warnings.iter()) {
        if !cmp.warnings.contains(w) {
            cmp.warnings.push(w.clone());
        }
    }
    for run in &new.runs {
        let Some(base) = old.runs.iter().find(|r| r.name == run.name) else {
            cmp.new_runs.push(run.name.clone());
            continue;
        };
        for (metric, new_v, dir) in &run.metrics {
            let Some((_, old_v, _)) = base.metrics.iter().find(|(m, _, _)| m == metric) else {
                continue;
            };
            let delta_pct = if *old_v == 0.0 {
                if *new_v == 0.0 {
                    0.0
                } else {
                    100.0
                }
            } else {
                (new_v - old_v) / old_v.abs() * 100.0
            };
            let worse = match dir {
                Direction::HigherBetter => delta_pct < 0.0,
                Direction::LowerBetter => delta_pct > 0.0,
                Direction::Neutral => false,
            };
            cmp.deltas.push(Delta {
                run: run.name.clone(),
                metric: metric.clone(),
                old: *old_v,
                new: *new_v,
                delta_pct,
                worse,
            });
        }
    }
    for run in &old.runs {
        if !new.runs.iter().any(|r| r.name == run.name) {
            cmp.missing_runs.push(run.name.clone());
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PoolConfig;
    use crate::report::sweep_json;
    use crate::run_sweep;
    use crate::scenarios::SweepSpec;

    fn tiny_sweep(seed: u64) -> Vec<crate::report::SweepResult> {
        let mut spec = SweepSpec::smoke();
        spec.insts_per_core = 800;
        spec.cores = 2;
        let mut results = run_sweep(
            &spec,
            PoolConfig {
                threads: 2,
                shard_size: 1,
            },
            seed,
        );
        results.truncate(4);
        results
    }

    #[test]
    fn identical_reports_have_no_regressions() {
        let json = sweep_json(7, &tiny_sweep(7));
        let a = parse_report(&json).unwrap();
        let b = parse_report(&json).unwrap();
        assert_eq!(a.kind, "sweep");
        assert!(!a.runs.is_empty());
        // Every run exposes the percentile ladder.
        assert!(a.runs[0].metrics.iter().any(|(m, _, _)| m == "read_p99_ps"));
        let cmp = compare(&a, &b);
        assert!(cmp.regressions(0.0).is_empty());
        assert!(cmp.new_runs.is_empty() && cmp.missing_runs.is_empty());
        assert!(cmp.deltas.iter().all(|d| d.delta_pct == 0.0));
        assert!(cmp.render().contains("0 changed"));
    }

    /// Acceptance pin: an injected synthetic regression (aggregate IPC
    /// cut, read p99 inflated) must be classified as such.
    #[test]
    fn injected_regression_is_detected() {
        let results = tiny_sweep(42);
        let old = parse_report(&sweep_json(42, &results)).unwrap();

        let mut worse = results.clone();
        for r in &mut worse {
            if let Ok(m) = &mut r.outcome {
                m.aggregate_ipc *= 0.80; // -20% throughput
            }
        }
        let new = parse_report(&sweep_json(42, &worse)).unwrap();
        let cmp = compare(&old, &new);
        let regs = cmp.regressions(5.0);
        assert!(
            !regs.is_empty() && regs.iter().all(|d| d.metric == "aggregate_ipc"),
            "expected only aggregate_ipc regressions, got {regs:?}"
        );
        assert!(cmp.render().contains("<-- worse"));
        // An *improvement* of the same size is not a regression.
        let cmp_rev = compare(&new, &old);
        assert!(cmp_rev.regressions(5.0).is_empty());
    }

    #[test]
    fn scenario_set_drift_is_reported() {
        let results = tiny_sweep(7);
        let old = parse_report(&sweep_json(7, &results)).unwrap();
        let mut fewer = results.clone();
        fewer.pop();
        let new = parse_report(&sweep_json(7, &fewer)).unwrap();
        let cmp = compare(&old, &new);
        assert_eq!(cmp.missing_runs.len(), 1);
        assert!(compare(&new, &old).new_runs.len() == 1);
    }

    #[test]
    fn foreign_format_versions_are_rejected() {
        let json = sweep_json(7, &tiny_sweep(7));
        let forged = json.replace(
            &format!("\"format_version\": {FORMAT_VERSION}"),
            "\"format_version\": 999",
        );
        assert!(parse_report(&forged).unwrap_err().contains("999"));
        assert!(parse_report("{}").is_err());
        assert!(parse_report("not json").is_err());
    }

    #[test]
    fn obs_counts_reports_flag_drops() {
        let entry = crate::report::ObsCountEntry {
            index: 0,
            name: "s".into(),
            seed: 1,
            counts: [3; mithril_obs::KINDS],
            dropped: 5,
        };
        let json = crate::report::obs_counts_json(1, &[entry]);
        let report = parse_report(&json).unwrap();
        assert_eq!(report.kind, "obs counts");
        assert!(
            report.warnings.iter().any(|w| w.contains("dropped 5")),
            "{:?}",
            report.warnings
        );
        let cmp = compare(&report, &report);
        assert!(!cmp.warnings.is_empty());
        assert_eq!(cmp.deltas.len(), mithril_obs::KINDS);
    }
}
