//! The scenario registry: named workloads, scheme catalogs, and
//! scheme × workload × geometry sweep specifications.
//!
//! Everything the figure/table binaries used to duplicate lives here once:
//! the per-figure scheme lists, the workload name → [`ThreadSet`] factory,
//! the standard `(FlipTH, RFMTH)` sweeps, and the [`Scenario`] unit the
//! sweep engine executes.

use mithril::MithrilConfig;
use mithril_baselines::{BlockHammerConfig, CbtConfig, GrapheneConfig, TwiCeConfig, FLIP_TH_SWEEP};
use mithril_dram::{Ddr5Timing, Geometry};
use mithril_obs::ObsCapture;
use mithril_sim::{
    geomean, FaultConfig, FaultStats, Metrics, ObsConfig, QosConfig, QosPolicy, Scheme, System,
    SystemConfig,
};
use mithril_trace::ReplayEnd;
use mithril_workloads::{
    attack_mix, bh_cover_attack_mix, channel_interference_mix, mix_blend, mix_high, multithreaded,
    noisy_neighbor_mix, ThreadSet,
};

/// The `(FlipTH, RFMTH)` pairs of paper Fig. 9 (one point per column).
pub const MITHRIL_SWEEP: [(u64, u64); 8] = [
    (12_500, 512),
    (12_500, 256),
    (12_500, 128),
    (6_250, 256),
    (6_250, 128),
    (6_250, 64),
    (3_125, 128),
    (1_500, 32),
];

/// The five benign workload names of the paper's "normal workloads"
/// aggregation.
pub const NORMAL_WORKLOADS: [&str; 5] = ["mix-high", "mix-blend", "fft", "radix", "pagerank"];

/// The Mithril RFMTH the paper pairs with each FlipTH in Figs. 10/11.
pub fn default_rfm_th(flip_th: u64) -> u64 {
    match flip_th {
        50_000 | 25_000 => 256,
        12_500 => 256,
        6_250 => 128,
        3_125 => 64,
        1_500 => 32,
        other => panic!("no default RFMTH for FlipTH {other}"),
    }
}

/// The RFM-interface-compatible scheme panel of paper Fig. 10.
pub fn rfm_compatible_schemes(flip: u64, nbl_scale: u64) -> Vec<(&'static str, Scheme)> {
    let rfm = default_rfm_th(flip);
    vec![
        ("parfm", Scheme::Parfm),
        ("blockhammer", Scheme::BlockHammer { nbl_scale }),
        (
            "mithril",
            Scheme::Mithril {
                rfm_th: rfm,
                ad_th: Some(200),
                plus: false,
            },
        ),
        (
            "mithril+",
            Scheme::Mithril {
                rfm_th: rfm,
                ad_th: Some(200),
                plus: true,
            },
        ),
    ]
}

/// The ARR-based (RFM-interface-*non*-compatible) scheme panel of paper
/// Fig. 11.
pub fn arr_schemes(flip: u64) -> Vec<(&'static str, Scheme)> {
    let rfm = default_rfm_th(flip);
    vec![
        ("para", Scheme::Para),
        ("cbt", Scheme::Cbt),
        ("twice", Scheme::TwiCe),
        ("graphene", Scheme::Graphene),
        (
            "mithril",
            Scheme::Mithril {
                rfm_th: rfm,
                ad_th: Some(200),
                plus: false,
            },
        ),
        (
            "mithril+",
            Scheme::Mithril {
                rfm_th: rfm,
                ad_th: Some(200),
                plus: true,
            },
        ),
    ]
}

/// Every scheme, for full-system comparisons (the `system_comparison`
/// example and the default sweep).
pub fn all_schemes(rfm_th: u64, nbl_scale: u64) -> Vec<(&'static str, Scheme)> {
    vec![
        ("none", Scheme::None),
        (
            "mithril",
            Scheme::Mithril {
                rfm_th,
                ad_th: Some(200),
                plus: false,
            },
        ),
        (
            "mithril+",
            Scheme::Mithril {
                rfm_th,
                ad_th: Some(200),
                plus: true,
            },
        ),
        ("parfm", Scheme::Parfm),
        ("graphene", Scheme::Graphene),
        ("twice", Scheme::TwiCe),
        ("cbt", Scheme::Cbt),
        ("para", Scheme::Para),
        ("blockhammer", Scheme::BlockHammer { nbl_scale }),
    ]
}

/// Instantiates a workload set by name for `cores` threads.
///
/// Names: `mix-high`, `mix-blend`, `fft`, `radix`, `pagerank`, attack
/// sets `attack-double`, `attack-multi`, `attack-bh` (profiled CBF
/// collisions) and `attack-bh-pollution` on a mix-high background,
/// `channel-interference` (hammer on channel 0, streaming victims on the
/// other channels), and `noisy-neighbor` (one hammering tenant sharing
/// channel 0 with latency-sensitive victim tenants — the QoS campaign's
/// workload).
///
/// `trace:<path>` replays the MTRC capture at `<path>` (recorded with the
/// `trace` binary or [`mithril_trace::record_thread_set`]): one replay
/// thread per recorded core, looping if the simulation outruns the
/// capture. Replay ignores `seed` — the ops are literal; only the
/// scheme's RNG (seeded from the scenario seed as usual) remains random.
///
/// `trace+skip:<path>` is the corruption-tolerant variant: damaged
/// chunks of the capture are skipped (reported on stderr) and the
/// surviving ops replay in order. Strict `trace:` still refuses damaged
/// files — use `+skip` deliberately, on captures known to be partial.
///
/// # Panics
///
/// Panics on an unknown name, when the workload needs more channels than
/// `cfg` has (see [`workload_compatible`]), or when a `trace:` capture is
/// unreadable or disagrees with `cfg`'s geometry or `cores`.
pub fn workload(name: &str, cores: usize, cfg: &SystemConfig, seed: u64) -> ThreadSet {
    let check_header = |path: &str, header: &mithril_trace::TraceHeader| {
        assert_eq!(
            header.cores, cores,
            "{path} records {} cores, scenario asks for {cores}",
            header.cores
        );
        assert_eq!(
            header.geometry,
            cfg.geometry,
            "{path} was captured on geometry {}, scenario runs {}",
            geometry_tag(&header.geometry),
            geometry_tag(&cfg.geometry)
        );
    };
    if let Some(path) = name.strip_prefix("trace:") {
        let (header, set) =
            mithril_trace::replay_thread_set(std::path::Path::new(path), ReplayEnd::Loop)
                .unwrap_or_else(|e| panic!("cannot replay {path}: {e}"));
        check_header(path, &header);
        return set;
    }
    if let Some(path) = name.strip_prefix("trace+skip:") {
        let (header, set, report) =
            mithril_trace::replay_thread_set_resilient(std::path::Path::new(path), ReplayEnd::Loop)
                .unwrap_or_else(|e| panic!("cannot replay {path}: {e}"));
        check_header(path, &header);
        if !report.is_clean() {
            eprintln!(
                "# trace+skip:{path}: skipped {} damaged chunk(s) ({} bytes){}",
                report.skipped_chunks,
                report.skipped_bytes,
                if report.missing_end_marker {
                    "; capture is torn (no end marker)"
                } else {
                    ""
                }
            );
        }
        return set;
    }
    match name {
        "mix-high" => mix_high(cores, seed),
        "mix-blend" => mix_blend(cores, seed),
        "fft" | "radix" | "pagerank" => multithreaded(name, cores, seed),
        "attack-double" => attack_mix("double", cores, cfg.mapping(), seed),
        "attack-multi" => attack_mix("multi", cores, cfg.mapping(), seed),
        // The profiled CBF-collision pattern of Fig. 10(c): victims are the
        // rows the mix-high sweeps hammer first (offsets 0/249/499/748).
        // Concentrated enough that the attacker's budget pushes every
        // cover row past the (scaled) blacklist threshold within a slice.
        "attack-bh" => bh_cover_attack_mix(
            cores,
            cfg.mapping(),
            cfg.flip_th,
            &cfg.timing,
            &[0, 1, 249, 250],
            2,
            seed,
        ),
        "attack-bh-pollution" => attack_mix("bh-adversarial", cores, cfg.mapping(), seed),
        "channel-interference" => channel_interference_mix(cores, cfg.mapping(), seed),
        "noisy-neighbor" => noisy_neighbor_mix(cores, cfg.mapping(), seed),
        other => panic!("unknown workload {other}"),
    }
}

/// True when `name` can run on `geometry`: the channel-interference mix
/// needs at least two channels, a `trace:`/`trace+skip:` capture only
/// runs on the geometry it was recorded against (its line addresses were
/// aimed through that mapping), and everything else runs anywhere.
///
/// An unreadable capture counts as compatible here so sweeps don't
/// silently skip it — [`workload`] then fails loudly with the I/O error.
pub fn workload_compatible(name: &str, geometry: &Geometry) -> bool {
    let capture = name
        .strip_prefix("trace:")
        .or_else(|| name.strip_prefix("trace+skip:"));
    if let Some(path) = capture {
        return match mithril_trace::read_header_path(std::path::Path::new(path)) {
            Ok(header) => header.geometry == *geometry,
            Err(_) => true,
        };
    }
    name != "channel-interference" || geometry.channels >= 2
}

/// Simulated-time cap per requested instruction: several times the benign
/// runtime, so a heavily throttled thread (BlockHammer vs an attacker)
/// cannot stretch one run to seconds of simulated time; its depressed IPC
/// still shows in the metrics. Shared by [`run_one`] and [`Scenario::run`]
/// so figure binaries and sweeps stay comparable.
const MAX_TIME_PS_PER_INST: u64 = 4_000;

fn run_capped_detailed(
    cfg: SystemConfig,
    workload_name: &str,
    insts_per_core: u64,
    seed: u64,
) -> Result<(Metrics, Option<FaultStats>), String> {
    let threads = workload(workload_name, cfg.cores, &cfg, seed);
    let mut sys = System::new(cfg, threads)?;
    let max_time = insts_per_core.saturating_mul(MAX_TIME_PS_PER_INST);
    let metrics = sys.run(insts_per_core, max_time);
    let faults = sys.fault_stats();
    Ok((metrics, faults))
}

fn run_capped(
    cfg: SystemConfig,
    workload_name: &str,
    insts_per_core: u64,
    seed: u64,
) -> Result<Metrics, String> {
    run_capped_detailed(cfg, workload_name, insts_per_core, seed).map(|(m, _)| m)
}

/// [`run_capped_detailed`] with ring-sink observability attached: the
/// same run, but the controllers record structured events and the system
/// samples cycle-domain probes. The metrics are identical to the
/// unobserved run — the instrumentation only reads simulator state.
fn run_capped_observed(
    cfg: SystemConfig,
    workload_name: &str,
    insts_per_core: u64,
    seed: u64,
    obs: ObsConfig,
) -> Result<(Metrics, ObsCapture), String> {
    let threads = workload(workload_name, cfg.cores, &cfg, seed);
    let mut sys = System::with_obs(cfg, threads, obs)?;
    let max_time = insts_per_core.saturating_mul(MAX_TIME_PS_PER_INST);
    let metrics = sys.run(insts_per_core, max_time);
    let capture = sys.take_obs();
    Ok((metrics, capture))
}

/// Runs one configuration over one workload for `insts_per_core`.
///
/// # Panics
///
/// Panics if the scheme cannot be configured at `cfg.flip_th`.
pub fn run_one(cfg: SystemConfig, workload_name: &str, insts_per_core: u64, seed: u64) -> Metrics {
    run_capped(cfg, workload_name, insts_per_core, seed)
        .unwrap_or_else(|e| panic!("{} @ FlipTH {}: {e}", cfg.scheme.name(), cfg.flip_th))
}

/// Runs scheme and baseline over the normal-workload set and returns
/// `(geomean normalized IPC, geomean relative energy)` — the paper's
/// "normal workloads" aggregation (geo-mean over multi-programmed and
/// multi-threaded sets).
pub fn normal_workload_overheads(
    mut cfg: SystemConfig,
    insts_per_core: u64,
    seed: u64,
) -> (f64, f64) {
    let scheme = cfg.scheme;
    let mut ipcs = Vec::new();
    let mut energies = Vec::new();
    for name in NORMAL_WORKLOADS {
        cfg.scheme = Scheme::None;
        let base = run_one(cfg, name, insts_per_core, seed);
        cfg.scheme = scheme;
        let run = run_one(cfg, name, insts_per_core, seed);
        ipcs.push(run.normalized_ipc(&base));
        energies.push(run.relative_energy(&base));
    }
    (geomean(&ipcs), geomean(&energies))
}

/// Table IV's per-bank counter-table sizes: one row per scheme, one
/// `Option<f64>` KiB cell per FlipTH of [`FLIP_TH_SWEEP`] (`None` =
/// infeasible pair, rendered as a dash).
pub fn table_area_rows(timing: &Ddr5Timing) -> Vec<(String, Vec<Option<f64>>)> {
    type AreaFn = Box<dyn Fn(u64) -> Option<f64>>;
    let t = *timing;
    let mut rows: Vec<(String, AreaFn)> = vec![
        (
            "CBT @ MC".into(),
            Box::new(move |flip| Some(CbtConfig::for_flip_threshold(flip, &t).table_kib())),
        ),
        (
            "Graphene @ MC".into(),
            Box::new(move |flip| Some(GrapheneConfig::for_flip_threshold(flip, &t).table_kib(&t))),
        ),
        (
            "BlockHammer @ MC".into(),
            Box::new(move |flip| Some(BlockHammerConfig::for_flip_threshold(flip, &t).table_kib())),
        ),
        (
            "TWiCe @ buffer chip".into(),
            Box::new(move |flip| Some(TwiCeConfig::for_flip_threshold(flip, &t).table_kib(&t))),
        ),
    ];
    for rfm in [256u64, 128, 64, 32] {
        rows.push((
            format!("Mithril-{rfm} @ DRAM"),
            Box::new(move |flip| {
                MithrilConfig::for_flip_threshold(flip, rfm, &t)
                    .ok()
                    .map(|c| c.table_kib())
            }),
        ));
    }
    rows.into_iter()
        .map(|(name, f)| (name, FLIP_TH_SWEEP.iter().map(|&flip| f(flip)).collect()))
        .collect()
}

/// A compact tag identifying a geometry in scenario names and reports,
/// e.g. `2ch2rk32b`.
pub fn geometry_tag(g: &Geometry) -> String {
    format!("{}ch{}rk{}b", g.channels, g.ranks, g.banks_per_rank)
}

/// One executable unit of a sweep: a scheme on a workload on a geometry.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Unique scenario id: `scheme/workload/geometry`.
    pub name: String,
    /// Scheme label for reporting.
    pub scheme_label: String,
    /// The protection scheme.
    pub scheme: Scheme,
    /// Workload name (see [`workload`]).
    pub workload: String,
    /// The memory hierarchy.
    pub geometry: Geometry,
    /// Row Hammer threshold.
    pub flip_th: u64,
    /// Cores to simulate.
    pub cores: usize,
    /// Instructions per core.
    pub insts_per_core: u64,
    /// Soft-error injection into the scheme's tracker state, if any.
    /// `None` (the default everywhere outside fault campaigns) leaves the
    /// hot path untouched and the report byte-identical to a fault-free
    /// build.
    pub faults: Option<FaultConfig>,
    /// Controller-side multi-tenant QoS throttling. `Off` (the default
    /// everywhere outside QoS campaigns) builds no QoS state at all, so
    /// QoS-off sweeps stay byte-identical to pre-QoS reports.
    pub qos: QosPolicy,
}

impl Scenario {
    /// Builds the scenario's [`SystemConfig`] (Table III defaults with the
    /// scenario's hierarchy, scheme and threshold applied).
    pub fn system_config(&self, seed: u64) -> SystemConfig {
        let mut cfg = SystemConfig::table_iii();
        cfg.cores = self.cores;
        cfg.geometry = self.geometry;
        cfg.flip_th = self.flip_th;
        cfg.scheme = self.scheme;
        cfg.seed = seed;
        cfg.faults = self.faults;
        cfg.qos = self.qos;
        cfg
    }

    /// Runs the scenario under `seed` and returns its metrics.
    ///
    /// # Errors
    ///
    /// Returns an error string when the scheme cannot be configured for
    /// this scenario's `flip_th`.
    pub fn run(&self, seed: u64) -> Result<Metrics, String> {
        run_capped(
            self.system_config(seed),
            &self.workload,
            self.insts_per_core,
            seed,
        )
    }

    /// Like [`Scenario::run`], additionally returning the aggregated
    /// fault-injection counters when this scenario runs with faults
    /// enabled (`None` otherwise — the stats live outside [`Metrics`] so
    /// fault-free reports stay byte-identical).
    pub fn run_detailed(&self, seed: u64) -> Result<(Metrics, Option<FaultStats>), String> {
        run_capped_detailed(
            self.system_config(seed),
            &self.workload,
            self.insts_per_core,
            seed,
        )
    }

    /// Like [`Scenario::run`], additionally returning the observability
    /// capture (structured events + cycle-domain time series) recorded
    /// under `obs`. The metrics are identical to [`Scenario::run`]'s —
    /// observability reads simulator state but never steers it.
    pub fn run_observed(&self, seed: u64, obs: ObsConfig) -> Result<(Metrics, ObsCapture), String> {
        run_capped_observed(
            self.system_config(seed),
            &self.workload,
            self.insts_per_core,
            seed,
            obs,
        )
    }
}

/// A scheme × workload × geometry sweep specification.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Hierarchies to sweep.
    pub geometries: Vec<Geometry>,
    /// Labelled schemes to sweep.
    pub schemes: Vec<(String, Scheme)>,
    /// Workload names to sweep.
    pub workloads: Vec<String>,
    /// Row Hammer threshold for every scenario.
    pub flip_th: u64,
    /// Cores per scenario.
    pub cores: usize,
    /// Instructions per core per scenario.
    pub insts_per_core: u64,
}

impl SweepSpec {
    /// The smoke sweep exercised by CI and the determinism test: small
    /// instruction counts over 1×1, 2×1 and 2×2 channel×rank hierarchies,
    /// the unprotected baseline and both Mithril variants, on a benign mix
    /// and the cross-channel interference attack.
    pub fn smoke() -> Self {
        Self {
            geometries: vec![
                Geometry::default(),
                Geometry::table_iii_system(),
                Geometry::table_iii_system().with_ranks(2),
            ],
            schemes: vec![
                ("none".into(), Scheme::None),
                (
                    "mithril".into(),
                    Scheme::Mithril {
                        rfm_th: 64,
                        ad_th: Some(200),
                        plus: false,
                    },
                ),
                (
                    "mithril+".into(),
                    Scheme::Mithril {
                        rfm_th: 64,
                        ad_th: Some(200),
                        plus: true,
                    },
                ),
            ],
            workloads: vec![
                "mix-high".into(),
                "attack-multi".into(),
                "channel-interference".into(),
            ],
            flip_th: 6_250,
            cores: 4,
            insts_per_core: 4_000,
        }
    }

    /// The full default sweep: every scheme on the main workload classes
    /// across single- and multi-channel/rank hierarchies.
    pub fn full() -> Self {
        Self {
            geometries: vec![
                Geometry::default(),
                Geometry::table_iii_system(),
                Geometry::table_iii_system().with_ranks(2),
                Geometry::default().with_channels(4),
            ],
            schemes: all_schemes(64, 6)
                .into_iter()
                .map(|(label, s)| (label.to_string(), s))
                .collect(),
            workloads: vec![
                "mix-high".into(),
                "mix-blend".into(),
                "attack-multi".into(),
                "attack-double".into(),
                "channel-interference".into(),
            ],
            flip_th: 3_125,
            cores: 8,
            insts_per_core: 30_000,
        }
    }

    /// Expands the spec into concrete scenarios, skipping workloads that
    /// are incompatible with a geometry (e.g. channel interference on one
    /// channel).
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for g in &self.geometries {
            for (label, scheme) in &self.schemes {
                for w in &self.workloads {
                    if !workload_compatible(w, g) {
                        continue;
                    }
                    out.push(Scenario {
                        name: format!("{label}/{w}/{}", geometry_tag(g)),
                        scheme_label: label.clone(),
                        scheme: *scheme,
                        workload: w.clone(),
                        geometry: *g,
                        flip_th: self.flip_th,
                        cores: self.cores,
                        insts_per_core: self.insts_per_core,
                        faults: None,
                        qos: QosPolicy::Off,
                    });
                }
            }
        }
        out
    }
}

/// A fault-resilience campaign: a base sweep crossed with a ladder of
/// soft-error rates.
///
/// Every base scenario is re-run once per rate; rate `0` runs fault-free
/// (`faults: None`) and anchors each degradation curve. Scenario names
/// carry a `@f<rate>ppm` suffix so the flat run list stays unambiguous.
#[derive(Debug, Clone)]
pub struct FaultCampaignSpec {
    /// The scheme × workload × geometry grid to stress.
    pub base: SweepSpec,
    /// Fault rates to sweep, in injected faults per million ACTs.
    /// Include `0` for the fault-free anchor point.
    pub rates_ppm: Vec<u64>,
    /// Scrub (self-check + repair at RFM cadence) on, or silent mode.
    pub scrub: bool,
}

impl FaultCampaignSpec {
    /// The CI smoke campaign: the Mithril variants and ParFM (the
    /// tracker schemes with a fault surface) on one benign and one
    /// attack workload, over a small rate ladder.
    pub fn smoke() -> Self {
        let mut base = SweepSpec::smoke();
        base.geometries.truncate(2);
        base.workloads = vec!["mix-high".into(), "attack-multi".into()];
        base.schemes.retain(|(label, _)| label != "none");
        base.schemes.push(("parfm".into(), Scheme::Parfm));
        Self {
            base,
            rates_ppm: vec![0, 100, 1_000, 10_000],
            scrub: true,
        }
    }

    /// Expands the campaign into concrete scenarios, rate-major: the full
    /// base grid at `rates_ppm[0]`, then at `rates_ppm[1]`, and so on.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for &rate in &self.rates_ppm {
            for mut s in self.base.scenarios() {
                s.name = format!("{}@f{rate}ppm", s.name);
                s.faults = (rate > 0).then(|| {
                    let cfg = FaultConfig::mixed(rate);
                    if self.scrub {
                        cfg
                    } else {
                        cfg.without_scrub()
                    }
                });
                out.push(s);
            }
        }
        out
    }
}

/// A multi-tenant QoS campaign: the noisy-neighbor grid run twice, once
/// with QoS off and once with controller-side throttling on.
///
/// The QoS-off pass anchors every comparison (victim tail latency,
/// fairness, flip safety); the QoS-on pass re-runs the identical grid
/// with [`QosPolicy::Throttle`] and a `+qos` name suffix so the flat run
/// list stays unambiguous, mirroring the fault campaign's `@f<rate>ppm`
/// convention.
#[derive(Debug, Clone)]
pub struct QosCampaignSpec {
    /// The scheme × workload × geometry grid to run with and without QoS.
    pub base: SweepSpec,
    /// The throttling parameters applied in the QoS-on pass.
    pub qos: QosConfig,
}

impl QosCampaignSpec {
    /// The CI smoke campaign: the unprotected baseline and both Mithril
    /// variants on the noisy-neighbor tenancy mix over the Table III
    /// hierarchy.
    pub fn smoke() -> Self {
        let mut base = SweepSpec::smoke();
        base.geometries = vec![Geometry::table_iii_system()];
        base.workloads = vec!["noisy-neighbor".into()];
        Self {
            base,
            qos: QosConfig::default(),
        }
    }

    /// The full campaign: every catalog scheme on the noisy-neighbor mix
    /// over single- and dual-rank Table III hierarchies.
    pub fn full() -> Self {
        let mut base = SweepSpec::full();
        base.geometries = vec![
            Geometry::table_iii_system(),
            Geometry::table_iii_system().with_ranks(2),
        ];
        base.workloads = vec!["noisy-neighbor".into()];
        Self {
            base,
            qos: QosConfig::default(),
        }
    }

    /// Expands the campaign into concrete scenarios: the full base grid
    /// QoS-off first (bit-identical to a plain sweep over `base`), then
    /// the same grid QoS-on with `+qos` name suffixes.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = self.base.scenarios();
        for mut s in self.base.scenarios() {
            s.name = format!("{}+qos", s.name);
            s.qos = QosPolicy::Throttle(self.qos);
            out.push(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_campaign_pairs_off_and_on_passes() {
        let spec = QosCampaignSpec::smoke();
        let scenarios = spec.scenarios();
        let per_pass = spec.base.scenarios().len();
        assert_eq!(scenarios.len(), per_pass * 2);
        assert!(scenarios[..per_pass]
            .iter()
            .all(|s| s.qos == QosPolicy::Off && !s.name.ends_with("+qos")));
        for (off, on) in scenarios[..per_pass].iter().zip(&scenarios[per_pass..]) {
            assert_eq!(on.name, format!("{}+qos", off.name));
            assert_eq!(on.qos, QosPolicy::Throttle(spec.qos));
            assert_eq!(on.workload, off.workload);
            assert_eq!(on.scheme_label, off.scheme_label);
        }
        assert!(scenarios.iter().all(|s| s.workload == "noisy-neighbor"));
    }

    #[test]
    fn noisy_neighbor_workload_resolves() {
        let cfg = SystemConfig::table_iii();
        let set = workload("noisy-neighbor", 4, &cfg, 1);
        assert_eq!(set.threads.len(), 4);
        assert_eq!(set.name, "noisy-neighbor");
    }

    #[test]
    fn fault_campaign_expands_rate_major_with_anchor() {
        let spec = FaultCampaignSpec::smoke();
        let scenarios = spec.scenarios();
        let per_rate = spec.base.scenarios().len();
        assert_eq!(scenarios.len(), per_rate * spec.rates_ppm.len());
        assert!(scenarios[..per_rate]
            .iter()
            .all(|s| s.faults.is_none() && s.name.ends_with("@f0ppm")));
        let last = &scenarios[scenarios.len() - 1];
        let faults = last.faults.expect("non-zero rates carry a FaultConfig");
        assert_eq!(faults.rate_ppm, *spec.rates_ppm.last().unwrap());
        assert!(faults.scrub);
    }

    #[test]
    fn default_rfmth_covers_sweep() {
        for flip in mithril_baselines::FLIP_TH_SWEEP {
            assert!(default_rfm_th(flip) >= 32);
        }
    }

    #[test]
    fn workloads_resolve_by_name() {
        let cfg = SystemConfig::table_iii();
        for name in NORMAL_WORKLOADS
            .iter()
            .chain(["attack-double", "attack-multi", "channel-interference"].iter())
        {
            let set = workload(name, 4, &cfg, 1);
            assert_eq!(set.threads.len(), 4);
        }
    }

    #[test]
    fn incompatible_workloads_are_skipped() {
        assert!(!workload_compatible(
            "channel-interference",
            &Geometry::default()
        ));
        assert!(workload_compatible(
            "channel-interference",
            &Geometry::table_iii_system()
        ));
        assert!(workload_compatible("mix-high", &Geometry::default()));
        let spec = SweepSpec::smoke();
        let scenarios = spec.scenarios();
        assert!(scenarios
            .iter()
            .all(|s| workload_compatible(&s.workload, &s.geometry)));
        // The 1-channel geometry drops only the interference workload.
        let one_ch: Vec<_> = scenarios
            .iter()
            .filter(|s| s.geometry.channels == 1)
            .collect();
        assert!(one_ch.iter().all(|s| s.workload != "channel-interference"));
        assert!(!one_ch.is_empty());
    }

    #[test]
    fn smoke_sweep_covers_multi_rank_hierarchy() {
        let spec = SweepSpec::smoke();
        assert!(spec
            .geometries
            .iter()
            .any(|g| g.channels >= 2 && g.ranks >= 2));
        let n = spec.scenarios().len();
        // 3 geometries × 3 schemes × 3 workloads, minus the 1-channel
        // interference combinations.
        assert_eq!(n, 3 * 3 * 3 - 3);
    }

    #[test]
    fn scenario_runs_end_to_end() {
        let spec = SweepSpec::smoke();
        let s = spec
            .scenarios()
            .into_iter()
            .find(|s| s.geometry.ranks == 2 && s.workload == "channel-interference")
            .expect("2-rank interference scenario exists");
        let m = s.run(11).expect("scenario runs");
        assert!(m.total_insts > 0);
        assert_eq!(m.per_channel.len(), 2);
    }

    #[test]
    fn run_one_produces_metrics() {
        let mut cfg = SystemConfig::table_iii();
        cfg.cores = 2;
        let m = run_one(cfg, "mix-blend", 5_000, 1);
        assert!(m.total_insts >= 10_000);
    }

    #[test]
    fn scheme_catalogs_are_distinct_and_labelled() {
        let rfm = rfm_compatible_schemes(6_250, 6);
        assert_eq!(rfm.len(), 4);
        let arr = arr_schemes(6_250);
        assert_eq!(arr.len(), 6);
        let all = all_schemes(64, 6);
        assert_eq!(all.len(), 9);
        for (label, scheme) in &all {
            if *label != "none" {
                assert!(!scheme.name().is_empty());
            }
        }
    }
}
