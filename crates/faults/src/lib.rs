//! Deterministic soft-error injection for Row Hammer tracker state.
//!
//! Mithril's safety argument rests on the per-bank counter table staying
//! intact, but real SRAM/CAM state takes soft errors. This crate makes
//! that failure mode *measurable*: a [`FaultyEngine`] wraps any
//! [`DramMitigation`] and, driven by a seeded [`FaultPlan`], injects the
//! three fault classes of the taxonomy in `ARCHITECTURE.md` into the
//! engine's [`FaultSurface`]:
//!
//! * **counter bit-flips** — transient single-event upsets of stored
//!   count bits, applied silently (derived structures are not told);
//! * **entry invalidations** — address-CAM tag upsets: the slot stops
//!   tracking its row, degrading effective table capacity;
//! * **stuck-at faults** — a bit that re-asserts a fixed level; the
//!   wrapper re-forces every registered stuck bit each RFM window.
//!
//! With `scrub` enabled (the default), the wrapper models an ECC-style
//! scrub pass at RFM cadence: the surface's structural `check` runs and,
//! on a detected violation, `repair` rebuilds derived state from the
//! stored bits — so schemes degrade measurably instead of corrupting
//! silently. With `scrub` off, the same campaign quantifies *silent*
//! degradation.
//!
//! # Determinism
//!
//! A plan's entire fault stream is a pure function of its seed, and the
//! seed is derived from the sweep position through
//! [`mithril_fasthash::splitmix64_seed`] — the workspace-wide seed
//! contract — so fault campaigns are bit-identical at any `--threads`
//! count. One plan draw is consumed per observed ACT; draws and
//! injections depend only on the engine's own command stream, never on
//! scheduling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mithril_dram::{DramMitigation, FaultStats, FaultSurface, RfmOutcome, RowId};
use mithril_fasthash::{splitmix64, splitmix64_seed};

/// The three injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Transient bit-flip of a stored counter bit.
    BitFlip,
    /// Address-tag upset: the entry stops tracking its row.
    Invalidate,
    /// A counter bit permanently stuck at 0 or 1.
    StuckAt,
}

/// Fault-injection knobs. `Copy` so it rides inside scenario configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Expected injected faults per million observed ACTs.
    pub rate_ppm: u64,
    /// Relative draw weight of [`FaultKind::BitFlip`].
    pub flip_weight: u8,
    /// Relative draw weight of [`FaultKind::Invalidate`].
    pub invalidate_weight: u8,
    /// Relative draw weight of [`FaultKind::StuckAt`].
    pub stuck_weight: u8,
    /// Run a self-check (and repair on detection) each RFM window.
    pub scrub: bool,
}

impl FaultConfig {
    /// Pure transient bit-flips at `rate_ppm` faults per million ACTs,
    /// scrub on.
    pub fn flips(rate_ppm: u64) -> Self {
        Self {
            rate_ppm,
            flip_weight: 1,
            invalidate_weight: 0,
            stuck_weight: 0,
            scrub: true,
        }
    }

    /// The default campaign mix — bit-flips dominant, occasional tag
    /// upsets and stuck bits (8:3:1) — scrub on.
    pub fn mixed(rate_ppm: u64) -> Self {
        Self {
            rate_ppm,
            flip_weight: 8,
            invalidate_weight: 3,
            stuck_weight: 1,
            scrub: true,
        }
    }

    /// The same configuration with scrubbing disabled (silent-corruption
    /// mode).
    pub fn without_scrub(mut self) -> Self {
        self.scrub = false;
        self
    }

    fn total_weight(&self) -> u64 {
        self.flip_weight as u64 + self.invalidate_weight as u64 + self.stuck_weight as u64
    }
}

/// A seeded, position-pure stream of fault decisions.
///
/// The stream is the canonical splitmix64 sequence over its seed: one
/// draw per observed ACT decides *whether* a fault lands, and on a hit
/// further draws pick the kind, entry and bit. Two plans built at the
/// same `(base, shard, offset)` position produce identical campaigns.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    state: u64,
}

impl FaultPlan {
    /// Golden-ratio increment of the canonical splitmix64 generator.
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// A plan seeded directly.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// A plan at sweep position `(shard, offset)` under `base` — the
    /// workspace seed contract, so fault streams are thread-count
    /// invariant.
    pub fn at_position(base: u64, shard: u64, offset: u64) -> Self {
        Self::new(splitmix64_seed(base, shard, offset))
    }

    /// Next raw draw of the stream.
    fn next(&mut self) -> u64 {
        let out = splitmix64(self.state);
        self.state = self.state.wrapping_add(Self::GAMMA);
        out
    }
}

/// A registered stuck-at fault: `(entry, bit)` held at `one`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StuckBit {
    entry: u64,
    bit: u32,
    one: bool,
}

/// A fault-injecting adapter around any [`DramMitigation`] engine.
///
/// Delegates the full engine interface to the wrapped engine; on every
/// observed ACT it advances its [`FaultPlan`] and possibly injects one
/// fault into the engine's [`FaultSurface`], and on every RFM window it
/// re-asserts registered stuck bits and (if configured) runs a scrub
/// pass. Engines without a fault surface still work — draws that land
/// count as `dropped` in [`FaultStats`], keeping campaign accounting
/// honest for schemes the fault model cannot reach.
///
/// # Example
///
/// ```
/// use mithril_dram::{DramMitigation, NoMitigation};
/// use mithril_faults::{FaultConfig, FaultPlan, FaultyEngine};
///
/// // NoMitigation has no fault surface: every landed fault is dropped.
/// let mut e = FaultyEngine::new(
///     Box::new(NoMitigation),
///     FaultConfig::mixed(1_000_000),
///     FaultPlan::at_position(7, 0, 0),
/// );
/// for row in 0..100 {
///     e.on_activate(row);
/// }
/// let stats = e.fault_stats().unwrap();
/// assert_eq!(stats.injected(), 0);
/// assert_eq!(stats.dropped, 100);
/// ```
pub struct FaultyEngine {
    inner: Box<dyn DramMitigation>,
    cfg: FaultConfig,
    plan: FaultPlan,
    stuck: Vec<StuckBit>,
    stats: FaultStats,
}

impl FaultyEngine {
    /// Wraps `inner`, injecting per `cfg` from `plan`.
    pub fn new(inner: Box<dyn DramMitigation>, cfg: FaultConfig, plan: FaultPlan) -> Self {
        Self {
            inner,
            cfg,
            plan,
            stuck: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &dyn DramMitigation {
        &*self.inner
    }

    fn draw_kind(&mut self) -> FaultKind {
        let total = self.cfg.total_weight().max(1);
        let mut roll = self.plan.next() % total;
        if roll < self.cfg.flip_weight as u64 {
            return FaultKind::BitFlip;
        }
        roll -= self.cfg.flip_weight as u64;
        if roll < self.cfg.invalidate_weight as u64 {
            return FaultKind::Invalidate;
        }
        FaultKind::StuckAt
    }

    /// One per-ACT fault decision. Consumes exactly one draw when no
    /// fault lands, so the stream position is a pure function of the
    /// ACT count.
    fn maybe_inject(&mut self) {
        if self.cfg.rate_ppm == 0 {
            return;
        }
        if self.plan.next() % 1_000_000 >= self.cfg.rate_ppm {
            return;
        }
        let kind = self.draw_kind();
        let entry_roll = self.plan.next();
        let bit_roll = self.plan.next();
        let Some(surface) = self.inner.fault_surface() else {
            self.stats.dropped += 1;
            return;
        };
        let entries = surface.fault_entries();
        if entries == 0 {
            self.stats.dropped += 1;
            return;
        }
        let entry = entry_roll % entries;
        let bit = (bit_roll % surface.counter_bits() as u64) as u32;
        match kind {
            FaultKind::BitFlip => {
                if surface.flip_counter_bit(entry, bit) {
                    self.stats.bit_flips += 1;
                } else {
                    self.stats.dropped += 1;
                }
            }
            FaultKind::Invalidate => {
                if surface.invalidate_entry(entry) {
                    self.stats.invalidations += 1;
                } else {
                    self.stats.dropped += 1;
                }
            }
            FaultKind::StuckAt => {
                // The stuck level reuses the bit roll's high bit — still
                // position-pure, no extra draw.
                let one = bit_roll >> 63 == 1;
                let fault = StuckBit { entry, bit, one };
                if self.stuck.contains(&fault) {
                    self.stats.dropped += 1;
                } else {
                    self.stuck.push(fault);
                    self.stats.stuck_bits += 1;
                    if surface.force_counter_bit(entry, bit, one) {
                        self.stats.stuck_assertions += 1;
                    }
                }
            }
        }
    }

    /// RFM-cadence maintenance: re-assert stuck bits, then scrub.
    fn on_window(&mut self) {
        if !self.stuck.is_empty() {
            if let Some(surface) = self.inner.fault_surface() {
                for i in 0..self.stuck.len() {
                    let StuckBit { entry, bit, one } = self.stuck[i];
                    if surface.force_counter_bit(entry, bit, one) {
                        self.stats.stuck_assertions += 1;
                    }
                }
            }
        }
        if self.cfg.scrub {
            if let Some(surface) = self.inner.fault_surface() {
                self.stats.scrubs += 1;
                if surface.check().is_err() {
                    self.stats.scrub_detections += 1;
                    surface.repair();
                    self.stats.repairs += 1;
                }
            }
        }
    }
}

impl DramMitigation for FaultyEngine {
    fn on_activate(&mut self, row: RowId) {
        self.inner.on_activate(row);
        self.maybe_inject();
    }

    fn on_rfm_into(&mut self, out: &mut RfmOutcome) {
        self.on_window();
        self.inner.on_rfm_into(out);
    }

    fn on_auto_refresh(&mut self, lo: RowId, hi: RowId) {
        self.inner.on_auto_refresh(lo, hi);
    }

    fn refresh_pending(&self) -> bool {
        self.inner.refresh_pending()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn fault_surface(&mut self) -> Option<&mut dyn FaultSurface> {
        self.inner.fault_surface()
    }

    fn fault_stats(&self) -> Option<FaultStats> {
        Some(self.stats)
    }

    fn observe_tracker(&self) -> Option<mithril_obs::TrackerObservation> {
        self.inner.observe_tracker()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithril::{MithrilConfig, MithrilScheme};
    use mithril_dram::Ddr5Timing;

    fn scheme() -> Box<dyn DramMitigation> {
        let cfg = MithrilConfig::for_flip_threshold(6_250, 128, &Ddr5Timing::ddr5_4800()).unwrap();
        Box::new(MithrilScheme::new(cfg))
    }

    fn drive(engine: &mut FaultyEngine, acts: u64) {
        for i in 0..acts {
            engine.on_activate(i % 37);
            if i % 64 == 63 {
                engine.on_rfm();
            }
        }
    }

    #[test]
    fn plan_is_position_pure() {
        let mut a = FaultPlan::at_position(42, 3, 9);
        let mut b = FaultPlan::at_position(42, 3, 9);
        let sa: Vec<u64> = (0..100).map(|_| a.next()).collect();
        let sb: Vec<u64> = (0..100).map(|_| b.next()).collect();
        assert_eq!(sa, sb);
        let mut c = FaultPlan::at_position(42, 3, 10);
        assert_ne!(sa, (0..100).map(|_| c.next()).collect::<Vec<u64>>());
    }

    #[test]
    fn identical_plans_inject_identically() {
        let mk = || {
            let mut e = FaultyEngine::new(
                scheme(),
                FaultConfig::mixed(50_000),
                FaultPlan::at_position(7, 1, 2),
            );
            drive(&mut e, 20_000);
            e.fault_stats().unwrap()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a, b);
        assert!(a.injected() > 0, "rate 5% over 20k ACTs must land: {a:?}");
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let mut e = FaultyEngine::new(
            scheme(),
            FaultConfig::flips(0),
            FaultPlan::at_position(7, 0, 0),
        );
        drive(&mut e, 5_000);
        let s = e.fault_stats().unwrap();
        assert_eq!(s.injected() + s.dropped, 0);
        // Scrubs still run at RFM cadence and never detect anything.
        assert!(s.scrubs > 0);
        assert_eq!(s.scrub_detections, 0);
        assert_eq!(s.repairs, 0);
    }

    #[test]
    fn scrub_detects_and_repairs_flips() {
        let mut e = FaultyEngine::new(
            scheme(),
            FaultConfig::flips(100_000),
            FaultPlan::at_position(11, 0, 0),
        );
        drive(&mut e, 20_000);
        let s = e.fault_stats().unwrap();
        assert!(s.bit_flips > 0);
        assert!(
            s.scrub_detections > 0,
            "flips must trip the self-check: {s:?}"
        );
        assert_eq!(s.repairs, s.scrub_detections);
        // After the final window the structure is consistent again.
        e.on_rfm();
        assert!(
            e.fault_surface().unwrap().check().is_ok() || {
                // The last ACT batch may have injected after the last scrub;
                // one more window must restore consistency.
                e.on_rfm();
                e.fault_surface().unwrap().check().is_ok()
            }
        );
    }

    #[test]
    fn stuck_bits_reassert_every_window() {
        let mut e = FaultyEngine::new(
            scheme(),
            FaultConfig {
                rate_ppm: 20_000,
                flip_weight: 0,
                invalidate_weight: 0,
                stuck_weight: 1,
                scrub: true,
            },
            FaultPlan::at_position(13, 0, 0),
        );
        drive(&mut e, 30_000);
        let s = e.fault_stats().unwrap();
        assert!(s.stuck_bits > 0);
        assert!(
            s.stuck_assertions >= s.stuck_bits,
            "stuck bits must keep re-asserting: {s:?}"
        );
    }

    #[test]
    fn unscrubbed_engine_reports_no_scrubs() {
        let mut e = FaultyEngine::new(
            scheme(),
            FaultConfig::mixed(50_000).without_scrub(),
            FaultPlan::at_position(17, 0, 0),
        );
        drive(&mut e, 10_000);
        let s = e.fault_stats().unwrap();
        assert_eq!(s.scrubs, 0);
        assert_eq!(s.repairs, 0);
        assert!(s.injected() > 0);
    }

    #[test]
    fn wrapper_preserves_engine_identity() {
        let mut e = FaultyEngine::new(scheme(), FaultConfig::flips(0), FaultPlan::new(1));
        assert_eq!(e.name(), "mithril");
        e.on_activate(5);
        assert!(e.refresh_pending());
        let out = e.on_rfm();
        assert_eq!(out.selected_aggressor, Some(5));
    }
}
