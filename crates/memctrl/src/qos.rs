//! Multi-tenant QoS throttling (BreakHammer-style suspect scoring).
//!
//! Mithril's managed-refresh RFMs are a shared, contended resource: one
//! hammering tenant can burn every bank's mitigation budget and inflate
//! co-tenants' read latency. BreakHammer's answer (see PAPERS.md) is to
//! score threads by their share of *tracker pressure* — how often their
//! activations force the mitigation machinery to act — and throttle the
//! suspects, not everyone.
//!
//! This module is the controller-side implementation of that idea:
//!
//! * Every RFM arming (an ACT crossing the RAA threshold) and every
//!   MC-mitigation trigger (a queued ARR) adds [`PRESSURE_SCALE`] to the
//!   issuing thread's **window pressure**. QoS-throttled ACTs themselves
//!   add nothing — throttling a thread must not manufacture the evidence
//!   that keeps it throttled.
//! * On a fixed window cadence (`window_ps`) each thread's **suspect
//!   score** decays geometrically and absorbs the window's pressure
//!   (`score = score/2 + pressure`), so the steady-state score of a
//!   thread causing `p` pressure per window converges to `2p`.
//! * A thread is **suspect** for the next window iff its *cumulative*
//!   pressure exceeds `share_pct` percent of the run's total across
//!   threads *and* its decayed score clears an absolute noise floor
//!   (`min_score`). The cumulative share identifies *who* is responsible
//!   (a victim's incidental trigger burst can never outweigh a sustained
//!   hammer), while the decayed score limits *when* throttling applies
//!   (a thread that stops hammering is released within a few windows).
//! * Suspects are rate-clamped by a per-thread **token bucket**
//!   ([`ThrottleKind::TokenBucket`]): `tokens_per_window` ACTs per
//!   window; once dry, further ACTs of that thread release only at the
//!   **window boundary** (an absolute simulated time, so both scheduler
//!   cores compute the identical release — see the decision-identity
//!   notes in ARCHITECTURE.md).
//!
//! All state is integer-only and advances only on executed commands at
//! simulated times, so QoS preserves the workspace determinism contract:
//! reports are byte-identical at any worker-thread count, and with
//! [`QosPolicy::Off`] the controller is entry-by-entry identical to a
//! build without this module.

use mithril_dram::TimePs;

/// Score units added per pressure event (RFM arming / mitigation
/// trigger). Scores are kept in these fixed-point units so the noise
/// floor can sit below one event per window: with the default
/// `min_score` of 8, a thread needs a steady ≥ 0.25 triggers per window
/// to stay suspect.
pub const PRESSURE_SCALE: u64 = 16;

/// How a suspect thread's activation rate is clamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThrottleKind {
    /// Per-thread token bucket: a suspect spends one token per ACT and
    /// gets `tokens_per_window` fresh tokens at each window rotation;
    /// when dry, its ACTs are deferred to the next window boundary.
    #[default]
    TokenBucket,
}

/// Tuning of the suspect scorer and throttle (all fields are part of the
/// deterministic simulation state; `Copy` so `SystemConfig` stays
/// `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosConfig {
    /// Throttle mechanism applied to suspects.
    pub kind: ThrottleKind,
    /// Score window: decay, suspect re-election and token refill cadence
    /// (picoseconds of simulated time).
    pub window_ps: TimePs,
    /// A thread is suspect only when its cumulative pressure exceeds
    /// this percentage of the total across threads.
    pub share_pct: u64,
    /// ...and only when its *decayed* score is at least this absolute
    /// floor (in [`PRESSURE_SCALE`] units), so idle systems never elect
    /// a suspect and reformed hammers are released within a few windows.
    pub min_score: u64,
    /// ACT budget a suspect thread receives per window.
    pub tokens_per_window: u64,
}

impl Default for QosConfig {
    /// Defaults sized for the Table III system: 2 µs windows (a handful
    /// of RFM cadences), 60% trigger share, a quarter-trigger-per-window
    /// noise floor, and 8 ACTs per window for suspects (roughly a 5x
    /// clamp against an unthrottled single-bank hammer).
    fn default() -> Self {
        Self {
            kind: ThrottleKind::TokenBucket,
            window_ps: 2_000_000,
            share_pct: 60,
            min_score: PRESSURE_SCALE / 2,
            tokens_per_window: 8,
        }
    }
}

/// Whether (and how) the controller runs the QoS layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QosPolicy {
    /// No QoS: the controller is entry-by-entry identical to a build
    /// without the subsystem (the `BENCH_sweep.json` byte-identity
    /// contract).
    #[default]
    Off,
    /// Suspect scoring + throttling with the given tuning.
    Throttle(QosConfig),
}

/// One thread's share of the QoS bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ThreadQos {
    /// Decayed suspect score ([`PRESSURE_SCALE`] units).
    score: u64,
    /// Cumulative pressure over the whole run (never decays; the
    /// responsibility signal the suspect share test runs against).
    pressure: u64,
    /// Pressure accumulated in the current window.
    window_pressure: u64,
    /// Remaining ACT tokens (meaningful only while suspect).
    tokens: u64,
    /// Elected suspect at the last window rotation.
    suspect: bool,
    /// Windows this thread spent as a suspect.
    suspect_windows: u64,
    /// ACTs of this thread deferred by the token bucket.
    throttled_acts: u64,
}

/// Live QoS state owned by one memory controller (one channel).
#[derive(Debug, Clone)]
pub(crate) struct QosState {
    cfg: QosConfig,
    /// End of the current score window (absolute simulated time).
    window_end: TimePs,
    threads: Vec<ThreadQos>,
    windows: u64,
}

impl QosState {
    /// Builds the state for a policy; `Off` needs none.
    pub(crate) fn new(policy: QosPolicy) -> Option<Self> {
        match policy {
            QosPolicy::Off => None,
            QosPolicy::Throttle(cfg) => {
                assert!(cfg.window_ps > 0, "QoS window must be non-zero");
                Some(Self {
                    cfg,
                    window_end: cfg.window_ps,
                    threads: Vec::new(),
                    windows: 0,
                })
            }
        }
    }

    fn slot(&mut self, thread: usize) -> &mut ThreadQos {
        if thread >= self.threads.len() {
            self.threads.resize(thread + 1, ThreadQos::default());
        }
        &mut self.threads[thread]
    }

    /// Rotates score windows until `now` is inside the current one.
    /// Called once per executed command, before the command's effects,
    /// so both scheduler cores rotate at identical points of the
    /// (identical) command stream.
    pub(crate) fn tick(&mut self, now: TimePs) {
        while now >= self.window_end {
            self.rotate();
            self.window_end += self.cfg.window_ps;
        }
    }

    /// One window rotation: decay + absorb pressure, re-elect suspects,
    /// refill token buckets.
    fn rotate(&mut self) {
        self.windows += 1;
        let mut total = 0u64;
        for t in &mut self.threads {
            t.score = t.score / 2 + t.window_pressure;
            t.pressure += t.window_pressure;
            t.window_pressure = 0;
            total += t.pressure;
        }
        for t in &mut self.threads {
            t.suspect =
                t.score >= self.cfg.min_score && t.pressure * 100 > total * self.cfg.share_pct;
            if t.suspect {
                t.suspect_windows += 1;
                let ThrottleKind::TokenBucket = self.cfg.kind;
                t.tokens = self.cfg.tokens_per_window;
            }
        }
    }

    /// Earliest time `thread` may activate: the next window boundary
    /// when it is a dry suspect, otherwise unconstrained (0). Absolute,
    /// not `now`-relative, so every recompute within a step yields the
    /// same release.
    pub(crate) fn activate_allowed_at(&self, thread: usize) -> TimePs {
        match self.threads.get(thread) {
            Some(t) if t.suspect && t.tokens == 0 => self.window_end,
            _ => 0,
        }
    }

    /// Charges an executed ACT: suspects spend a token; a deferred ACT
    /// (qos_throttled, as computed at selection) is tallied.
    pub(crate) fn on_act(&mut self, thread: usize, qos_throttled: bool) {
        let t = self.slot(thread);
        if t.suspect && t.tokens > 0 {
            t.tokens -= 1;
        }
        if qos_throttled {
            t.throttled_acts += 1;
        }
    }

    /// Charges one pressure event (RFM arming or mitigation trigger) to
    /// the issuing thread's current window.
    pub(crate) fn on_pressure(&mut self, thread: usize) {
        self.slot(thread).window_pressure += PRESSURE_SCALE;
    }

    /// Snapshot for reporting.
    pub(crate) fn stats(&self) -> QosStats {
        QosStats {
            windows: self.windows,
            throttled_acts: self.threads.iter().map(|t| t.throttled_acts).sum(),
            per_thread: self
                .threads
                .iter()
                .map(|t| QosThreadStats {
                    suspect_windows: t.suspect_windows,
                    throttled_acts: t.throttled_acts,
                    score: t.score,
                    pressure: t.pressure,
                })
                .collect(),
        }
    }
}

/// One thread's QoS outcome over a run (reported in the `qos` section).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QosThreadStats {
    /// Windows the thread spent elected suspect.
    pub suspect_windows: u64,
    /// ACTs deferred by the token bucket.
    pub throttled_acts: u64,
    /// Final decayed suspect score ([`PRESSURE_SCALE`] units).
    pub score: u64,
    /// Cumulative pressure attributed over the run ([`PRESSURE_SCALE`]
    /// units) — the throttle-attribution signal.
    pub pressure: u64,
}

impl QosThreadStats {
    /// Additive fold for cross-channel roll-up (associative and
    /// commutative, like every other metrics merge).
    pub fn merge(&mut self, other: &QosThreadStats) {
        self.suspect_windows += other.suspect_windows;
        self.throttled_acts += other.throttled_acts;
        self.score += other.score;
        self.pressure += other.pressure;
    }
}

/// QoS summary of one run (or one channel), carried alongside the
/// metrics. Present only when a [`QosPolicy`] other than `Off` ran, so
/// QoS-off reports stay byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QosStats {
    /// Score windows rotated (summed across channels on roll-up).
    pub windows: u64,
    /// Total ACTs deferred by the token bucket.
    pub throttled_acts: u64,
    /// Per-thread outcomes, indexed by thread id.
    pub per_thread: Vec<QosThreadStats>,
}

impl QosStats {
    /// Folds another channel's QoS outcome into `self` (index-wise for
    /// the per-thread table, additive otherwise).
    pub fn merge(&mut self, other: &QosStats) {
        self.windows += other.windows;
        self.throttled_acts += other.throttled_acts;
        if other.per_thread.len() > self.per_thread.len() {
            self.per_thread
                .resize(other.per_thread.len(), QosThreadStats::default());
        }
        for (a, b) in self.per_thread.iter_mut().zip(other.per_thread.iter()) {
            a.merge(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(cfg: QosConfig) -> QosState {
        QosState::new(QosPolicy::Throttle(cfg)).expect("throttle policy builds state")
    }

    #[test]
    fn off_policy_builds_no_state() {
        assert!(QosState::new(QosPolicy::Off).is_none());
    }

    #[test]
    fn suspect_needs_share_and_floor() {
        let mut q = state(QosConfig::default());
        // Thread 0 causes 4 triggers, thread 1 causes 1.
        for _ in 0..4 {
            q.on_pressure(0);
        }
        q.on_pressure(1);
        q.tick(q.cfg.window_ps);
        assert!(q.threads[0].suspect, "dominant trigger source is suspect");
        assert!(!q.threads[1].suspect, "minor source stays untouched");
        assert_eq!(q.activate_allowed_at(1), 0);
        // The suspect still has tokens, so it is not deferred yet.
        assert_eq!(q.activate_allowed_at(0), 0);
        for _ in 0..q.cfg.tokens_per_window {
            q.on_act(0, false);
        }
        assert_eq!(
            q.activate_allowed_at(0),
            2 * q.cfg.window_ps,
            "dry suspect releases at the window boundary"
        );
    }

    #[test]
    fn scores_decay_without_pressure() {
        let mut q = state(QosConfig::default());
        for _ in 0..8 {
            q.on_pressure(0);
        }
        q.tick(q.cfg.window_ps);
        assert!(q.threads[0].suspect);
        // Several silent windows: score halves each rotation and the
        // thread drops below the floor.
        q.tick(10 * q.cfg.window_ps);
        assert!(!q.threads[0].suspect, "score must decay to zero");
        assert_eq!(q.activate_allowed_at(0), 0);
        assert!(q.stats().per_thread[0].suspect_windows >= 1);
    }

    #[test]
    fn tick_catches_up_multiple_windows() {
        let mut q = state(QosConfig::default());
        q.tick(5 * q.cfg.window_ps);
        assert_eq!(q.stats().windows, 5);
        assert_eq!(q.window_end, 6 * q.cfg.window_ps);
    }

    #[test]
    fn victim_burst_cannot_outweigh_sustained_hammer() {
        let mut q = state(QosConfig::default());
        // Thread 0 hammers steadily for 6 windows...
        for w in 0..6u64 {
            for _ in 0..4 {
                q.on_pressure(0);
            }
            q.tick((w + 1) * q.cfg.window_ps);
        }
        // ...then pauses for two windows while a victim takes a 2-trigger
        // burst. Under a decayed-score-only share test the victim would
        // be elected here; the cumulative share test keeps it clean.
        q.on_pressure(1);
        q.on_pressure(1);
        q.tick(8 * q.cfg.window_ps);
        assert!(!q.threads[1].suspect, "victim burst must not elect");
        assert!(q.stats().per_thread[0].pressure > q.stats().per_thread[1].pressure);
    }

    #[test]
    fn below_floor_never_suspect_even_at_full_share() {
        let cfg = QosConfig {
            min_score: 100,
            ..QosConfig::default()
        };
        let mut q = state(cfg);
        q.on_pressure(0); // 100% of the total, but under the floor
        q.tick(cfg.window_ps);
        assert!(!q.threads[0].suspect);
    }

    #[test]
    fn stats_merge_is_additive_and_grows() {
        let mut a = QosStats {
            windows: 2,
            throttled_acts: 3,
            per_thread: vec![QosThreadStats {
                suspect_windows: 1,
                throttled_acts: 3,
                score: 10,
                pressure: 20,
            }],
        };
        let b = QosStats {
            windows: 1,
            throttled_acts: 5,
            per_thread: vec![
                QosThreadStats::default(),
                QosThreadStats {
                    suspect_windows: 4,
                    throttled_acts: 5,
                    score: 7,
                    pressure: 9,
                },
            ],
        };
        a.merge(&b);
        assert_eq!(a.windows, 3);
        assert_eq!(a.throttled_acts, 8);
        assert_eq!(a.per_thread.len(), 2);
        assert_eq!(a.per_thread[0].score, 10);
        assert_eq!(a.per_thread[1].suspect_windows, 4);
    }
}
