//! The controller-side mitigation interface.
//!
//! MC-side schemes (PARA, Graphene, TWiCe, CBT, BlockHammer — Table I of
//! the paper) observe activations from the controller's vantage point and
//! react with one of two remedies:
//!
//! * **ARR** — an adjacent-row-refresh command naming victim rows (the
//!   remedy deprecated in DDR5 but used by prior work);
//! * **throttling** — delaying future activations of a row/thread
//!   (BlockHammer).

use mithril_dram::{BankId, RowId, TimePs};

/// What the mitigation wants the controller to do after an ACT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McAction {
    /// Nothing to do.
    None,
    /// Issue an ARR refreshing `victims` on `bank` as soon as possible.
    Arr {
        /// Target bank.
        bank: BankId,
        /// Victim rows to refresh.
        victims: Vec<RowId>,
    },
}

/// A controller-side Row Hammer mitigation.
///
/// # Example
///
/// ```
/// use mithril_dram::{BankId, RowId, TimePs};
/// use mithril_memctrl::{McAction, McMitigation};
///
/// /// Refresh neighbours of every 1000th activation (a toy PARA).
/// struct Every1000(u64);
///
/// impl McMitigation for Every1000 {
///     fn on_activate(
///         &mut self,
///         bank: BankId,
///         row: RowId,
///         _thread: usize,
///         _now: TimePs,
///     ) -> McAction {
///         self.0 += 1;
///         if self.0 % 1000 == 0 {
///             McAction::Arr { bank, victims: vec![row.saturating_sub(1), row + 1] }
///         } else {
///             McAction::None
///         }
///     }
///     fn name(&self) -> &'static str {
///         "every-1000"
///     }
/// }
/// ```
pub trait McMitigation {
    /// Observes an ACT of `row` on `bank` issued on behalf of `thread`.
    fn on_activate(&mut self, bank: BankId, row: RowId, thread: usize, now: TimePs) -> McAction;

    /// Earliest time the controller may activate `row` on `bank` for
    /// `thread` — the throttling hook. Non-throttling schemes return `now`.
    fn activate_allowed_at(&self, bank: BankId, row: RowId, thread: usize, now: TimePs) -> TimePs {
        let _ = (bank, row, thread);
        now
    }

    /// Auto-refresh notification for `bank` rows `lo..hi` (TWiCe-style
    /// housekeeping). Default: ignored.
    fn on_auto_refresh(&mut self, bank: BankId, lo: RowId, hi: RowId) {
        let _ = (bank, lo, hi);
    }

    /// Whether [`activate_allowed_at`] can ever return a time later than
    /// `now`. The event-driven scheduler caches per-bank activation
    /// candidates; a throttling mitigation's release times slide with the
    /// clock (`now + delay`), so candidates must be recomputed every step
    /// when this returns `true`. Non-throttling schemes should override to
    /// `false` to keep the incremental fast path enabled. The default is
    /// `true` (conservative: always correct, never fast).
    ///
    /// [`activate_allowed_at`]: McMitigation::activate_allowed_at
    fn may_throttle(&self) -> bool {
        true
    }

    /// Scheme name for reporting.
    fn name(&self) -> &'static str;
}

/// The unit MC-side mitigation: observes and does nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMcMitigation;

impl McMitigation for NoMcMitigation {
    fn on_activate(
        &mut self,
        _bank: BankId,
        _row: RowId,
        _thread: usize,
        _now: TimePs,
    ) -> McAction {
        McAction::None
    }

    fn may_throttle(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_mitigation_never_acts() {
        let mut m = NoMcMitigation;
        assert_eq!(m.on_activate(0, 0, 0, 0), McAction::None);
        assert_eq!(m.activate_allowed_at(0, 0, 0, 42), 42);
        assert_eq!(m.name(), "none");
    }
}
