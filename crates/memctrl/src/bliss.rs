//! The BLISS memory scheduler (Subramanian et al., the paper's Table III
//! scheduling policy).
//!
//! BLISS ("Blacklisting Memory Scheduler") separates applications into two
//! priority classes instead of ranking them individually: a thread that is
//! served `threshold` *consecutive* requests is blacklisted for the rest of
//! the clearing interval, deprioritizing streak-heavy (interference-prone)
//! applications. Within a class, scheduling stays FR-FCFS.

use mithril_dram::TimePs;

/// BLISS tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlissConfig {
    /// Consecutive services that trigger blacklisting (paper value: 4).
    pub streak_threshold: u32,
    /// Blacklist clearing interval (BLISS uses 10 000 CPU cycles; ~2.8 µs
    /// at 3.6 GHz).
    pub clearing_interval: TimePs,
    /// Number of hardware threads tracked.
    pub threads: usize,
}

impl Default for BlissConfig {
    fn default() -> Self {
        Self {
            streak_threshold: 4,
            clearing_interval: 2_800_000,
            threads: 16,
        }
    }
}

/// Blacklisting state.
///
/// # Example
///
/// ```
/// use mithril_memctrl::{Bliss, BlissConfig};
///
/// let mut b = Bliss::new(BlissConfig { threads: 2, ..Default::default() });
/// for _ in 0..4 {
///     b.on_request_served(0, 100);
/// }
/// assert!(b.is_blacklisted(0));
/// assert!(!b.is_blacklisted(1));
/// ```
#[derive(Debug, Clone)]
pub struct Bliss {
    config: BlissConfig,
    blacklisted: Vec<bool>,
    last_thread: Option<usize>,
    streak: u32,
    next_clear: TimePs,
}

impl Bliss {
    /// Creates a scheduler state for `config.threads` threads.
    pub fn new(config: BlissConfig) -> Self {
        Self {
            blacklisted: vec![false; config.threads],
            last_thread: None,
            streak: 0,
            next_clear: config.clearing_interval,
            config,
        }
    }

    /// Records that a request of `thread` was serviced at `now`.
    ///
    /// Returns `true` if the blacklist set changed (a thread was newly
    /// blacklisted, or the clearing interval elapsed and dropped entries)
    /// — the event-driven scheduler uses this to invalidate cached
    /// per-bank candidates only when priorities actually moved.
    pub fn on_request_served(&mut self, thread: usize, now: TimePs) -> bool {
        let mut changed = self.maybe_clear(now);
        if self.last_thread == Some(thread) {
            self.streak += 1;
        } else {
            self.last_thread = Some(thread);
            self.streak = 1;
        }
        if self.streak >= self.config.streak_threshold {
            if let Some(b) = self.blacklisted.get_mut(thread) {
                if !*b {
                    *b = true;
                    changed = true;
                }
            }
        }
        changed
    }

    /// True if `thread` is currently blacklisted (lower priority).
    pub fn is_blacklisted(&self, thread: usize) -> bool {
        self.blacklisted.get(thread).copied().unwrap_or(false)
    }

    /// Advances the clearing clock without a service event. Returns `true`
    /// if the clearing interval elapsed and dropped blacklist entries.
    pub fn tick(&mut self, now: TimePs) -> bool {
        self.maybe_clear(now)
    }

    fn maybe_clear(&mut self, now: TimePs) -> bool {
        let mut changed = false;
        while now >= self.next_clear {
            if !changed && self.blacklisted.iter().any(|&b| b) {
                changed = true;
            }
            self.blacklisted.fill(false);
            self.next_clear += self.config.clearing_interval;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bliss() -> Bliss {
        Bliss::new(BlissConfig {
            threads: 4,
            ..Default::default()
        })
    }

    #[test]
    fn streak_of_four_blacklists() {
        let mut b = bliss();
        for _ in 0..3 {
            b.on_request_served(1, 0);
        }
        assert!(!b.is_blacklisted(1));
        b.on_request_served(1, 0);
        assert!(b.is_blacklisted(1));
    }

    #[test]
    fn interleaved_service_never_blacklists() {
        let mut b = bliss();
        for i in 0..100 {
            b.on_request_served(i % 2, i as TimePs);
        }
        assert!(!b.is_blacklisted(0));
        assert!(!b.is_blacklisted(1));
    }

    #[test]
    fn clearing_interval_resets_blacklist() {
        let mut b = bliss();
        for _ in 0..4 {
            b.on_request_served(2, 0);
        }
        assert!(b.is_blacklisted(2));
        b.tick(BlissConfig::default().clearing_interval);
        assert!(!b.is_blacklisted(2));
    }

    #[test]
    fn streak_resets_on_thread_switch() {
        let mut b = bliss();
        b.on_request_served(0, 0);
        b.on_request_served(0, 0);
        b.on_request_served(0, 0);
        b.on_request_served(1, 0); // breaks the streak
        b.on_request_served(0, 0);
        assert!(!b.is_blacklisted(0));
    }

    #[test]
    fn out_of_range_thread_is_not_blacklisted() {
        let b = bliss();
        assert!(!b.is_blacklisted(99));
    }
}
