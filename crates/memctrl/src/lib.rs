//! DDR5 memory-controller model with the RFM issue logic of the paper.
//!
//! The controller implements the system side of the paper's Table III setup:
//!
//! * per-bank request queues with **FR-FCFS** scheduling under the
//!   **BLISS** blacklisting policy (Subramanian et al.), the scheduler the
//!   paper simulates;
//! * the **Minimalist-open** page policy (Kaseridis et al.): a row stays
//!   open only for a handful of row hits, then closes;
//! * rank-level auto-refresh every tREFI;
//! * the **RFM issue flow** of paper Fig. 1(b): a Rolling Accumulated ACT
//!   (RAA) counter per bank; when it reaches `RFMTH` the controller issues
//!   an RFM to that bank and resets the counter — optionally after polling
//!   the Mithril+ mode-register flag (MRR) and eliding the RFM when clear;
//! * an **ARR path** and a **throttling hook** so MC-side mitigations
//!   (PARA, Graphene, TWiCe, CBT, BlockHammer) can be plugged in via
//!   [`McMitigation`];
//! * a **multi-tenant QoS layer** ([`QosPolicy`], BreakHammer-style):
//!   per-thread suspect scores fed by tracker-pressure attribution, with
//!   a token-bucket rate clamp on suspects — see the [`qos`]-module docs
//!   and ARCHITECTURE.md ("Multi-tenant QoS & throttling").
//!
//! # Example
//!
//! ```
//! use mithril_dram::{Ddr5Timing, DramDevice, Geometry, NoMitigation};
//! use mithril_memctrl::{
//!     AddressMapping, McConfig, MemRequest, MemoryController, NoMcMitigation, RfmMode,
//! };
//!
//! let geometry = Geometry::default();
//! let device = DramDevice::new(geometry, Ddr5Timing::ddr5_4800(), 10_000, 1, |_| {
//!     Box::new(NoMitigation)
//! });
//! let mut mc = MemoryController::new(device, McConfig::default(), Box::new(NoMcMitigation));
//!
//! let mapping = AddressMapping::new(geometry);
//! mc.enqueue(MemRequest::read(1, mapping.map_line(0x4000), 0, 0));
//! let mut done = Vec::new();
//! mc.advance_until_into(1_000_000, &mut done); // 1 µs
//! assert_eq!(done.len(), 1);
//! assert_eq!(done[0].request_id, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bliss;
mod controller;
mod mapping;
mod mitigation;
pub mod qos;
mod request;

pub use bliss::{Bliss, BlissConfig};
pub use controller::{
    CommandKind, CommandRecord, Completion, CoreStats, McConfig, McStats, MemoryController,
    RfmMode, SchedulerKind,
};
pub use mapping::{AddressMapping, MappedAddr};
pub use mitigation::{McAction, McMitigation, NoMcMitigation};
pub use qos::{QosConfig, QosPolicy, QosStats, QosThreadStats, ThrottleKind};
pub use request::MemRequest;
