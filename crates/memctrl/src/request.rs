//! Memory requests as they arrive from the cache hierarchy.

use crate::mapping::MappedAddr;
use mithril_dram::TimePs;

/// One cache-line-sized DRAM request.
///
/// # Example
///
/// ```
/// use mithril_memctrl::{AddressMapping, MemRequest};
/// use mithril_dram::Geometry;
///
/// let mapping = AddressMapping::new(Geometry::default());
/// let req = MemRequest::read(7, mapping.map_line(0x1234_5678), 3, 1_000);
/// assert!(!req.is_write);
/// assert_eq!(req.thread, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-assigned identifier, echoed in the completion.
    pub id: u64,
    /// Bank/row/column coordinates.
    pub addr: MappedAddr,
    /// True for writebacks, false for demand reads.
    pub is_write: bool,
    /// Originating hardware thread (for BLISS and throttling decisions).
    pub thread: usize,
    /// Arrival time at the controller.
    pub arrival: TimePs,
}

impl MemRequest {
    /// A demand read.
    pub fn read(id: u64, addr: MappedAddr, thread: usize, arrival: TimePs) -> Self {
        Self {
            id,
            addr,
            is_write: false,
            thread,
            arrival,
        }
    }

    /// A writeback.
    pub fn write(id: u64, addr: MappedAddr, thread: usize, arrival: TimePs) -> Self {
        Self {
            id,
            addr,
            is_write: true,
            thread,
            arrival,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::AddressMapping;
    use mithril_dram::Geometry;

    #[test]
    fn constructors_set_direction() {
        let m = AddressMapping::new(Geometry::default());
        let a = m.map_line(0x40);
        assert!(!MemRequest::read(1, a, 0, 0).is_write);
        assert!(MemRequest::write(2, a, 0, 0).is_write);
    }
}
