//! Physical-address interleaving across banks, rows and columns.
//!
//! The mapping follows the usual high-performance layout: consecutive cache
//! lines stripe across banks (bank bits above the column bits, XOR-hashed
//! with low row bits to break power-of-two conflict patterns), so streaming
//! workloads exploit bank-level parallelism while a row's lines stay in one
//! row buffer.

use mithril_dram::{BankId, Geometry, RowId};

/// A request's DRAM coordinates after interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MappedAddr {
    /// Flat bank index within the channel.
    pub bank: BankId,
    /// Row within the bank.
    pub row: RowId,
    /// Column (cache-line slot) within the row.
    pub col: u64,
}

/// Line-address → (bank, row, column) interleaving for one channel.
///
/// # Example
///
/// ```
/// use mithril_dram::Geometry;
/// use mithril_memctrl::AddressMapping;
///
/// let m = AddressMapping::new(Geometry::default());
/// let a = m.map_line(0);
/// let b = m.map_line(1); // next line: same row, different bank
/// assert_ne!(a.bank, b.bank);
/// // Lines map deterministically.
/// assert_eq!(m.map_line(12345), m.map_line(12345));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AddressMapping {
    geometry: Geometry,
    bank_bits: u32,
    col_bits: u32,
}

impl AddressMapping {
    /// Creates the mapping for `geometry`.
    ///
    /// # Panics
    ///
    /// Panics if the bank count or lines-per-row is not a power of two.
    pub fn new(geometry: Geometry) -> Self {
        let banks = geometry.banks_total();
        assert!(banks.is_power_of_two(), "bank count must be a power of two");
        let lines = geometry.lines_per_row();
        assert!(lines.is_power_of_two(), "lines per row must be a power of two");
        Self {
            geometry,
            bank_bits: banks.trailing_zeros(),
            col_bits: lines.trailing_zeros(),
        }
    }

    /// Maps a cache-line address (line index, i.e. byte address / 64) to
    /// DRAM coordinates.
    pub fn map_line(&self, line_addr: u64) -> MappedAddr {
        // Layout (LSB → MSB): bank | column | row.
        let bank_mask = (1u64 << self.bank_bits) - 1;
        let col_mask = (1u64 << self.col_bits) - 1;
        let bank_raw = line_addr & bank_mask;
        let col = (line_addr >> self.bank_bits) & col_mask;
        let row = (line_addr >> (self.bank_bits + self.col_bits))
            % self.geometry.rows_per_bank;
        // XOR-hash the bank with low row bits (permutation-based
        // interleaving) so same-bank strides don't always conflict.
        let bank = (bank_raw ^ (row & bank_mask)) & bank_mask;
        MappedAddr { bank: bank as BankId, row, col }
    }

    /// The geometry this mapping was built for.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Inverse mapping: the line address landing on `(bank, row, col)`.
    ///
    /// Attackers reverse-engineer exactly this function to aim at specific
    /// DRAM rows; the attack-trace generators use it for the same purpose.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn line_for(&self, addr: MappedAddr) -> u64 {
        let bank_mask = (1u64 << self.bank_bits) - 1;
        assert!(addr.bank < self.geometry.banks_total(), "bank out of range");
        assert!(addr.row < self.geometry.rows_per_bank, "row out of range");
        assert!(addr.col < self.geometry.lines_per_row(), "col out of range");
        let bank_raw = (addr.bank as u64 ^ (addr.row & bank_mask)) & bank_mask;
        bank_raw | (addr.col << self.bank_bits) | (addr.row << (self.bank_bits + self.col_bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> AddressMapping {
        AddressMapping::new(Geometry::default())
    }

    #[test]
    fn consecutive_lines_stripe_banks() {
        let m = mapping();
        let banks: Vec<_> = (0..32u64).map(|i| m.map_line(i).bank).collect();
        let unique: std::collections::HashSet<_> = banks.iter().collect();
        assert_eq!(unique.len(), 32, "32 consecutive lines must hit 32 banks");
    }

    #[test]
    fn lines_within_row_share_row() {
        let m = mapping();
        // Stride by bank count: same bank, consecutive columns.
        let a = m.map_line(0);
        let b = m.map_line(32);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
        assert_ne!(a.col, b.col);
    }

    #[test]
    fn row_changes_after_row_worth_of_lines() {
        let m = mapping();
        let lines_per_row_all_banks = 32 * 128; // banks * lines_per_row
        let a = m.map_line(0);
        let b = m.map_line(lines_per_row_all_banks);
        assert_eq!(a.row + 1, b.row);
    }

    #[test]
    fn mapping_is_total_and_in_range() {
        let m = mapping();
        let g = *m.geometry();
        for i in (0..1_000_000u64).step_by(7919) {
            let a = m.map_line(i);
            assert!(a.bank < g.banks_total());
            assert!(a.row < g.rows_per_bank);
            assert!(a.col < g.lines_per_row());
        }
    }

    #[test]
    fn xor_hash_breaks_stride_conflicts() {
        // A power-of-two stride that would always hit bank 0 without
        // hashing must spread across banks with it.
        let m = mapping();
        let stride = 32 * 128; // one full row of lines across banks
        let banks: std::collections::HashSet<_> =
            (0..64u64).map(|i| m.map_line(i * stride).bank).collect();
        assert!(banks.len() > 1, "XOR hash failed to spread strided accesses");
    }

    #[test]
    fn line_for_inverts_map_line() {
        let m = mapping();
        for i in (0..2_000_000u64).step_by(4391) {
            let a = m.map_line(i);
            assert_eq!(m.line_for(a), i, "line {i} did not round-trip");
        }
    }

    #[test]
    fn line_for_targets_requested_row() {
        let m = mapping();
        let addr = MappedAddr { bank: 5, row: 1234, col: 7 };
        let line = m.line_for(addr);
        assert_eq!(m.map_line(line), addr);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_banks_panics() {
        let g = Geometry { banks_per_rank: 24, ..Geometry::default() };
        let _ = AddressMapping::new(g);
    }
}
