//! Physical-address interleaving across channels, banks, rows and columns.
//!
//! The mapping follows the usual high-performance layout: consecutive cache
//! lines stripe across channels first (channel bits at the very bottom of
//! the line address, XOR-hashed with low row bits), then across banks (bank
//! bits above the channel bits, likewise XOR-hashed to break power-of-two
//! conflict patterns). Streaming workloads therefore exploit channel- and
//! bank-level parallelism while a row's lines stay in one row buffer.
//!
//! With a single-channel [`Geometry`] the channel field is constant zero
//! and the layout reduces bit-for-bit to the classic bank | column | row
//! interleaving.

use mithril_dram::{BankId, ChannelId, Geometry, RowId};

/// A request's DRAM coordinates after interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MappedAddr {
    /// The memory channel servicing the line.
    pub channel: ChannelId,
    /// Flat bank index within the channel.
    pub bank: BankId,
    /// Row within the bank.
    pub row: RowId,
    /// Column (cache-line slot) within the row.
    pub col: u64,
}

/// Line-address → (channel, bank, row, column) interleaving for a whole
/// memory subsystem.
///
/// # Example
///
/// ```
/// use mithril_dram::Geometry;
/// use mithril_memctrl::AddressMapping;
///
/// let m = AddressMapping::new(Geometry::table_iii_system());
/// let a = m.map_line(0);
/// let b = m.map_line(1); // next line: the other channel
/// assert_ne!(a.channel, b.channel);
/// // Lines map deterministically and invert exactly.
/// assert_eq!(m.map_line(12345), m.map_line(12345));
/// assert_eq!(m.line_for(m.map_line(12345)), 12345);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AddressMapping {
    geometry: Geometry,
    channel_bits: u32,
    bank_bits: u32,
    col_bits: u32,
}

impl AddressMapping {
    /// Creates the mapping for `geometry`.
    ///
    /// # Panics
    ///
    /// Panics if the channel count, per-channel bank count or
    /// lines-per-row is not a power of two.
    pub fn new(geometry: Geometry) -> Self {
        let channels = geometry.channels;
        assert!(
            channels.is_power_of_two(),
            "channel count must be a power of two"
        );
        let banks = geometry.banks_total();
        assert!(banks.is_power_of_two(), "bank count must be a power of two");
        let lines = geometry.lines_per_row();
        assert!(
            lines.is_power_of_two(),
            "lines per row must be a power of two"
        );
        Self {
            geometry,
            channel_bits: channels.trailing_zeros(),
            bank_bits: banks.trailing_zeros(),
            col_bits: lines.trailing_zeros(),
        }
    }

    /// Maps a cache-line address (line index, i.e. byte address / 64) to
    /// DRAM coordinates.
    pub fn map_line(&self, line_addr: u64) -> MappedAddr {
        // Layout (LSB → MSB): channel | bank | column | row.
        let ch_mask = (1u64 << self.channel_bits) - 1;
        let bank_mask = (1u64 << self.bank_bits) - 1;
        let col_mask = (1u64 << self.col_bits) - 1;
        let ch_raw = line_addr & ch_mask;
        let rest = line_addr >> self.channel_bits;
        let bank_raw = rest & bank_mask;
        let col = (rest >> self.bank_bits) & col_mask;
        let row = (rest >> (self.bank_bits + self.col_bits)) % self.geometry.rows_per_bank;
        // XOR-hash channel and bank with low row bits (permutation-based
        // interleaving) so power-of-two strides don't always conflict on
        // one channel or bank.
        let channel = (ch_raw ^ (row & ch_mask)) & ch_mask;
        let bank = (bank_raw ^ (row & bank_mask)) & bank_mask;
        MappedAddr {
            channel: ChannelId(channel as usize),
            bank: bank as BankId,
            row,
            col,
        }
    }

    /// The geometry this mapping was built for.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The number of channels lines interleave over.
    pub fn channels(&self) -> usize {
        self.geometry.channels
    }

    /// Inverse mapping: the line address landing on
    /// `(channel, bank, row, col)`.
    ///
    /// Attackers reverse-engineer exactly this function to aim at specific
    /// DRAM rows of a specific channel; the attack-trace generators use it
    /// for the same purpose.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn line_for(&self, addr: MappedAddr) -> u64 {
        let ch_mask = (1u64 << self.channel_bits) - 1;
        let bank_mask = (1u64 << self.bank_bits) - 1;
        assert!(
            addr.channel.0 < self.geometry.channels,
            "channel out of range"
        );
        assert!(addr.bank < self.geometry.banks_total(), "bank out of range");
        assert!(addr.row < self.geometry.rows_per_bank, "row out of range");
        assert!(addr.col < self.geometry.lines_per_row(), "col out of range");
        let ch_raw = (addr.channel.0 as u64 ^ (addr.row & ch_mask)) & ch_mask;
        let bank_raw = (addr.bank as u64 ^ (addr.row & bank_mask)) & bank_mask;
        let rest = bank_raw
            | (addr.col << self.bank_bits)
            | (addr.row << (self.bank_bits + self.col_bits));
        ch_raw | (rest << self.channel_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> AddressMapping {
        AddressMapping::new(Geometry::default())
    }

    fn mapping2ch() -> AddressMapping {
        AddressMapping::new(Geometry::table_iii_system())
    }

    #[test]
    fn consecutive_lines_stripe_banks() {
        let m = mapping();
        let banks: Vec<_> = (0..32u64).map(|i| m.map_line(i).bank).collect();
        let unique: std::collections::HashSet<_> = banks.iter().collect();
        assert_eq!(unique.len(), 32, "32 consecutive lines must hit 32 banks");
    }

    #[test]
    fn single_channel_layout_matches_classic_mapping() {
        // With one channel the new layout must be bit-identical to the
        // historical bank | column | row interleaving.
        let m = mapping();
        for i in (0..1_000_000u64).step_by(997) {
            let a = m.map_line(i);
            assert_eq!(a.channel, ChannelId(0));
            let bank_mask = 31u64;
            let row = (i >> (5 + 7)) % m.geometry().rows_per_bank;
            assert_eq!(a.row, row);
            assert_eq!(a.col, (i >> 5) & 127);
            assert_eq!(a.bank as u64, (i & bank_mask) ^ (row & bank_mask));
        }
    }

    #[test]
    fn consecutive_lines_stripe_channels_then_banks() {
        let m = mapping2ch();
        let a = m.map_line(0);
        let b = m.map_line(1);
        assert_ne!(a.channel, b.channel);
        assert_eq!(a.bank, b.bank);
        // Two lines apart: same channel, next bank.
        let c = m.map_line(2);
        assert_eq!(a.channel, c.channel);
        assert_ne!(a.bank, c.bank);
    }

    #[test]
    fn lines_within_row_share_row() {
        let m = mapping();
        // Stride by bank count: same bank, consecutive columns.
        let a = m.map_line(0);
        let b = m.map_line(32);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
        assert_ne!(a.col, b.col);
    }

    #[test]
    fn row_changes_after_row_worth_of_lines() {
        let m = mapping();
        let lines_per_row_all_banks = 32 * 128; // banks * lines_per_row
        let a = m.map_line(0);
        let b = m.map_line(lines_per_row_all_banks);
        assert_eq!(a.row + 1, b.row);
    }

    #[test]
    fn mapping_is_total_and_in_range() {
        for g in [
            Geometry::default(),
            Geometry::table_iii_system(),
            Geometry::default().with_channels(4).with_ranks(2),
        ] {
            let m = AddressMapping::new(g);
            for i in (0..1_000_000u64).step_by(7919) {
                let a = m.map_line(i);
                assert!(a.channel.0 < g.channels);
                assert!(a.bank < g.banks_total());
                assert!(a.row < g.rows_per_bank);
                assert!(a.col < g.lines_per_row());
            }
        }
    }

    #[test]
    fn xor_hash_breaks_stride_conflicts() {
        // A power-of-two stride that would always hit bank 0 (and channel
        // 0) without hashing must spread across banks and channels with it.
        let m = mapping2ch();
        let stride = 2 * 32 * 128; // one full row of lines across channels+banks
        let mut banks = std::collections::HashSet::new();
        let mut channels = std::collections::HashSet::new();
        for i in 0..64u64 {
            let a = m.map_line(i * stride);
            banks.insert(a.bank);
            channels.insert(a.channel);
        }
        assert!(
            banks.len() > 1,
            "XOR hash failed to spread strided accesses"
        );
        assert_eq!(channels.len(), 2, "XOR hash failed to spread channels");
    }

    #[test]
    fn line_for_inverts_map_line() {
        for g in [
            Geometry::default(),
            Geometry::table_iii_system(),
            Geometry::default().with_channels(2).with_ranks(2),
        ] {
            let m = AddressMapping::new(g);
            for i in (0..2_000_000u64).step_by(4391) {
                let a = m.map_line(i);
                assert_eq!(m.line_for(a), i, "line {i} did not round-trip");
            }
        }
    }

    #[test]
    fn line_for_targets_requested_row() {
        let m = mapping2ch();
        let addr = MappedAddr {
            channel: ChannelId(1),
            bank: 5,
            row: 1234,
            col: 7,
        };
        let line = m.line_for(addr);
        assert_eq!(m.map_line(line), addr);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_banks_panics() {
        let g = Geometry {
            banks_per_rank: 24,
            ..Geometry::default()
        };
        let _ = AddressMapping::new(g);
    }

    #[test]
    #[should_panic(expected = "channel count")]
    fn non_power_of_two_channels_panics() {
        let g = Geometry::default().with_channels(3);
        let _ = AddressMapping::new(g);
    }

    #[test]
    #[should_panic(expected = "channel out of range")]
    fn line_for_checks_channel_range() {
        let m = mapping();
        let _ = m.line_for(MappedAddr {
            channel: ChannelId(1),
            bank: 0,
            row: 0,
            col: 0,
        });
    }
}
