//! The memory controller proper: queues, scheduling, refresh and RFM issue.
//!
//! The controller advances an event-driven command loop: at each step it
//! enumerates the earliest legal action per bank (refresh, RFM, ARR, a
//! row-hit column command, a page-policy precharge, or an activation) and
//! executes the globally earliest one. Priorities at equal time follow
//! maintenance-first order (REF > RFM > ARR > column > PRE > ACT), which
//! guarantees forward progress and models refresh/RFM head-of-line blocking
//! — the mechanism behind Mithril's performance overhead (paper Fig. 9/10).

use std::collections::VecDeque;

use mithril_dram::{BankId, DramDevice, RankId, RowId, TimePs};

use crate::bliss::{Bliss, BlissConfig};
use crate::mitigation::{McAction, McMitigation};
use crate::request::MemRequest;

/// How the controller drives the RFM interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RfmMode {
    /// RFM disabled (pre-DDR5 behaviour, or MC-side-only schemes).
    Disabled,
    /// Standard RFM: issue to a bank whenever its RAA counter reaches
    /// RFMTH (paper Fig. 1(b)).
    Standard,
    /// Mithril+: poll the mode-register flag first (MRR) and elide the RFM
    /// when the DRAM-side engine reports nothing pending (Section V-B).
    MrrElision,
}

/// Controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// RFM issue policy.
    pub rfm_mode: RfmMode,
    /// RAA threshold at which an RFM is due.
    pub rfm_th: u64,
    /// Minimalist-open page policy: max row hits per activation.
    pub max_row_hits: u32,
    /// BLISS scheduling, or pure FR-FCFS when `None`.
    pub bliss: Option<BlissConfig>,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            rfm_mode: RfmMode::Disabled,
            rfm_th: 64,
            max_row_hits: 4,
            bliss: Some(BlissConfig::default()),
        }
    }
}

/// A serviced request, reported back to the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The id the caller tagged the request with.
    pub request_id: u64,
    /// Originating thread.
    pub thread: usize,
    /// Time the data burst (read) or write commit finished.
    pub at: TimePs,
    /// Whether this was a writeback.
    pub is_write: bool,
}

/// Aggregate controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McStats {
    /// Demand reads serviced.
    pub reads_done: u64,
    /// Writebacks serviced.
    pub writes_done: u64,
    /// Sum of read latencies (completion − arrival), for average latency.
    pub total_read_latency: TimePs,
    /// ACT commands issued.
    pub acts: u64,
    /// Column commands that reused an already-open row (i.e. columns
    /// beyond the first one served by each activation).
    pub row_hits: u64,
    /// Rank REF commands issued.
    pub refs: u64,
    /// RFM commands issued.
    pub rfms: u64,
    /// RFMs elided after a clear MRR flag (Mithril+).
    pub rfm_elisions: u64,
    /// MRR polls issued.
    pub mrrs: u64,
    /// ARR commands issued on behalf of MC-side schemes.
    pub arrs: u64,
    /// ACTs whose issue was delayed by a throttling mitigation.
    pub throttled_acts: u64,
}

impl McStats {
    /// Average read latency in picoseconds.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_done == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads_done as f64
        }
    }

    /// Row-buffer hit rate: the fraction of column commands that reused
    /// an open row instead of paying for the activation that opened it.
    /// 0.0 = every column needed its own ACT (no locality); values near
    /// 1.0 mean long same-row bursts.
    pub fn row_hit_rate(&self) -> f64 {
        let cols = self.reads_done + self.writes_done;
        if cols == 0 {
            0.0
        } else {
            self.row_hits as f64 / cols as f64
        }
    }
}

#[derive(Debug, Clone, Default)]
struct BankQueue {
    queue: VecDeque<MemRequest>,
    hits_served: u32,
    raa: u64,
    rfm_pending: bool,
    arr_queue: VecDeque<Vec<RowId>>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Action {
    Ref {
        rank: RankId,
    },
    MaintPre {
        bank: BankId,
    },
    Rfm {
        bank: BankId,
    },
    Arr {
        bank: BankId,
    },
    Column {
        bank: BankId,
        pos: usize,
    },
    Pre {
        bank: BankId,
    },
    Act {
        bank: BankId,
        pos: usize,
        throttled: bool,
    },
}

impl Action {
    fn priority(&self) -> u8 {
        match self {
            Action::Ref { .. } => 0,
            Action::MaintPre { .. } => 1,
            Action::Rfm { .. } => 2,
            Action::Arr { .. } => 3,
            Action::Column { .. } => 4,
            Action::Pre { .. } => 5,
            Action::Act { .. } => 6,
        }
    }
}

/// One memory channel's controller, owning its [`DramDevice`].
///
/// See the crate-level example for typical use.
pub struct MemoryController {
    device: DramDevice,
    config: McConfig,
    mitigation: Box<dyn McMitigation>,
    bliss: Option<Bliss>,
    banks: Vec<BankQueue>,
    next_ref: Vec<TimePs>,
    bus_free: TimePs,
    clock: TimePs,
    stats: McStats,
    completions: Vec<Completion>,
}

impl MemoryController {
    /// Creates a controller over `device` with the given MC-side
    /// mitigation (use [`crate::NoMcMitigation`] for DRAM-side schemes).
    pub fn new(device: DramDevice, config: McConfig, mitigation: Box<dyn McMitigation>) -> Self {
        let nbanks = device.geometry().banks_total();
        let nranks = device.geometry().ranks;
        let trefi = device.timing().trefi;
        Self {
            device,
            config,
            mitigation,
            bliss: config.bliss.map(Bliss::new),
            banks: (0..nbanks).map(|_| BankQueue::default()).collect(),
            // Stagger rank refreshes to avoid lock-step tRFC stalls.
            next_ref: (0..nranks)
                .map(|r| trefi + (r as TimePs) * (trefi / nranks.max(1) as TimePs))
                .collect(),
            bus_free: 0,
            clock: 0,
            stats: McStats::default(),
            completions: Vec::new(),
        }
    }

    /// Queues a request.
    ///
    /// # Panics
    ///
    /// Panics if the request's bank is out of range.
    pub fn enqueue(&mut self, req: MemRequest) {
        assert!(
            req.addr.bank < self.banks.len(),
            "bank {} out of range",
            req.addr.bank
        );
        self.banks[req.addr.bank].queue.push_back(req);
    }

    /// Total queued (not yet serviced) requests.
    pub fn pending(&self) -> usize {
        self.banks.iter().map(|b| b.queue.len()).sum()
    }

    /// Current controller clock.
    pub fn now(&self) -> TimePs {
        self.clock
    }

    /// Controller statistics.
    pub fn stats(&self) -> McStats {
        self.stats
    }

    /// The DRAM device behind this controller.
    pub fn device(&self) -> &DramDevice {
        &self.device
    }

    /// Consumes the controller, returning the device (for end-of-run
    /// inspection of oracles and energy counters).
    pub fn into_device(self) -> DramDevice {
        self.device
    }

    /// The MC-side mitigation.
    pub fn mitigation(&self) -> &dyn McMitigation {
        self.mitigation.as_ref()
    }

    /// Advances the command loop until no action can issue at or before
    /// `end`, returning all completions produced.
    ///
    /// The controller clock tracks the last executed command, *not* `end`:
    /// callers may interleave `enqueue`/`advance_until` at the same fence
    /// repeatedly (the simulator's intra-epoch relaxation), and requests
    /// arriving between calls are scheduled at their natural times rather
    /// than being quantized to the fence.
    pub fn advance_until(&mut self, end: TimePs) -> Vec<Completion> {
        let mut out = Vec::new();
        self.advance_until_into(end, &mut out);
        out
    }

    /// Allocation-free variant of [`advance_until`]: appends completions to
    /// a caller-owned buffer, so a simulation loop can reuse one `Vec`
    /// across epochs instead of allocating per call.
    ///
    /// [`advance_until`]: MemoryController::advance_until
    pub fn advance_until_into(&mut self, end: TimePs, out: &mut Vec<Completion>) {
        loop {
            match self.next_candidate() {
                Some((t, action)) if t <= end => {
                    self.clock = t;
                    if let Some(b) = &mut self.bliss {
                        b.tick(t);
                    }
                    self.execute(action, t);
                }
                _ => break,
            }
        }
        out.append(&mut self.completions);
    }

    // ---------------------------------------------------------- candidates

    fn next_candidate(&self) -> Option<(TimePs, Action)> {
        let mut best: Option<(TimePs, Action)> = None;
        let mut consider = |t: TimePs, a: Action| {
            let better = match &best {
                None => true,
                Some((bt, ba)) => (t, a.priority()) < (*bt, ba.priority()),
            };
            if better {
                best = Some((t, a));
            }
        };

        let timing = *self.device.timing();
        let geometry = *self.device.geometry();

        for rank in geometry.rank_ids() {
            let due = self.next_ref[rank.0];
            if self.clock >= due {
                // Refresh overdue: close rows, then REF.
                let lo = rank.0 * geometry.banks_per_rank;
                let hi = lo + geometry.banks_per_rank;
                let mut all_ready = true;
                let mut ready_at = self.clock.max(due);
                for b in lo..hi {
                    let bank = self.device.bank(b);
                    if bank.open_row().is_some() {
                        all_ready = false;
                        consider(
                            self.clock.max(bank.earliest_precharge()),
                            Action::MaintPre { bank: b },
                        );
                    } else {
                        ready_at = ready_at.max(bank.earliest_activate());
                    }
                }
                if all_ready {
                    consider(ready_at, Action::Ref { rank });
                }
                // While a rank's refresh is overdue, suppress new work on it.
                continue;
            }
            // Upcoming refresh also schedules itself (so we don't stall
            // waiting for external events when queues are empty).
            consider(due, Action::Ref { rank });

            for b in (rank.0 * geometry.banks_per_rank)..((rank.0 + 1) * geometry.banks_per_rank) {
                self.bank_candidates(b, &timing, &mut consider);
            }
        }
        best
    }

    fn bank_candidates(
        &self,
        b: BankId,
        timing: &mithril_dram::Ddr5Timing,
        consider: &mut impl FnMut(TimePs, Action),
    ) {
        let bq = &self.banks[b];
        let bank = self.device.bank(b);
        let open = bank.open_row();

        // Maintenance: a pending RFM or ARR takes priority over new ACTs.
        if bq.rfm_pending || !bq.arr_queue.is_empty() {
            match open {
                Some(_) => {
                    // Row hits may drain first (RAAMMT slack), but if none
                    // are serviceable we close the row.
                    if let Some(pos) = self.best_hit(bq, open.unwrap()) {
                        if bq.hits_served < self.config.max_row_hits {
                            consider(
                                self.column_time(bank, timing),
                                Action::Column { bank: b, pos },
                            );
                            return;
                        }
                        let _ = pos;
                    }
                    consider(
                        self.clock.max(bank.earliest_precharge()),
                        Action::MaintPre { bank: b },
                    );
                }
                None => {
                    let t = self.clock.max(bank.earliest_activate());
                    if bq.rfm_pending {
                        consider(t, Action::Rfm { bank: b });
                    } else {
                        consider(t, Action::Arr { bank: b });
                    }
                }
            }
            return;
        }

        match open {
            Some(row) => {
                if bq.hits_served < self.config.max_row_hits {
                    if let Some(pos) = self.best_hit(bq, row) {
                        consider(
                            self.column_time(bank, timing),
                            Action::Column { bank: b, pos },
                        );
                        return;
                    }
                }
                // Minimalist-open: no serviceable hit (or hit budget spent):
                // close the row.
                consider(
                    self.clock.max(bank.earliest_precharge()),
                    Action::Pre { bank: b },
                );
            }
            None => {
                if let Some((pos, t, throttled)) = self.best_activation(b, bq) {
                    consider(
                        t,
                        Action::Act {
                            bank: b,
                            pos,
                            throttled,
                        },
                    );
                }
            }
        }
    }

    /// Highest-priority row-hit request position, if any.
    fn best_hit(&self, bq: &BankQueue, row: RowId) -> Option<usize> {
        let mut best: Option<(bool, TimePs, usize)> = None;
        for (i, req) in bq.queue.iter().enumerate() {
            if req.addr.row != row {
                continue;
            }
            let key = (self.is_blacklisted(req.thread), req.arrival, i);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Best request to activate for, with its earliest issue time.
    fn best_activation(&self, b: BankId, bq: &BankQueue) -> Option<(usize, TimePs, bool)> {
        let base = self.device.earliest_activate(b, self.clock);
        let mut best: Option<(TimePs, bool, TimePs, usize, bool)> = None;
        for (i, req) in bq.queue.iter().enumerate() {
            let release =
                self.mitigation
                    .activate_allowed_at(b, req.addr.row, req.thread, self.clock);
            let t = base.max(release);
            let key = (
                t,
                self.is_blacklisted(req.thread),
                req.arrival,
                i,
                release > base,
            );
            if best.is_none_or(|b| (key.0, key.1, key.2, key.3) < (b.0, b.1, b.2, b.3)) {
                best = Some(key);
            }
        }
        best.map(|(t, _, _, i, throttled)| (i, t, throttled))
    }

    fn is_blacklisted(&self, thread: usize) -> bool {
        self.bliss
            .as_ref()
            .is_some_and(|b| b.is_blacklisted(thread))
    }

    /// Earliest time a column command may issue on `bank`, considering the
    /// shared data bus.
    fn column_time(&self, bank: &mithril_dram::Bank, timing: &mithril_dram::Ddr5Timing) -> TimePs {
        let bus_ready = self.bus_free.saturating_sub(timing.tcl);
        self.clock.max(bank.earliest_column()).max(bus_ready)
    }

    // ------------------------------------------------------------ execution

    fn execute(&mut self, action: Action, now: TimePs) {
        match action {
            Action::Ref { rank } => {
                if !self.device.can_refresh_rank(rank, now) {
                    // Scheduled at its due time while banks were still busy
                    // or open; the next pass treats the refresh as overdue
                    // and closes rows first.
                    return;
                }
                let (_, ranges) = self.device.issue_refresh_rank(rank, now);
                for (bank, lo, hi) in ranges {
                    self.mitigation.on_auto_refresh(bank, lo, hi);
                }
                self.next_ref[rank.0] += self.device.timing().trefi;
                self.stats.refs += 1;
            }
            Action::MaintPre { bank } | Action::Pre { bank } => {
                self.device.issue_precharge(bank, now);
            }
            Action::Rfm { bank } => {
                if self.config.rfm_mode == RfmMode::MrrElision {
                    self.stats.mrrs += 1;
                    let pending = self.device.issue_mrr(bank);
                    if !pending {
                        self.device.note_rfm_elided();
                        self.stats.rfm_elisions += 1;
                        self.banks[bank].rfm_pending = false;
                        self.banks[bank].raa = 0;
                        return;
                    }
                }
                let _ = self.device.issue_rfm(bank, now);
                self.stats.rfms += 1;
                self.banks[bank].rfm_pending = false;
                self.banks[bank].raa = 0;
            }
            Action::Arr { bank } => {
                let victims = self.banks[bank]
                    .arr_queue
                    .pop_front()
                    .expect("ARR action requires a queued ARR");
                self.device.issue_arr(bank, &victims, now);
                self.stats.arrs += 1;
            }
            Action::Column { bank, pos } => {
                let req = self.banks[bank]
                    .queue
                    .remove(pos)
                    .expect("valid queue position");
                let done = if req.is_write {
                    self.stats.writes_done += 1;
                    self.device.issue_write(bank, req.addr.row, now)
                } else {
                    self.stats.reads_done += 1;
                    self.device.issue_read(bank, req.addr.row, now)
                };
                // Only columns beyond the first per activation are
                // row-buffer *reuse*; counting the ACT's own column would
                // pin the hit rate at 1.0.
                if self.banks[bank].hits_served > 0 {
                    self.stats.row_hits += 1;
                }
                self.banks[bank].hits_served += 1;
                let timing = self.device.timing();
                self.bus_free = now + timing.tcl + timing.tbl;
                if !req.is_write {
                    self.stats.total_read_latency += done.saturating_sub(req.arrival);
                }
                if let Some(bl) = &mut self.bliss {
                    bl.on_request_served(req.thread, now);
                }
                self.completions.push(Completion {
                    request_id: req.id,
                    thread: req.thread,
                    at: done,
                    is_write: req.is_write,
                });
            }
            Action::Act {
                bank,
                pos,
                throttled,
            } => {
                let req = self.banks[bank].queue[pos];
                self.device.issue_activate(bank, req.addr.row, now);
                self.stats.acts += 1;
                self.banks[bank].hits_served = 0;
                if throttled {
                    self.stats.throttled_acts += 1;
                }
                if self.config.rfm_mode != RfmMode::Disabled {
                    self.banks[bank].raa += 1;
                    if self.banks[bank].raa >= self.config.rfm_th {
                        self.banks[bank].rfm_pending = true;
                    }
                }
                match self
                    .mitigation
                    .on_activate(bank, req.addr.row, req.thread, now)
                {
                    McAction::None => {}
                    McAction::Arr {
                        bank: target,
                        victims,
                    } => {
                        self.banks[target].arr_queue.push_back(victims);
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("clock", &self.clock)
            .field("pending", &self.pending())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::AddressMapping;
    use crate::mitigation::NoMcMitigation;
    use mithril_dram::{Ddr5Timing, Geometry, NoMitigation, PS_PER_MS, PS_PER_US};

    fn controller(config: McConfig) -> (MemoryController, AddressMapping) {
        let geometry = Geometry::default();
        let device = DramDevice::new(geometry, Ddr5Timing::ddr5_4800(), 100_000, 1, |_| {
            Box::new(NoMitigation)
        });
        (
            MemoryController::new(device, config, Box::new(NoMcMitigation)),
            AddressMapping::new(geometry),
        )
    }

    #[test]
    fn single_read_completes_with_act_latency() {
        let (mut mc, map) = controller(McConfig::default());
        let t = Ddr5Timing::ddr5_4800();
        mc.enqueue(MemRequest::read(1, map.map_line(64), 0, 0));
        let done = mc.advance_until(PS_PER_US);
        assert_eq!(done.len(), 1);
        // ACT at 0, RD at tRCD, data at tRCD + tCL + tBL.
        assert_eq!(done[0].at, t.trcd + t.tcl + t.tbl);
    }

    #[test]
    fn row_hits_are_serviced_back_to_back() {
        let (mut mc, _) = controller(McConfig::default());
        // Two lines in the same row, same bank: second is a row hit.
        let a = crate::mapping::MappedAddr {
            channel: mithril_dram::ChannelId(0),
            bank: 0,
            row: 10,
            col: 0,
        };
        let b = crate::mapping::MappedAddr {
            channel: mithril_dram::ChannelId(0),
            bank: 0,
            row: 10,
            col: 1,
        };
        mc.enqueue(MemRequest::read(1, a, 0, 0));
        mc.enqueue(MemRequest::read(2, b, 0, 0));
        let done = mc.advance_until(PS_PER_US);
        assert_eq!(done.len(), 2);
        assert_eq!(mc.stats().acts, 1, "second access must be a row hit");
    }

    #[test]
    fn minimalist_open_caps_row_hits() {
        let (mut mc, _) = controller(McConfig::default());
        for i in 0..6u64 {
            let addr = crate::mapping::MappedAddr {
                channel: mithril_dram::ChannelId(0),
                bank: 0,
                row: 10,
                col: i,
            };
            mc.enqueue(MemRequest::read(i, addr, 0, 0));
        }
        let done = mc.advance_until(10 * PS_PER_US);
        assert_eq!(done.len(), 6);
        // 6 same-row requests with max 4 hits per activation: 2 ACTs.
        assert_eq!(mc.stats().acts, 2);
    }

    #[test]
    fn different_rows_conflict_in_bank() {
        let (mut mc, _) = controller(McConfig::default());
        let a = crate::mapping::MappedAddr {
            channel: mithril_dram::ChannelId(0),
            bank: 0,
            row: 10,
            col: 0,
        };
        let b = crate::mapping::MappedAddr {
            channel: mithril_dram::ChannelId(0),
            bank: 0,
            row: 20,
            col: 0,
        };
        mc.enqueue(MemRequest::read(1, a, 0, 0));
        mc.enqueue(MemRequest::read(2, b, 0, 0));
        let done = mc.advance_until(PS_PER_US);
        assert_eq!(done.len(), 2);
        assert_eq!(mc.stats().acts, 2);
        // Second completes after a full row cycle.
        assert!(done[1].at > Ddr5Timing::ddr5_4800().trc);
    }

    #[test]
    fn auto_refresh_happens_every_trefi() {
        let (mut mc, _) = controller(McConfig::default());
        let t = Ddr5Timing::ddr5_4800();
        mc.advance_until(10 * t.trefi + t.trefi / 2);
        assert_eq!(mc.stats().refs, 10);
    }

    #[test]
    fn rfm_issued_every_rfmth_acts() {
        let cfg = McConfig {
            rfm_mode: RfmMode::Standard,
            rfm_th: 4,
            ..Default::default()
        };
        let (mut mc, _) = controller(cfg);
        // 8 activations to bank 0 (different rows → all ACTs).
        for i in 0..8u64 {
            let addr = crate::mapping::MappedAddr {
                channel: mithril_dram::ChannelId(0),
                bank: 0,
                row: 10 + i,
                col: 0,
            };
            mc.enqueue(MemRequest::read(i, addr, 0, 0));
        }
        let done = mc.advance_until(PS_PER_MS);
        assert_eq!(done.len(), 8);
        assert_eq!(mc.stats().acts, 8);
        assert_eq!(mc.stats().rfms, 2, "RAA reaches 4 twice");
    }

    #[test]
    fn mrr_elision_skips_rfm_for_idle_engine() {
        // NoMitigation reports refresh_pending() = false → every RFM elided.
        let cfg = McConfig {
            rfm_mode: RfmMode::MrrElision,
            rfm_th: 4,
            ..Default::default()
        };
        let (mut mc, _) = controller(cfg);
        for i in 0..8u64 {
            let addr = crate::mapping::MappedAddr {
                channel: mithril_dram::ChannelId(0),
                bank: 0,
                row: 10 + i,
                col: 0,
            };
            mc.enqueue(MemRequest::read(i, addr, 0, 0));
        }
        mc.advance_until(PS_PER_MS);
        assert_eq!(mc.stats().rfms, 0);
        assert_eq!(mc.stats().rfm_elisions, 2);
        assert_eq!(mc.stats().mrrs, 2);
    }

    #[test]
    fn arr_requests_execute_with_priority() {
        /// Mitigation that ARRs the neighbours of every activation.
        struct ArrEvery;
        impl McMitigation for ArrEvery {
            fn on_activate(
                &mut self,
                bank: BankId,
                row: RowId,
                _thread: usize,
                _now: TimePs,
            ) -> McAction {
                McAction::Arr {
                    bank,
                    victims: vec![row.saturating_sub(1), row + 1],
                }
            }
            fn name(&self) -> &'static str {
                "arr-every"
            }
        }
        let geometry = Geometry::default();
        let device = DramDevice::new(geometry, Ddr5Timing::ddr5_4800(), 100_000, 1, |_| {
            Box::new(NoMitigation)
        });
        let mut mc = MemoryController::new(device, McConfig::default(), Box::new(ArrEvery));
        let addr = crate::mapping::MappedAddr {
            channel: mithril_dram::ChannelId(0),
            bank: 3,
            row: 100,
            col: 0,
        };
        mc.enqueue(MemRequest::read(1, addr, 0, 0));
        mc.advance_until(PS_PER_US);
        assert_eq!(mc.stats().arrs, 1);
        // The oracle saw the preventive refresh of both neighbours.
        assert_eq!(mc.device().oracle(3).disturbance(99), 0);
        assert_eq!(mc.device().oracle(3).disturbance(101), 0);
        assert_eq!(mc.device().counters().preventive_rows, 2);
    }

    #[test]
    fn throttling_mitigation_delays_acts() {
        /// Delays every ACT of thread 0 by 1 µs.
        struct DelayThread0;
        impl McMitigation for DelayThread0 {
            fn on_activate(
                &mut self,
                _bank: BankId,
                _row: RowId,
                _thread: usize,
                _now: TimePs,
            ) -> McAction {
                McAction::None
            }
            fn activate_allowed_at(
                &self,
                _bank: BankId,
                _row: RowId,
                thread: usize,
                now: TimePs,
            ) -> TimePs {
                if thread == 0 {
                    now + PS_PER_US
                } else {
                    now
                }
            }
            fn name(&self) -> &'static str {
                "delay-thread0"
            }
        }
        let geometry = Geometry::default();
        let device = DramDevice::new(geometry, Ddr5Timing::ddr5_4800(), 100_000, 1, |_| {
            Box::new(NoMitigation)
        });
        let mut mc = MemoryController::new(device, McConfig::default(), Box::new(DelayThread0));
        let a = crate::mapping::MappedAddr {
            channel: mithril_dram::ChannelId(0),
            bank: 0,
            row: 1,
            col: 0,
        };
        let b = crate::mapping::MappedAddr {
            channel: mithril_dram::ChannelId(0),
            bank: 1,
            row: 2,
            col: 0,
        };
        mc.enqueue(MemRequest::read(1, a, 0, 0));
        mc.enqueue(MemRequest::read(2, b, 1, 0));
        let done = mc.advance_until(10 * PS_PER_US);
        assert_eq!(done.len(), 2);
        let t0 = done.iter().find(|c| c.thread == 0).unwrap();
        let t1 = done.iter().find(|c| c.thread == 1).unwrap();
        assert!(t0.at > PS_PER_US, "thread 0 must be throttled");
        assert!(t1.at < PS_PER_US, "thread 1 must not be throttled");
        assert_eq!(mc.stats().throttled_acts, 1);
    }

    #[test]
    fn bliss_blacklists_streaming_thread() {
        let (mut mc, _) = controller(McConfig::default());
        // Thread 0 floods bank 0 with row hits; thread 1 queues one
        // request behind them on the same bank, different row.
        for i in 0..4u64 {
            let addr = crate::mapping::MappedAddr {
                channel: mithril_dram::ChannelId(0),
                bank: 0,
                row: 10,
                col: i,
            };
            mc.enqueue(MemRequest::read(i, addr, 0, 0));
        }
        for i in 0..4u64 {
            let addr = crate::mapping::MappedAddr {
                channel: mithril_dram::ChannelId(0),
                bank: 0,
                row: 10,
                col: 4 + i,
            };
            mc.enqueue(MemRequest::read(100 + i, addr, 0, 0));
        }
        let addr1 = crate::mapping::MappedAddr {
            channel: mithril_dram::ChannelId(0),
            bank: 0,
            row: 20,
            col: 0,
        };
        mc.enqueue(MemRequest::read(999, addr1, 1, 0));
        let done = mc.advance_until(PS_PER_MS);
        assert_eq!(done.len(), 9);
        // After 4 consecutive services, thread 0 is blacklisted and thread
        // 1's row-miss request wins the next activation.
        let pos_t1 = done.iter().position(|c| c.request_id == 999).unwrap();
        assert!(
            pos_t1 < 8,
            "blacklisted stream must not starve thread 1 (pos {pos_t1})"
        );
    }

    #[test]
    fn pending_counts_queued_requests() {
        let (mut mc, map) = controller(McConfig::default());
        mc.enqueue(MemRequest::read(1, map.map_line(0), 0, 0));
        mc.enqueue(MemRequest::read(2, map.map_line(1), 0, 0));
        assert_eq!(mc.pending(), 2);
        mc.advance_until(PS_PER_US);
        assert_eq!(mc.pending(), 0);
    }

    #[test]
    fn writes_complete_and_count() {
        let (mut mc, map) = controller(McConfig::default());
        mc.enqueue(MemRequest::write(1, map.map_line(0), 0, 0));
        let done = mc.advance_until(PS_PER_US);
        assert_eq!(done.len(), 1);
        assert!(done[0].is_write);
        assert_eq!(mc.stats().writes_done, 1);
    }
}
