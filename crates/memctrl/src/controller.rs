//! The memory controller proper: queues, scheduling, refresh and RFM issue.
//!
//! The controller advances an event-driven command loop: at each step it
//! finds the earliest legal action across banks (refresh, RFM, ARR, a
//! row-hit column command, a page-policy precharge, or an activation) and
//! executes the globally earliest one. Priorities at equal time follow
//! maintenance-first order (REF > RFM > ARR > column > PRE > ACT), which
//! guarantees forward progress and models refresh/RFM head-of-line blocking
//! — the mechanism behind Mithril's performance overhead (paper Fig. 9/10).
//!
//! Two scheduler cores implement the same decision function
//! ([`SchedulerKind`]):
//!
//! * **Event queue** (default): per-bank candidate events cached in flat
//!   per-bank lanes, recomputed only for banks whose state changed since
//!   the last command (dirty-bitset invalidation). Global constraints that
//!   slide with time — the controller clock, the shared data bus, rank
//!   tRRD/tFAW — are applied as clamps at selection time so cached
//!   candidates stay valid without recomputation.
//! * **Naive rescan**: the original O(banks) full enumeration per command,
//!   kept as the reference implementation for differential testing
//!   (`tests/event_core_diff.rs`).
//!
//! Both cores produce byte-identical command streams; see ARCHITECTURE.md
//! ("Event-driven controller core") for the decision-identity argument.

use std::collections::VecDeque;

use mithril_dram::{BankId, DramDevice, FaultStats, RankId, RowId, TimePs};
use mithril_obs::{
    Event, EventSink, LaneCause, LatencyHistogram, NullSink, PerCore, TrackerObservation,
};

use crate::bliss::{Bliss, BlissConfig};
use crate::mitigation::{McAction, McMitigation};
use crate::qos::{QosPolicy, QosState, QosStats};
use crate::request::MemRequest;

/// How the controller drives the RFM interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RfmMode {
    /// RFM disabled (pre-DDR5 behaviour, or MC-side-only schemes).
    Disabled,
    /// Standard RFM: issue to a bank whenever its RAA counter reaches
    /// RFMTH (paper Fig. 1(b)).
    Standard,
    /// Mithril+: poll the mode-register flag first (MRR) and elide the RFM
    /// when the DRAM-side engine reports nothing pending (Section V-B).
    MrrElision,
}

/// Which scheduling core drives the command loop. Both cores are
/// decision-identical; they differ only in how the next command is found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Event-driven core: cached per-bank candidates with incremental
    /// dirty-bitset invalidation. O(changed banks) per command.
    #[default]
    EventQueue,
    /// Full per-command rescan of every bank — the original reference
    /// implementation, retained for differential testing.
    NaiveRescan,
}

/// Controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// RFM issue policy.
    pub rfm_mode: RfmMode,
    /// RAA threshold at which an RFM is due.
    pub rfm_th: u64,
    /// Minimalist-open page policy: max row hits per activation.
    pub max_row_hits: u32,
    /// BLISS scheduling, or pure FR-FCFS when `None`.
    pub bliss: Option<BlissConfig>,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            rfm_mode: RfmMode::Disabled,
            rfm_th: 64,
            max_row_hits: 4,
            bliss: Some(BlissConfig::default()),
        }
    }
}

/// A serviced request, reported back to the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The id the caller tagged the request with.
    pub request_id: u64,
    /// Originating thread.
    pub thread: usize,
    /// Time the data burst (read) or write commit finished.
    pub at: TimePs,
    /// Whether this was a writeback.
    pub is_write: bool,
}

/// One core's share of a controller's activity — the per-tenant
/// attribution the QoS roadmap item needs. Every field is attributed to
/// the *issuing* core of the request that caused the command: latency to
/// the request that completed, RFM/mitigation triggers to the ACT whose
/// activation crossed the threshold (the "who is hammering" signal), not
/// to the bank cadence that later issued the command.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// ACTs issued for this core's requests.
    pub acts: u64,
    /// Demand reads completed for this core.
    pub reads_done: u64,
    /// Writebacks completed for this core.
    pub writes_done: u64,
    /// ACTs of this core delayed by a throttling mitigation.
    pub throttled_acts: u64,
    /// RAA-threshold crossings caused by this core's ACTs (each arms one
    /// pending RFM on the bank).
    pub rfm_triggers: u64,
    /// Mitigation-engine reactions (queued ARRs) provoked by this core's
    /// ACTs.
    pub mitigation_triggers: u64,
    /// Read-latency histogram of this core's completed reads,
    /// picoseconds.
    pub read_latency: LatencyHistogram,
}

impl CoreStats {
    /// Folds another controller's share of the same core into `self`
    /// (bucket-wise for the histogram, additive otherwise) — associative
    /// and commutative, so cross-channel roll-up order does not matter.
    pub fn merge(&mut self, other: &CoreStats) {
        self.acts += other.acts;
        self.reads_done += other.reads_done;
        self.writes_done += other.writes_done;
        self.throttled_acts += other.throttled_acts;
        self.rfm_triggers += other.rfm_triggers;
        self.mitigation_triggers += other.mitigation_triggers;
        self.read_latency.merge(&other.read_latency);
    }
}

/// Aggregate controller statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct McStats {
    /// Demand reads serviced.
    pub reads_done: u64,
    /// Writebacks serviced.
    pub writes_done: u64,
    /// Sum of read latencies (completion − arrival), for average latency.
    pub total_read_latency: TimePs,
    /// ACT commands issued.
    pub acts: u64,
    /// Column commands that reused an already-open row (i.e. columns
    /// beyond the first one served by each activation).
    pub row_hits: u64,
    /// Rank REF commands issued.
    pub refs: u64,
    /// RFM commands issued.
    pub rfms: u64,
    /// RFMs elided after a clear MRR flag (Mithril+).
    pub rfm_elisions: u64,
    /// MRR polls issued.
    pub mrrs: u64,
    /// ARR commands issued on behalf of MC-side schemes.
    pub arrs: u64,
    /// ACTs whose issue was delayed by a throttling mitigation.
    pub throttled_acts: u64,
    /// Read-latency distribution (completion − arrival, picoseconds).
    /// The histogram — not [`total_read_latency`](McStats::total_read_latency)
    /// — is the source of truth for latency reporting; the sum survives
    /// only to feed the legacy average field.
    pub read_latency: LatencyHistogram,
    /// Writeback-latency distribution (commit − arrival, picoseconds).
    pub write_latency: LatencyHistogram,
    /// Per-issuing-core attribution of the counters above.
    pub per_core: PerCore<CoreStats>,
}

impl McStats {
    /// Average read latency in picoseconds.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_done == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads_done as f64
        }
    }

    /// Row-buffer hit rate: the fraction of column commands that reused
    /// an open row instead of paying for the activation that opened it.
    /// 0.0 = every column needed its own ACT (no locality); values near
    /// 1.0 mean long same-row bursts.
    pub fn row_hit_rate(&self) -> f64 {
        let cols = self.reads_done + self.writes_done;
        if cols == 0 {
            0.0
        } else {
            self.row_hits as f64 / cols as f64
        }
    }
}

/// The DRAM command a [`CommandRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// Rank auto-refresh.
    Ref,
    /// Precharge issued to clear the way for maintenance (REF/RFM/ARR).
    MaintPre,
    /// RFM issued to the bank.
    Rfm,
    /// RFM elided after a clear MRR poll (Mithril+).
    RfmElided,
    /// ARR on behalf of an MC-side mitigation (`row` = victim count).
    Arr,
    /// Column read.
    Read,
    /// Column write.
    Write,
    /// Page-policy precharge.
    Pre,
    /// Row activation.
    Act,
}

/// One issued DRAM command, captured when command recording is enabled
/// via [`MemoryController::record_commands`]. Used by the differential
/// tests to compare the two scheduler cores command-for-command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandRecord {
    /// Issue time.
    pub at: TimePs,
    /// Command type.
    pub kind: CommandKind,
    /// Target flat bank (first bank of the rank for [`CommandKind::Ref`]).
    pub bank: BankId,
    /// Target row; victim count for ARR; 0 where not applicable.
    pub row: RowId,
}

/// Flat per-bank scheduling lane: request queue, page-policy and RFM state,
/// and the cached next-candidate event, packed per bank so the event core's
/// selection scan walks one contiguous array. Hot scheduling fields sit at
/// the front of the struct.
#[derive(Debug, Clone, Default)]
struct BankLane {
    /// Cached candidate base time — *before* the selection-time clamps
    /// (clock, data bus, rank tRRD/tFAW), which slide with time and are
    /// applied in `next_candidate_event`.
    cand_time: TimePs,
    /// Cached candidate kind; `Idle` keeps the bank out of the active set.
    cand: Cand,
    hits_served: u32,
    rfm_pending: bool,
    raa: u64,
    queue: VecDeque<MemRequest>,
    arr_queue: VecDeque<Vec<RowId>>,
}

/// A cached per-bank candidate (the event payload of the event core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Cand {
    /// No serviceable work: bank not in the active set.
    #[default]
    Idle,
    MaintPre,
    Rfm,
    Arr,
    Column {
        pos: u32,
    },
    Pre,
    Act {
        pos: u32,
        throttled: bool,
        /// The throttle release came specifically from the QoS token
        /// bucket (a dry suspect deferred to the window boundary). Carried
        /// in the candidate because it cannot be recomputed at execute
        /// time: by then the window may have rotated and refilled tokens.
        qos_throttled: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Ref {
        rank: RankId,
    },
    MaintPre {
        bank: BankId,
    },
    Rfm {
        bank: BankId,
    },
    Arr {
        bank: BankId,
    },
    Column {
        bank: BankId,
        pos: usize,
    },
    Pre {
        bank: BankId,
    },
    Act {
        bank: BankId,
        pos: usize,
        throttled: bool,
        qos_throttled: bool,
    },
}

const PRIO_REF: u8 = 0;
const PRIO_MAINT_PRE: u8 = 1;
const PRIO_RFM: u8 = 2;
const PRIO_ARR: u8 = 3;
const PRIO_COLUMN: u8 = 4;
const PRIO_PRE: u8 = 5;
const PRIO_ACT: u8 = 6;

impl Action {
    fn priority(&self) -> u8 {
        match self {
            Action::Ref { .. } => PRIO_REF,
            Action::MaintPre { .. } => PRIO_MAINT_PRE,
            Action::Rfm { .. } => PRIO_RFM,
            Action::Arr { .. } => PRIO_ARR,
            Action::Column { .. } => PRIO_COLUMN,
            Action::Pre { .. } => PRIO_PRE,
            Action::Act { .. } => PRIO_ACT,
        }
    }
}

/// What the event-core selection scan picked, resolved to an [`Action`]
/// only once at the end.
#[derive(Debug, Clone, Copy)]
enum Pick {
    Ref(RankId),
    /// Maintenance precharge found by the overdue-refresh rank scan (the
    /// bank's cached candidate is suppressed while its rank is overdue).
    OverduePre(BankId),
    /// The bank's cached candidate.
    Lane(BankId),
}

/// One memory channel's controller, owning its [`DramDevice`].
///
/// Generic over an observability sink `S` (default: the disabled
/// [`NullSink`], under which every `if S::ENABLED` guard folds away and
/// the controller compiles to the un-instrumented hot path). Construct
/// with an enabled sink via [`with_obs`](MemoryController::with_obs).
///
/// See the crate-level example for typical use.
pub struct MemoryController<S: EventSink = NullSink> {
    device: DramDevice,
    config: McConfig,
    scheduler: SchedulerKind,
    mitigation: Box<dyn McMitigation>,
    /// Cached `mitigation.may_throttle() || qos on`: when true, activation
    /// release times can change step to step and every bank recomputes
    /// each step.
    throttling: bool,
    /// Multi-tenant QoS layer (suspect scoring + token-bucket throttle);
    /// `None` under [`QosPolicy::Off`], leaving the controller
    /// entry-by-entry identical to a build without the subsystem.
    qos: Option<QosState>,
    bliss: Option<Bliss>,
    lanes: Vec<BankLane>,
    /// Banks whose cached candidate is stale (bit per flat bank).
    dirty: Vec<u64>,
    /// Banks with a non-`Idle` cached candidate (bit per flat bank).
    active: Vec<u64>,
    next_ref: Vec<TimePs>,
    bus_free: TimePs,
    clock: TimePs,
    stats: McStats,
    completions: Vec<Completion>,
    log: Option<Vec<CommandRecord>>,
    /// The observability sink (zero-sized for [`NullSink`]).
    obs: S,
    /// Per-bank cumulative ACT counts (obs-only; empty when disabled).
    obs_acts_per_bank: Vec<u64>,
    /// Event-core candidate reuses: active lanes considered from cache
    /// during selection scans (obs-only).
    obs_cand_hits: u64,
    /// Event-core candidate recomputations (dirty-lane refreshes,
    /// obs-only).
    obs_cand_invalidations: u64,
}

impl MemoryController {
    /// Creates a controller over `device` with the given MC-side
    /// mitigation (use [`crate::NoMcMitigation`] for DRAM-side schemes)
    /// and the default (event-driven) scheduler core.
    pub fn new(device: DramDevice, config: McConfig, mitigation: Box<dyn McMitigation>) -> Self {
        Self::with_scheduler(device, config, mitigation, SchedulerKind::default())
    }

    /// Like [`new`](MemoryController::new) but with an explicit scheduler
    /// core — `SchedulerKind::NaiveRescan` selects the reference rescan
    /// implementation (differential testing, perf comparison).
    pub fn with_scheduler(
        device: DramDevice,
        config: McConfig,
        mitigation: Box<dyn McMitigation>,
        scheduler: SchedulerKind,
    ) -> Self {
        MemoryController::with_obs(device, config, mitigation, scheduler, NullSink)
    }
}

impl<S: EventSink> MemoryController<S> {
    /// Like [`with_scheduler`](MemoryController::with_scheduler) but with
    /// an explicit observability sink, enabling structured event tracing
    /// on this channel.
    pub fn with_obs(
        device: DramDevice,
        config: McConfig,
        mitigation: Box<dyn McMitigation>,
        scheduler: SchedulerKind,
        obs: S,
    ) -> Self {
        let nbanks = device.geometry().banks_total();
        let nranks = device.geometry().ranks;
        let trefi = device.timing().trefi;
        let words = nbanks.div_ceil(64);
        let throttling = mitigation.may_throttle();
        let mut mc = Self {
            device,
            config,
            scheduler,
            mitigation,
            throttling,
            qos: None,
            bliss: config.bliss.map(Bliss::new),
            lanes: (0..nbanks).map(|_| BankLane::default()).collect(),
            dirty: vec![0; words],
            active: vec![0; words],
            // Stagger rank refreshes to avoid lock-step tRFC stalls.
            next_ref: (0..nranks)
                .map(|r| trefi + (r as TimePs) * (trefi / nranks.max(1) as TimePs))
                .collect(),
            bus_free: 0,
            clock: 0,
            stats: McStats::default(),
            completions: Vec::new(),
            log: None,
            obs,
            obs_acts_per_bank: if S::ENABLED {
                vec![0; nbanks]
            } else {
                Vec::new()
            },
            obs_cand_hits: 0,
            obs_cand_invalidations: 0,
        };
        mc.mark_all_dirty();
        mc
    }

    /// The observability sink.
    pub fn obs(&self) -> &S {
        &self.obs
    }

    /// Mutable access to the observability sink (draining captured
    /// events at the end of a run).
    pub fn obs_mut(&mut self) -> &mut S {
        &mut self.obs
    }

    /// Per-bank cumulative ACT counts. Empty when obs is disabled.
    pub fn obs_bank_acts(&self) -> &[u64] {
        &self.obs_acts_per_bank
    }

    /// Event-core candidate-cache counters: `(hits, invalidations)` —
    /// lanes considered from cache vs. lanes recomputed. Zero when obs is
    /// disabled or under the naive core.
    pub fn obs_cand_counters(&self) -> (u64, u64) {
        (self.obs_cand_hits, self.obs_cand_invalidations)
    }

    /// Total queued requests, as sampled by the observability probes.
    pub fn queue_depth(&self) -> u64 {
        self.pending() as u64
    }

    /// Aggregate snapshot of every bank engine's tracker structure.
    pub fn observe_trackers(&self) -> TrackerObservation {
        self.device.observe_trackers()
    }

    /// O(1) snapshot of one bank engine's tracker (all-zero when the
    /// engine exposes none).
    #[inline]
    fn tracker_obs(&self, bank: BankId) -> TrackerObservation {
        self.device
            .engine(bank)
            .observe_tracker()
            .unwrap_or_default()
    }

    /// One bank engine's fault counters (all-zero when not fault-wrapped).
    #[inline]
    fn bank_fault_stats(&self, bank: BankId) -> FaultStats {
        self.device.engine(bank).fault_stats().unwrap_or_default()
    }

    /// Emits a lane-invalidation event (obs-on builds only).
    #[inline]
    fn obs_lane(&mut self, at: TimePs, bank: BankId, cause: LaneCause) {
        if S::ENABLED {
            self.obs.emit(
                at,
                Event::LaneInvalidate {
                    bank: bank as u32,
                    cause,
                },
            );
        }
    }

    /// Emits fault inject/detect/repair events for any counter movement
    /// on `bank`'s engine since `pre` (obs-on builds only; call sites
    /// guard with `S::ENABLED`).
    fn obs_fault_deltas(&mut self, at: TimePs, bank: BankId, pre: FaultStats) {
        let post = self.bank_fault_stats(bank);
        let injected = post.injected() - pre.injected();
        if injected > 0 {
            self.obs.emit(
                at,
                Event::FaultInject {
                    bank: bank as u32,
                    count: injected,
                },
            );
        }
        if post.scrub_detections > pre.scrub_detections {
            self.obs.emit(
                at,
                Event::FaultDetect {
                    bank: bank as u32,
                    count: post.scrub_detections - pre.scrub_detections,
                },
            );
        }
        if post.repairs > pre.repairs {
            self.obs.emit(
                at,
                Event::FaultRepair {
                    bank: bank as u32,
                    count: post.repairs - pre.repairs,
                },
            );
        }
    }

    /// The scheduler core driving this controller.
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// Enables or disables command-stream recording (differential tests).
    pub fn record_commands(&mut self, on: bool) {
        self.log = if on { Some(Vec::new()) } else { None };
    }

    /// Takes the recorded command stream, leaving recording enabled.
    pub fn take_command_log(&mut self) -> Vec<CommandRecord> {
        self.log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Queues a request.
    ///
    /// # Panics
    ///
    /// Panics if the request's bank is out of range.
    pub fn enqueue(&mut self, req: MemRequest) {
        assert!(
            req.addr.bank < self.lanes.len(),
            "bank {} out of range",
            req.addr.bank
        );
        self.mark_dirty(req.addr.bank);
        self.obs_lane(self.clock, req.addr.bank, LaneCause::Enqueue);
        self.lanes[req.addr.bank].queue.push_back(req);
    }

    /// Total queued (not yet serviced) requests.
    pub fn pending(&self) -> usize {
        self.lanes.iter().map(|b| b.queue.len()).sum()
    }

    /// Current controller clock.
    pub fn now(&self) -> TimePs {
        self.clock
    }

    /// Controller statistics (borrowed: `McStats` now carries latency
    /// histograms and per-core attribution, so it is no longer `Copy`).
    pub fn stats(&self) -> &McStats {
        &self.stats
    }

    /// The DRAM device behind this controller.
    pub fn device(&self) -> &DramDevice {
        &self.device
    }

    /// Consumes the controller, returning the device (for end-of-run
    /// inspection of oracles and energy counters).
    pub fn into_device(self) -> DramDevice {
        self.device
    }

    /// The MC-side mitigation.
    pub fn mitigation(&self) -> &dyn McMitigation {
        self.mitigation.as_ref()
    }

    /// Installs (or removes) the multi-tenant QoS policy. With any policy
    /// other than [`QosPolicy::Off`] the controller enters throttling
    /// mode: activation release times can change between steps, so both
    /// scheduler cores recompute every bank each step — the conservative
    /// fallback that keeps them decision-identical under any throttle.
    ///
    /// Call before advancing the controller; switching policies mid-run
    /// is supported but resets no QoS state.
    pub fn set_qos(&mut self, policy: QosPolicy) {
        self.qos = QosState::new(policy);
        self.throttling = self.mitigation.may_throttle() || self.qos.is_some();
        self.mark_all_dirty();
    }

    /// Snapshot of the QoS layer's bookkeeping; `None` when QoS is off,
    /// so QoS-off reports carry no QoS section at all.
    pub fn qos_stats(&self) -> Option<QosStats> {
        self.qos.as_ref().map(|q| q.stats())
    }

    /// Advances the command loop until no action can issue at or before
    /// `end`, returning all completions produced.
    #[deprecated(
        since = "0.1.0",
        note = "allocates a Vec per call; use `advance_until_into` with a reused buffer"
    )]
    pub fn advance_until(&mut self, end: TimePs) -> Vec<Completion> {
        let mut out = Vec::new();
        self.advance_until_into(end, &mut out);
        out
    }

    /// Advances the command loop until no action can issue at or before
    /// `end`, appending completions to a caller-owned buffer so a
    /// simulation loop can reuse one `Vec` across epochs.
    ///
    /// The controller clock tracks the last executed command, *not* `end`:
    /// callers may interleave `enqueue`/`advance_until_into` at the same
    /// fence repeatedly (the simulator's intra-epoch relaxation), and
    /// requests arriving between calls are scheduled at their natural
    /// times rather than being quantized to the fence.
    pub fn advance_until_into(&mut self, end: TimePs, out: &mut Vec<Completion>) {
        match self.scheduler {
            SchedulerKind::EventQueue => self.advance_event(end),
            SchedulerKind::NaiveRescan => self.advance_naive(end),
        }
        out.append(&mut self.completions);
    }

    fn advance_naive(&mut self, end: TimePs) {
        loop {
            match self.next_candidate() {
                Some((t, action)) if t <= end => {
                    self.clock = t;
                    if let Some(b) = &mut self.bliss {
                        b.tick(t);
                    }
                    self.execute(action, t);
                }
                _ => break,
            }
        }
    }

    fn advance_event(&mut self, end: TimePs) {
        loop {
            match self.next_candidate_event() {
                Some((t, action)) if t <= end => {
                    self.clock = t;
                    let cleared = match &mut self.bliss {
                        Some(b) => b.tick(t),
                        None => false,
                    };
                    if cleared {
                        // Blacklist changes reorder request priorities on
                        // every bank.
                        self.mark_all_dirty();
                        if S::ENABLED {
                            self.obs.emit(t, Event::BlissClear);
                        }
                    }
                    self.execute(action, t);
                }
                _ => break,
            }
        }
    }

    // --------------------------------------------------- event-core bitsets

    #[inline]
    fn mark_dirty(&mut self, b: BankId) {
        self.dirty[b >> 6] |= 1u64 << (b & 63);
    }

    fn mark_dirty_range(&mut self, lo: BankId, hi: BankId) {
        for b in lo..hi {
            self.mark_dirty(b);
        }
    }

    fn mark_all_dirty(&mut self) {
        for w in &mut self.dirty {
            *w = !0;
        }
        let tail = self.lanes.len() & 63;
        if tail != 0 {
            let w = self.dirty.len() - 1;
            self.dirty[w] = (1u64 << tail) - 1;
        }
    }

    /// Recomputes the cached candidate of every dirty bank and clears the
    /// dirty set.
    fn refresh_dirty_candidates(&mut self) {
        for w in 0..self.dirty.len() {
            let mut bits = self.dirty[w];
            if bits == 0 {
                continue;
            }
            self.dirty[w] = 0;
            while bits != 0 {
                let b = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if S::ENABLED {
                    self.obs_cand_invalidations += 1;
                }
                self.recompute_lane(b);
            }
        }
    }

    /// Recomputes bank `b`'s cached candidate. Mirrors the decision logic
    /// of `bank_candidates` exactly, but stores *base* times: constraints
    /// that slide with the clock (clock itself, the data bus, rank
    /// tRRD/tFAW, throttle releases) are left to selection-time clamps —
    /// except in throttling mode, where the release time is folded in here
    /// because every bank is recomputed each step anyway.
    fn recompute_lane(&mut self, b: BankId) {
        let bank = self.device.bank(b);
        let open = bank.open_row();
        let lane = &self.lanes[b];
        let (cand, time) = if lane.rfm_pending || !lane.arr_queue.is_empty() {
            match open {
                Some(row) => match self.best_hit(lane, row) {
                    // Row hits may drain first (RAAMMT slack), but if none
                    // are serviceable we close the row for maintenance.
                    Some(pos) if lane.hits_served < self.config.max_row_hits => {
                        (Cand::Column { pos: pos as u32 }, bank.earliest_column())
                    }
                    _ => (Cand::MaintPre, bank.earliest_precharge()),
                },
                None => {
                    let t = bank.earliest_activate();
                    if lane.rfm_pending {
                        (Cand::Rfm, t)
                    } else {
                        (Cand::Arr, t)
                    }
                }
            }
        } else {
            match open {
                Some(row) => {
                    let hit = if lane.hits_served < self.config.max_row_hits {
                        self.best_hit(lane, row)
                    } else {
                        None
                    };
                    match hit {
                        Some(pos) => (Cand::Column { pos: pos as u32 }, bank.earliest_column()),
                        // Minimalist-open: no serviceable hit (or hit
                        // budget spent): close the row.
                        None => (Cand::Pre, bank.earliest_precharge()),
                    }
                }
                None => {
                    if lane.queue.is_empty() {
                        (Cand::Idle, 0)
                    } else if self.throttling {
                        let (pos, t, throttled, qos_throttled) = self
                            .best_activation(b, lane)
                            .expect("non-empty queue yields an activation");
                        (
                            Cand::Act {
                                pos: pos as u32,
                                throttled,
                                qos_throttled,
                            },
                            t,
                        )
                    } else {
                        // Without throttling every queued request releases
                        // at `now`, so the FR-FCFS order is independent of
                        // the activation time: (blacklisted, arrival, pos).
                        let pos = self
                            .best_act_stable(lane)
                            .expect("non-empty queue yields an activation");
                        (
                            Cand::Act {
                                pos: pos as u32,
                                throttled: false,
                                qos_throttled: false,
                            },
                            bank.earliest_activate(),
                        )
                    }
                }
            }
        };
        let word = b >> 6;
        let bit = 1u64 << (b & 63);
        let lane = &mut self.lanes[b];
        lane.cand = cand;
        lane.cand_time = time;
        if cand == Cand::Idle {
            self.active[word] &= !bit;
        } else {
            self.active[word] |= bit;
        }
    }

    /// The event-core selection scan: refresh stale candidates, then take
    /// the minimum over (time, priority, flat index) of per-rank refresh
    /// events and active banks' cached candidates, applying the
    /// selection-time clamps. The key order equals the naive scan's
    /// first-wins enumeration order (see ARCHITECTURE.md), so both cores
    /// pick the same action.
    fn next_candidate_event(&mut self) -> Option<(TimePs, Action)> {
        if self.throttling {
            // Throttle releases slide with the clock (`now + delay`
            // mitigations) or flip with executed commands (QoS token
            // buckets), so cached activation candidates go stale every
            // step.
            self.mark_all_dirty();
            self.obs_lane(self.clock, 0, LaneCause::Throttle);
        }
        self.refresh_dirty_candidates();

        let geometry = *self.device.geometry();
        let timing = *self.device.timing();
        let clock = self.clock;
        let bus_ready = self.bus_free.saturating_sub(timing.tcl);

        let mut best: Option<(TimePs, u8, usize)> = None;
        let mut pick = Pick::Lane(0);
        macro_rules! consider {
            ($t:expr, $prio:expr, $idx:expr, $pick:expr) => {
                let key = ($t, $prio, $idx);
                if best.is_none_or(|bk| key < bk) {
                    best = Some(key);
                    pick = $pick;
                }
            };
        }

        for rank in geometry.rank_ids() {
            let lo = rank.0 * geometry.banks_per_rank;
            let hi = lo + geometry.banks_per_rank;
            let due = self.next_ref[rank.0];
            if clock >= due {
                // Refresh overdue: close rows, then REF. This is a fresh
                // per-bank scan (once per tREFI per rank — rare); cached
                // candidates on the rank are suppressed, matching the
                // naive core's "no new work while overdue" rule.
                let mut all_ready = true;
                let mut ready_at = clock.max(due);
                for b in lo..hi {
                    let bank = self.device.bank(b);
                    if bank.open_row().is_some() {
                        all_ready = false;
                        let t = clock.max(bank.earliest_precharge());
                        consider!(t, PRIO_MAINT_PRE, b, Pick::OverduePre(b));
                    } else {
                        ready_at = ready_at.max(bank.earliest_activate());
                    }
                }
                if all_ready {
                    consider!(ready_at, PRIO_REF, lo, Pick::Ref(rank));
                }
                continue;
            }
            // Upcoming refresh also schedules itself (so we don't stall
            // waiting for external events when queues are empty).
            consider!(due, PRIO_REF, lo, Pick::Ref(rank));

            // Rank-wide ACT floor (tRRD / tFAW): applied here instead of
            // invalidating every sibling bank on each ACT.
            let rank_floor = self.device.earliest_rank_activate(rank, clock);

            let wlo = lo >> 6;
            let whi = (hi - 1) >> 6;
            for w in wlo..=whi {
                let mut bits = self.active[w];
                if w == wlo {
                    bits &= !0u64 << (lo & 63);
                }
                let top = hi & 63;
                if w == whi && top != 0 {
                    bits &= (1u64 << top) - 1;
                }
                while bits != 0 {
                    let b = (w << 6) + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if S::ENABLED {
                        self.obs_cand_hits += 1;
                    }
                    let lane = &self.lanes[b];
                    let (t, prio) = match lane.cand {
                        Cand::Idle => continue,
                        Cand::MaintPre => (clock.max(lane.cand_time), PRIO_MAINT_PRE),
                        Cand::Rfm => (clock.max(lane.cand_time), PRIO_RFM),
                        Cand::Arr => (clock.max(lane.cand_time), PRIO_ARR),
                        Cand::Column { .. } => {
                            (clock.max(lane.cand_time).max(bus_ready), PRIO_COLUMN)
                        }
                        Cand::Pre => (clock.max(lane.cand_time), PRIO_PRE),
                        Cand::Act { .. } => (clock.max(lane.cand_time).max(rank_floor), PRIO_ACT),
                    };
                    consider!(t, prio, b, Pick::Lane(b));
                }
            }
        }

        let (t, _, _) = best?;
        let action = match pick {
            Pick::Ref(rank) => Action::Ref { rank },
            Pick::OverduePre(bank) => Action::MaintPre { bank },
            Pick::Lane(bank) => match self.lanes[bank].cand {
                Cand::Idle => unreachable!("active bank with idle candidate"),
                Cand::MaintPre => Action::MaintPre { bank },
                Cand::Rfm => Action::Rfm { bank },
                Cand::Arr => Action::Arr { bank },
                Cand::Column { pos } => Action::Column {
                    bank,
                    pos: pos as usize,
                },
                Cand::Pre => Action::Pre { bank },
                Cand::Act {
                    pos,
                    throttled,
                    qos_throttled,
                } => Action::Act {
                    bank,
                    pos: pos as usize,
                    throttled,
                    qos_throttled,
                },
            },
        };
        Some((t, action))
    }

    /// Stable FR-FCFS activation choice when no throttling is in play:
    /// every request releases at `now`, so the naive key
    /// (time, blacklisted, arrival, pos) collapses to
    /// (blacklisted, arrival, pos).
    fn best_act_stable(&self, lane: &BankLane) -> Option<usize> {
        let mut best: Option<(bool, TimePs, usize)> = None;
        for (i, req) in lane.queue.iter().enumerate() {
            let key = (self.is_blacklisted(req.thread), req.arrival, i);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, _, i)| i)
    }

    // ------------------------------------------------ naive-core candidates

    fn next_candidate(&self) -> Option<(TimePs, Action)> {
        let mut best: Option<(TimePs, Action)> = None;
        let mut consider = |t: TimePs, a: Action| {
            let better = match &best {
                None => true,
                Some((bt, ba)) => (t, a.priority()) < (*bt, ba.priority()),
            };
            if better {
                best = Some((t, a));
            }
        };

        let timing = *self.device.timing();
        let geometry = *self.device.geometry();

        for rank in geometry.rank_ids() {
            let due = self.next_ref[rank.0];
            if self.clock >= due {
                // Refresh overdue: close rows, then REF.
                let lo = rank.0 * geometry.banks_per_rank;
                let hi = lo + geometry.banks_per_rank;
                let mut all_ready = true;
                let mut ready_at = self.clock.max(due);
                for b in lo..hi {
                    let bank = self.device.bank(b);
                    if bank.open_row().is_some() {
                        all_ready = false;
                        consider(
                            self.clock.max(bank.earliest_precharge()),
                            Action::MaintPre { bank: b },
                        );
                    } else {
                        ready_at = ready_at.max(bank.earliest_activate());
                    }
                }
                if all_ready {
                    consider(ready_at, Action::Ref { rank });
                }
                // While a rank's refresh is overdue, suppress new work on it.
                continue;
            }
            // Upcoming refresh also schedules itself (so we don't stall
            // waiting for external events when queues are empty).
            consider(due, Action::Ref { rank });

            for b in (rank.0 * geometry.banks_per_rank)..((rank.0 + 1) * geometry.banks_per_rank) {
                self.bank_candidates(b, &timing, &mut consider);
            }
        }
        best
    }

    fn bank_candidates(
        &self,
        b: BankId,
        timing: &mithril_dram::Ddr5Timing,
        consider: &mut impl FnMut(TimePs, Action),
    ) {
        let bq = &self.lanes[b];
        let bank = self.device.bank(b);
        let open = bank.open_row();

        // Maintenance: a pending RFM or ARR takes priority over new ACTs.
        if bq.rfm_pending || !bq.arr_queue.is_empty() {
            match open {
                Some(_) => {
                    // Row hits may drain first (RAAMMT slack), but if none
                    // are serviceable we close the row.
                    if let Some(pos) = self.best_hit(bq, open.unwrap()) {
                        if bq.hits_served < self.config.max_row_hits {
                            consider(
                                self.column_time(bank, timing),
                                Action::Column { bank: b, pos },
                            );
                            return;
                        }
                        let _ = pos;
                    }
                    consider(
                        self.clock.max(bank.earliest_precharge()),
                        Action::MaintPre { bank: b },
                    );
                }
                None => {
                    let t = self.clock.max(bank.earliest_activate());
                    if bq.rfm_pending {
                        consider(t, Action::Rfm { bank: b });
                    } else {
                        consider(t, Action::Arr { bank: b });
                    }
                }
            }
            return;
        }

        match open {
            Some(row) => {
                if bq.hits_served < self.config.max_row_hits {
                    if let Some(pos) = self.best_hit(bq, row) {
                        consider(
                            self.column_time(bank, timing),
                            Action::Column { bank: b, pos },
                        );
                        return;
                    }
                }
                // Minimalist-open: no serviceable hit (or hit budget spent):
                // close the row.
                consider(
                    self.clock.max(bank.earliest_precharge()),
                    Action::Pre { bank: b },
                );
            }
            None => {
                if let Some((pos, t, throttled, qos_throttled)) = self.best_activation(b, bq) {
                    consider(
                        t,
                        Action::Act {
                            bank: b,
                            pos,
                            throttled,
                            qos_throttled,
                        },
                    );
                }
            }
        }
    }

    /// Highest-priority row-hit request position, if any.
    fn best_hit(&self, bq: &BankLane, row: RowId) -> Option<usize> {
        let mut best: Option<(bool, TimePs, usize)> = None;
        for (i, req) in bq.queue.iter().enumerate() {
            if req.addr.row != row {
                continue;
            }
            let key = (self.is_blacklisted(req.thread), req.arrival, i);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Best request to activate for, with its earliest issue time. The two
    /// trailing booleans report whether the winning request's issue was
    /// delayed past the bank's own earliest-activate time (throttled), and
    /// whether the QoS token bucket specifically was the binding delay.
    fn best_activation(&self, b: BankId, bq: &BankLane) -> Option<(usize, TimePs, bool, bool)> {
        let base = self.device.earliest_activate(b, self.clock);
        let mut best: Option<(TimePs, bool, TimePs, usize, bool, bool)> = None;
        for (i, req) in bq.queue.iter().enumerate() {
            let mit_release =
                self.mitigation
                    .activate_allowed_at(b, req.addr.row, req.thread, self.clock);
            let qos_release = self
                .qos
                .as_ref()
                .map_or(0, |q| q.activate_allowed_at(req.thread));
            let release = mit_release.max(qos_release);
            let t = base.max(release);
            let key = (
                t,
                self.is_blacklisted(req.thread),
                req.arrival,
                i,
                release > base,
                qos_release > base.max(mit_release),
            );
            if best.is_none_or(|b| (key.0, key.1, key.2, key.3) < (b.0, b.1, b.2, b.3)) {
                best = Some(key);
            }
        }
        best.map(|(t, _, _, i, throttled, qos_throttled)| (i, t, throttled, qos_throttled))
    }

    fn is_blacklisted(&self, thread: usize) -> bool {
        self.bliss
            .as_ref()
            .is_some_and(|b| b.is_blacklisted(thread))
    }

    /// Earliest time a column command may issue on `bank`, considering the
    /// shared data bus.
    fn column_time(&self, bank: &mithril_dram::Bank, timing: &mithril_dram::Ddr5Timing) -> TimePs {
        let bus_ready = self.bus_free.saturating_sub(timing.tcl);
        self.clock.max(bank.earliest_column()).max(bus_ready)
    }

    // ------------------------------------------------------------ execution

    #[inline]
    fn log_cmd(&mut self, at: TimePs, kind: CommandKind, bank: BankId, row: RowId) {
        if let Some(log) = &mut self.log {
            log.push(CommandRecord {
                at,
                kind,
                bank,
                row,
            });
        }
    }

    fn execute(&mut self, action: Action, now: TimePs) {
        // Rotate QoS score windows before the command's effects land, so
        // both scheduler cores rotate at identical points of the
        // (identical) command stream.
        if let Some(q) = &mut self.qos {
            q.tick(now);
        }
        match action {
            Action::Ref { rank } => {
                if !self.device.can_refresh_rank(rank, now) {
                    // Scheduled at its due time while banks were still busy
                    // or open; the next pass treats the refresh as overdue
                    // and closes rows first.
                    return;
                }
                let (_, ranges) = self.device.issue_refresh_rank(rank, now);
                for (bank, lo, hi) in ranges {
                    self.mitigation.on_auto_refresh(bank, lo, hi);
                }
                self.next_ref[rank.0] += self.device.timing().trefi;
                self.stats.refs += 1;
                let lo = rank.0 * self.device.geometry().banks_per_rank;
                let hi = lo + self.device.geometry().banks_per_rank;
                // Every bank of the rank went busy for tRFC.
                self.mark_dirty_range(lo, hi);
                if S::ENABLED {
                    self.obs.emit(
                        now,
                        Event::Ref {
                            rank: rank.0 as u32,
                            banks: (hi - lo) as u32,
                        },
                    );
                    self.obs_lane(now, lo, LaneCause::RefSegment);
                }
                self.log_cmd(now, CommandKind::Ref, lo, 0);
            }
            Action::MaintPre { bank } | Action::Pre { bank } => {
                self.device.issue_precharge(bank, now);
                self.mark_dirty(bank);
                self.obs_lane(now, bank, LaneCause::Execute);
                let kind = if matches!(action, Action::MaintPre { .. }) {
                    CommandKind::MaintPre
                } else {
                    CommandKind::Pre
                };
                self.log_cmd(now, kind, bank, 0);
            }
            Action::Rfm { bank } => {
                if self.config.rfm_mode == RfmMode::MrrElision {
                    self.stats.mrrs += 1;
                    let pending = self.device.issue_mrr(bank);
                    if !pending {
                        self.device.note_rfm_elided();
                        self.stats.rfm_elisions += 1;
                        self.lanes[bank].rfm_pending = false;
                        self.lanes[bank].raa = 0;
                        self.mark_dirty(bank);
                        if S::ENABLED {
                            self.obs.emit(now, Event::RfmElided { bank: bank as u32 });
                            self.obs_lane(now, bank, LaneCause::Execute);
                        }
                        self.log_cmd(now, CommandKind::RfmElided, bank, 0);
                        return;
                    }
                }
                let pre_faults = if S::ENABLED {
                    self.bank_fault_stats(bank)
                } else {
                    FaultStats::default()
                };
                let (aggressor, victims, skipped) = {
                    let (out, _) = self.device.issue_rfm(bank, now);
                    (
                        out.selected_aggressor,
                        out.refreshed_victims.len() as u32,
                        out.skipped,
                    )
                };
                self.stats.rfms += 1;
                self.lanes[bank].rfm_pending = false;
                self.lanes[bank].raa = 0;
                self.mark_dirty(bank);
                if S::ENABLED {
                    self.obs.emit(
                        now,
                        Event::Rfm {
                            bank: bank as u32,
                            aggressor,
                            victims,
                            skipped,
                        },
                    );
                    self.obs_lane(now, bank, LaneCause::Execute);
                    self.obs_fault_deltas(now, bank, pre_faults);
                }
                self.log_cmd(now, CommandKind::Rfm, bank, 0);
            }
            Action::Arr { bank } => {
                let victims = self.lanes[bank]
                    .arr_queue
                    .pop_front()
                    .expect("ARR action requires a queued ARR");
                self.device.issue_arr(bank, &victims, now);
                self.stats.arrs += 1;
                self.mark_dirty(bank);
                if S::ENABLED {
                    self.obs.emit(
                        now,
                        Event::Arr {
                            bank: bank as u32,
                            victims: victims.len() as u32,
                        },
                    );
                    self.obs_lane(now, bank, LaneCause::Execute);
                }
                self.log_cmd(now, CommandKind::Arr, bank, victims.len() as RowId);
            }
            Action::Column { bank, pos } => {
                let req = self.lanes[bank]
                    .queue
                    .remove(pos)
                    .expect("valid queue position");
                let done = if req.is_write {
                    self.stats.writes_done += 1;
                    self.device.issue_write(bank, req.addr.row, now)
                } else {
                    self.stats.reads_done += 1;
                    self.device.issue_read(bank, req.addr.row, now)
                };
                // Only columns beyond the first per activation are
                // row-buffer *reuse*; counting the ACT's own column would
                // pin the hit rate at 1.0.
                if self.lanes[bank].hits_served > 0 {
                    self.stats.row_hits += 1;
                }
                self.lanes[bank].hits_served += 1;
                let timing = self.device.timing();
                self.bus_free = now + timing.tcl + timing.tbl;
                let latency = done.saturating_sub(req.arrival);
                let core = self.stats.per_core.slot(req.thread);
                if req.is_write {
                    core.writes_done += 1;
                    self.stats.write_latency.record(latency);
                } else {
                    core.reads_done += 1;
                    core.read_latency.record(latency);
                    self.stats.read_latency.record(latency);
                    self.stats.total_read_latency += latency;
                }
                self.mark_dirty(bank);
                self.obs_lane(now, bank, LaneCause::Execute);
                let blacklist_changed = match &mut self.bliss {
                    Some(bl) => bl.on_request_served(req.thread, now),
                    None => false,
                };
                if blacklist_changed {
                    self.mark_all_dirty();
                    self.obs_lane(now, bank, LaneCause::BlissChange);
                }
                self.log_cmd(
                    now,
                    if req.is_write {
                        CommandKind::Write
                    } else {
                        CommandKind::Read
                    },
                    bank,
                    req.addr.row,
                );
                self.completions.push(Completion {
                    request_id: req.id,
                    thread: req.thread,
                    at: done,
                    is_write: req.is_write,
                });
            }
            Action::Act {
                bank,
                pos,
                throttled,
                qos_throttled,
            } => {
                let req = self.lanes[bank].queue[pos];
                let (pre_obs, pre_faults) = if S::ENABLED {
                    (self.tracker_obs(bank), self.bank_fault_stats(bank))
                } else {
                    (TrackerObservation::default(), FaultStats::default())
                };
                self.device.issue_activate(bank, req.addr.row, now);
                self.stats.acts += 1;
                let core = self.stats.per_core.slot(req.thread);
                core.acts += 1;
                self.lanes[bank].hits_served = 0;
                if throttled {
                    self.stats.throttled_acts += 1;
                    core.throttled_acts += 1;
                }
                if let Some(q) = &mut self.qos {
                    q.on_act(req.thread, qos_throttled);
                }
                if self.config.rfm_mode != RfmMode::Disabled {
                    self.lanes[bank].raa += 1;
                    if self.lanes[bank].raa >= self.config.rfm_th && !self.lanes[bank].rfm_pending {
                        self.lanes[bank].rfm_pending = true;
                        // The crossing ACT armed this RFM: charge it to the
                        // issuing core, not to the bank cadence that will
                        // later issue the command.
                        self.stats.per_core.slot(req.thread).rfm_triggers += 1;
                        if let Some(q) = &mut self.qos {
                            q.on_pressure(req.thread);
                        }
                    }
                }
                self.mark_dirty(bank);
                if S::ENABLED {
                    self.obs_acts_per_bank[bank] += 1;
                    self.obs.emit(
                        now,
                        Event::Act {
                            bank: bank as u32,
                            row: req.addr.row,
                        },
                    );
                    self.obs_lane(now, bank, LaneCause::Execute);
                    let post = self.tracker_obs(bank);
                    if post.evictions > pre_obs.evictions {
                        self.obs.emit(
                            now,
                            Event::TableEvict {
                                bank: bank as u32,
                                evictions: post.evictions - pre_obs.evictions,
                            },
                        );
                    }
                    if post.invalidations > pre_obs.invalidations {
                        self.obs.emit(
                            now,
                            Event::TableInvalidate {
                                bank: bank as u32,
                                invalidations: post.invalidations - pre_obs.invalidations,
                            },
                        );
                    }
                    self.obs_fault_deltas(now, bank, pre_faults);
                }
                self.log_cmd(now, CommandKind::Act, bank, req.addr.row);
                match self
                    .mitigation
                    .on_activate(bank, req.addr.row, req.thread, now)
                {
                    McAction::None => {}
                    McAction::Arr {
                        bank: target,
                        victims,
                    } => {
                        // The reacting engine saw this core's ACT: the
                        // trigger is attributed to the hammering core even
                        // though the ARR lands on `target`'s victims.
                        self.stats.per_core.slot(req.thread).mitigation_triggers += 1;
                        if let Some(q) = &mut self.qos {
                            q.on_pressure(req.thread);
                        }
                        if S::ENABLED {
                            self.obs.emit(
                                now,
                                Event::MitigationTrigger {
                                    bank: target as u32,
                                    victims: victims.len() as u32,
                                },
                            );
                            self.obs_lane(now, target, LaneCause::ArrTarget);
                        }
                        self.lanes[target].arr_queue.push_back(victims);
                        self.mark_dirty(target);
                    }
                }
            }
        }
    }
}

impl<S: EventSink> std::fmt::Debug for MemoryController<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("clock", &self.clock)
            .field("scheduler", &self.scheduler)
            .field("pending", &self.pending())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::AddressMapping;
    use crate::mitigation::NoMcMitigation;
    use mithril_dram::{Ddr5Timing, Geometry, NoMitigation, PS_PER_MS, PS_PER_US};

    fn controller_with(
        config: McConfig,
        kind: SchedulerKind,
    ) -> (MemoryController, AddressMapping) {
        let geometry = Geometry::default();
        let device = DramDevice::new(geometry, Ddr5Timing::ddr5_4800(), 100_000, 1, |_| {
            Box::new(NoMitigation)
        });
        (
            MemoryController::with_scheduler(device, config, Box::new(NoMcMitigation), kind),
            AddressMapping::new(geometry),
        )
    }

    fn controller(config: McConfig) -> (MemoryController, AddressMapping) {
        controller_with(config, SchedulerKind::default())
    }

    fn drain(mc: &mut MemoryController, end: TimePs) -> Vec<Completion> {
        let mut out = Vec::new();
        mc.advance_until_into(end, &mut out);
        out
    }

    #[test]
    fn latency_histogram_and_per_core_attribution_match_totals() {
        let (mut mc, _) = controller(McConfig::default());
        // Threads 0 and 1 hit different rows of different banks; thread 1
        // issues twice as many reads plus a writeback.
        for i in 0..6u64 {
            let thread = usize::from(i % 3 != 0);
            let addr = crate::mapping::MappedAddr {
                channel: mithril_dram::ChannelId(0),
                bank: (i % 4) as usize,
                row: 10 + i,
                col: 0,
            };
            mc.enqueue(MemRequest::read(i, addr, thread, 0));
        }
        let wb = crate::mapping::MappedAddr {
            channel: mithril_dram::ChannelId(0),
            bank: 0,
            row: 99,
            col: 0,
        };
        mc.enqueue(MemRequest::write(100, wb, 1, 0));
        let done = drain(&mut mc, PS_PER_MS);
        assert_eq!(done.len(), 7);

        let s = mc.stats();
        // The histogram is the source of truth; the legacy sum must agree
        // exactly (both integer picoseconds over the same completions).
        assert_eq!(s.read_latency.count(), s.reads_done);
        assert_eq!(s.read_latency.sum(), s.total_read_latency);
        assert_eq!(s.write_latency.count(), s.writes_done);
        assert!(s.read_latency.min() > 0, "reads cannot complete at t=0");

        // Per-core shares sum to the controller totals.
        let (mut acts, mut reads, mut writes) = (0, 0, 0);
        let mut merged = LatencyHistogram::new();
        for (_, core) in s.per_core.iter() {
            acts += core.acts;
            reads += core.reads_done;
            writes += core.writes_done;
            merged.merge(&core.read_latency);
        }
        assert_eq!(acts, s.acts);
        assert_eq!(reads, s.reads_done);
        assert_eq!(writes, s.writes_done);
        assert_eq!(merged, s.read_latency);
        assert_eq!(s.per_core.get(0).unwrap().reads_done, 2);
        assert_eq!(s.per_core.get(1).unwrap().reads_done, 4);
        assert_eq!(s.per_core.get(1).unwrap().writes_done, 1);
    }

    #[test]
    fn single_read_completes_with_act_latency() {
        let (mut mc, map) = controller(McConfig::default());
        let t = Ddr5Timing::ddr5_4800();
        mc.enqueue(MemRequest::read(1, map.map_line(64), 0, 0));
        let done = drain(&mut mc, PS_PER_US);
        assert_eq!(done.len(), 1);
        // ACT at 0, RD at tRCD, data at tRCD + tCL + tBL.
        assert_eq!(done[0].at, t.trcd + t.tcl + t.tbl);
    }

    #[test]
    fn naive_scheduler_completes_single_read_identically() {
        let t = Ddr5Timing::ddr5_4800();
        let (mut mc, map) = controller_with(McConfig::default(), SchedulerKind::NaiveRescan);
        mc.enqueue(MemRequest::read(1, map.map_line(64), 0, 0));
        let done = drain(&mut mc, PS_PER_US);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].at, t.trcd + t.tcl + t.tbl);
        assert_eq!(mc.scheduler(), SchedulerKind::NaiveRescan);
    }

    #[test]
    fn event_priority_consts_match_action_priorities() {
        assert_eq!(Action::Ref { rank: RankId(0) }.priority(), PRIO_REF);
        assert_eq!(Action::MaintPre { bank: 0 }.priority(), PRIO_MAINT_PRE);
        assert_eq!(Action::Rfm { bank: 0 }.priority(), PRIO_RFM);
        assert_eq!(Action::Arr { bank: 0 }.priority(), PRIO_ARR);
        assert_eq!(Action::Column { bank: 0, pos: 0 }.priority(), PRIO_COLUMN);
        assert_eq!(Action::Pre { bank: 0 }.priority(), PRIO_PRE);
        assert_eq!(
            Action::Act {
                bank: 0,
                pos: 0,
                throttled: false,
                qos_throttled: false
            }
            .priority(),
            PRIO_ACT
        );
    }

    #[test]
    fn command_log_records_act_and_read() {
        let (mut mc, map) = controller(McConfig::default());
        mc.record_commands(true);
        mc.enqueue(MemRequest::read(1, map.map_line(64), 0, 0));
        drain(&mut mc, PS_PER_US);
        let log = mc.take_command_log();
        let kinds: Vec<CommandKind> = log.iter().map(|c| c.kind).collect();
        assert!(kinds.contains(&CommandKind::Act));
        assert!(kinds.contains(&CommandKind::Read));
        // Taking the log leaves recording on and the buffer empty.
        assert!(mc.take_command_log().is_empty());
    }

    #[test]
    fn row_hits_are_serviced_back_to_back() {
        let (mut mc, _) = controller(McConfig::default());
        // Two lines in the same row, same bank: second is a row hit.
        let a = crate::mapping::MappedAddr {
            channel: mithril_dram::ChannelId(0),
            bank: 0,
            row: 10,
            col: 0,
        };
        let b = crate::mapping::MappedAddr {
            channel: mithril_dram::ChannelId(0),
            bank: 0,
            row: 10,
            col: 1,
        };
        mc.enqueue(MemRequest::read(1, a, 0, 0));
        mc.enqueue(MemRequest::read(2, b, 0, 0));
        let done = drain(&mut mc, PS_PER_US);
        assert_eq!(done.len(), 2);
        assert_eq!(mc.stats().acts, 1, "second access must be a row hit");
    }

    #[test]
    fn minimalist_open_caps_row_hits() {
        let (mut mc, _) = controller(McConfig::default());
        for i in 0..6u64 {
            let addr = crate::mapping::MappedAddr {
                channel: mithril_dram::ChannelId(0),
                bank: 0,
                row: 10,
                col: i,
            };
            mc.enqueue(MemRequest::read(i, addr, 0, 0));
        }
        let done = drain(&mut mc, 10 * PS_PER_US);
        assert_eq!(done.len(), 6);
        // 6 same-row requests with max 4 hits per activation: 2 ACTs.
        assert_eq!(mc.stats().acts, 2);
    }

    #[test]
    fn different_rows_conflict_in_bank() {
        let (mut mc, _) = controller(McConfig::default());
        let a = crate::mapping::MappedAddr {
            channel: mithril_dram::ChannelId(0),
            bank: 0,
            row: 10,
            col: 0,
        };
        let b = crate::mapping::MappedAddr {
            channel: mithril_dram::ChannelId(0),
            bank: 0,
            row: 20,
            col: 0,
        };
        mc.enqueue(MemRequest::read(1, a, 0, 0));
        mc.enqueue(MemRequest::read(2, b, 0, 0));
        let done = drain(&mut mc, PS_PER_US);
        assert_eq!(done.len(), 2);
        assert_eq!(mc.stats().acts, 2);
        // Second completes after a full row cycle.
        assert!(done[1].at > Ddr5Timing::ddr5_4800().trc);
    }

    #[test]
    fn auto_refresh_happens_every_trefi() {
        let (mut mc, _) = controller(McConfig::default());
        let t = Ddr5Timing::ddr5_4800();
        drain(&mut mc, 10 * t.trefi + t.trefi / 2);
        assert_eq!(mc.stats().refs, 10);
    }

    #[test]
    fn rfm_issued_every_rfmth_acts() {
        let cfg = McConfig {
            rfm_mode: RfmMode::Standard,
            rfm_th: 4,
            ..Default::default()
        };
        let (mut mc, _) = controller(cfg);
        // 8 activations to bank 0 (different rows → all ACTs).
        for i in 0..8u64 {
            let addr = crate::mapping::MappedAddr {
                channel: mithril_dram::ChannelId(0),
                bank: 0,
                row: 10 + i,
                col: 0,
            };
            mc.enqueue(MemRequest::read(i, addr, 0, 0));
        }
        let done = drain(&mut mc, PS_PER_MS);
        assert_eq!(done.len(), 8);
        assert_eq!(mc.stats().acts, 8);
        assert_eq!(mc.stats().rfms, 2, "RAA reaches 4 twice");
    }

    #[test]
    fn mrr_elision_skips_rfm_for_idle_engine() {
        // NoMitigation reports refresh_pending() = false → every RFM elided.
        let cfg = McConfig {
            rfm_mode: RfmMode::MrrElision,
            rfm_th: 4,
            ..Default::default()
        };
        let (mut mc, _) = controller(cfg);
        for i in 0..8u64 {
            let addr = crate::mapping::MappedAddr {
                channel: mithril_dram::ChannelId(0),
                bank: 0,
                row: 10 + i,
                col: 0,
            };
            mc.enqueue(MemRequest::read(i, addr, 0, 0));
        }
        drain(&mut mc, PS_PER_MS);
        assert_eq!(mc.stats().rfms, 0);
        assert_eq!(mc.stats().rfm_elisions, 2);
        assert_eq!(mc.stats().mrrs, 2);
    }

    #[test]
    fn arr_requests_execute_with_priority() {
        /// Mitigation that ARRs the neighbours of every activation.
        struct ArrEvery;
        impl McMitigation for ArrEvery {
            fn on_activate(
                &mut self,
                bank: BankId,
                row: RowId,
                _thread: usize,
                _now: TimePs,
            ) -> McAction {
                McAction::Arr {
                    bank,
                    victims: vec![row.saturating_sub(1), row + 1],
                }
            }
            fn may_throttle(&self) -> bool {
                false
            }
            fn name(&self) -> &'static str {
                "arr-every"
            }
        }
        let geometry = Geometry::default();
        let device = DramDevice::new(geometry, Ddr5Timing::ddr5_4800(), 100_000, 1, |_| {
            Box::new(NoMitigation)
        });
        let mut mc = MemoryController::new(device, McConfig::default(), Box::new(ArrEvery));
        let addr = crate::mapping::MappedAddr {
            channel: mithril_dram::ChannelId(0),
            bank: 3,
            row: 100,
            col: 0,
        };
        mc.enqueue(MemRequest::read(1, addr, 0, 0));
        drain(&mut mc, PS_PER_US);
        assert_eq!(mc.stats().arrs, 1);
        // The oracle saw the preventive refresh of both neighbours.
        assert_eq!(mc.device().oracle(3).disturbance(99), 0);
        assert_eq!(mc.device().oracle(3).disturbance(101), 0);
        assert_eq!(mc.device().counters().preventive_rows, 2);
    }

    #[test]
    fn throttling_mitigation_delays_acts() {
        /// Delays every ACT of thread 0 by 1 µs.
        struct DelayThread0;
        impl McMitigation for DelayThread0 {
            fn on_activate(
                &mut self,
                _bank: BankId,
                _row: RowId,
                _thread: usize,
                _now: TimePs,
            ) -> McAction {
                McAction::None
            }
            fn activate_allowed_at(
                &self,
                _bank: BankId,
                _row: RowId,
                thread: usize,
                now: TimePs,
            ) -> TimePs {
                if thread == 0 {
                    now + PS_PER_US
                } else {
                    now
                }
            }
            fn name(&self) -> &'static str {
                "delay-thread0"
            }
        }
        for kind in [SchedulerKind::EventQueue, SchedulerKind::NaiveRescan] {
            let geometry = Geometry::default();
            let device = DramDevice::new(geometry, Ddr5Timing::ddr5_4800(), 100_000, 1, |_| {
                Box::new(NoMitigation)
            });
            let mut mc = MemoryController::with_scheduler(
                device,
                McConfig::default(),
                Box::new(DelayThread0),
                kind,
            );
            let a = crate::mapping::MappedAddr {
                channel: mithril_dram::ChannelId(0),
                bank: 0,
                row: 1,
                col: 0,
            };
            let b = crate::mapping::MappedAddr {
                channel: mithril_dram::ChannelId(0),
                bank: 1,
                row: 2,
                col: 0,
            };
            mc.enqueue(MemRequest::read(1, a, 0, 0));
            mc.enqueue(MemRequest::read(2, b, 1, 0));
            let done = drain(&mut mc, 10 * PS_PER_US);
            assert_eq!(done.len(), 2);
            let t0 = done.iter().find(|c| c.thread == 0).unwrap();
            let t1 = done.iter().find(|c| c.thread == 1).unwrap();
            assert!(t0.at > PS_PER_US, "thread 0 must be throttled ({kind:?})");
            assert!(
                t1.at < PS_PER_US,
                "thread 1 must not be throttled ({kind:?})"
            );
            assert_eq!(mc.stats().throttled_acts, 1);
        }
    }

    #[test]
    fn qos_throttles_hammering_thread_under_both_cores() {
        use crate::qos::{QosConfig, QosPolicy};
        let cfg = McConfig {
            rfm_mode: RfmMode::Standard,
            rfm_th: 4,
            ..Default::default()
        };
        for kind in [SchedulerKind::EventQueue, SchedulerKind::NaiveRescan] {
            let (mut mc, _) = controller_with(cfg, kind);
            mc.set_qos(QosPolicy::Throttle(QosConfig {
                window_ps: 500_000,
                tokens_per_window: 2,
                ..QosConfig::default()
            }));
            // Thread 0 hammers bank 0 across distinct rows (every access
            // is an ACT and arms RFMs); thread 1 reads a little on bank 1.
            for i in 0..64u64 {
                let addr = crate::mapping::MappedAddr {
                    channel: mithril_dram::ChannelId(0),
                    bank: 0,
                    row: 10 + i,
                    col: 0,
                };
                mc.enqueue(MemRequest::read(i, addr, 0, 0));
            }
            for i in 0..4u64 {
                let addr = crate::mapping::MappedAddr {
                    channel: mithril_dram::ChannelId(0),
                    bank: 1,
                    row: 500 + i,
                    col: 0,
                };
                mc.enqueue(MemRequest::read(1000 + i, addr, 1, 0));
            }
            let done = drain(&mut mc, PS_PER_MS);
            assert_eq!(done.len(), 68, "all requests still complete ({kind:?})");
            let qos = mc.qos_stats().expect("qos stats present when enabled");
            assert!(qos.windows > 0, "windows rotate ({kind:?})");
            let t0 = qos.per_thread[0];
            assert!(
                t0.suspect_windows > 0,
                "hammering thread elected suspect ({kind:?})"
            );
            assert!(
                t0.throttled_acts > 0,
                "dry token bucket defers the hammer's ACTs ({kind:?})"
            );
            assert_eq!(qos.throttled_acts, t0.throttled_acts);
            assert!(
                qos.per_thread.get(1).is_none_or(|t| t.suspect_windows == 0),
                "light victim thread is never suspect ({kind:?})"
            );
            // QoS deferrals feed the existing throttle attribution too.
            assert!(mc.stats().throttled_acts >= t0.throttled_acts);
            assert!(mc.stats().per_core.get(0).unwrap().throttled_acts > 0);
        }
    }

    #[test]
    fn qos_off_policy_keeps_controller_unthrottled() {
        use crate::qos::QosPolicy;
        let (mut mc, map) = controller(McConfig::default());
        mc.set_qos(QosPolicy::Off);
        assert!(mc.qos_stats().is_none());
        mc.enqueue(MemRequest::read(1, map.map_line(64), 0, 0));
        let done = drain(&mut mc, PS_PER_US);
        assert_eq!(done.len(), 1);
        assert_eq!(mc.stats().throttled_acts, 0);
    }

    #[test]
    fn bliss_blacklists_streaming_thread() {
        let (mut mc, _) = controller(McConfig::default());
        // Thread 0 floods bank 0 with row hits; thread 1 queues one
        // request behind them on the same bank, different row.
        for i in 0..4u64 {
            let addr = crate::mapping::MappedAddr {
                channel: mithril_dram::ChannelId(0),
                bank: 0,
                row: 10,
                col: i,
            };
            mc.enqueue(MemRequest::read(i, addr, 0, 0));
        }
        for i in 0..4u64 {
            let addr = crate::mapping::MappedAddr {
                channel: mithril_dram::ChannelId(0),
                bank: 0,
                row: 10,
                col: 4 + i,
            };
            mc.enqueue(MemRequest::read(100 + i, addr, 0, 0));
        }
        let addr1 = crate::mapping::MappedAddr {
            channel: mithril_dram::ChannelId(0),
            bank: 0,
            row: 20,
            col: 0,
        };
        mc.enqueue(MemRequest::read(999, addr1, 1, 0));
        let done = drain(&mut mc, PS_PER_MS);
        assert_eq!(done.len(), 9);
        // After 4 consecutive services, thread 0 is blacklisted and thread
        // 1's row-miss request wins the next activation.
        let pos_t1 = done.iter().position(|c| c.request_id == 999).unwrap();
        assert!(
            pos_t1 < 8,
            "blacklisted stream must not starve thread 1 (pos {pos_t1})"
        );
    }

    #[test]
    fn pending_counts_queued_requests() {
        let (mut mc, map) = controller(McConfig::default());
        mc.enqueue(MemRequest::read(1, map.map_line(0), 0, 0));
        mc.enqueue(MemRequest::read(2, map.map_line(1), 0, 0));
        assert_eq!(mc.pending(), 2);
        drain(&mut mc, PS_PER_US);
        assert_eq!(mc.pending(), 0);
    }

    #[test]
    fn writes_complete_and_count() {
        let (mut mc, map) = controller(McConfig::default());
        mc.enqueue(MemRequest::write(1, map.map_line(0), 0, 0));
        let done = drain(&mut mc, PS_PER_US);
        assert_eq!(done.len(), 1);
        assert!(done[0].is_write);
        assert_eq!(mc.stats().writes_done, 1);
    }
}
