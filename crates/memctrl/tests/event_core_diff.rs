//! Differential property tests: the event-driven scheduler core must be
//! *decision-identical* to the retained naive rescan core — identical
//! command streams (kind, bank, row, issue time), identical controller and
//! device statistics, identical completions, and identical observability
//! event streams (after filtering the scheduler-internal kinds
//! `lane_invalidate`/`bliss_clear`, whose cadence is an implementation
//! detail of each core) — on random and adversarial workloads, across
//! geometries and mitigation styles.

use mithril_dram::{Ddr5Timing, DramDevice, Geometry, NoMitigation, RowId, TimePs, PS_PER_US};
use mithril_memctrl::{
    MappedAddr, McAction, McConfig, McMitigation, MemRequest, MemoryController, NoMcMitigation,
    QosConfig, QosPolicy, RfmMode, SchedulerKind, ThrottleKind,
};
use mithril_obs::{Event, RingSink};
use proptest::prelude::*;

type Req = (usize, u64, u64, bool, usize, u64);

/// Deterministic ARR-issuing mitigation: refresh neighbours of every k-th
/// activation (a de-randomized PARA).
struct ArrEveryK {
    k: u64,
    seen: u64,
}

impl McMitigation for ArrEveryK {
    fn on_activate(&mut self, bank: usize, row: RowId, _thread: usize, _now: TimePs) -> McAction {
        self.seen += 1;
        if self.seen.is_multiple_of(self.k) {
            McAction::Arr {
                bank,
                victims: vec![row.saturating_sub(1), row + 1],
            }
        } else {
            McAction::None
        }
    }
    fn may_throttle(&self) -> bool {
        false
    }
    fn name(&self) -> &'static str {
        "arr-every-k"
    }
}

/// Deterministic throttling mitigation: delays even threads' ACTs by a
/// bank-dependent amount (exercises the event core's conservative
/// recompute-every-step fallback).
struct DelayEvenThreads;

impl McMitigation for DelayEvenThreads {
    fn on_activate(&mut self, _bank: usize, _row: RowId, _thread: usize, _now: TimePs) -> McAction {
        McAction::None
    }
    fn activate_allowed_at(&self, bank: usize, _row: RowId, thread: usize, now: TimePs) -> TimePs {
        if thread.is_multiple_of(2) {
            now + (bank as TimePs % 3 + 1) * 50_000
        } else {
            now
        }
    }
    fn name(&self) -> &'static str {
        "delay-even-threads"
    }
}

fn build(
    geometry: Geometry,
    cfg: McConfig,
    mitigation: Box<dyn McMitigation>,
    kind: SchedulerKind,
) -> MemoryController<RingSink> {
    let device = DramDevice::new(geometry, Ddr5Timing::ddr5_4800(), 100_000, 1, |_| {
        Box::new(NoMitigation)
    });
    // Large enough that these bounded workloads never wrap the ring, so
    // the drained streams are complete.
    let mut mc = MemoryController::with_obs(device, cfg, mitigation, kind, RingSink::new(1 << 18));
    mc.record_commands(true);
    mc
}

/// The cross-core-comparable projection of an event stream: everything
/// except the scheduler-internal kinds (candidate-lane invalidation
/// cadence and BLISS clear notifications differ between cores by design).
fn external_events(mc: &mut MemoryController<RingSink>) -> Vec<(u64, Event)> {
    let sink = mc.obs_mut();
    assert_eq!(sink.dropped(), 0, "ring wrapped; grow the test capacity");
    sink.take_events()
        .into_iter()
        .filter(|(_, ev)| !matches!(ev, Event::LaneInvalidate { .. } | Event::BlissClear))
        .collect()
}

/// Drives two controllers through the same enqueue/advance interleaving
/// and asserts every observable output matches: completions, stats,
/// device state, command log, observability events, and QoS outcomes.
/// Returns the (agreed) QoS stats so callers can assert the run was not
/// vacuous.
fn assert_controllers_agree(
    geometry: Geometry,
    mut event: MemoryController<RingSink>,
    mut naive: MemoryController<RingSink>,
    reqs: &[Req],
) -> Option<mithril_memctrl::QosStats> {
    let nbanks = geometry.banks_total();
    let mut done_event = Vec::new();
    let mut done_naive = Vec::new();
    let mut now = 0u64;
    for (i, &(bank, row, col, is_write, thread, gap)) in reqs.iter().enumerate() {
        now += gap * PS_PER_US / 8;
        let addr = MappedAddr {
            channel: mithril_dram::ChannelId(0),
            bank: bank % nbanks,
            row,
            col,
        };
        let req = if is_write {
            MemRequest::write(i as u64, addr, thread, now)
        } else {
            MemRequest::read(i as u64, addr, thread, now)
        };
        event.enqueue(req);
        naive.enqueue(req);
        // Interleave advances mid-stream (the simulator's intra-epoch
        // relaxation pattern) so candidates go stale between fences.
        if i % 16 == 15 {
            event.advance_until_into(now, &mut done_event);
            naive.advance_until_into(now, &mut done_naive);
        }
    }
    let horizon = now + 4_000 * PS_PER_US;
    event.advance_until_into(horizon, &mut done_event);
    naive.advance_until_into(horizon, &mut done_naive);

    assert_eq!(event.pending(), 0, "event core lost requests");
    assert_eq!(naive.pending(), 0, "naive core lost requests");
    assert_eq!(done_event, done_naive, "completion streams diverge");
    assert_eq!(event.stats(), naive.stats(), "controller stats diverge");
    assert_eq!(
        event.device().stats(),
        naive.device().stats(),
        "device stats diverge"
    );
    assert_eq!(
        event.device().max_disturbance(),
        naive.device().max_disturbance(),
        "oracle disturbance diverges"
    );
    let log_event = event.take_command_log();
    let log_naive = naive.take_command_log();
    assert_eq!(log_event.len(), log_naive.len(), "command counts diverge");
    for (i, (e, n)) in log_event.iter().zip(&log_naive).enumerate() {
        assert_eq!(e, n, "command {i} diverges");
    }
    let ev_event = external_events(&mut event);
    let ev_naive = external_events(&mut naive);
    assert_eq!(
        ev_event.len(),
        ev_naive.len(),
        "observability event counts diverge"
    );
    for (i, (e, n)) in ev_event.iter().zip(&ev_naive).enumerate() {
        assert_eq!(e, n, "observability event {i} diverges");
    }
    assert_eq!(event.qos_stats(), naive.qos_stats(), "QoS outcomes diverge");
    event.qos_stats()
}

/// Drives both scheduler cores (optionally with a QoS policy applied)
/// through the same traffic and asserts decision identity.
fn assert_cores_agree_qos(
    geometry: Geometry,
    cfg: McConfig,
    mk_mitigation: impl Fn() -> Box<dyn McMitigation>,
    qos: QosPolicy,
    reqs: &[Req],
) {
    let mut event = build(geometry, cfg, mk_mitigation(), SchedulerKind::EventQueue);
    let mut naive = build(geometry, cfg, mk_mitigation(), SchedulerKind::NaiveRescan);
    event.set_qos(qos);
    naive.set_qos(qos);
    assert_controllers_agree(geometry, event, naive, reqs);
}

/// [`assert_cores_agree_qos`] without QoS — the pre-existing contract.
fn assert_cores_agree(
    geometry: Geometry,
    cfg: McConfig,
    mk_mitigation: impl Fn() -> Box<dyn McMitigation>,
    reqs: &[Req],
) {
    let event = build(geometry, cfg, mk_mitigation(), SchedulerKind::EventQueue);
    let naive = build(geometry, cfg, mk_mitigation(), SchedulerKind::NaiveRescan);
    assert_controllers_agree(geometry, event, naive, reqs);
}

/// An aggressive QoS tuning for the differential tests: short windows,
/// tiny token budget, low election bar — maximizes rotations, suspect
/// churn and window-boundary deferrals per request batch.
fn aggressive_qos() -> QosPolicy {
    QosPolicy::Throttle(QosConfig {
        kind: ThrottleKind::TokenBucket,
        window_ps: 300_000,
        share_pct: 30,
        min_score: 8,
        tokens_per_window: 2,
    })
}

/// Arbitrary request batches: (bank, row, col, is_write, thread, gap).
fn batches(max_len: usize) -> impl Strategy<Value = Vec<Req>> {
    prop::collection::vec(
        (
            0usize..64,
            0u64..256,
            0u64..64,
            any::<bool>(),
            0usize..8,
            0u64..6,
        ),
        1..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Default geometry (1 rank x 32 banks), standard RFM, BLISS on.
    #[test]
    fn random_traffic_matches(reqs in batches(160)) {
        let cfg = McConfig {
            rfm_mode: RfmMode::Standard,
            rfm_th: 8,
            ..Default::default()
        };
        assert_cores_agree(
            Geometry::default(),
            cfg,
            || Box::new(NoMcMitigation),
            &reqs,
        );
    }

    /// Two ranks (staggered REF, per-rank tRRD/tFAW), Mithril+ MRR
    /// elision, BLISS off (pure FR-FCFS).
    #[test]
    fn two_rank_mrr_elision_matches(reqs in batches(120)) {
        let geometry = Geometry {
            ranks: 2,
            ..Geometry::default()
        };
        let cfg = McConfig {
            rfm_mode: RfmMode::MrrElision,
            rfm_th: 6,
            bliss: None,
            ..Default::default()
        };
        assert_cores_agree(geometry, cfg, || Box::new(NoMcMitigation), &reqs);
    }

    /// MC-side ARR mitigation injecting maintenance mid-stream.
    #[test]
    fn arr_mitigation_matches(reqs in batches(120), k in 2u64..6) {
        assert_cores_agree(
            Geometry::default(),
            McConfig::default(),
            || Box::new(ArrEveryK { k, seen: 0 }),
            &reqs,
        );
    }

    /// Throttling mitigation: the event core must fall back to
    /// recompute-every-step and still match the naive core exactly.
    #[test]
    fn throttling_mitigation_matches(reqs in batches(100)) {
        assert_cores_agree(
            Geometry::default(),
            McConfig::default(),
            || Box::new(DelayEvenThreads),
            &reqs,
        );
    }

    /// QoS token-bucket throttling on, with RFM pressure feeding the
    /// suspect scorer: both cores must elect the same suspects, defer
    /// the same ACTs to the same window boundaries, and agree on every
    /// downstream decision.
    #[test]
    fn qos_throttling_matches(reqs in batches(120)) {
        let cfg = McConfig {
            rfm_mode: RfmMode::Standard,
            rfm_th: 4,
            ..Default::default()
        };
        assert_cores_agree_qos(
            Geometry::default(),
            cfg,
            || Box::new(NoMcMitigation),
            aggressive_qos(),
            &reqs,
        );
    }

    /// QoS layered on top of an ARR mitigation: both pressure sources
    /// (RFM arming and MC-mitigation triggers) feed the scorer.
    #[test]
    fn qos_over_arr_mitigation_matches(reqs in batches(100), k in 2u64..6) {
        assert_cores_agree_qos(
            Geometry::default(),
            McConfig::default(),
            || Box::new(ArrEveryK { k, seen: 0 }),
            aggressive_qos(),
            &reqs,
        );
    }

    /// `QosPolicy::Off` must be entry-by-entry identical to a controller
    /// that never saw the QoS subsystem at all — the command-log half of
    /// the `BENCH_sweep.json` byte-identity contract.
    #[test]
    fn qos_off_is_identical_to_no_qos(reqs in batches(120)) {
        let cfg = McConfig {
            rfm_mode: RfmMode::Standard,
            rfm_th: 8,
            ..Default::default()
        };
        let untouched = build(
            Geometry::default(),
            cfg,
            Box::new(NoMcMitigation),
            SchedulerKind::EventQueue,
        );
        let mut off = build(
            Geometry::default(),
            cfg,
            Box::new(NoMcMitigation),
            SchedulerKind::EventQueue,
        );
        off.set_qos(QosPolicy::Off);
        assert_controllers_agree(Geometry::default(), untouched, off, &reqs);
    }
}

/// The adversarial hammer under QoS throttling: the differential holds
/// on the Table III channel while the hammer is actually being deferred
/// (the stats assert throttling really happened, so this is not a
/// vacuous agreement).
#[test]
fn adversarial_hammer_matches_under_qos() {
    let geometry = Geometry::table_iii_system().channel_view();
    let mut reqs = Vec::new();
    for i in 0..400u64 {
        let row = if i.is_multiple_of(2) { 100 } else { 102 };
        reqs.push((0usize, row, i % 4, false, 0usize, 0u64));
        if i % 5 == 0 {
            reqs.push((0usize, 101, 0, false, 1usize, 0u64));
        }
    }
    let cfg = McConfig {
        rfm_mode: RfmMode::Standard,
        rfm_th: 8,
        ..Default::default()
    };
    let mut event = build(
        geometry,
        cfg,
        Box::new(NoMcMitigation),
        SchedulerKind::EventQueue,
    );
    let mut naive = build(
        geometry,
        cfg,
        Box::new(NoMcMitigation),
        SchedulerKind::NaiveRescan,
    );
    event.set_qos(aggressive_qos());
    naive.set_qos(aggressive_qos());
    let qos =
        assert_controllers_agree(geometry, event, naive, &reqs).expect("QoS-on run reports stats");
    assert!(qos.windows > 0, "windows must rotate over this horizon");
    assert!(
        qos.throttled_acts > 0,
        "the hammer must actually be deferred (vacuous agreement otherwise)"
    );
}

/// Adversarial double-sided hammer plus a conflicting victim stream on the
/// per-channel view of the paper's 2-channel Table III system: long
/// same-bank runs maximize row-hit/precharge churn and RFM pressure.
#[test]
fn adversarial_hammer_matches_table_iii_channel() {
    let geometry = Geometry::table_iii_system().channel_view();
    let mut reqs = Vec::new();
    for i in 0..400u64 {
        let row = if i.is_multiple_of(2) { 100 } else { 102 }; // double-sided pair
        reqs.push((0usize, row, i % 4, false, 0usize, 0u64));
        if i % 5 == 0 {
            // Victim-row reads on the same bank, different row: forces
            // precharge/activate conflicts against the hammer stream.
            reqs.push((0usize, 101, 0, false, 1usize, 0u64));
        }
        if i % 7 == 0 {
            // Background traffic on a sibling bank of the same rank
            // (tRRD/tFAW interaction with the rank-floor clamp).
            reqs.push((1usize, i % 64, 0, i % 3 == 0, 2usize, 1u64));
        }
    }
    let cfg = McConfig {
        rfm_mode: RfmMode::Standard,
        rfm_th: 16,
        ..Default::default()
    };
    assert_cores_agree(geometry, cfg, || Box::new(NoMcMitigation), &reqs);
}

/// Empty-queue idle advance: both cores issue exactly the same refresh
/// schedule with no demand traffic.
#[test]
fn idle_refresh_schedule_matches() {
    let geometry = Geometry {
        ranks: 2,
        ..Geometry::default()
    };
    assert_cores_agree(
        geometry,
        McConfig::default(),
        || Box::new(NoMcMitigation),
        &[],
    );
}
