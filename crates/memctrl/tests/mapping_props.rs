//! Property tests for the channel-interleaved [`AddressMapping`]:
//! exact round-trips over the whole hierarchy and uniformity of channel
//! interleaving across access strides.

use std::collections::HashMap;

use mithril_dram::{ChannelId, Geometry};
use mithril_memctrl::{AddressMapping, MappedAddr};
use proptest::prelude::*;

/// The geometry family the properties quantify over: channels × ranks ×
/// banks drawn from the power-of-two configurations the sweep engine runs.
fn geometry_strategy() -> impl Strategy<Value = Geometry> {
    (0u32..3, 0u32..2, prop_oneof![Just(16usize), Just(32usize)]).prop_map(
        |(ch_bits, rk_bits, banks_per_rank)| Geometry {
            banks_per_rank,
            ..Geometry::default()
                .with_channels(1 << ch_bits)
                .with_ranks(1 << rk_bits)
        },
    )
}

fn capacity_lines(g: &Geometry) -> u64 {
    g.channels as u64 * g.banks_total() as u64 * g.lines_per_row() * g.rows_per_bank
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// line → (channel, bank, row, col) → line is the identity for any
    /// line within the mapped capacity, on every hierarchy shape.
    #[test]
    fn map_line_round_trips(
        g in geometry_strategy(),
        lines in prop::collection::vec(any::<u64>(), 1..64),
    ) {
        let m = AddressMapping::new(g);
        let capacity = capacity_lines(&g);
        for &raw in &lines {
            let line = raw % capacity;
            let a = m.map_line(line);
            prop_assert!(a.channel.0 < g.channels);
            prop_assert!(a.bank < g.banks_total());
            prop_assert!(a.row < g.rows_per_bank);
            prop_assert!(a.col < g.lines_per_row());
            prop_assert_eq!(m.line_for(a), line);
        }
    }

    /// (channel, bank, row, col) → line → same coordinates: the inverse
    /// also round-trips from the coordinate side.
    #[test]
    fn line_for_round_trips(
        g in geometry_strategy(),
        coords in prop::collection::vec(
            (any::<usize>(), any::<usize>(), any::<u64>(), any::<u64>()),
            1..64,
        ),
    ) {
        let m = AddressMapping::new(g);
        for &(ch, bank, row, col) in &coords {
            let addr = MappedAddr {
                channel: ChannelId(ch % g.channels),
                bank: bank % g.banks_total(),
                row: row % g.rows_per_bank,
                col: col % g.lines_per_row(),
            };
            prop_assert_eq!(m.map_line(m.line_for(addr)), addr);
        }
    }

    /// Channel interleaving stays usefully uniform across power-of-two
    /// strides: once the sampling window spans enough row groups for the
    /// XOR permutation to rotate, every channel receives within 2x of its
    /// fair share (and never zero).
    #[test]
    fn channel_interleave_uniform_across_strides(
        ch_bits in 1u32..3,
        stride_log in 0u32..14,
        start in 0u64..1_000_000,
    ) {
        let g = Geometry::default().with_channels(1 << ch_bits);
        let m = AddressMapping::new(g);
        let stride = 1u64 << stride_log;
        // One row spans channels × banks × lines_per_row consecutive
        // lines; the window must cover `channels` row groups so the XOR
        // rotation cycles through every channel residue.
        let row_span = g.channels as u64 * g.banks_total() as u64 * g.lines_per_row();
        let samples = 4096u64.max(g.channels as u64 * row_span / stride);
        let mut counts: HashMap<ChannelId, u64> = HashMap::new();
        for i in 0..samples {
            let a = m.map_line(start + i * stride);
            *counts.entry(a.channel).or_default() += 1;
        }
        let expected = samples / g.channels as u64;
        for ch in g.channel_ids() {
            let got = counts.get(&ch).copied().unwrap_or(0);
            prop_assert!(
                got >= expected / 2 && got <= expected * 2,
                "stride {} channel {} got {} of expected {}",
                stride, ch, got, expected
            );
        }
    }

    /// Distinct consecutive lines never alias to the same coordinates.
    #[test]
    fn mapping_is_injective_within_capacity(
        g in geometry_strategy(),
        base in any::<u64>(),
    ) {
        let m = AddressMapping::new(g);
        let capacity = capacity_lines(&g);
        let base = base % capacity;
        let mut seen = std::collections::HashSet::new();
        for i in 0..512u64 {
            let line = (base + i) % capacity;
            prop_assert!(seen.insert(m.map_line(line)), "line {} aliased", line);
        }
    }
}
