//! Property/fuzz tests for the memory controller's scheduling legality.
//!
//! The bank and rank state machines panic on any DDR timing violation
//! (illegal ACT/PRE/column/REF), so feeding the controller arbitrary
//! request streams is itself a strong test: any scheduling bug that emits
//! a command too early aborts the run.

use mithril_dram::{Ddr5Timing, DramDevice, Geometry, NoMitigation, TimePs, PS_PER_US};
use mithril_memctrl::{
    Completion, MappedAddr, McConfig, MemRequest, MemoryController, NoMcMitigation, RfmMode,
};
use proptest::prelude::*;

fn drain(mc: &mut MemoryController, end: TimePs) -> Vec<Completion> {
    let mut out = Vec::new();
    mc.advance_until_into(end, &mut out);
    out
}

fn controller(rfm_mode: RfmMode, rfm_th: u64) -> MemoryController {
    let geometry = Geometry::default();
    let device = DramDevice::new(geometry, Ddr5Timing::ddr5_4800(), 100_000, 1, |_| {
        Box::new(NoMitigation)
    });
    let cfg = McConfig {
        rfm_mode,
        rfm_th,
        ..Default::default()
    };
    MemoryController::new(device, cfg, Box::new(NoMcMitigation))
}

/// Arbitrary request batches: (bank, row, col, is_write, thread, gap_us).
fn batches() -> impl Strategy<Value = Vec<(usize, u64, u64, bool, usize, u64)>> {
    prop::collection::vec(
        (
            0usize..32,
            0u64..512,
            0u64..128,
            any::<bool>(),
            0usize..16,
            0u64..5,
        ),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No timing violation and no lost requests, with RFM disabled.
    #[test]
    fn all_requests_complete_without_violations(reqs in batches()) {
        let mut mc = controller(RfmMode::Disabled, 64);
        let mut now = 0u64;
        for (i, &(bank, row, col, is_write, thread, gap)) in reqs.iter().enumerate() {
            now += gap * PS_PER_US / 4;
            let addr = MappedAddr { channel: mithril_dram::ChannelId(0), bank, row, col };
            let req = if is_write {
                MemRequest::write(i as u64, addr, thread, now)
            } else {
                MemRequest::read(i as u64, addr, thread, now)
            };
            mc.enqueue(req);
        }
        // Long enough for any queue to drain incl. refresh interference.
        let done = drain(&mut mc, now + 2_000 * PS_PER_US);
        prop_assert_eq!(done.len(), reqs.len(), "requests lost");
        prop_assert_eq!(mc.pending(), 0);
        // Read data can never appear before the minimal pipeline latency.
        let t = Ddr5Timing::ddr5_4800();
        for c in done.iter().filter(|c| !c.is_write) {
            prop_assert!(c.at >= t.trcd + t.tcl + t.tbl);
        }
    }

    /// With RFM enabled, the RAA discipline holds: every bank receives one
    /// RFM per RFMTH activations (within one interval of slack), under any
    /// request mix.
    #[test]
    fn rfm_cadence_holds_under_fuzz(reqs in batches(), rfm_th in 4u64..32) {
        let mut mc = controller(RfmMode::Standard, rfm_th);
        for (i, &(bank, row, col, is_write, thread, _)) in reqs.iter().enumerate() {
            let addr = MappedAddr { channel: mithril_dram::ChannelId(0), bank, row, col };
            let req = if is_write {
                MemRequest::write(i as u64, addr, thread, 0)
            } else {
                MemRequest::read(i as u64, addr, thread, 0)
            };
            mc.enqueue(req);
        }
        drain(&mut mc, 4_000 * PS_PER_US);
        prop_assert_eq!(mc.pending(), 0);
        let stats = mc.stats();
        // Total RFMs bounded by total ACTs / RFMTH (+1 per bank slack is
        // impossible to exceed because counters reset on issue).
        prop_assert!(stats.rfms <= stats.acts / rfm_th);
        // And the device must have been handed exactly that many windows.
        prop_assert_eq!(mc.device().stats().rfm_commands, stats.rfms);
    }

    /// Auto-refresh cadence survives arbitrary traffic: over a fixed
    /// horizon the controller issues every due REF (one per tREFI).
    #[test]
    fn refresh_cadence_survives_traffic(reqs in batches()) {
        let mut mc = controller(RfmMode::Disabled, 64);
        for (i, &(bank, row, col, _, thread, _)) in reqs.iter().enumerate() {
            let addr = MappedAddr { channel: mithril_dram::ChannelId(0), bank, row, col };
            mc.enqueue(MemRequest::read(i as u64, addr, thread, 0));
        }
        let t = Ddr5Timing::ddr5_4800();
        let horizon = 20 * t.trefi;
        drain(&mut mc, horizon);
        // All 20 due refreshes happened (the 20th lands exactly at the
        // horizon; allow it to be pending).
        prop_assert!(mc.stats().refs >= 19, "refs = {}", mc.stats().refs);
    }
}
