//! Shared helpers for the figure/table regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` for the index) and prints CSV-style
//! rows to stdout. The scenario substance — workload registry, scheme
//! catalogs, run helpers, standard sweeps — lives in
//! [`mithril_runner::scenarios`] and is re-exported here; the binaries
//! fan their runs out on the runner's sharded engine
//! ([`mithril_runner::engine`]), so `--threads N` parallelizes every
//! figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mithril_runner::engine::{default_threads, run_sharded, PoolConfig};
pub use mithril_runner::scenarios::{
    arr_schemes, default_rfm_th, normal_workload_overheads, rfm_compatible_schemes, run_one,
    workload, MITHRIL_SWEEP, NORMAL_WORKLOADS,
};
// Trace capture/replay, so figure binaries and external callers can swap a
// registry workload for a recorded capture (`workload("trace:<path>", ..)`)
// without importing another crate.
pub use mithril_trace::{
    record_thread_set, replay_thread_set, stats_from_reader, MtrcReader, MtrcWriter, ReplayEnd,
    TraceHeader,
};

/// Parses `--key value`-style CLI overrides shared by the bins:
/// `--insts N` (instructions per core), `--cores N`, `--seed N` and
/// `--threads N` (sweep-engine workers).
#[derive(Debug, Clone, Copy)]
pub struct BinArgs {
    /// Instructions per core per run.
    pub insts: u64,
    /// Cores to simulate.
    pub cores: usize,
    /// Seed.
    pub seed: u64,
    /// Worker threads for the sharded engine.
    pub threads: usize,
}

impl BinArgs {
    /// Parses from `std::env::args`, with defaults sized for minutes-scale
    /// release runs (`insts = 100_000`, `cores = 16`).
    pub fn parse() -> Self {
        let mut out = Self {
            insts: 100_000,
            cores: 16,
            seed: 1,
            threads: default_threads(),
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--insts" => out.insts = args[i + 1].parse().expect("--insts N"),
                "--cores" => out.cores = args[i + 1].parse().expect("--cores N"),
                "--seed" => out.seed = args[i + 1].parse().expect("--seed N"),
                "--threads" => out.threads = args[i + 1].parse().expect("--threads N"),
                _ => {}
            }
            i += 2;
        }
        out
    }

    /// The engine pool this invocation asked for.
    pub fn pool(&self) -> PoolConfig {
        PoolConfig {
            threads: self.threads,
            shard_size: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The workload/scheme registry tests live with the registry in
    // crates/runner/src/scenarios.rs; here we only cover what this crate
    // adds on top of the re-exports.
    #[test]
    fn bin_args_pool_uses_thread_count() {
        let args = BinArgs {
            insts: 1,
            cores: 1,
            seed: 1,
            threads: 3,
        };
        assert_eq!(args.pool().threads, 3);
    }
}
