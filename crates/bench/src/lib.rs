//! Shared helpers for the figure/table regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` for the index) and prints CSV-style
//! rows to stdout. This library holds the pieces they share: the standard
//! sweeps, run helpers and output formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mithril_sim::{geomean, Metrics, Scheme, System, SystemConfig};
use mithril_workloads::{
    attack_mix, bh_cover_attack_mix, mix_blend, mix_high, multithreaded, ThreadSet,
};

/// The `(FlipTH, RFMTH)` pairs of paper Fig. 9 (one point per column).
pub const MITHRIL_SWEEP: [(u64, u64); 8] = [
    (12_500, 512),
    (12_500, 256),
    (12_500, 128),
    (6_250, 256),
    (6_250, 128),
    (6_250, 64),
    (3_125, 128),
    (1_500, 32),
];

/// The Mithril RFMTH the paper pairs with each FlipTH in Figs. 10/11.
pub fn default_rfm_th(flip_th: u64) -> u64 {
    match flip_th {
        50_000 | 25_000 => 256,
        12_500 => 256,
        6_250 => 128,
        3_125 => 64,
        1_500 => 32,
        other => panic!("no default RFMTH for FlipTH {other}"),
    }
}

/// Instantiates a workload set by name for `cores` threads.
///
/// Names: `mix-high`, `mix-blend`, `fft`, `radix`, `pagerank`, and attack
/// sets `attack-double`, `attack-multi`, `attack-bh` (profiled CBF
/// collisions) and `attack-bh-pollution`, all on a mix-high background.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn workload(name: &str, cores: usize, cfg: &SystemConfig, seed: u64) -> ThreadSet {
    match name {
        "mix-high" => mix_high(cores, seed),
        "mix-blend" => mix_blend(cores, seed),
        "fft" | "radix" | "pagerank" => multithreaded(name, cores, seed),
        "attack-double" => attack_mix("double", cores, cfg.mapping(), cfg.channels, seed),
        "attack-multi" => attack_mix("multi", cores, cfg.mapping(), cfg.channels, seed),
        // The profiled CBF-collision pattern of Fig. 10(c): victims are the
        // rows the mix-high sweeps hammer first (offsets 0/249/499/748).
        // Concentrated enough that the attacker's budget pushes every
        // cover row past the (scaled) blacklist threshold within a slice.
        "attack-bh" => bh_cover_attack_mix(
            cores,
            cfg.mapping(),
            cfg.channels,
            cfg.flip_th,
            &cfg.timing,
            &[0, 1, 249, 250],
            2,
            seed,
        ),
        "attack-bh-pollution" => {
            attack_mix("bh-adversarial", cores, cfg.mapping(), cfg.channels, seed)
        }
        other => panic!("unknown workload {other}"),
    }
}

/// Runs one configuration over one workload for `insts_per_core`.
///
/// # Panics
///
/// Panics if the scheme cannot be configured at `cfg.flip_th`.
pub fn run_one(cfg: SystemConfig, workload_name: &str, insts_per_core: u64, seed: u64) -> Metrics {
    let threads = workload(workload_name, cfg.cores, &cfg, seed);
    let mut sys = System::new(cfg, threads)
        .unwrap_or_else(|e| panic!("{} @ FlipTH {}: {e}", cfg.scheme.name(), cfg.flip_th));
    // Cap the simulated time at several times the benign runtime so a
    // heavily throttled thread (BlockHammer vs an attacker) cannot stretch
    // one run to seconds of simulated time; its depressed IPC still shows
    // in the metrics.
    let max_time = insts_per_core.saturating_mul(4_000);
    sys.run(insts_per_core, max_time)
}

/// Runs scheme and baseline over the normal-workload set and returns
/// `(geomean normalized IPC, geomean relative energy)` — the paper's
/// "normal workloads" aggregation (geo-mean over multi-programmed and
/// multi-threaded sets).
pub fn normal_workload_overheads(
    mut cfg: SystemConfig,
    insts_per_core: u64,
    seed: u64,
) -> (f64, f64) {
    let names = ["mix-high", "mix-blend", "fft", "radix", "pagerank"];
    let scheme = cfg.scheme;
    let mut ipcs = Vec::new();
    let mut energies = Vec::new();
    for name in names {
        cfg.scheme = Scheme::None;
        let base = run_one(cfg, name, insts_per_core, seed);
        cfg.scheme = scheme;
        let run = run_one(cfg, name, insts_per_core, seed);
        ipcs.push(run.normalized_ipc(&base));
        energies.push(run.relative_energy(&base));
    }
    (geomean(&ipcs), geomean(&energies))
}

/// Parses `--key value`-style CLI overrides shared by the bins:
/// `--insts N` (instructions per core), `--cores N` and `--seed N`.
#[derive(Debug, Clone, Copy)]
pub struct BinArgs {
    /// Instructions per core per run.
    pub insts: u64,
    /// Cores to simulate.
    pub cores: usize,
    /// Seed.
    pub seed: u64,
}

impl BinArgs {
    /// Parses from `std::env::args`, with defaults sized for minutes-scale
    /// release runs (`insts = 100_000`, `cores = 16`).
    pub fn parse() -> Self {
        let mut out = Self { insts: 100_000, cores: 16, seed: 1 };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--insts" => out.insts = args[i + 1].parse().expect("--insts N"),
                "--cores" => out.cores = args[i + 1].parse().expect("--cores N"),
                "--seed" => out.seed = args[i + 1].parse().expect("--seed N"),
                _ => {}
            }
            i += 2;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rfmth_covers_sweep() {
        for flip in mithril_baselines::FLIP_TH_SWEEP {
            assert!(default_rfm_th(flip) >= 32);
        }
    }

    #[test]
    fn workloads_resolve_by_name() {
        let cfg = SystemConfig::table_iii();
        for name in ["mix-high", "mix-blend", "fft", "radix", "pagerank", "attack-double"] {
            let set = workload(name, 4, &cfg, 1);
            assert_eq!(set.threads.len(), 4);
        }
    }

    #[test]
    fn run_one_produces_metrics() {
        let mut cfg = SystemConfig::table_iii();
        cfg.cores = 2;
        let m = run_one(cfg, "mix-blend", 5_000, 1);
        assert!(m.total_insts >= 10_000);
    }
}
