//! Appendix C — PARFM failure probability and RFMTH selection.
//!
//! Prints, for each FlipTH of the evaluation sweep, the largest RFMTH whose
//! system failure probability (22 simultaneously attackable banks, one
//! tREFW window) stays below the 10⁻¹⁵ consumer-reliability target — the
//! values the PARFM runs in `fig10` use — plus the failure-probability
//! curve around the chosen point.
//!
//! Run: `cargo run --release -p mithril-bench --bin parfm`

use mithril_baselines::parfm_analysis::{max_rfm_th, single_row_failure, system_failure};
use mithril_baselines::FLIP_TH_SWEEP;
use mithril_dram::Ddr5Timing;

const TARGET: f64 = 1e-15;
const BANKS: u64 = 22;

fn main() {
    let timing = Ddr5Timing::ddr5_4800();
    println!("# Appendix C: PARFM RFMTH meeting system failure < 1e-15 (22 banks)");
    println!("flip_th,solved_rfm_th,system_failure_at_solved,failure_at_2x_rfmth");
    for flip in FLIP_TH_SWEEP {
        match max_rfm_th(flip, TARGET, BANKS, &timing) {
            Some(rfm) => {
                let at = system_failure(flip, rfm, BANKS, &timing);
                let at2 = system_failure(flip, rfm * 2, BANKS, &timing);
                println!("{flip},{rfm},{at:.3e},{at2:.3e}");
            }
            None => println!("{flip},unachievable,-,-"),
        }
    }
    println!();
    println!("# Single-row failure probability vs RFMTH at FlipTH = 6.25K:");
    println!("rfm_th,single_row_failure,system_failure");
    for rfm in [16u64, 32, 48, 64, 80, 96, 128, 192, 256] {
        let f1 = single_row_failure(6_250, rfm, &timing);
        let sys = system_failure(6_250, rfm, BANKS, &timing);
        println!("{rfm},{f1:.3e},{sys:.3e}");
    }
    println!();
    println!("# Expected shape: solved RFMTH shrinks as FlipTH shrinks, forcing");
    println!("# PARFM to refresh far more often than Mithril at equal protection");
    println!("# (Mithril uses RFMTH 256/128/64/32 across the same sweep).");
}
