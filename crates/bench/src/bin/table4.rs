//! Table IV — per-bank counter-table size (KB) of every scheme × FlipTH.
//!
//! Rows: CBT @ MC, Graphene @ MC, BlockHammer @ MC, TWiCe @ buffer chip,
//! Mithril-{256,128,64,32} @ DRAM (dash = infeasible pair, as in the
//! paper).
//!
//! The scheme/area catalog lives in the shared scenario registry
//! (`mithril_runner::scenarios::table_area_rows`).
//!
//! Run: `cargo run --release -p mithril-bench --bin table4`

use mithril::MithrilConfig;
use mithril_baselines::FLIP_TH_SWEEP;
use mithril_dram::Ddr5Timing;
use mithril_runner::scenarios::table_area_rows;

fn main() {
    let timing = Ddr5Timing::ddr5_4800();
    print!("{:<24}", "scheme");
    for flip in FLIP_TH_SWEEP {
        print!("{:>10}", format!("{}K", flip as f64 / 1000.0));
    }
    println!();

    for (name, cells) in table_area_rows(&timing) {
        print!("{name:<24}");
        for cell in cells {
            match cell {
                Some(kib) => print!("{kib:>10.2}"),
                None => print!("{:>10}", "-"),
            }
        }
        println!();
    }

    println!();
    println!("# Paper values (KB) for comparison:");
    println!("# CBT:        0.47  0.97  2.0   4.12  8.5   17.5");
    println!("# Graphene:   0.14  0.21  0.51  0.99  1.92  3.7");
    println!("# BlockHammer:3.75  3.5   3.25  6.0   11.0  20.0");
    println!("# TWiCe:      2.79  5.08  9.54  18.27 35.29 71.26");
    println!("# Mithril-256:0.08  0.17  0.41  1.45  -     -");
    println!("# Mithril-128:0.07  0.15  0.34  0.84  3.76  -");
    println!("# Mithril-64: 0.07  0.14  0.3   0.68  1.78  -");
    println!("# Mithril-32: 0.06  0.13  0.27  0.57  1.38  4.64");
    let c = MithrilConfig::for_flip_threshold(6_250, 128, &timing).unwrap();
    println!(
        "# Area cross-check: Mithril-128 @ 6.25K ≈ {:.4} mm² (paper: 0.024 mm²)",
        c.table_mm2()
    );
}
