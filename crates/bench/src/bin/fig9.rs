//! Figure 9 — Mithril vs Mithril+ performance and area across
//! (FlipTH, RFMTH) configurations.
//!
//! For each configuration of the paper's sweep (FlipTH 12.5K → 1.5K with
//! RFMTH 512 → 32), reports the normalized aggregate IPC (%) of Mithril and
//! Mithril+ over the normal-workload set and the per-bank table size.
//! Sweep points fan out on the sharded engine (`--threads N`).
//!
//! Expected shape (paper Fig. 9): Mithril loses more performance as RFMTH
//! shrinks (more RFM head-of-line blocking), up to ~2% at (1.5K, 32);
//! Mithril+ stays ≈ 100% everywhere; area grows as FlipTH falls.
//!
//! Run: `cargo run --release -p mithril-bench --bin fig9`

use mithril::MithrilConfig;
use mithril_bench::{normal_workload_overheads, run_sharded, BinArgs, MITHRIL_SWEEP};
use mithril_sim::{Scheme, SystemConfig};

fn main() {
    let args = BinArgs::parse();
    let mut cfg = SystemConfig::table_iii();
    cfg.cores = args.cores;
    let timing = cfg.timing;

    println!("# Figure 9: Mithril / Mithril+ relative performance and area");
    println!(
        "# (insts/core = {}, AdTH = 200, {} engine threads)",
        args.insts, args.threads
    );
    println!("flip_th,rfm_th,table_kib,mithril_norm_ipc_pct,mithril_plus_norm_ipc_pct");

    let points: Vec<(u64, u64)> = MITHRIL_SWEEP.to_vec();
    let rows = run_sharded(&points, args.pool(), args.seed, |&(flip, rfm), _| {
        let mut cfg = cfg;
        cfg.flip_th = flip;
        let kib = MithrilConfig::solve(flip, rfm, 1, Some(200), &timing)
            .map(|c| c.table_kib())
            .unwrap_or(f64::NAN);

        cfg.scheme = Scheme::Mithril {
            rfm_th: rfm,
            ad_th: Some(200),
            plus: false,
        };
        let (ipc_m, _) = normal_workload_overheads(cfg, args.insts, args.seed);
        cfg.scheme = Scheme::Mithril {
            rfm_th: rfm,
            ad_th: Some(200),
            plus: true,
        };
        let (ipc_p, _) = normal_workload_overheads(cfg, args.insts, args.seed);

        format!(
            "{flip},{rfm},{kib:.2},{:.2},{:.2}",
            ipc_m * 100.0,
            ipc_p * 100.0
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!();
    println!("# Expected: the Mithril column dips (≤ ~2%) at small RFMTH / low");
    println!("# FlipTH; the Mithril+ column stays at ~100%.");
}
