//! Figure 2 — Ineffectiveness of RFM-Graphene vs the original ARR-Graphene.
//!
//! For a range of predefined thresholds `T`, measures the *safe FlipTH*
//! (worst observed victim disturbance + 1) of:
//!
//! * **ARR-Graphene** — the threshold trigger with an immediate ARR, and
//! * **RFM-Graphene** — the same trigger buffered behind periodic RFM
//!   windows (RFMTH = 64),
//!
//! under concentration attacks that drive many rows to the threshold
//! simultaneously. Expected shape (paper Fig. 2): ARR safe-FlipTH grows
//! linearly in `T`; RFM-Graphene flattens to a floor regardless of how low
//! `T` is set.
//!
//! Run: `cargo run --release -p mithril-bench --bin fig2`

use mithril_baselines::RfmGraphene;
use mithril_dram::{AttackHarness, Ddr5Timing, RowHammerOracle};
use mithril_trackers::{FrequencyTracker, SpaceSaving};

const RFM_TH: u64 = 64;
const ROWS: u64 = 65_536;

/// Worst disturbance for RFM-Graphene at threshold `t`, over two attack
/// families:
///
/// * **build-then-focus** (the paper's Section III-A argument): drive `m`
///   rows to the threshold so they all queue for an RFM slot, then hammer
///   the *last-queued* row — it keeps taking hits for `m × RFMTH` ACTs
///   while the FIFO drains ahead of it. `m ≈ budget/(T + RFMTH)` spends
///   the whole window.
/// * **round-robin**: continuous rotation (the naive pattern).
fn rfm_graphene_worst(threshold: u64, timing: &Ddr5Timing) -> u64 {
    let budget = timing.act_budget_per_trefw();
    let nentry = (budget / threshold.max(1) + 8) as usize;
    let mut worst = 0;

    // Build-then-focus at several concentration levels.
    for divisor in [1u64, 2, 4] {
        let m = (budget / (threshold + RFM_TH) / divisor).clamp(2, 8_192);
        let engine = RfmGraphene::new(threshold, nentry, ROWS);
        let mut h = AttackHarness::new(*timing, Box::new(engine), RFM_TH, u64::MAX);
        // Build phase: round-robin until every row crossed the threshold.
        let mut alive = true;
        'build: for _round in 0..threshold {
            for k in 0..m {
                if !h.try_activate(1_000 + 2 * k) {
                    alive = false;
                    break 'build;
                }
            }
        }
        // Focus phase: hammer the last row to enter the pending queue.
        if alive {
            let focus = 1_000 + 2 * (m - 1);
            while h.try_activate(focus) {}
        }
        worst = worst.max(h.oracle().max_disturbance());
    }

    // Plain round-robin reference patterns.
    for m in [(budget / threshold.max(1)).clamp(2, 8_192), 64] {
        let engine = RfmGraphene::new(threshold, nentry, ROWS);
        let mut h = AttackHarness::new(*timing, Box::new(engine), RFM_TH, u64::MAX);
        let mut i = 0u64;
        while h.try_activate(1_000 + 2 * (i % m)) {
            i += 1;
        }
        worst = worst.max(h.oracle().max_disturbance());
    }
    worst
}

/// Worst disturbance for ARR-Graphene at threshold `t`: the trigger fires
/// immediately at every estimate multiple of `t`, so no RFM queueing
/// exists. Simulated at command level with the same ACT budget and the
/// periodic table reset (every tREFW) that forces Graphene's FlipTH/4
/// provisioning.
fn arr_graphene_worst(threshold: u64, timing: &Ddr5Timing) -> u64 {
    let budget = timing.act_budget_per_trefw();
    let nentry = (budget / threshold.max(1) + 8) as usize;
    let candidates = [(budget / threshold.max(1)).max(2), 64, 2];
    let mut worst = 0;
    for &m in &candidates {
        let m = m.min(8_192);
        let mut table = SpaceSaving::new(nentry);
        let mut fired = std::collections::HashMap::new();
        let mut oracle = RowHammerOracle::new(u64::MAX, 1, ROWS);
        // Two refresh windows with a table reset at the boundary: the
        // reset is where ARR-Graphene loses a factor of two.
        for window in 0..2 {
            for i in 0..budget {
                let row = 1_000 + 2 * ((window * budget / 2 + i) % m);
                oracle.on_activate(row);
                table.record(row);
                let est = table.estimate(row);
                let crossings = est / threshold;
                let f = fired.entry(row).or_insert(0u64);
                if crossings > *f {
                    *f = crossings;
                    oracle.on_neighbors_refreshed(row);
                }
            }
            table.clear();
            fired.clear();
        }
        worst = worst.max(oracle.max_disturbance());
    }
    worst
}

fn main() {
    let timing = Ddr5Timing::ddr5_4800();
    println!("# Figure 2: safe FlipTH vs predefined threshold (RFMTH = {RFM_TH})");
    println!("threshold,arr_graphene_safe_flipth,rfm_graphene_safe_flipth");
    for threshold in [250u64, 500, 1_000, 2_000, 4_000, 8_000] {
        let arr = arr_graphene_worst(threshold, &timing) + 1;
        let rfm = rfm_graphene_worst(threshold, &timing) + 1;
        println!("{threshold},{arr},{rfm}");
    }
    println!();
    println!("# Expected shape: the ARR column grows ~linearly with the threshold;");
    println!("# the RFM column stays pinned near its floor (paper: ~20K at T=2K),");
    println!("# demonstrating why prior threshold-triggered schemes do not port to RFM.");
}
