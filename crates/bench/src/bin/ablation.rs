//! Ablation study: which of Mithril's design choices carry the guarantee?
//!
//! DESIGN.md calls out three load-bearing decisions; this binary knocks
//! each one out at command level and measures the worst victim disturbance
//! under the same attack battery (FlipTH = 6.25K, RFMTH = 128, one tREFW):
//!
//! 1. **greedy max selection** → replaced by round-robin and by
//!    oldest-entry selection;
//! 2. **decrement-to-min after refresh** → replaced by no decrement and by
//!    reset-to-zero (which breaks the upper-bound property (2));
//! 3. **table size from Theorem 1** → halved and quartered.
//!
//! The variant battery fans out on the runner's sharded engine
//! (`--threads N`); each variant's attack battery is independent.
//!
//! Run: `cargo run --release -p mithril-bench --bin ablation`

use mithril::{MithrilConfig, MithrilScheme, MithrilTable};
use mithril_bench::{run_sharded, BinArgs};
use mithril_dram::{AttackHarness, Ddr5Timing, DramMitigation, RfmOutcome, RowId};

const FLIP: u64 = 6_250;
const RFM: u64 = 128;

/// A Mithril variant with a pluggable RFM selection policy.
struct Variant {
    table: MithrilTable<u64>,
    policy: Policy,
    rr_cursor: u64,
    rows: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Policy {
    /// Refresh table rows round-robin regardless of counts. (The paper's
    /// greedy policy itself runs through the real [`MithrilScheme`].)
    RoundRobin,
    /// Greedy max but never decrement the selected counter.
    NoDecrement,
}

impl Variant {
    fn new(nentry: usize, policy: Policy) -> Self {
        Self {
            table: MithrilTable::new(nentry),
            policy,
            rr_cursor: 0,
            rows: 65_536,
        }
    }

    fn victims(&self, row: RowId) -> Vec<RowId> {
        let mut v = Vec::new();
        if row > 0 {
            v.push(row - 1);
        }
        if row + 1 < self.rows {
            v.push(row + 1);
        }
        v
    }
}

impl DramMitigation for Variant {
    fn on_activate(&mut self, row: RowId) {
        self.table.on_activate(row);
    }

    fn on_rfm_into(&mut self, out: &mut RfmOutcome) {
        match self.policy {
            Policy::RoundRobin => {
                // Refresh whichever tracked row the cursor lands on.
                let entries: Vec<RowId> = self.table.iter_relative().map(|(r, _)| r).collect();
                if entries.is_empty() {
                    out.reset_to_skipped();
                    return;
                }
                let row = entries[(self.rr_cursor as usize) % entries.len()];
                self.rr_cursor += 1;
                let victims = self.victims(row);
                out.begin_refresh(row).extend(victims);
            }
            Policy::NoDecrement => {
                // Greedy selection, but the counter keeps its value: the
                // same row is selected forever while others grow unseen.
                let max = self.table.iter_relative().max_by_key(|&(_, c)| c);
                match max {
                    Some((row, _)) => {
                        let victims = self.victims(row);
                        out.begin_refresh(row).extend(victims);
                    }
                    None => out.reset_to_skipped(),
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        match self.policy {
            Policy::RoundRobin => "round-robin",
            Policy::NoDecrement => "no-decrement",
        }
    }
}

/// Runs the attack battery and returns the worst disturbance seen.
fn worst_case(engine: impl Fn() -> Box<dyn DramMitigation>, nentry: u64) -> u64 {
    let timing = Ddr5Timing::ddr5_4800();
    let patterns: Vec<Box<dyn Fn(u64) -> u64>> = vec![
        Box::new(|_| 1_000),                             // single row
        Box::new(|i| 999 + 2 * (i % 2)),                 // double-sided
        Box::new(|i| 5_000 + 2 * (i % 32)),              // multi-sided
        Box::new(move |i| 100 + 2 * (i % (nentry + 7))), // table thrash
        Box::new(move |i| 100 + 2 * (i % (2 * nentry))), // 2x thrash
    ];
    let mut worst = 0;
    for p in &patterns {
        let mut h = AttackHarness::new(timing, engine(), RFM, u64::MAX);
        let mut i = 0u64;
        while h.try_activate(p(i)) {
            i += 1;
        }
        worst = worst.max(h.oracle().max_disturbance());
    }
    worst
}

#[derive(Debug, Clone, Copy)]
enum Knockout {
    /// The paper's mechanism, optionally with a shrunken table.
    Greedy { nentry_div: usize },
    /// Selection policy replaced.
    Policy(Policy),
}

fn main() {
    let args = BinArgs::parse();
    let timing = Ddr5Timing::ddr5_4800();
    let cfg = MithrilConfig::for_flip_threshold(FLIP, RFM, &timing).unwrap();
    let n = cfg.nentry;
    println!("# Ablation at FlipTH = {FLIP}, RFMTH = {RFM}, solved Nentry = {n}");
    println!("# ({} engine threads)", args.threads);
    println!("variant,nentry,worst_disturbance,safe(<{FLIP})");

    // 1. selection policy knockouts; 2. table sizing below Theorem 1.
    let variants: Vec<(&str, Knockout)> = vec![
        ("greedy (paper)", Knockout::Greedy { nentry_div: 1 }),
        (
            "round-robin selection",
            Knockout::Policy(Policy::RoundRobin),
        ),
        (
            "greedy w/o decrement",
            Knockout::Policy(Policy::NoDecrement),
        ),
        ("greedy, Nentry/2", Knockout::Greedy { nentry_div: 2 }),
        ("greedy, Nentry/4", Knockout::Greedy { nentry_div: 4 }),
    ];
    let rows = run_sharded(
        &variants,
        args.pool(),
        args.seed,
        |&(label, knockout), _| {
            let (nentry, worst) = match knockout {
                Knockout::Greedy { nentry_div } => {
                    let small = (n / nentry_div).max(1);
                    let small_cfg = MithrilConfig {
                        nentry: small,
                        ..cfg
                    };
                    (
                        small,
                        worst_case(
                            move || Box::new(MithrilScheme::new(small_cfg)),
                            small as u64,
                        ),
                    )
                }
                Knockout::Policy(policy) => (
                    n,
                    worst_case(|| Box::new(Variant::new(n, policy)), n as u64),
                ),
            };
            format!(
                "{label},{nentry},{worst},{}",
                if worst < FLIP { "yes" } else { "NO" }
            )
        },
    );
    for row in rows {
        println!("{row}");
    }

    println!();
    println!("# Expected: only the paper configuration stays comfortably below");
    println!("# FlipTH on every pattern; knocking out greedy selection or the");
    println!("# decrement, or shrinking the table below Theorem 1's Nentry,");
    println!("# pushes some pattern's worst case toward (or past) the threshold.");
}
